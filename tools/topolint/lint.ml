(* Findings and allowlist plumbing for topolint, the source-level
   concurrency lint (DESIGN.md "Source-level static analysis").

   A finding is keyed by (rule, file, symbol): the symbol is a stable,
   line-number-free handle — a declared field, a called function, the
   enclosing top-level binding — so `lint.allow` entries survive
   unrelated edits to the file.  Allow entries are one per line:

     <rule-id> <relative/file.ml> <symbol> -- <reason>

   The reason is mandatory (an allowlist without written justification
   is how invariants rot); a trailing '*' in <symbol> prefix-matches,
   so one reasoned entry can cover a family of sites in one file. *)

type rule = Mutable_state | Lock_discipline | Hot_path | Hygiene | Parse_error

let rule_id = function
  | Mutable_state -> "mutable-state"
  | Lock_discipline -> "lock-discipline"
  | Hot_path -> "hot-path"
  | Hygiene -> "hygiene"
  | Parse_error -> "parse-error"

type finding = {
  rule : rule;
  file : string;  (* workspace-relative, '/'-separated *)
  line : int;
  col : int;
  symbol : string;
  message : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

type allow_entry = {
  a_rule : string;
  a_file : string;
  a_symbol : string;  (* trailing '*' prefix-matches *)
  reason : string;
  a_line : int;  (* line in the allow file, for diagnostics *)
  mutable used : bool;
}

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

let is_blank line =
  String.length (String.trim line) = 0 || (String.trim line).[0] = '#'

(* One entry: three whitespace-separated tokens, then " -- ", then the
   reason.  Returns [Error msg] on malformed lines so the tool can fail
   loudly rather than silently ignore a suppression. *)
let parse_allow_line ~lineno line =
  let sep = " -- " in
  let rec find_sep i =
    if i + String.length sep > String.length line then None
    else if String.sub line i (String.length sep) = sep then Some i
    else find_sep (i + 1)
  in
  match find_sep 0 with
  | None -> Error (Printf.sprintf "line %d: missing ' -- <reason>'" lineno)
  | Some i ->
      let head = String.sub line 0 i in
      let reason =
        String.trim (String.sub line (i + String.length sep) (String.length line - i - String.length sep))
      in
      if reason = "" then Error (Printf.sprintf "line %d: empty reason" lineno)
      else
        let tokens =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim head))
        in
        (match tokens with
        | [ a_rule; a_file; a_symbol ] ->
            Ok { a_rule; a_file; a_symbol; reason; a_line = lineno; used = false }
        | _ ->
            Error (Printf.sprintf "line %d: expected '<rule> <file> <symbol> -- <reason>'" lineno))

let parse_allow text =
  let entries = ref [] and errors = ref [] in
  List.iteri
    (fun i line ->
      if not (is_blank line) then
        match parse_allow_line ~lineno:(i + 1) line with
        | Ok e -> entries := e :: !entries
        | Error msg -> errors := msg :: !errors)
    (String.split_on_char '\n' text);
  (List.rev !entries, List.rev !errors)

let symbol_matches ~pattern symbol =
  let n = String.length pattern in
  if n > 0 && pattern.[n - 1] = '*' then
    let prefix = String.sub pattern 0 (n - 1) in
    String.length symbol >= String.length prefix
    && String.sub symbol 0 (String.length prefix) = prefix
  else pattern = symbol

(* First matching entry wins; marks it used. *)
let allow_for entries (f : finding) =
  List.find_opt
    (fun e ->
      let hit = e.a_rule = rule_id f.rule && e.a_file = f.file && symbol_matches ~pattern:e.a_symbol f.symbol in
      if hit then e.used <- true;
      hit)
    entries

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let finding_to_string ?reason f =
  let suffix =
    match reason with None -> "" | Some r -> Printf.sprintf "  [allowed: %s]" r
  in
  Printf.sprintf "%s:%d:%d: [%s] %s  (symbol: %s)%s" f.file f.line f.col (rule_id f.rule)
    f.message f.symbol suffix

module J = Topo_obs.Json

let json_of_finding ?reason f =
  let base =
    [
      ("rule", J.Str (rule_id f.rule));
      ("file", J.Str f.file);
      ("line", J.int f.line);
      ("col", J.int f.col);
      ("symbol", J.Str f.symbol);
      ("message", J.Str f.message);
      ("allowed", J.Bool (reason <> None));
    ]
  in
  J.Obj (match reason with None -> base | Some r -> base @ [ ("reason", J.Str r) ])
