(* CLI entry point.

     topolint [--root DIR] [--allow FILE] [--json FILE] [PATH ...]

   PATHs are root-relative directories or files (default: lib bin).
   Exits 1 when any finding is not covered by a reasoned lint.allow
   entry, or when lint.allow itself is malformed. *)

let () =
  let root = ref "." in
  let allow = ref None in
  let json = ref None in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR workspace root (default .)");
      ("--allow", Arg.String (fun f -> allow := Some f), "FILE allowlist (default <root>/lint.allow)");
      ("--json", Arg.String (fun f -> json := Some f), "FILE write a JSON report");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) "topolint [options] [paths]";
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  let report = Topolint_lib.Driver.run ?allow_file:!allow ~root:!root ~paths () in
  (match !json with Some f -> Topolint_lib.Driver.write_json f report | None -> ());
  Topolint_lib.Driver.print_report report;
  if not (Topolint_lib.Driver.ok report) then exit 1
