(* Module dependency graph over the scanned sources, for the hot-path
   rule: a module is HOT when it is reachable from one of the roots
   (Engine.run_request / Serve.run live in lib/core/engine.ml and
   lib/core/serve.ml) by following module references.

   References are collected purely syntactically: every capitalized
   component of every long identifier (values, constructors, types,
   module expressions) is a candidate module name, and candidates are
   kept only when some scanned file defines a module of that name.
   Library wrapper prefixes (Topo_util, Topo_sql, ...) simply resolve to
   nothing and drop out; module basenames are unique across the tree, so
   the mapping name -> file is unambiguous. *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let module_name_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let is_uppercase_ident s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* Every capitalized component anywhere in the structure: identifiers,
   constructors, record labels' paths, type constructors, module
   expressions and opens all flow through the same two hooks. *)
let referenced_names (str : Parsetree.structure) =
  let acc = ref Sset.empty in
  let add_lid lid =
    List.iter
      (fun c -> if is_uppercase_ident c then acc := Sset.add c !acc)
      (Longident.flatten lid)
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> add_lid txt
          | Parsetree.Pexp_construct ({ txt; _ }, _) -> add_lid txt
          | Parsetree.Pexp_field (_, { txt; _ }) -> add_lid txt
          | Parsetree.Pexp_setfield (_, { txt; _ }, _) -> add_lid txt
          | Parsetree.Pexp_record (fields, _) ->
              List.iter (fun ({ Asttypes.txt; _ }, _) -> add_lid txt) fields
          | Parsetree.Pexp_new { txt; _ } -> add_lid txt
          | _ -> ());
          default_iterator.expr self e);
      typ =
        (fun self t ->
          (match t.Parsetree.ptyp_desc with
          | Parsetree.Ptyp_constr ({ txt; _ }, _) -> add_lid txt
          | _ -> ());
          default_iterator.typ self t);
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct ({ txt; _ }, _) -> add_lid txt
          | _ -> ());
          default_iterator.pat self p);
      module_expr =
        (fun self m ->
          (match m.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } -> add_lid txt
          | _ -> ());
          default_iterator.module_expr self m);
    }
  in
  it.structure it str;
  !acc

(* [hot_files ~roots parsed] is the set of files (workspace-relative
   paths) reachable from the root files through the reference graph.
   Roots absent from [parsed] contribute nothing. *)
let hot_files ~roots parsed =
  let by_name =
    List.fold_left (fun m (file, _) -> Smap.add (module_name_of_file file) file m) Smap.empty parsed
  in
  let edges =
    List.fold_left
      (fun m (file, str) ->
        let deps =
          Sset.fold
            (fun name acc ->
              match Smap.find_opt name by_name with
              | Some f when f <> file -> Sset.add f acc
              | Some _ | None -> acc)
            (referenced_names str) Sset.empty
        in
        Smap.add file deps m)
      Smap.empty parsed
  in
  let rec visit seen file =
    if Sset.mem file seen then seen
    else
      let seen = Sset.add file seen in
      match Smap.find_opt file edges with
      | None -> seen
      | Some deps -> Sset.fold (fun d acc -> visit acc d) deps seen
  in
  List.fold_left visit Sset.empty roots
