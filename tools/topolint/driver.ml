(* Orchestration: scan the tree, parse, build the hot-module set, run
   the rules, match findings against lint.allow, render human and JSON
   reports.  Lives in the library so test/suite_lint.ml can run the
   exact pipeline the executable and the @lint-src alias run. *)

type report = {
  files : string list;  (* scanned, root-relative *)
  hot : string list;  (* hot-path modules (reachable from the roots) *)
  findings : (Lint.finding * string option) list;  (* finding, allow reason *)
  unallowed : int;
  allow_errors : string list;  (* malformed lint.allow lines *)
  unused_allow : Lint.allow_entry list;
}

let ok r = r.unallowed = 0 && r.allow_errors = []

let default_hot_roots = [ "lib/core/engine.ml"; "lib/core/serve.ml"; "lib/core/shard.ml" ]

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec ml_files_under root rel =
  let abs = if rel = "" then root else Filename.concat root rel in
  if Sys.is_directory abs then
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           if name = "" || name.[0] = '.' || name = "_build" then []
           else ml_files_under root (if rel = "" then name else rel ^ "/" ^ name))
  else if Filename.check_suffix rel ".ml" then [ rel ]
  else []

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let parse_string ~file text =
  let lexbuf = Lexing.from_string text in
  lexbuf.Lexing.lex_curr_p <- { lexbuf.Lexing.lex_curr_p with Lexing.pos_fname = file };
  Parse.implementation lexbuf

let parse_one ~root rel =
  let abs = Filename.concat root rel in
  match parse_string ~file:rel (read_file abs) with
  | str -> Ok str
  | exception e ->
      let line, msg =
        match e with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
        | e -> (1, Printexc.to_string e)
      in
      Error
        {
          Lint.rule = Lint.Parse_error;
          file = rel;
          line;
          col = 0;
          symbol = "parse";
          message = Printf.sprintf "could not parse: %s" msg;
        }

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)

(* [run ~root ~paths ()] lints every .ml under [paths] (root-relative
   directories or files).  [allow_file] defaults to <root>/lint.allow
   when present; pass [~allow_text] to bypass the filesystem (tests). *)
let run ?(hot_roots = default_hot_roots) ?allow_file ?allow_text ~root ~paths () =
  let files = List.concat_map (fun p -> ml_files_under root p) paths in
  let parsed, parse_errors =
    List.fold_left
      (fun (ok, errs) rel ->
        match parse_one ~root rel with
        | Ok str -> ((rel, str) :: ok, errs)
        | Error f -> (ok, f :: errs))
      ([], []) files
  in
  let parsed = List.rev parsed in
  let hot = Deps.hot_files ~roots:hot_roots parsed in
  let findings =
    parse_errors
    @ List.concat_map
        (fun (rel, str) -> Rules.analyze ~file:rel ~hot:(Deps.Sset.mem rel hot) str)
        parsed
  in
  let findings = List.sort Lint.compare_finding findings in
  let allow_text =
    match allow_text with
    | Some t -> Some t
    | None -> (
        let path =
          match allow_file with Some f -> f | None -> Filename.concat root "lint.allow"
        in
        match read_file path with t -> Some t | exception Sys_error _ -> None)
  in
  let entries, allow_errors =
    match allow_text with None -> ([], []) | Some t -> Lint.parse_allow t
  in
  let matched =
    List.map
      (fun f ->
        match Lint.allow_for entries f with
        | Some e -> (f, Some e.Lint.reason)
        | None -> (f, None))
      findings
  in
  let unallowed = List.length (List.filter (fun (_, r) -> r = None) matched) in
  {
    files;
    hot = Deps.Sset.elements hot;
    findings = matched;
    unallowed;
    allow_errors;
    unused_allow = List.filter (fun e -> not e.Lint.used) entries;
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

module J = Topo_obs.Json

let json_of_report r =
  J.Obj
    [
      ("version", J.int 1);
      ("files_scanned", J.int (List.length r.files));
      ("hot_modules", J.Arr (List.map (fun f -> J.Str f) r.hot));
      ("findings", J.Arr (List.map (fun (f, reason) -> Lint.json_of_finding ?reason f) r.findings));
      ("unallowlisted", J.int r.unallowed);
      ("allowlisted", J.int (List.length r.findings - r.unallowed));
      ("allow_errors", J.Arr (List.map (fun e -> J.Str e) r.allow_errors));
      ( "unused_allow_entries",
        J.Arr
          (List.map
             (fun (e : Lint.allow_entry) ->
               J.Str (Printf.sprintf "line %d: %s %s %s" e.Lint.a_line e.Lint.a_rule e.Lint.a_file e.Lint.a_symbol))
             r.unused_allow) );
      ("ok", J.Bool (ok r));
    ]

let write_json path r =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (J.to_string ~pretty:true (json_of_report r) ^ "\n"))

let print_report r =
  List.iter
    (fun (f, reason) ->
      match reason with
      | None -> print_endline (Lint.finding_to_string f)
      | Some _ -> ())
    r.findings;
  List.iter (fun e -> print_endline ("lint.allow: " ^ e)) r.allow_errors;
  List.iter
    (fun (e : Lint.allow_entry) ->
      Printf.printf "lint.allow:%d: unused entry: %s %s %s\n" e.Lint.a_line e.Lint.a_rule e.Lint.a_file
        e.Lint.a_symbol)
    r.unused_allow;
  let allowed = List.length r.findings - r.unallowed in
  Printf.printf "topolint: %d files, %d hot modules, %d findings (%d allowlisted, %d blocking)\n"
    (List.length r.files) (List.length r.hot) (List.length r.findings) allowed r.unallowed
