(* The four rule groups, as purely syntactic Parsetree checks.

   - mutable-state (lib/core, lib/relational, lib/graph, lib/util only):
     mutable record fields, module-level mutable bindings, and mutation
     sites of Hashtbl/Dyn/Array/ref values that are not provably local
     must live in a module that declares a protection idiom (a Mutex.t
     or Domain.DLS confinement; Atomic.t values are never flagged), or
     carry a reasoned lint.allow entry.
   - lock-discipline (everywhere): a Mutex.lock must be released on all
     syntactic paths of its continuation (Fun.protect with an unlocking
     ~finally, or a matching Mutex.unlock in every branch), and no
     blocking call (Pool.parallel_map/fold, Domain.join, an iterator's
     .next field) may appear while the lock is syntactically held.
   - hot-path (modules reachable from Engine.run_request / Serve.run):
     no Random.*, Sys.time, stdout printing, or ambient-counter scope
     clobbering (Counters.reset / Counters.with_reset); and no unbounded
     queue growth — a Queue.add/Queue.push must sit under an enclosing
     [if] whose condition consults Queue.length (the admission-control
     idiom), or carry a reasoned lint.allow entry.  An unguarded add in
     a serving module grows the queue and every queued request's latency
     without bound exactly when the system is overloaded.
   - hygiene (everywhere scanned): no Obj.magic, no assert false.

   The checks look at provenance, not values: a mutation target whose
   head identifier was let-bound in the same top-level item to a
   fresh-value constructor (create/make/init/copy/map/...) is local by
   construction and passes; anything else — a field access, a function
   parameter, a module-level name — is treated as potentially shared. *)

open Parsetree

let scope_dirs = [ "lib/core/"; "lib/relational/"; "lib/graph/"; "lib/util/" ]

let in_state_scope file =
  List.exists (fun d -> String.length file >= String.length d && String.sub file 0 (String.length d) = d) scope_dirs

(* ------------------------------------------------------------------ *)
(* Longident / application helpers                                     *)

let lid_str lid = String.concat "." (Longident.flatten lid)

let path_of_fn (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (lid_str txt) | _ -> None

let apply_parts (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
      match path_of_fn fn with Some p -> Some (p, args) | None -> None)
  | _ -> None

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* "Mutex.lock" also matches "Stdlib.Mutex.lock". *)
let path_is name p = p = name || ends_with ~suffix:("." ^ name) p

let is_call name e = match apply_parts e with Some (p, _) -> path_is name p | None -> false

exception Found of Location.t * string

(* Does [e] contain a sub-expression satisfying [pred]?  Descends into
   lambdas and every other construct via the default iterator. *)
let expr_contains pred (e : expression) =
  let open Ast_iterator in
  let it =
    { default_iterator with expr = (fun self x -> if pred x then raise Exit; default_iterator.expr self x) }
  in
  try
    it.expr it e;
    false
  with Exit -> true

(* ------------------------------------------------------------------ *)
(* Provenance: locally-created values                                  *)

(* Last components of constructor-like functions: a target let-bound to
   an application of one of these is a fresh value owned by the
   enclosing item. *)
let creator_ops =
  [
    "create"; "with_capacity"; "make"; "make_matrix"; "init"; "copy"; "map"; "mapi"; "sub"; "concat";
    "append";
    "of_list"; "of_array"; "of_seq"; "to_array"; "to_list"; "filter"; "create_float"; "build";
    "empty";
  ]

let rec strip_constraint (e : expression) =
  match e.pexp_desc with Pexp_constraint (e, _) -> strip_constraint e | _ -> e

let is_creator_app e =
  match apply_parts (strip_constraint e) with
  | Some (p, _) ->
      p = "ref"
      ||
      let last =
        match List.rev (String.split_on_char '.' p) with l :: _ -> l | [] -> p
      in
      List.mem last creator_ops
  | None -> (
      (* [| ... |] and [] literals are fresh too *)
      match (strip_constraint e).pexp_desc with
      | Pexp_array _ -> true
      | Pexp_record _ -> true  (* a record literal is a fresh value too *)
      | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, _) -> true
      | _ -> false)

(* All identifiers let-bound anywhere inside [item] to a fresh value. *)
let local_creations (item : structure_item) =
  let acc = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } when is_creator_app vb.pvb_expr -> acc := txt :: !acc
          | _ -> ());
          default_iterator.value_binding self vb);
    }
  in
  it.structure_item it item;
  !acc

(* Head identifier of a mutation target, looking through constraints and
   through container reads ([a.(i)], [Dyn.get d i], [fst t], ...), so
   that [columns.(c)] resolves to [columns]. *)
let rec head_ident (e : expression) =
  match (strip_constraint e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | Pexp_field (r, _) -> head_ident r  (* g.nodes resolves to g *)
  | Pexp_apply (fn, (_, arg) :: _) -> (
      match path_of_fn fn with
      | Some p when path_is "Array.get" p || path_is "Dyn.get" p || p = "fst" || p = "snd" ->
          head_ident arg
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lock discipline                                                     *)

let is_lock e = is_call "Mutex.lock" e

let is_unlock e = is_call "Mutex.unlock" e

(* Fun.protect whose ~finally releases a mutex. *)
let is_protect_release e =
  match apply_parts e with
  | Some (p, args) when path_is "Fun.protect" p ->
      List.exists
        (fun (label, arg) ->
          match label with
          | Asttypes.Labelled "finally" -> expr_contains is_unlock arg
          | _ -> false)
        args
  | _ -> false

(* Every syntactic path through [e] reaches a Mutex.unlock (or a
   Fun.protect that releases). *)
let rec releases (e : expression) =
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> releases a || releases b
  | Pexp_let (_, vbs, body) -> List.exists (fun vb -> releases vb.pvb_expr) vbs || releases body
  | Pexp_ifthenelse (_, t, Some el) -> releases t && releases el
  | Pexp_ifthenelse (_, _, None) -> false
  | Pexp_match (_, cases) -> cases <> [] && List.for_all (fun c -> releases c.pc_rhs) cases
  | Pexp_try (body, cases) -> releases body && List.for_all (fun c -> releases c.pc_rhs) cases
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e) -> releases e
  | Pexp_apply _ -> is_unlock e || is_protect_release e
  | _ -> false

(* Calls that may block for a long time or re-enter the pool. *)
let blocking_call e =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } ->
          let p = lid_str txt in
          if
            ends_with ~suffix:"parallel_map" p || ends_with ~suffix:"parallel_fold" p
            || path_is "Domain.join" p
          then Some p
          else None
      | Pexp_field (_, { txt; _ }) ->
          (* an iterator pull: it.next (), it.Iterator.next () *)
          let last = match List.rev (Longident.flatten txt) with l :: _ -> l | [] -> "" in
          if last = "next" then Some ".next" else None
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Analysis context                                                    *)

type ctx = {
  file : string;
  state_scope : bool;  (* under the mutable-state rule's directories *)
  protected : bool;  (* module declares a Mutex.t or uses Domain.DLS *)
  hot : bool;
  mutable item : string;  (* enclosing top-level binding, for symbols *)
  mutable locals : string list;  (* creation-bound idents of the item *)
  mutable guarded_queues : Location.t list;
      (* Queue.add/push sites inside a Queue.length-checked [if] branch *)
  mutable out : Lint.finding list;
}

let emit ctx rule (loc : Location.t) symbol message =
  let p = loc.Location.loc_start in
  ctx.out <-
    {
      Lint.rule;
      file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      symbol;
      message;
    }
    :: ctx.out

(* ------------------------------------------------------------------ *)
(* Mutation sites (mutable-state rule)                                 *)

let mutating_op p =
  let parts = String.split_on_char '.' p in
  match List.rev parts with
  | op :: m :: _ -> (
      match m with
      | "Hashtbl" when List.mem op [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
        ->
          Some ("Hashtbl." ^ op, 0)
      | "Dyn" when List.mem op [ "push"; "pop"; "set"; "clear" ] -> Some ("Dyn." ^ op, 0)
      | "Dyn" when op = "sort" -> Some ("Dyn.sort", 1)  (* sort cmp t *)
      | "Array" when List.mem op [ "set"; "fill"; "unsafe_set" ] -> Some ("Array." ^ op, 0)
      | "Array" when List.mem op [ "sort"; "stable_sort"; "fast_sort" ] ->
          Some ("Array." ^ op, 1)  (* sort cmp a *)
      | "Array" when op = "blit" -> Some ("Array.blit", 2)
      | "Bytes" when List.mem op [ "set"; "fill"; "blit"; "unsafe_set" ] -> Some ("Bytes." ^ op, 0)
      | _ -> None)
  | _ -> None

let check_mutation ctx e =
  match apply_parts e with
  | Some (p, args) when p = ":=" -> (
      match args with
      | (_, target) :: _ -> (
          match head_ident target with
          | Some x when List.mem x ctx.locals -> ()
          | _ ->
              emit ctx Lint.Mutable_state e.pexp_loc "call::="
                "assignment to a ref that is not provably local to this item")
      | [] -> ())
  | Some (p, args) -> (
      match mutating_op p with
      | None -> ()
      | Some (op, target_pos) -> (
          let positional = List.filter_map (function Asttypes.Nolabel, a -> Some a | _ -> None) args in
          match List.nth_opt positional target_pos with
          | None -> ()
          | Some target -> (
              match head_ident target with
              | Some x when List.mem x ctx.locals -> ()
              | _ ->
                  emit ctx Lint.Mutable_state e.pexp_loc ("call:" ^ op)
                    (Printf.sprintf
                       "%s on a value that is not provably local to this item (shared mutable state \
                        needs a Mutex/Atomic/DLS idiom in this module)"
                       op))))
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Hot-path denylist                                                   *)

let hot_denied p =
  let parts = String.split_on_char '.' p in
  let parts = match parts with "Stdlib" :: rest -> rest | _ -> parts in
  match parts with
  | "Random" :: _ -> Some "nondeterministic Random in a hot-path module"
  | [ "Sys"; "time" ] -> Some "Sys.time (wall-clock, coarse) in a hot-path module"
  | [ f ]
    when List.mem f
           [ "print_string"; "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char" ]
    ->
      Some "stdout printing in a hot-path module"
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] | [ "Format"; "print_string" ]
  | [ "Format"; "print_newline" ] ->
      Some "stdout printing in a hot-path module"
  | [ "Counters"; ("reset" | "with_reset") ] | [ _; "Counters"; ("reset" | "with_reset") ] ->
      Some "ambient Counters scope mutation outside with_scope in a hot-path module"
  | _ -> None

(* Queue growth (hot-path rule): Queue.add/Queue.push must be depth-
   checked.  The walk is pre-order, so an [if Queue.length ... then/else]
   is visited before the adds inside it: its branches' add sites land in
   [ctx.guarded_queues] first, and the later visit of each add itself
   stays silent. *)

let is_queue_grow p = path_is "Queue.add" p || path_is "Queue.push" p

let queue_grow_sites (e : expression) =
  let acc = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self x ->
          (match apply_parts x with
          | Some (p, _) when is_queue_grow p -> acc := x.pexp_loc :: !acc
          | _ -> ());
          default_iterator.expr self x);
    }
  in
  it.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* Per-expression hook                                                 *)

let on_expr ctx (e : expression) =
  (* hygiene: Obj.magic anywhere (bare or applied) *)
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } when path_is "Obj.magic" (lid_str txt) ->
      emit ctx Lint.Hygiene e.pexp_loc "obj-magic" "Obj.magic defeats the type system"
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
      emit ctx Lint.Hygiene e.pexp_loc
        ("assert-false:" ^ ctx.item)
        "assert false in library code: raise a descriptive error instead"
  | _ -> ());
  (* lock discipline, at the sequencing point after a Mutex.lock *)
  (let check_lock_continuation k =
     if not (releases k) then
       emit ctx Lint.Lock_discipline e.pexp_loc ("lock:" ^ ctx.item)
         "Mutex.lock is not released on every path of its continuation (use Fun.protect or unlock \
          in every branch)";
     (* scan the continuation while the lock is syntactically held *)
     let rec scan_spine (k : expression) =
       let scan_subtree x =
         ignore
           (expr_contains
              (fun sub ->
                (match blocking_call sub with
                | Some what ->
                    emit ctx Lint.Lock_discipline sub.pexp_loc ("blocking:" ^ ctx.item)
                      (Printf.sprintf "blocking call %s while a mutex is syntactically held" what)
                | None -> ());
                false)
              x)
       in
       match k.pexp_desc with
       | Pexp_sequence (a, b) ->
           if is_unlock a then () else (scan_subtree a; scan_spine b)
       | Pexp_let (_, vbs, body) ->
           List.iter (fun vb -> scan_subtree vb.pvb_expr) vbs;
           scan_spine body
       | _ -> if is_unlock k then () else scan_subtree k
     in
     scan_spine k
   in
   match e.pexp_desc with
   | Pexp_sequence (a, k) when is_lock a -> check_lock_continuation k
   | Pexp_let (_, vbs, body) when List.exists (fun vb -> is_lock vb.pvb_expr) vbs ->
       check_lock_continuation body
   | _ -> ());
  (* mutable-state mutation sites *)
  if ctx.state_scope && not ctx.protected then check_mutation ctx e;
  (* hot-path denylist + queue-growth admission check *)
  if ctx.hot then begin
    (match e.pexp_desc with
    | Pexp_ifthenelse (cond, then_, else_)
      when expr_contains (is_call "Queue.length") cond ->
        ctx.guarded_queues <-
          queue_grow_sites then_
          @ (match else_ with Some el -> queue_grow_sites el | None -> [])
          @ ctx.guarded_queues
    | _ -> ());
    match apply_parts e with
    | Some (p, _) when is_queue_grow p ->
        if not (List.mem e.pexp_loc ctx.guarded_queues) then
          emit ctx Lint.Hot_path e.pexp_loc ("queue:" ^ ctx.item)
            "Queue growth with no depth check in a hot-path module: guard the add with an \
             enclosing [if] on Queue.length (admission control) so overload sheds load instead \
             of growing latency without bound"
    | Some (p, _) -> (
        match hot_denied p with
        | Some msg -> emit ctx Lint.Hot_path e.pexp_loc ("call:" ^ p) msg
        | None -> ())
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_"

let field_findings ctx (decl : type_declaration) =
  let check_fields prefix fields =
    List.iter
      (fun (ld : label_declaration) ->
        match ld.pld_mutable with
        | Asttypes.Mutable ->
            emit ctx Lint.Mutable_state ld.pld_loc
              (Printf.sprintf "field:%s.%s" prefix ld.pld_name.Asttypes.txt)
              (Printf.sprintf
                 "mutable field %s in a module with no declared protection idiom (Mutex.t, \
                  Atomic.t wrapping, or Domain.DLS confinement)"
                 ld.pld_name.Asttypes.txt)
        | Asttypes.Immutable -> ())
      fields
  in
  let tyname = decl.ptype_name.Asttypes.txt in
  (match decl.ptype_kind with
  | Ptype_record fields -> check_fields tyname fields
  | Ptype_variant ctors ->
      List.iter
        (fun (c : constructor_declaration) ->
          match c.pcd_args with
          | Pcstr_record fields -> check_fields tyname fields
          | Pcstr_tuple _ -> ())
        ctors
  | Ptype_abstract | Ptype_open -> ())

let global_mutable_rhs e =
  match apply_parts (strip_constraint e) with
  | Some (p, _) ->
      p = "ref"
      || path_is "Hashtbl.create" p || path_is "Dyn.create" p || path_is "Dyn.with_capacity" p
      || path_is "Array.make" p || path_is "Array.create_float" p || path_is "Bytes.create" p
      || path_is "Queue.create" p || path_is "Stack.create" p || path_is "Buffer.create" p
  | None -> false

let rec analyze_items ctx items =
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_type (_, decls) -> if ctx.state_scope && not ctx.protected then List.iter (field_findings ctx) decls
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              ctx.item <- binding_name vb;
              ctx.locals <- local_creations item;
              if ctx.state_scope && not ctx.protected && global_mutable_rhs vb.pvb_expr then
                emit ctx Lint.Mutable_state vb.pvb_loc
                  ("global:" ^ binding_name vb)
                  "module-level mutable value in a module with no declared protection idiom";
              walk_expr ctx vb.pvb_expr)
            vbs
      | Pstr_eval (e, _) ->
          ctx.item <- "_";
          ctx.locals <- local_creations item;
          walk_expr ctx e
      | Pstr_module mb -> analyze_module ctx mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> analyze_module ctx mb.pmb_expr) mbs
      | _ -> ())
    items

and analyze_module ctx (m : module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> analyze_items ctx items
  | Pmod_functor (_, body) -> analyze_module ctx body
  | Pmod_constraint (body, _) -> analyze_module ctx body
  | _ -> ()

and walk_expr ctx e =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr = (fun self x -> on_expr ctx x; default_iterator.expr self x);
    }
  in
  it.expr it e

(* Module-level protection facts: any mention of Mutex or Domain.DLS in
   the file counts as a declared idiom (the granularity the ISSUE's
   protection contract names: "owned by a module that declares a
   Mutex.t"). *)
let structure_mentions names (str : structure) =
  let found = ref false in
  let check lid = if List.exists (fun c -> List.mem c names) (Longident.flatten lid) then found := true in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with Pexp_ident { txt; _ } -> check txt | _ -> ());
          default_iterator.expr self x);
      typ =
        (fun self t ->
          (match t.ptyp_desc with Ptyp_constr ({ txt; _ }, _) -> check txt | _ -> ());
          default_iterator.typ self t);
    }
  in
  it.structure it str;
  !found

let analyze ~file ~hot (str : structure) =
  let state_scope = in_state_scope file in
  let protected = structure_mentions [ "Mutex"; "DLS" ] str in
  let ctx =
    { file; state_scope; protected; hot; item = "_"; locals = []; guarded_queues = []; out = [] }
  in
  analyze_items ctx str;
  List.rev ctx.out
