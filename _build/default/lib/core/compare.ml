module Lgraph = Topo_graph.Lgraph
module Iso = Topo_graph.Iso

type diff = { common : int list; only_left : int list; only_right : int list }

let diff ~left ~right =
  let module IS = Set.Make (Int) in
  let l = IS.of_list left and r = IS.of_list right in
  {
    common = IS.elements (IS.inter l r);
    only_left = IS.elements (IS.diff l r);
    only_right = IS.elements (IS.diff r l);
  }

let subsumes registry ~outer ~inner =
  let o = Topology.find registry outer and i = Topology.find registry inner in
  i.Topology.n_nodes <= o.Topology.n_nodes
  && i.Topology.n_edges <= o.Topology.n_edges
  && Iso.embeds ~pattern:i.Topology.graph ~host:o.Topology.graph ()

let strictly_subsumes registry ~outer ~inner =
  outer <> inner && subsumes registry ~outer ~inner && not (subsumes registry ~outer:inner ~inner:outer)

let maximal registry tids =
  let tids = List.sort_uniq compare tids in
  List.filter
    (fun t -> not (List.exists (fun o -> strictly_subsumes registry ~outer:o ~inner:t) tids))
    tids

let refinements registry tids =
  let tids = List.sort_uniq compare tids in
  List.map
    (fun t ->
      (t, List.filter (fun i -> strictly_subsumes registry ~outer:t ~inner:i) tids))
    tids

let label_profile (t : Topology.t) =
  List.fold_left
    (fun acc e ->
      let l = e.Lgraph.label in
      let count = Option.value ~default:0 (List.assoc_opt l acc) in
      (l, count + 1) :: List.remove_assoc l acc)
    []
    (Lgraph.edges t.Topology.graph)

let similarity registry a b =
  if a = b then 1.0
  else begin
    let ta = Topology.find registry a and tb = Topology.find registry b in
    if ta.Topology.key = tb.Topology.key then 1.0
    else begin
      let pa = label_profile ta and pb = label_profile tb in
      let labels = List.sort_uniq compare (List.map fst pa @ List.map fst pb) in
      let inter, union =
        List.fold_left
          (fun (i, u) l ->
            let ca = Option.value ~default:0 (List.assoc_opt l pa) in
            let cb = Option.value ~default:0 (List.assoc_opt l pb) in
            (i + min ca cb, u + max ca cb))
          (0, 0) labels
      in
      if union = 0 then 0.0 else float_of_int inter /. float_of_int union
    end
  end
