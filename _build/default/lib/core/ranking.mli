(** Topology ranking schemes (Section 6.1).

    Three schemes, as in the experiments: [Freq] scores common topologies
    high, [Rare] scores rare topologies high, and [Domain] stands in for
    the paper's domain expert with a deterministic biological-significance
    heuristic (DESIGN.md, substitutions): it rewards interaction edges, the
    interplay of multiple path classes, and cycles (the Figure 16 motif:
    two proteins encoded by one DNA, interacting), and penalizes weak
    relationships (Appendix B). *)

type scheme = Freq | Rare | Domain

(** [all] = [Freq; Domain; Rare] — the column order of Table 2. *)
val all : scheme list

(** [name scheme]. *)
val name : scheme -> string

(** [of_name s].  @raise Invalid_argument on unknown names. *)
val of_name : string -> scheme

(** [score_column scheme] is the TopInfo column the scheme reads
    (["score_freq"] / ["score_rare"] / ["score_domain"]). *)
val score_column : scheme -> string

(** [score scheme interner topology ~freq] computes the scheme's score;
    every score is strictly positive so descending order is total. *)
val score : scheme -> Topo_util.Interner.t -> Topology.t -> freq:int -> float

(** [domain_score interner topology] is the Domain heuristic by itself
    (exposed for the Figure 16 experiment). *)
val domain_score : Topo_util.Interner.t -> Topology.t -> float
