(** Weak relationships (Section 6.2.3 and Appendix B).

    Long paths that repeat indirect relationships — P-D-P, P-U-P, P-F-P,
    F-W-F segments — usually connect remotely related or unrelated
    entities.  The paper's proposed remedy is to prune them with domain
    knowledge; this module classifies schema paths and topologies and
    provides the Table 4 inventory. *)

(** The type-triple segments whose repetition signals weakness, as entity
    table names, e.g. [\["Protein"; "DNA"; "Protein"\]]. *)
val weak_segments : string list list

(** [is_weak_path p] is true when [p] has length >= 4 and its type sequence
    contains a weak segment — the paper's criterion for relationships "of
    limited interest to biologists". *)
val is_weak_path : Topo_graph.Schema_graph.path -> bool

(** [is_weak_class_key key] decides on a path-class key
    (see {!Topo_graph.Schema_graph.path_key}). *)
val is_weak_class_key : string -> bool

(** [is_weak_topology t] is true when every path class in the topology's
    decomposition of length >= 4 is weak and at least one class is weak —
    i.e. the complex structure exists only by virtue of weak paths. *)
val is_weak_topology : Topology.t -> bool

(** [contains_weak_class t] is true when any class in the decomposition is
    weak (the "dilution" condition of Figure 17). *)
val contains_weak_class : Topology.t -> bool

(** [table4] is Appendix B's inventory: (type-sequence shorthand,
    explanation). *)
val table4 : (string * string) list

(** {1 Reliability — the graded alternative formulation}

    Appendix B describes weak relationships as transitive chains that get
    "less and less reliable" each time an indirect relationship is
    repeated.  Instead of the binary weak/strong cut of {!is_weak_path},
    this model assigns each relationship set a reliability in (0, 1]
    (direct biochemical links high, homology/pathway context low), scores
    a path by the product over its edges with an extra decay per weak
    segment, and scores a topology by its best derivation's weakest
    class — a chain is only as trustworthy as its weakest link.  The
    third future-work item of Section 8. *)

(** [relationship_reliability rel] in (0, 1]; unknown relationship names
    get a conservative 0.5. *)
val relationship_reliability : string -> float

(** [path_reliability p] = product of edge reliabilities x 0.5 per weak
    segment occurrence. *)
val path_reliability : Topo_graph.Schema_graph.path -> float

(** [class_key_reliability key] evaluates a path-class key (the stored
    form in decompositions). *)
val class_key_reliability : string -> float

(** [topology_reliability t] = max over [t.decompositions] of the minimum
    class reliability in the derivation. *)
val topology_reliability : Topology.t -> float

(** [reliability_filter ~threshold] is a path filter for
    {!Compute.alltops} keeping paths with reliability >= [threshold] —
    the graded generalization of [exclude_weak]. *)
val reliability_filter : threshold:float -> Topo_graph.Schema_graph.path -> bool
