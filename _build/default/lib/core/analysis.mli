(** Topology statistics (Section 4.2.1): the data behind Figure 11's
    frequency distributions and Figure 12's top-10 listing. *)

(** [frequency_series store] is the frequencies of the pair's topologies,
    descending — the y values of one Figure 11 curve (x = rank). *)
val frequency_series : Store.t -> int array

(** [top_frequent store ~n] is the [n] most frequent topologies with their
    frequencies, descending (Figure 12's content for n = 10). *)
val top_frequent : Store.t -> n:int -> (int * int) list

(** [zipf_fit series] fits log(freq) ~ a - s * log(rank) by least squares
    and returns [(s, r2)]: the Zipf exponent and the fit quality.  Ranks
    with zero frequency are dropped.  Used to check the "approximately
    Zipfian" claim quantitatively. *)
val zipf_fit : int array -> float * float

(** [simple_fraction registry store ~n] is the fraction of the top-[n]
    most frequent topologies whose representative is a single path —
    Figure 12's observation that frequent topologies are simple. *)
val simple_fraction : Topology.registry -> Store.t -> n:int -> float
