module Sg = Topo_graph.Schema_graph

type path_result = { a : int; b : int; nodes : int array; class_key : string; length : int }

type result = { paths : path_result list; total : int; truncated : bool }

exception Budget

let isolated_paths (ctx : Context.t) (q : Query.t) ?(max_results = 1_000_000) () =
  let t1 = q.Query.e1.Query.entity and t2 = q.Query.e2.Query.entity in
  let a_ok = Hashtbl.create 256 and b_ok = Hashtbl.create 256 in
  Array.iter (fun id -> Hashtbl.replace a_ok id ()) (Context.satisfying_ids ctx q.Query.e1);
  Array.iter (fun id -> Hashtbl.replace b_ok id ()) (Context.satisfying_ids ctx q.Query.e2);
  let results = Topo_util.Dyn.create () in
  let truncated = ref false in
  let handle key ids =
    let a0 = ids.(0) and b0 = ids.(Array.length ids - 1) in
    (* Orient to the query: the enumeration runs from t1, but for same-type
       queries either end may satisfy either constraint. *)
    let emit a b nodes =
      if Hashtbl.mem a_ok a && Hashtbl.mem b_ok b then begin
        if Topo_util.Dyn.length results >= max_results then begin
          truncated := true;
          raise Budget
        end;
        Topo_util.Dyn.push results
          { a; b; nodes; class_key = key; length = Array.length nodes - 1 }
      end
    in
    emit a0 b0 ids;
    if t1 = t2 && a0 <> b0 then begin
      let n = Array.length ids in
      emit b0 a0 (Array.init n (fun i -> ids.(n - 1 - i)))
    end
  in
  (try
     List.iter
       (fun (p : Sg.path) ->
         let key = Sg.path_key p in
         Topo_graph.Data_graph.iter_instance_paths ctx.Context.dg p ~f:(fun ids -> handle key ids))
       (Sg.paths ctx.Context.schema ~from_:t1 ~to_:t2 ~max_len:ctx.Context.l)
   with Budget -> ());
  let paths =
    Topo_util.Dyn.to_list results
    |> List.sort (fun p1 p2 ->
           let c = Int.compare p1.length p2.length in
           if c <> 0 then c else compare (p1.a, p1.b, p1.nodes) (p2.a, p2.b, p2.nodes))
  in
  { paths; total = List.length paths; truncated = !truncated }

let compare_result_sizes ctx q ~topologies =
  let baseline = isolated_paths ctx q () in
  (baseline.total, topologies)
