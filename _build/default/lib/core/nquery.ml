module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph
module Lgraph = Topo_graph.Lgraph
module Canon = Topo_graph.Canon

type row = { entities : int array; tids : int list }

type result = { rows : row list; topologies : int list; tuples_examined : int; truncated : bool }

(* Representatives of every path class between two concrete entities,
   capped and canonically ordered like Compute's sweep. *)
let pair_class_reps (ctx : Context.t) ~t1 ~t2 ~a ~b =
  let caps = ctx.Context.caps in
  let reps : (string, (Sg.path * int array) list ref) Hashtbl.t = Hashtbl.create 8 in
  let add key path ids =
    (* Orientation-normalize as in Compute.bucket_add. *)
    let n = Array.length ids in
    let rev_ids = Array.init n (fun i -> ids.(n - 1 - i)) in
    let path, ids = if compare rev_ids ids < 0 then (Sg.reverse path, rev_ids) else (path, ids) in
    let cell =
      match Hashtbl.find_opt reps key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add reps key c;
          c
    in
    cell := (path, ids) :: !cell
  in
  List.iter
    (fun (p : Sg.path) ->
      let key = Sg.path_key p in
      Dg.iter_instance_paths_between ctx.Context.dg p ~a ~b ~f:(fun ids -> add key p ids);
      if t1 = t2 then begin
        let rev = Sg.reverse p in
        if rev <> p then
          Dg.iter_instance_paths_between ctx.Context.dg rev ~a ~b ~f:(fun ids -> add key rev ids)
      end)
    (Sg.paths ctx.Context.schema ~from_:t1 ~to_:t2 ~max_len:ctx.Context.l);
  Hashtbl.fold
    (fun key cell acc ->
      let arr = Array.of_list !cell in
      Array.sort (fun (_, a) (_, b) -> compare a b) arr;
      let kept =
        if Array.length arr > caps.Compute.max_reps_per_class then
          Array.sub arr 0 caps.Compute.max_reps_per_class
        else arr
      in
      (key, kept) :: acc)
    reps []
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)

let connected_spanning g entities =
  Array.for_all (fun id -> Lgraph.mem_node g id) entities
  &&
  (* BFS from the first endpoint must reach every other endpoint. *)
  let seen = Hashtbl.create 32 in
  let rec dfs id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter (fun (_, other) -> dfs other) (Lgraph.neighbors g id)
    end
  in
  (if Array.length entities > 0 then dfs entities.(0));
  Array.for_all (fun id -> Hashtbl.mem seen id) entities

let tuple_topologies (ctx : Context.t) ~types ~entities =
  let n = Array.length entities in
  if Array.length types <> n then invalid_arg "Nquery.tuple_topologies: arity mismatch";
  (* All pairwise class representatives, remembering each class's key so
     new topologies register with a meaningful decomposition. *)
  let class_lists = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let reps =
        pair_class_reps ctx ~t1:types.(i) ~t2:types.(j) ~a:entities.(i) ~b:entities.(j)
      in
      class_lists := !class_lists @ reps
    done
  done;
  let class_keys = List.sort_uniq compare (List.map fst !class_lists) in
  let classes = Array.of_list (List.map snd !class_lists) in
  if Array.length classes = 0 then []
  else begin
    (* Cartesian product of one representative per class, capped. *)
    let counts = Array.map Array.length classes in
    let indices = Array.make (Array.length classes) 0 in
    let budget = ref ctx.Context.caps.Compute.max_combos_per_pair in
    let tids = ref [] in
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      let chosen = Array.to_list (Array.mapi (fun c idx -> classes.(c).(idx)) indices) in
      let g = Compute.union_of_representatives ctx.Context.dg chosen in
      if connected_spanning g entities then begin
        let t = Topology.register ctx.Context.registry g ~decomposition:class_keys in
        if not (List.mem t.Topology.tid !tids) then tids := t.Topology.tid :: !tids
      end;
      let rec bump c =
        if c < 0 then continue := false
        else begin
          indices.(c) <- indices.(c) + 1;
          if indices.(c) >= counts.(c) then begin
            indices.(c) <- 0;
            bump (c - 1)
          end
        end
      in
      bump (Array.length classes - 1)
    done;
    List.sort compare !tids
  end

let run (ctx : Context.t) ~endpoints ?(max_tuples = 10_000) () =
  let n = List.length endpoints in
  if n < 2 then invalid_arg "Nquery.run: need at least two endpoints";
  let eps = Array.of_list endpoints in
  let types = Array.map (fun (e : Query.endpoint) -> e.Query.entity) eps in
  (* Grow tuples endpoint by endpoint: the candidate set for endpoint i is
     entities reachable within l from any already-chosen endpoint (of the
     right type, satisfying the constraint), which keeps enumeration close
     to the data. *)
  let reachable_of_type ~from_type ~from_id ~target_type =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (p : Sg.path) ->
        Dg.iter_instance_paths_from ctx.Context.dg p ~source:from_id ~f:(fun ids ->
            Hashtbl.replace seen ids.(Array.length ids - 1) ()))
      (Sg.paths ctx.Context.schema ~from_:from_type ~to_:target_type ~max_len:ctx.Context.l);
    seen
  in
  let tuples_examined = ref 0 in
  let truncated = ref false in
  let rows = ref [] in
  let first_candidates = Context.satisfying_ids ctx eps.(0) in
  (try
     Array.iter
       (fun a0 ->
         (* Candidates for each later endpoint: reachable from endpoint 0
            (connectivity through other endpoints is re-checked on the
            union graph, but anchoring on endpoint 0 keeps the search
            local). *)
         let rec extend chosen i =
           if i = n then begin
             incr tuples_examined;
             if !tuples_examined > max_tuples then begin
               truncated := true;
               raise Exit
             end;
             let entities = Array.of_list (List.rev chosen) in
             let tids = tuple_topologies ctx ~types ~entities in
             if tids <> [] then rows := { entities; tids } :: !rows
           end
           else begin
             let candidates = reachable_of_type ~from_type:types.(0) ~from_id:a0 ~target_type:types.(i) in
             Hashtbl.iter
               (fun cand () ->
                 if (not (List.mem cand chosen)) && Context.satisfies ctx eps.(i) cand then
                   extend (cand :: chosen) (i + 1))
               candidates
           end
         in
         extend [ a0 ] 1)
       first_candidates
   with Exit -> ());
  let rows = List.rev !rows in
  let topologies =
    List.sort_uniq compare (List.concat_map (fun r -> r.tids) rows)
  in
  { rows; topologies; tuples_examined = !tuples_examined; truncated = !truncated }
