(** Shared query-engine context: the catalog plus the derived structures
    every method needs (instance graph, schema graph, topology registry,
    per-pair stores, and the class-key -> schema-path dictionary used by
    pruned-topology checks). *)

type t = {
  catalog : Topo_sql.Catalog.t;
  interner : Topo_util.Interner.t;
  dg : Topo_graph.Data_graph.t;
  schema : Topo_graph.Schema_graph.t;
  registry : Topology.registry;
  l : int;
  caps : Compute.caps;
  class_paths : (string, Topo_graph.Schema_graph.path) Hashtbl.t;
  stores : (string * string, Store.t) Hashtbl.t;
}

(** [store_for t ~t1 ~t2] finds the store for an entity-set pair in either
    orientation; returns the store and [true] when the query's (t1, t2)
    matches the store's orientation (else endpoints must be swapped).
    @raise Not_found when the pair was never precomputed. *)
val store_for : t -> t1:string -> t2:string -> Store.t * bool

(** [register_class_paths t ~t1 ~t2] records every schema path between the
    types under its class key (done once per built pair). *)
val register_class_paths : t -> t1:string -> t2:string -> unit

(** [class_path t key] resolves a class key back to a schema path.
    @raise Not_found for unknown keys. *)
val class_path : t -> string -> Topo_graph.Schema_graph.path

(** [satisfying_ids t endpoint] scans the endpoint's entity table and
    returns the ids satisfying its constraint, ascending. *)
val satisfying_ids : t -> Query.endpoint -> int array

(** [satisfies t endpoint id] checks one entity by primary key (false for
    absent ids). *)
val satisfies : t -> Query.endpoint -> int -> bool

(** [class_exists_between t key ~a ~b] is true when some instance path of
    the class connects [a] and [b] (handles same-type reversals). *)
val class_exists_between : t -> string -> a:int -> b:int -> bool
