module Lgraph = Topo_graph.Lgraph

type scheme = Freq | Rare | Domain

let all = [ Freq; Domain; Rare ]

let name = function Freq -> "Freq" | Rare -> "Rare" | Domain -> "Domain"

let of_name = function
  | "Freq" | "freq" -> Freq
  | "Rare" | "rare" -> Rare
  | "Domain" | "domain" -> Domain
  | s -> invalid_arg ("Ranking.of_name: " ^ s)

let score_column = function
  | Freq -> "score_freq"
  | Rare -> "score_rare"
  | Domain -> "score_domain"

(* The Figure 16 pattern: two distinct proteins encoded by the same DNA
   that also share an interaction — the one structure the paper's expert
   singles out as biologically significant. *)
let has_coregulated_interacting_pair interner g =
  let name l = Topo_util.Interner.name interner l in
  let proteins = List.filter (fun id -> name (Lgraph.node_label g id) = "n:Protein") (Lgraph.nodes g) in
  let shares p1 p2 ~edge ~node_ty =
    List.exists
      (fun (el, other) ->
        name el = edge
        && name (Lgraph.node_label g other) = node_ty
        && List.exists (fun (el2, o2) -> name el2 = edge && o2 = other) (Lgraph.neighbors g p2))
      (Lgraph.neighbors g p1)
  in
  List.exists
    (fun p1 ->
      List.exists
        (fun p2 ->
          p1 < p2
          && shares p1 p2 ~edge:"e:encodes" ~node_ty:"n:DNA"
          && shares p1 p2 ~edge:"e:interacts_p" ~node_ty:"n:Interaction")
        proteins)
    proteins

let domain_score interner (t : Topology.t) =
  let g = t.Topology.graph in
  let label_name l = Topo_util.Interner.name interner l in
  let edge_labels = List.map (fun e -> label_name e.Lgraph.label) (Lgraph.edges g) in
  let count p = List.length (List.filter p edge_labels) in
  let interactions = count (fun l -> l = "e:interacts_p" || l = "e:interacts_d") in
  let encodes = count (fun l -> l = "e:encodes") in
  let n_classes = List.length t.Topology.decomposition in
  let has_cycle = t.Topology.n_edges >= t.Topology.n_nodes in
  let weak_classes = List.filter Weak.is_weak_class_key t.Topology.decomposition in
  let base = 1.0 in
  let s =
    base
    +. (3.0 *. float_of_int interactions)
    +. (2.0 *. float_of_int (max 0 (n_classes - 1)))
    +. (if has_cycle then 4.0 else 0.0)
    +. (if interactions > 0 && encodes > 0 then 1.5 else 0.0)
    +. (if has_coregulated_interacting_pair interner g then 10.0 else 0.0)
    -. (5.0 *. float_of_int (List.length weak_classes))
  in
  (* Keep scores strictly positive; weak-only shapes bottom out near 0. *)
  Float.max 0.01 s

let score scheme interner t ~freq =
  match scheme with
  | Freq -> float_of_int (max 1 freq)
  | Rare -> 1.0 /. float_of_int (max 1 freq)
  | Domain -> domain_score interner t
