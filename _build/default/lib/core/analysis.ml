let frequency_series (store : Store.t) =
  let freqs = Hashtbl.fold (fun _ f acc -> f :: acc) store.Store.frequencies [] in
  let arr = Array.of_list freqs in
  Array.sort (fun a b -> Int.compare b a) arr;
  arr

let top_frequent (store : Store.t) ~n =
  Hashtbl.fold (fun tid f acc -> (tid, f) :: acc) store.Store.frequencies []
  |> List.sort (fun (ta, fa) (tb, fb) ->
         let c = Int.compare fb fa in
         if c <> 0 then c else Int.compare ta tb)
  |> List.filteri (fun i _ -> i < n)

let zipf_fit series =
  let points =
    Array.to_list series
    |> List.mapi (fun i f -> (i + 1, f))
    |> List.filter (fun (_, f) -> f > 0)
    |> List.map (fun (rank, f) -> (log (float_of_int rank), log (float_of_int f)))
  in
  let n = float_of_int (List.length points) in
  if List.length points < 2 then (0.0, 0.0)
  else begin
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then (0.0, 0.0)
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      let mean_y = sy /. n in
      let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 points in
      let ss_res =
        List.fold_left (fun acc (x, y) -> acc +. ((y -. (intercept +. (slope *. x))) ** 2.0)) 0.0 points
      in
      let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      (-.slope, r2)
    end
  end

let simple_fraction registry store ~n =
  let top = top_frequent store ~n in
  if top = [] then 0.0
  else begin
    let simple =
      List.length (List.filter (fun (tid, _) -> Topology.is_single_path (Topology.find registry tid)) top)
    in
    float_of_int simple /. float_of_int (List.length top)
  end
