(** Comparing topologies across queries — the paper's second future-work
    item ("primitives for comparing topologies across multiple queries",
    Section 8).

    The primitives operate on the TID sets of two query results plus the
    shared registry:

    - set algebra ({!diff}): topologies common to both results and
      exclusive to each — "which relationship shapes appear for human TFs
      but not for yeast TFs?";
    - structural containment ({!subsumes}, {!refinements}): topology A
      subsumes B when B's shape embeds into A's (subgraph isomorphism), so
      A is a strictly richer relationship; a result list can be collapsed
      to its maximal shapes;
    - {!similarity}: a [0, 1] score from the shared-edge-label profile,
      for fuzzy matching between result lists. *)

type diff = { common : int list; only_left : int list; only_right : int list }

(** [diff ~left ~right] partitions the two TID sets (inputs may be
    unsorted; outputs ascending). *)
val diff : left:int list -> right:int list -> diff

(** [subsumes registry ~outer ~inner] is true when [inner]'s representative
    graph is subgraph-isomorphic to [outer]'s (Section 2.1's relation).
    Reflexive. *)
val subsumes : Topology.registry -> outer:int -> inner:int -> bool

(** [maximal registry tids] keeps only the TIDs not strictly subsumed by
    another member of the list — the "big picture" shapes. *)
val maximal : Topology.registry -> int list -> int list

(** [refinements registry tids] maps every TID to the other members it
    strictly subsumes, ascending. *)
val refinements : Topology.registry -> int list -> (int * int list) list

(** [similarity registry a b] is the Jaccard similarity of the two
    topologies' (edge label, multiplicity) profiles — 1.0 for isomorphic
    shapes, 0.0 for disjoint label sets. *)
val similarity : Topology.registry -> int -> int -> float
