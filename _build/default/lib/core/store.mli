(** Materialized topology tables and the Topology Pruning module
    (Sections 3.2 and 4.2).

    For one entity-set pair the store materializes, as real tables in the
    catalog (so both the Full-Top and Fast-Top query engines and the SQL
    front end can address them):

    - [AllTops_<T1>_<T2>(E1, E2, TID)] — every pair with every topology
      relating it,
    - [TopInfo_<T1>_<T2>(TID, freq, npaths, simple, score_freq,
      score_rare, score_domain, detail)] — per-topology metadata and the
      three ranking scores,
    - [LeftTops_<T1>_<T2>] — AllTops minus rows of pruned topologies,
    - [ExcpTops_<T1>_<T2>(E1, E2, TID)] — the exception table: pairs that
      satisfy a pruned topology's path condition but are actually related
      by a more complex topology (the paper's (78, 215) vs T2 example).

    Pruning follows Section 4.2.2: every topology with frequency strictly
    greater than [pruning_threshold] is pruned. *)

type t = {
  t1 : string;
  t2 : string;
  alltops : string;  (** table name *)
  lefttops : string;
  excptops : string;
  topinfo : string;
  pruned : Topology.t list;  (** pruned topologies, by descending frequency *)
  frequencies : (int, int) Hashtbl.t;  (** tid -> freq for this pair *)
  rows : Compute.pair_row list;  (** the in-memory sweep output (kept for analysis) *)
}

(** [build catalog interner registry ~rows ~t1 ~t2 ~pruning_threshold]
    materializes all four tables (replacing previous versions for the same
    pair) and returns the store handle. *)
val build :
  Topo_sql.Catalog.t ->
  Topo_util.Interner.t ->
  Topology.registry ->
  rows:Compute.pair_row list ->
  t1:string ->
  t2:string ->
  pruning_threshold:int ->
  t

(** [frequency store tid] (0 when the topology never occurs for this
    pair). *)
val frequency : t -> int -> int

(** [score_of store catalog scheme tid] reads the scheme's score from the
    TopInfo table.  @raise Not_found for unknown TIDs. *)
val score_of : t -> Topo_sql.Catalog.t -> Ranking.scheme -> int -> float

(** [max_pruned_score store catalog scheme] is the highest score among
    pruned topologies (-infinity when nothing is pruned) — the early-stop
    bound of the Fast-Top-k method (Section 5.1). *)
val max_pruned_score : t -> Topo_sql.Catalog.t -> Ranking.scheme -> float

(** [is_excepted store catalog ~a ~b ~tid] probes the exception table. *)
val is_excepted : t -> Topo_sql.Catalog.t -> a:int -> b:int -> tid:int -> bool

(** [space store catalog] is [(alltops_bytes, lefttops_bytes,
    excptops_bytes)] — the Table 1 accounting. *)
val space : t -> Topo_sql.Catalog.t -> int * int * int

(** [table_names ~t1 ~t2] is [(alltops, lefttops, excptops, topinfo)]. *)
val table_names : t1:string -> t2:string -> string * string * string * string
