(** The keyword-search baseline the paper argues against (Sections 1-2):
    BANKS / DBXplorer / DISCOVER-style evaluation that returns each
    connecting path as an independent, "isolated" result (Figure 4),
    instead of assembling topologies (Figure 5).

    Given a 2-query, the baseline's result set is
    U_{a in A, b in B} PS(a, b, l) — every simple instance path between
    qualifying entities, returned separately and ranked by length (shorter
    = better, the usual proximity-search heuristic).  The paper's central
    usability claim is quantitative: this set is overwhelming ("about
    250,000 results" for the example query) while the topology result is a
    handful of shapes; [compare_result_sizes] measures exactly that. *)

type path_result = {
  a : int;
  b : int;
  nodes : int array;  (** the path's entities, endpoint to endpoint *)
  class_key : string;  (** its equivalence class (Definition 1) *)
  length : int;
}

type result = {
  paths : path_result list;  (** ranked: ascending length, then nodes *)
  total : int;
  truncated : bool;  (** [max_results] was hit *)
}

(** [isolated_paths ctx query ?max_results ()] runs the baseline
    (default cap 1_000_000 results). *)
val isolated_paths : Context.t -> Query.t -> ?max_results:int -> unit -> result

(** [compare_result_sizes ctx engine_store query ~topologies] is the
    paper's Section 1 comparison for one query: (isolated results,
    topology results) — e.g. 250,000 vs 5. *)
val compare_result_sizes : Context.t -> Query.t -> topologies:int -> int * int
