open Topo_sql

type endpoint = { entity : string; pred : Expr.t option; label : string }

type t = { e1 : endpoint; e2 : endpoint }

let endpoint _catalog entity = { entity; pred = None; label = "true" }

let col_pos catalog entity col = Schema.index_of (Table.schema (Catalog.find catalog entity)) col

let keyword catalog entity ~col ~kw =
  {
    entity;
    pred = Some (Expr.Contains (Expr.Col (col_pos catalog entity col), kw));
    label = Printf.sprintf "%s.ct('%s')" col kw;
  }

let equals catalog entity ~col ~value =
  {
    entity;
    pred = Some (Expr.Cmp (Expr.Eq, Expr.Col (col_pos catalog entity col), Expr.Const value));
    label = Printf.sprintf "%s=%s" col (Value.to_string value);
  }

let conj a b =
  if a.entity <> b.entity then invalid_arg "Query.conj: different entities";
  let pred =
    match (a.pred, b.pred) with
    | None, p | p, None -> p
    | Some pa, Some pb -> Some (Expr.conj pa pb)
  in
  let label =
    match (a.label, b.label) with
    | "true", l | l, "true" -> l
    | la, lb -> la ^ " and " ^ lb
  in
  { entity = a.entity; pred; label }

let make e1 e2 = { e1; e2 }

let q1 catalog =
  make
    (keyword catalog "Protein" ~col:"desc" ~kw:"enzyme")
    (equals catalog "DNA" ~col:"type" ~value:(Value.Str "mRNA"))

let to_string q =
  Printf.sprintf "{(%s, %s), (%s, %s)}" q.e1.entity q.e1.label q.e2.entity q.e2.label
