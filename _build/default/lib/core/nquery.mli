(** Multi-endpoint topology queries — the paper's first future-work item
    ("extensions to support multiple end-points in a topology",
    Section 8).

    An n-query names n entity sets with constraints; a satisfying n-tuple
    (e_1 ... e_n) is summarized by the topology of the union, over every
    endpoint pair (i, j), of one instance path per equivalence class of
    l-PathEC(e_i, e_j) — the direct generalization of Definition 2.  A
    tuple only qualifies when the union connects all n endpoints (possibly
    through each other: two endpoints with no direct path may both attach
    to a third).

    Enumeration starts from the first endpoint's satisfying entities and
    grows tuples through schema-path reachability, so unrelated entity
    combinations are never materialized.  Caps bound the usual
    weak-relationship blowups. *)

type row = {
  entities : int array;  (** the n-tuple, in endpoint order *)
  tids : int list;  (** its l-topologies, ascending *)
}

type result = {
  rows : row list;
  topologies : int list;  (** distinct TIDs over all rows, ascending *)
  tuples_examined : int;
  truncated : bool;  (** true when [max_tuples] stopped enumeration *)
}

(** [run ctx ~endpoints ?max_tuples ()] evaluates an n-query over a built
    context (the endpoints' pairwise stores need not exist; everything is
    computed from the instance graph).  [max_tuples] (default 10_000)
    bounds the satisfying-tuple enumeration.
    @raise Invalid_argument when fewer than 2 endpoints are given. *)
val run : Context.t -> endpoints:Query.endpoint list -> ?max_tuples:int -> unit -> result

(** [tuple_topologies ctx ~types ~entities] computes the topology set of
    one explicit tuple (exposed for tests): [types] are the entity-set
    names, [entities] the ids. *)
val tuple_topologies : Context.t -> types:string array -> entities:int array -> int list
