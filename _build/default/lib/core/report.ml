type options = { max_instances : int; show_witness : bool }

let default_options = { max_instances = 3; show_witness = true }

let entity_line catalog id =
  match Biozon.Bschema.entity_of_id catalog id with
  | Some (table, tuple) ->
      Printf.sprintf "%s %d (%s)" table id (Topo_sql.Value.to_string tuple.(1))
  | None -> Printf.sprintf "entity %d" id

let render (engine : Engine.t) (q : Query.t) (result : Engine.result) ?(options = default_options) () =
  let buf = Buffer.create 1024 in
  let ctx = engine.Engine.ctx in
  let catalog = ctx.Context.catalog in
  let aligned = Methods.align ctx q in
  let store = aligned.Methods.store in
  Buffer.add_string buf (Printf.sprintf "query: %s\n" (Query.to_string q));
  Buffer.add_string buf
    (Printf.sprintf "method: %s  (%d topology result(s), %.1fms)\n"
       (Engine.method_name result.Engine.method_)
       (List.length result.Engine.ranked)
       (result.Engine.elapsed_s *. 1000.0));
  List.iteri
    (fun i (tid, score) ->
      let score_str = match score with Some s -> Printf.sprintf ", score %.3g" s | None -> "" in
      Buffer.add_string buf
        (Printf.sprintf "\n%d. TID %d (freq %d%s)\n   %s\n" (i + 1) tid (Store.frequency store tid)
           score_str (Engine.describe engine tid));
      let pairs =
        Instances.qualifying_pairs ctx store ~e1:aligned.Methods.ea ~e2:aligned.Methods.eb ~tid
      in
      let shown = List.filteri (fun j _ -> j < options.max_instances) pairs in
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf "   - %s  <->  %s\n" (entity_line catalog a) (entity_line catalog b));
          if options.show_witness then
            match Instances.witness ctx ~tid ~a ~b with
            | Some g ->
                let name l = Topo_util.Interner.name ctx.Context.interner l in
                Buffer.add_string buf
                  (Printf.sprintf "     witness: %s\n"
                     (Topo_graph.Lgraph.to_string ~node_name:name ~edge_name:name g))
            | None -> ())
        shown;
      let hidden = List.length pairs - List.length shown in
      if hidden > 0 then Buffer.add_string buf (Printf.sprintf "   ... and %d more instance pair(s)\n" hidden))
    result.Engine.ranked;
  Buffer.contents buf

let print engine q result ?options () = print_string (render engine q result ?options ())
