(** Result presentation: the Figure 5 experience.

    The paper's interface shows the schema-level topology list first, "followed
    by instance level tuples of concrete examples (biological systems) of
    each topology" (Section 2.2).  This module renders a query result that
    way as plain text: each topology with its score/frequency, structure,
    and a bounded page of instance pairs with entity descriptions and
    witness subgraphs. *)

type options = {
  max_instances : int;  (** instance pairs listed per topology (default 3) *)
  show_witness : bool;  (** print the witness subgraph per instance (default true) *)
}

val default_options : options

(** [render engine query result ?options ()] renders an {!Engine.result}
    produced for [query].  Topologies keep the result's order (rank order
    for top-k methods). *)
val render : Engine.t -> Query.t -> Engine.result -> ?options:options -> unit -> string

(** [print engine query result ?options ()] renders to stdout. *)
val print : Engine.t -> Query.t -> Engine.result -> ?options:options -> unit -> unit
