lib/core/store.mli: Compute Hashtbl Ranking Topo_sql Topo_util Topology
