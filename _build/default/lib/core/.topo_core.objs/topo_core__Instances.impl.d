lib/core/instances.ml: Array Catalog Compute Context Index List Option Store Table Topo_graph Topo_sql Topology Value
