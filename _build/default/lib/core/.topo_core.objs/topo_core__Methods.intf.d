lib/core/methods.mli: Context Query Ranking Store Topo_sql Topology
