lib/core/weak.mli: Topo_graph Topology
