lib/core/context.ml: Array Catalog Compute Expr Hashtbl List Query Store Table Topo_graph Topo_sql Topo_util Topology Value
