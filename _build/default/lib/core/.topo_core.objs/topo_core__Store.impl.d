lib/core/store.ml: Array Catalog Compute Float Hashtbl Index Int Lazy List Option Printf Ranking Schema Table Topo_sql Topology Value
