lib/core/compare.mli: Topology
