lib/core/nquery.ml: Array Compute Context Hashtbl List Query Topo_graph Topology
