lib/core/query.mli: Topo_sql
