lib/core/context.mli: Compute Hashtbl Query Store Topo_graph Topo_sql Topo_util Topology
