lib/core/report.mli: Engine Query
