lib/core/compare.ml: Int List Option Set Topo_graph Topology
