lib/core/nquery.mli: Context Query
