lib/core/query.ml: Catalog Expr Printf Schema Table Topo_sql Value
