lib/core/report.ml: Array Biozon Buffer Context Engine Instances List Methods Printf Query Store Topo_graph Topo_sql Topo_util
