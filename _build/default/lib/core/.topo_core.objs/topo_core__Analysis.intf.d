lib/core/analysis.mli: Store Topology
