lib/core/methods.ml: Array Catalog Compute Context Float Hashtbl Int Iterator List Optimizer Option Physical Query Ranking Schema Store Table Topo_graph Topo_sql Topology Value
