lib/core/weak.ml: Array Float List String Topo_graph Topology
