lib/core/baseline.mli: Context Query
