lib/core/compute.ml: Array Hashtbl List Topo_graph Topo_util Topology
