lib/core/compute.mli: Topo_graph Topology
