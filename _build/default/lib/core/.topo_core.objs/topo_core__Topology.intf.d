lib/core/topology.mli: Topo_graph Topo_util
