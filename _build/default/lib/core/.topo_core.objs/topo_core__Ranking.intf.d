lib/core/ranking.mli: Topo_util Topology
