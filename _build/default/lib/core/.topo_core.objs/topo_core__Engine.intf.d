lib/core/engine.mli: Compute Context Query Ranking Store Topo_sql Topology
