lib/core/instances.mli: Context Query Store Topo_graph
