lib/core/topology.ml: Buffer Hashtbl List Printf String Topo_graph Topo_util
