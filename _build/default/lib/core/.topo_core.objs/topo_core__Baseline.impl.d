lib/core/baseline.ml: Array Context Hashtbl Int List Query Topo_graph Topo_util
