lib/core/analysis.ml: Array Float Hashtbl Int List Store Topology
