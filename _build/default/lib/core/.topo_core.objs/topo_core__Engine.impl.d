lib/core/engine.ml: Biozon Compute Context Hashtbl List Methods Ranking Store Topo_sql Topo_util Topology Unix Weak
