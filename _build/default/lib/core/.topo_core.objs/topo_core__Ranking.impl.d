lib/core/ranking.ml: Float List Topo_graph Topo_util Topology Weak
