(** Topology queries (Section 2.2).

    A 2-query names two entity sets with a constraint on each:
    [{ (Protein, desc.ct('enzyme')), (DNA, type='mRNA') }].  Constraints
    are resolved predicates over the entity table's base schema; helpers
    build the two forms the paper uses (keyword containment and attribute
    equality) by column name. *)

type endpoint = {
  entity : string;  (** entity table name *)
  pred : Topo_sql.Expr.t option;  (** resolved against the entity's base schema *)
  label : string;  (** human-readable constraint, for display *)
}

type t = { e1 : endpoint; e2 : endpoint }

(** [endpoint catalog entity] is the unconstrained endpoint. *)
val endpoint : Topo_sql.Catalog.t -> string -> endpoint

(** [keyword catalog entity ~col ~kw] is [entity.col.ct('kw')].
    @raise Not_found for an unknown column. *)
val keyword : Topo_sql.Catalog.t -> string -> col:string -> kw:string -> endpoint

(** [equals catalog entity ~col ~value] is [entity.col = value]. *)
val equals : Topo_sql.Catalog.t -> string -> col:string -> value:Topo_sql.Value.t -> endpoint

(** [conj a b] conjoins two endpoint constraints on the same entity.
    @raise Invalid_argument when entities differ. *)
val conj : endpoint -> endpoint -> endpoint

(** [make e1 e2]. *)
val make : endpoint -> endpoint -> t

(** [q1 catalog] is the running example: Q = {(Protein, desc.ct('enzyme')),
    (DNA, type='mRNA')}. *)
val q1 : Topo_sql.Catalog.t -> t

(** [to_string q]. *)
val to_string : t -> string
