(** Instance retrieval (Section 6.2.4): given a topology in a query
    result, fetch the concrete entity pairs that adhere to it and, per
    pair, the witnessing instance subgraph. *)

(** [pairs_of_topology ctx store ~tid] probes the AllTops table's TID index
    for every (E1, E2) pair related by the topology. *)
val pairs_of_topology : Context.t -> Store.t -> tid:int -> (int * int) list

(** [qualifying_pairs ctx store query ~tid] restricts
    {!pairs_of_topology} to pairs satisfying the query's constraints
    (endpoints aligned to the store's orientation by the caller). *)
val qualifying_pairs :
  Context.t -> Store.t -> e1:Query.endpoint -> e2:Query.endpoint -> tid:int -> (int * int) list

(** [witness ctx ~tid ~a ~b] re-derives one instance subgraph realizing
    the topology for the pair: a union of one instance path per class of
    the topology's decomposition that canonicalizes to [tid].  Returns
    [None] when (a, b) is not actually related by the topology. *)
val witness : Context.t -> tid:int -> a:int -> b:int -> Topo_graph.Lgraph.t option

(** [witness_paths ctx ~tid ~a ~b] is the witness decomposed into its
    paths, each as (class key, node ids). *)
val witness_paths : Context.t -> tid:int -> a:int -> b:int -> (string * int array) list option
