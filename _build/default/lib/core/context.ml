open Topo_sql
module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph

type t = {
  catalog : Catalog.t;
  interner : Topo_util.Interner.t;
  dg : Dg.t;
  schema : Sg.t;
  registry : Topology.registry;
  l : int;
  caps : Compute.caps;
  class_paths : (string, Sg.path) Hashtbl.t;
  stores : (string * string, Store.t) Hashtbl.t;
}

let store_for t ~t1 ~t2 =
  match Hashtbl.find_opt t.stores (t1, t2) with
  | Some s -> (s, true)
  | None -> (
      match Hashtbl.find_opt t.stores (t2, t1) with
      | Some s -> (s, false)
      | None -> raise Not_found)

let register_class_paths t ~t1 ~t2 =
  List.iter
    (fun p -> Hashtbl.replace t.class_paths (Sg.path_key p) p)
    (Sg.paths t.schema ~from_:t1 ~to_:t2 ~max_len:t.l)

let class_path t key =
  match Hashtbl.find_opt t.class_paths key with
  | Some p -> p
  | None -> raise Not_found

let satisfying_ids t (endpoint : Query.endpoint) =
  let table = Catalog.find t.catalog endpoint.Query.entity in
  let out = Topo_util.Dyn.create () in
  Table.iter
    (fun _ tuple ->
      let ok = match endpoint.Query.pred with None -> true | Some p -> Expr.truthy p tuple in
      if ok then Topo_util.Dyn.push out (Value.as_int tuple.(0)))
    table;
  let arr = Topo_util.Dyn.to_array out in
  Array.sort compare arr;
  arr

let satisfies t (endpoint : Query.endpoint) id =
  let table = Catalog.find t.catalog endpoint.Query.entity in
  match Table.find_by_pk table (Value.Int id) with
  | None -> false
  | Some tuple -> ( match endpoint.Query.pred with None -> true | Some p -> Expr.truthy p tuple)

exception Found

let class_exists_between t key ~a ~b =
  let p = class_path t key in
  let probe path =
    try
      Dg.iter_instance_paths_between t.dg path ~a ~b ~f:(fun _ -> raise Found);
      false
    with Found -> true
  in
  probe p
  ||
  (* Same endpoint types: the class may read reversed from [a]. *)
  let rev = Sg.reverse p in
  p.Sg.types.(0) = p.Sg.types.(Array.length p.Sg.types - 1) && rev <> p && probe rev
