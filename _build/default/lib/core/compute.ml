module Dyn = Topo_util.Dyn
module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph
module Lgraph = Topo_graph.Lgraph

type caps = { max_reps_per_class : int; max_combos_per_pair : int; max_paths_per_class : int }

let default_caps = { max_reps_per_class = 8; max_combos_per_pair = 256; max_paths_per_class = 2_000_000 }

type stats = {
  schema_paths : int;
  instance_paths : int;
  pairs : int;
  unions : int;
  capped_pairs : int;
}

type pair_row = { a : int; b : int; tids : int list; class_keys : string list }

(* Per-pair accumulation: class key -> representatives (schema path +
   concrete node ids). *)
type bucket = {
  mutable reps : (string * (Sg.path * int array) Dyn.t) list;
  mutable capped : bool;
}

(* Representatives are collected unbounded and truncated later against a
   deterministic (sorted) order, so every code path — the offline sweep,
   anchored recomputation, witness retrieval — selects the same sample and
   the methods stay mutually consistent even on capped pairs. *)
let bucket_add _caps bucket key path ids =
  (* Normalize the representative's orientation (same-type pairs can
     discover one instance from either end) so sorting is stable across
     enumeration directions. *)
  let path, ids =
    let n = Array.length ids in
    let rev_ids = Array.init n (fun i -> ids.(n - 1 - i)) in
    if compare rev_ids ids < 0 then (Sg.reverse path, rev_ids) else (path, ids)
  in
  let dyn =
    match List.assoc_opt key bucket.reps with
    | Some d -> d
    | None ->
        let d = Dyn.create () in
        bucket.reps <- (key, d) :: bucket.reps;
        d
  in
  Dyn.push dyn (path, ids)

let compare_reps ((_, ids_a) : Sg.path * int array) ((_, ids_b) : Sg.path * int array) =
  compare ids_a ids_b

let canonical_reps caps bucket =
  List.map
    (fun (key, d) ->
      let arr = Dyn.to_array d in
      Array.sort compare_reps arr;
      let kept =
        if Array.length arr > caps.max_reps_per_class then begin
          bucket.capped <- true;
          Array.sub arr 0 caps.max_reps_per_class
        end
        else arr
      in
      (key, kept))
    bucket.reps

let union_of_representatives dg reps =
  let g = Lgraph.empty () in
  List.iter
    (fun ((p : Sg.path), ids) ->
      Array.iter
        (fun id -> if not (Lgraph.mem_node g id) then Lgraph.add_node g ~id ~label:(Dg.node_type_label dg id))
        ids;
      Array.iteri
        (fun i rel ->
          let label = Topo_util.Interner.intern (Dg.interner dg) ("e:" ^ rel) in
          Lgraph.add_edge g ~u:ids.(i) ~v:ids.(i + 1) ~label)
        p.Sg.rels)
    reps;
  g

(* Definition 2: union one representative per class, over the (capped)
   cartesian product of representatives; canonicalize and dedup. *)
let topologies_of_bucket dg registry caps bucket ~unions_counter =
  let classes =
    List.sort (fun ((ka : string), _) (kb, _) -> compare ka kb) (canonical_reps caps bucket)
  in
  let class_keys = List.map fst classes in
  let rep_arrays = List.map snd classes in
  let n_classes = List.length rep_arrays in
  let counts = Array.of_list (List.map Array.length rep_arrays) in
  let reps = Array.of_list rep_arrays in
  let indices = Array.make n_classes 0 in
  let tids = ref [] in
  let combos = ref 0 in
  let continue = ref true in
  while !continue do
    incr combos;
    incr unions_counter;
    let chosen = List.init n_classes (fun c -> reps.(c).(indices.(c))) in
    let g = union_of_representatives dg chosen in
    let t = Topology.register registry g ~decomposition:class_keys in
    if not (List.mem t.Topology.tid !tids) then tids := t.Topology.tid :: !tids;
    (* Odometer increment. *)
    let rec bump c =
      if c < 0 then continue := false
      else begin
        indices.(c) <- indices.(c) + 1;
        if indices.(c) >= counts.(c) then begin
          indices.(c) <- 0;
          bump (c - 1)
        end
      end
    in
    bump (n_classes - 1);
    if !combos >= caps.max_combos_per_pair && !continue then begin
      bucket.capped <- true;
      continue := false
    end
  done;
  (List.sort compare !tids, class_keys)

let schema_paths_between schema ~t1 ~t2 ~l = Sg.paths schema ~from_:t1 ~to_:t2 ~max_len:l

exception Path_budget

let alltops dg schema registry ~t1 ~t2 ~l ~caps ?(path_filter = fun _ -> true) () =
  let paths = List.filter path_filter (schema_paths_between schema ~t1 ~t2 ~l) in
  let buckets : (int * int, bucket) Hashtbl.t = Hashtbl.create 4096 in
  let same_type = t1 = t2 in
  let instance_paths = ref 0 in
  List.iter
    (fun (p : Sg.path) ->
      let key = Sg.path_key p in
      let seen_for_path = ref 0 in
      let handle ids =
        incr instance_paths;
        incr seen_for_path;
        if !seen_for_path > caps.max_paths_per_class then raise Path_budget;
        let a0 = ids.(0) and b0 = ids.(Array.length ids - 1) in
        let pk = if same_type && a0 > b0 then (b0, a0) else (a0, b0) in
        let bucket =
          match Hashtbl.find_opt buckets pk with
          | Some b -> b
          | None ->
              let b = { reps = []; capped = false } in
              Hashtbl.add buckets pk b;
              b
        in
        bucket_add caps bucket key p ids
      in
      try Dg.iter_instance_paths dg p ~f:handle with Path_budget -> ())
    paths;
  let unions_counter = ref 0 in
  let rows =
    Hashtbl.fold
      (fun (a, b) bucket acc ->
        let tids, class_keys = topologies_of_bucket dg registry caps bucket ~unions_counter in
        { a; b; tids; class_keys } :: acc)
      buckets []
    |> List.sort (fun r1 r2 -> compare (r1.a, r1.b) (r2.a, r2.b))
  in
  let capped_pairs = Hashtbl.fold (fun _ b acc -> if b.capped then acc + 1 else acc) buckets 0 in
  ( rows,
    {
      schema_paths = List.length paths;
      instance_paths = !instance_paths;
      pairs = List.length rows;
      unions = !unions_counter;
      capped_pairs;
    } )

let pair_topologies dg schema registry ~t1 ~t2 ~a ~b ~l ~caps =
  let paths = schema_paths_between schema ~t1 ~t2 ~l in
  let bucket = { reps = []; capped = false } in
  List.iter
    (fun (p : Sg.path) ->
      let key = Sg.path_key p in
      Dg.iter_instance_paths_between dg p ~a ~b ~f:(fun ids -> bucket_add caps bucket key p ids);
      (* When both endpoints have the same type, instances of this class may
         read as the reversed sequence from [a]. *)
      if t1 = t2 then begin
        let rev = Sg.reverse p in
        if rev <> p then
          Dg.iter_instance_paths_between dg rev ~a ~b ~f:(fun ids -> bucket_add caps bucket key rev ids)
      end)
    paths;
  if bucket.reps = [] then { a; b; tids = []; class_keys = [] }
  else begin
    let unions_counter = ref 0 in
    let tids, class_keys = topologies_of_bucket dg registry caps bucket ~unions_counter in
    { a; b; tids; class_keys }
  end
