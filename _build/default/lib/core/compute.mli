(** The Topology Computation module (Section 4.1) and the per-pair
    semantics of Definitions 1-3.

    [pair_topologies] computes l-Top(a, b) for one entity pair — the
    building block behind the SQL method and tests of the formal
    definitions.  [alltops] runs the offline sweep for a whole entity-set
    pair: enumerate every schema path of length <= l, enumerate its
    instances (a join chain per path, as Section 4.1 describes), group by
    (first, last) entity, and union one representative per path equivalence
    class over the cartesian product of representatives.

    Caps bound the weak-relationship blowups the paper reports (up to 5000
    instances of one path class per pair, >1 day for l = 4): at most
    [max_reps_per_class] representatives per class enter the product and at
    most [max_combos_per_pair] unions are formed per pair (combinations are
    truncated deterministically).  Defaults are high enough that nothing is
    capped at the default generator scale; the benchmarks print the
    cap-hit counters. *)

type caps = {
  max_reps_per_class : int;  (** representatives kept per (pair, class) *)
  max_combos_per_pair : int;  (** unions formed per pair *)
  max_paths_per_class : int;  (** instance paths enumerated per schema path *)
}

val default_caps : caps

type stats = {
  schema_paths : int;  (** schema paths of length <= l between the types *)
  instance_paths : int;  (** instance paths enumerated *)
  pairs : int;  (** connected (a, b) pairs found *)
  unions : int;  (** union graphs canonicalized *)
  capped_pairs : int;  (** pairs where some cap truncated the product *)
}

(** Result row for one connected pair. *)
type pair_row = {
  a : int;
  b : int;
  tids : int list;  (** l-Top(a,b), ascending TIDs *)
  class_keys : string list;  (** l-PathEC(a,b), sorted — the satisfied path conditions *)
}

(** [pair_topologies dg schema registry ~t1 ~t2 ~a ~b ~l ~caps] computes
    l-Top(a,b) directly (anchored enumeration), registering any new
    topologies.  Returns the pair row ([tids] empty when unrelated). *)
val pair_topologies :
  Topo_graph.Data_graph.t ->
  Topo_graph.Schema_graph.t ->
  Topology.registry ->
  t1:string ->
  t2:string ->
  a:int ->
  b:int ->
  l:int ->
  caps:caps ->
  pair_row

(** [alltops dg schema registry ~t1 ~t2 ~l ~caps ?path_filter ()] runs the
    offline sweep for the whole entity-set pair, returning every connected
    pair's row and sweep statistics.  Rows are sorted by (a, b).
    [path_filter] drops schema paths before enumeration — the paper's
    proposed remedy for weak relationships ("use domain knowledge to prune
    such weak topologies", Section 6.2.3); pass
    [fun p -> not (Weak.is_weak_path p)] to exclude them. *)
val alltops :
  Topo_graph.Data_graph.t ->
  Topo_graph.Schema_graph.t ->
  Topology.registry ->
  t1:string ->
  t2:string ->
  l:int ->
  caps:caps ->
  ?path_filter:(Topo_graph.Schema_graph.path -> bool) ->
  unit ->
  pair_row list * stats

(** [union_of_representatives dg reps] builds the instance subgraph that is
    the union of the given paths (each as (schema_path, node ids)); exposed
    for tests of Definition 2. *)
val union_of_representatives :
  Topo_graph.Data_graph.t -> (Topo_graph.Schema_graph.path * int array) list -> Topo_graph.Lgraph.t
