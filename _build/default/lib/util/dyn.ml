type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let with_capacity n = { data = (if n <= 0 then [||] else Array.make n (Obj.magic 0)); len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Dyn.%s: index %d out of bounds [0,%d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap (Obj.magic 0) in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dyn.pop: empty";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- Obj.magic 0;
  v

let last t =
  if t.len = 0 then invalid_arg "Dyn.last: empty";
  t.data.(t.len - 1)

let clear t =
  (* Drop references so the GC can reclaim elements. *)
  Array.fill t.data 0 t.len (Obj.magic 0);
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_opt p t =
  let rec loop i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else loop (i + 1)
  in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let map f t =
  let out = with_capacity t.len in
  iter (fun v -> push out (f v)) t;
  out

let filter p t =
  let out = create () in
  iter (fun v -> if p v then push out v) t;
  out

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
