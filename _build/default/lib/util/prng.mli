(** Deterministic pseudo-random number generator.

    All randomized components of the repository (the synthetic Biozon
    generator, sampling caps in topology computation, workload shufflers)
    draw from this splitmix64 generator so that every experiment is exactly
    reproducible from a seed.  The interface mirrors the parts of
    [Stdlib.Random.State] we need, but the sequence is stable across OCaml
    versions. *)

type t

(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator that will replay [t]'s future. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]; streams of the
    parent and child are statistically independent. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)
val chance : t -> float -> bool

(** [choose t arr] picks a uniform element.  @raise Invalid_argument on an
    empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample t arr k] is [k] elements drawn without replacement (all of [arr]
    if [k >= Array.length arr]); order is unspecified but deterministic. *)
val sample : t -> 'a array -> int -> 'a array

(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; [p] is clamped away from 0. *)
val geometric : t -> float -> int
