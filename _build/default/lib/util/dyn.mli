(** Growable arrays.

    OCaml 5.1's standard library has no [Dynarray]; tables in the relational
    substrate and edge lists in the graph kit need amortized O(1) append with
    O(1) random access, so we provide one.  Not thread-safe. *)

type 'a t

(** [create ()] is an empty dynamic array. *)
val create : unit -> 'a t

(** [with_capacity n] is empty but preallocated for [n] elements. *)
val with_capacity : int -> 'a t

(** [length t] is the number of elements. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [get t i].  @raise Invalid_argument when [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set t i v].  @raise Invalid_argument when [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push t v] appends [v]. *)
val push : 'a t -> 'a -> unit

(** [pop t] removes and returns the last element.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

(** [last t] is the last element. @raise Invalid_argument when empty. *)
val last : 'a t -> 'a

(** [clear t] removes every element (capacity retained). *)
val clear : 'a t -> unit

(** [iter f t] applies [f] in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f t] applies [f i v] in index order. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold f acc t] folds left in index order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [exists p t] is true when some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [find_opt p t] is the first element satisfying [p]. *)
val find_opt : ('a -> bool) -> 'a t -> 'a option

(** [to_array t] is a fresh array of the contents. *)
val to_array : 'a t -> 'a array

(** [to_list t] is the contents in index order. *)
val to_list : 'a t -> 'a list

(** [of_array a] copies [a]. *)
val of_array : 'a array -> 'a t

(** [of_list l] copies [l]. *)
val of_list : 'a list -> 'a t

(** [map f t] is a fresh dynamic array of images. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [filter p t] keeps the satisfying elements, in order. *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** [sort cmp t] sorts in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit
