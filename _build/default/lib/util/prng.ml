type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free: 62 positive bits modulo bound.  Bias is < 2^-50 for the
     bounds used in this repository.  (Int64.to_int keeps 63 bits, so shift
     by 2 to stay non-negative.) *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = if p >= 1.0 then true else if p <= 0.0 then false else float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  let n = Array.length arr in
  if k >= n then Array.copy arr
  else begin
    let copy = Array.copy arr in
    (* Partial Fisher-Yates: only the first k slots need to be settled. *)
    for i = 0 to k - 1 do
      let j = int_in_range t ~lo:i ~hi:(n - 1) in
      let tmp = copy.(i) in
      copy.(i) <- copy.(j);
      copy.(j) <- tmp
    done;
    Array.sub copy 0 k
  end

let geometric t p =
  let p = if p < 1e-9 then 1e-9 else if p > 1.0 then 1.0 else p in
  let u = float t in
  let u = if u <= 0.0 then 1e-18 else u in
  int_of_float (Float.floor (log u /. log (1.0 -. p +. 1e-18)))
