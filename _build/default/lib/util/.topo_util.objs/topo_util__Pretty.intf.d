lib/util/pretty.mli:
