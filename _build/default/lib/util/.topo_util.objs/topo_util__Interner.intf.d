lib/util/interner.mli:
