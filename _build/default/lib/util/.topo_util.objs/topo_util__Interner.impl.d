lib/util/interner.ml: Dyn Hashtbl Printf
