lib/util/dyn.mli:
