lib/util/prng.mli:
