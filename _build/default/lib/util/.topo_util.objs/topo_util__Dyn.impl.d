lib/util/dyn.ml: Array Obj Printf
