lib/util/timer.mli:
