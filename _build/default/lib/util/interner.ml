type t = { ids : (string, int) Hashtbl.t; names : string Dyn.t }

let create () = { ids = Hashtbl.create 64; names = Dyn.create () }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = Dyn.length t.names in
      Hashtbl.add t.ids s id;
      Dyn.push t.names s;
      id

let find_opt t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= Dyn.length t.names then invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  Dyn.get t.names id

let count t = Dyn.length t.names

let iter f t = Dyn.iteri f t.names
