(** Zipfian distribution sampler.

    Figure 11 of the paper shows that topology frequency over entity-set
    pairs is approximately Zipfian; the synthetic Biozon generator uses this
    sampler to drive degree distributions so that property emerges in the
    generated data. *)

type t

(** [create ~n ~s] prepares a sampler over ranks [1..n] where rank [r] has
    probability proportional to [1 / r^s].  Precomputes the CDF in O(n).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)
val create : n:int -> s:float -> t

(** [sample t prng] draws a rank in [\[1, n\]]; smaller ranks are more
    likely.  O(log n) by binary search over the CDF. *)
val sample : t -> Prng.t -> int

(** [pmf t r] is the probability of rank [r]. *)
val pmf : t -> int -> float

(** [support t] is [n]. *)
val support : t -> int

(** [expected_frequencies t ~total] is the expected count per rank when
    drawing [total] samples; used by tests to validate the sampler. *)
val expected_frequencies : t -> total:int -> float array
