(** String interning.

    Entity-type and relationship-type labels are compared constantly during
    canonicalization and path enumeration; interning maps each distinct label
    to a dense integer id so comparisons are integer comparisons and labels
    can index arrays. *)

type t

(** [create ()] is an empty intern pool. *)
val create : unit -> t

(** [intern t s] is the id of [s], allocating the next dense id on first
    sight. *)
val intern : t -> string -> int

(** [find_opt t s] is the id of [s] if already interned. *)
val find_opt : t -> string -> int option

(** [name t id] recovers the string.  @raise Invalid_argument on an unknown
    id. *)
val name : t -> int -> string

(** [count t] is the number of distinct interned strings. *)
val count : t -> int

(** [iter f t] applies [f id name] for every interned string in id order. *)
val iter : (int -> string -> unit) -> t -> unit
