(** Secondary indexes over tables.

    Two kinds, matching what the paper's plans need: hash indexes for
    equality probes (IDGJ, index nested-loop joins) and sorted indexes for
    ordered scans (the TopInfo-by-score group stream feeding DGJ stacks).
    An index maps a key — the values of one or more columns — to the row
    numbers holding that key. *)

type kind = Hash | Sorted

type t

(** [build ~kind ~cols rows] indexes the given rows (an array of tuples) on
    column positions [cols]. *)
val build : kind:kind -> cols:int array -> Tuple.t array -> t

(** [kind t]. *)
val kind : t -> kind

(** [cols t] is the indexed column positions. *)
val cols : t -> int array

(** [probe t key] is the row numbers whose indexed columns equal [key],
    in insertion order.  Works on both kinds ([Sorted] uses binary
    search). *)
val probe : t -> Value.t array -> int list

(** [probe_count t key] is [List.length (probe t key)] without building the
    list. *)
val probe_count : t -> Value.t array -> int

(** [ordered_rows ~desc t] enumerates row numbers in key order (ascending by
    default); only valid on [Sorted] indexes.
    @raise Invalid_argument on a [Hash] index. *)
val ordered_rows : ?desc:bool -> t -> int array

(** [distinct_keys t] is the number of distinct keys present. *)
val distinct_keys : t -> int

(** [probe_cost t] is the abstract cost-model charge for one probe; hash
    probes are cheap, sorted probes pay a logarithmic factor.  Used as
    [I_i] in the Section 5.4.3 statistics. *)
val probe_cost : t -> float

(** [probe_bucket t key] is [(n, get)] where [n] is the number of matching
    rows and [get i] is the i-th matching row number — a zero-copy view
    used by DGJ operators so early termination skips the untouched tail of
    large buckets. *)
val probe_bucket : t -> Value.t array -> int * (int -> int)
