type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Null | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float f ->
      (* Ints and equal-valued floats must hash alike because they compare
         equal. *)
      if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let as_int = function
  | Int x -> x
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int x -> float_of_int x
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let as_string = function
  | Str s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let is_null = function Null -> true | Int _ | Float _ | Str _ -> false

let width = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> String.length s + 8
