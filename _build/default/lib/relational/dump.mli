(** Catalog persistence.

    Saves a catalog as one text file per table in a directory ("bulk
    load" format, matching the paper's update model of periodic bulk
    refreshes).  The format is line-oriented:

    {v
    table <name>
    schema <col>:<ty>,<col>:<ty>,...
    pk <col> | pk -
    <tab-separated values, strings escaped (\t \n \\ and \N for NULL)>
    v}

    Floats are written in hexadecimal float notation so round-trips are
    exact. *)

(** [save catalog ~dir] writes every table to [dir]/<table>.tbl, creating
    [dir] if needed.  @raise Sys_error on I/O failure. *)
val save : Catalog.t -> dir:string -> unit

(** [load ~dir] reads every [*.tbl] file in [dir] into a fresh catalog.
    @raise Failure on a malformed file. *)
val load : dir:string -> Catalog.t

(** [save_table table ~path] / [load_table ~path] single-table variants. *)
val save_table : Table.t -> path:string -> unit

val load_table : path:string -> Table.t
