(** Tuple-at-a-time operators: filter, project, limit, sort, distinct,
    union.

    Filter and project preserve grouping (they forward [last_group] and
    [advance_group]); sort, distinct and union are blocking or
    order-destroying and therefore emit ungrouped output. *)

(** [filter pred it] keeps satisfying tuples; group-transparent. *)
val filter : Expr.t -> Iterator.t -> Iterator.t

(** [project it ~cols] keeps the listed positions in order;
    group-transparent. *)
val project : Iterator.t -> cols:int list -> Iterator.t

(** [limit n it] stops after [n] tuples; group-transparent. *)
val limit : int -> Iterator.t -> Iterator.t

(** [sort it ~by] materializes and sorts by the given (position,
    descending?) keys; stable.  Output is ungrouped. *)
val sort : Iterator.t -> by:(int * bool) list -> Iterator.t

(** [distinct it] drops duplicate tuples (full width), keeping first
    occurrences in order.  Ungrouped. *)
val distinct : Iterator.t -> Iterator.t

(** [union a b] is the set union (distinct) of two streams with identical
    arity, [a]'s tuples first.  Ungrouped; schema taken from [a]. *)
val union : Iterator.t -> Iterator.t -> Iterator.t

(** [materialize it] drains into an array (with the schema). *)
val materialize : Iterator.t -> Schema.t * Tuple.t array

(** [compute it ~schema ~exprs] evaluates each expression against every
    input tuple, producing tuples of the given [schema];
    group-transparent. *)
val compute : Iterator.t -> schema:Schema.t -> exprs:Expr.t list -> Iterator.t

(** Aggregate operations for {!hash_aggregate}. *)
type agg_op = ACount_star | ACount | ASum | AMin | AMax | AAvg

(** [hash_aggregate it ~schema ~keys ~aggs] groups the input by the
    evaluated [keys] and computes each aggregate per group; output tuples
    are key values followed by aggregate values (schema supplied by the
    caller).  With no keys, exactly one global group is emitted even for
    empty input (SQL semantics: a global COUNT over nothing is 0).  [ACount]
    skips NULL arguments; [ASum]/[AMin]/[AMax] ignore NULLs and yield NULL
    for all-NULL groups; [AAvg] yields a float. *)
val hash_aggregate :
  Iterator.t ->
  schema:Schema.t ->
  keys:Expr.t list ->
  aggs:(agg_op * Expr.t option) list ->
  Iterator.t
