lib/relational/physical.ml: Array Buffer Catalog Expr Iterator List Op_basic Op_dgj Op_join Op_scan Printf Schema String Table Value
