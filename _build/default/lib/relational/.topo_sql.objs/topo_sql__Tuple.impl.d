lib/relational/tuple.ml: Array List String Value
