lib/relational/value.mli:
