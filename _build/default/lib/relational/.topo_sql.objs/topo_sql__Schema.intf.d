lib/relational/schema.mli:
