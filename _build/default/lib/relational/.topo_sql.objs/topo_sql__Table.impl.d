lib/relational/table.ml: Array Hashtbl Index List Option Printf Schema Topo_util Tuple Value
