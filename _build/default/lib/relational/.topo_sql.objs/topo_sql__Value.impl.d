lib/relational/value.ml: Float Hashtbl Int Printf String
