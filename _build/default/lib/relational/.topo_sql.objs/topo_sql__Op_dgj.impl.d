lib/relational/op_dgj.ml: Array Expr Fun Hashtbl Index Iterator List Option Schema Table Tuple Value
