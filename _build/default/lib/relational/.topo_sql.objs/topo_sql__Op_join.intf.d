lib/relational/op_join.mli: Expr Iterator Table
