lib/relational/sql_parser.ml: Array Expr List Printf Sql_ast Sql_lexer String
