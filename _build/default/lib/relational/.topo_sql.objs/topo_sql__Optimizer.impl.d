lib/relational/optimizer.ml: Array Catalog Dgj_cost Expr Float Fun Hashtbl Index List Op_dgj Physical Schema Table Table_stats Topo_util Tuple Value
