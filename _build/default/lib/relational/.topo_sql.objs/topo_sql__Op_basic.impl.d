lib/relational/op_basic.ml: Array Expr Hashtbl Int Iterator Option Schema Topo_util Tuple Value
