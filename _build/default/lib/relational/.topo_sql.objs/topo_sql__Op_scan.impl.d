lib/relational/op_scan.ml: Array Expr Index Iterator Table
