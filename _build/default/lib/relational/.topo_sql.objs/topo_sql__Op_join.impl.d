lib/relational/op_join.ml: Array Expr Hashtbl Index Iterator List Op_basic Schema Table Topo_util Tuple Value
