lib/relational/sql_ast.ml: Expr Printf String
