lib/relational/sql_binder.ml: Array Catalog Expr Fun Hashtbl Int List Option Physical Printf Schema Set Sql_ast String Table Value
