lib/relational/physical.mli: Catalog Expr Iterator Schema Tuple Value
