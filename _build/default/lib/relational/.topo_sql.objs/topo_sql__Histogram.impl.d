lib/relational/histogram.ml: Array Float Int List Topo_util Value
