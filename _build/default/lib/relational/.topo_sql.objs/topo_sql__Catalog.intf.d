lib/relational/catalog.mli: Schema Table Table_stats
