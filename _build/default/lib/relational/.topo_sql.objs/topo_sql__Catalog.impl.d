lib/relational/catalog.ml: Hashtbl List Table Table_stats
