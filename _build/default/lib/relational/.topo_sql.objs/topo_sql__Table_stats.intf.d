lib/relational/table_stats.mli: Expr Histogram Schema Table
