lib/relational/optimizer.mli: Catalog Expr Physical Value
