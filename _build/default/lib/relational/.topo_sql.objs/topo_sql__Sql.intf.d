lib/relational/sql.mli: Catalog Physical Schema Tuple
