lib/relational/table_stats.ml: Array Expr Float Histogram List Printf Schema Table Topo_util Tuple Value
