lib/relational/dump.mli: Catalog Table
