lib/relational/histogram.mli: Value
