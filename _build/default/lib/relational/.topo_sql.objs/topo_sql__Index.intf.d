lib/relational/index.mli: Tuple Value
