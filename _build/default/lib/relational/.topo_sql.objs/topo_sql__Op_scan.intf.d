lib/relational/op_scan.mli: Expr Iterator Table Value
