lib/relational/table.mli: Index Schema Tuple Value
