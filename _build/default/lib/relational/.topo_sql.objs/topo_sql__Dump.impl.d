lib/relational/dump.ml: Array Buffer Catalog Filename Fun List Printf Schema String Sys Table Unix Value
