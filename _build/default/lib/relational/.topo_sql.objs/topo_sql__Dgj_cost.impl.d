lib/relational/dgj_cost.ml: Array Float
