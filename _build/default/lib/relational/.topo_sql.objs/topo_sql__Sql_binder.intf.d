lib/relational/sql_binder.mli: Catalog Physical Sql_ast
