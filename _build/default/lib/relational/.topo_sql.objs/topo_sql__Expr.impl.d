lib/relational/expr.ml: Array Int List Printf Set String Value
