lib/relational/op_dgj.mli: Expr Iterator Table Tuple
