lib/relational/iterator.ml: Array Fun List Schema Tuple
