lib/relational/dgj_cost.mli:
