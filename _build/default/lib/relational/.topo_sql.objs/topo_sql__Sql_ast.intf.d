lib/relational/sql_ast.mli: Expr
