lib/relational/iterator.mli: Schema Tuple
