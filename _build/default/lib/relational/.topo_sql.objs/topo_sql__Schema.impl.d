lib/relational/schema.ml: Array Hashtbl List Printf String
