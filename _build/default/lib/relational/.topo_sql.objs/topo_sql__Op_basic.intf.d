lib/relational/op_basic.mli: Expr Iterator Schema Tuple
