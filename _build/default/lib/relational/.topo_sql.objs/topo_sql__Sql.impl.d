lib/relational/sql.ml: Array List Physical Schema Sql_binder Sql_parser Topo_util Value
