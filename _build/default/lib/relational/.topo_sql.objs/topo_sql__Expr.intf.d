lib/relational/expr.mli: Tuple Value
