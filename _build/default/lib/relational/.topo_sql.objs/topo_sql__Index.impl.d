lib/relational/index.ml: Array Float Hashtbl Int Topo_util Tuple Value
