exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

type instance = {
  idx : int;  (* position in the instance list *)
  table : string;
  alias : string;
  base_schema : Schema.t;
}

type binding = {
  instances : instance array;
  (* alias groups: a name that stands for several instances (ON-less join
     chains like PUD). *)
  groups : (string * int list) list;
}

let make_binding catalog (select : Sql_ast.select) =
  let entries =
    select.Sql_ast.from
    @ List.map (fun (_, table, alias, _) -> (table, alias)) select.Sql_ast.joins
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun idx (table, alias) ->
           match Catalog.find_opt catalog table with
           | None -> fail "unknown table %s" table
           | Some t -> { idx; table; alias; base_schema = Table.schema t })
         entries)
  in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun inst ->
      if Hashtbl.mem seen inst.alias then fail "duplicate alias %s" inst.alias;
      Hashtbl.add seen inst.alias ())
    instances;
  (* ON-less joins: the joined alias also names the combined relation. *)
  let alias_index alias =
    match Array.find_opt (fun i -> i.alias = alias) instances with
    | Some i -> i.idx
    | None -> fail "unknown alias %s" alias
  in
  let groups =
    List.filter_map
      (fun (base_alias, _, alias, cond) ->
        match cond with
        | Some _ -> None
        | None -> Some (alias, [ alias_index base_alias; alias_index alias ]))
      select.Sql_ast.joins
  in
  { instances; groups }

(* Resolve a column reference to (instance, column position in its base
   schema). *)
let resolve_column binding segs =
  match segs with
  | [ qualifier; col ] -> (
      let group_lookup () =
        match List.assoc_opt qualifier binding.groups with
        | None -> None
        | Some members -> (
            let hits =
              List.filter_map
                (fun idx ->
                  let inst = binding.instances.(idx) in
                  Option.map (fun pos -> (idx, pos)) (Schema.index_opt inst.base_schema col))
                members
            in
            match hits with
            | [ hit ] -> Some hit
            | [] -> None
            | _ :: _ -> fail "ambiguous column %s in join group %s" col qualifier)
      in
      match Array.find_opt (fun i -> i.alias = qualifier) binding.instances with
      | Some inst -> (
          match Schema.index_opt inst.base_schema col with
          | Some pos -> (inst.idx, pos)
          | None -> (
              (* A join-group alias can shadow the joined table's own alias
                 (the paper's PUD); fall back to the group. *)
              match group_lookup () with
              | Some hit -> hit
              | None -> fail "no column %s in %s" col qualifier))
      | None -> (
          match group_lookup () with
          | Some hit -> hit
          | None -> fail "unknown alias or column %s.%s" qualifier col))
  | [ col ] -> (
      let hits =
        Array.to_list
          (Array.map
             (fun inst -> Option.map (fun pos -> (inst.idx, pos)) (Schema.index_opt inst.base_schema col))
             binding.instances)
        |> List.filter_map Fun.id
      in
      match hits with
      | [ hit ] -> hit
      | [] -> fail "unknown column %s" col
      | _ :: _ -> fail "ambiguous column %s" col)
  | _ -> fail "unsupported column reference %s" (String.concat "." segs)

(* A bound scalar expression: which instances it touches, and a builder
   producing an Expr.t once instance offsets are known. *)
type bound_expr = { touches : int list; build : (int -> int) -> Expr.t }

let rec bind_expr binding (e : Sql_ast.expr) : bound_expr =
  let module IS = Set.Make (Int) in
  match e with
  | Sql_ast.Column segs ->
      let inst, pos = resolve_column binding segs in
      { touches = [ inst ]; build = (fun offset -> Expr.Col (offset inst + pos)) }
  | Sql_ast.Int_lit n -> { touches = []; build = (fun _ -> Expr.Const (Value.Int n)) }
  | Sql_ast.Float_lit f -> { touches = []; build = (fun _ -> Expr.Const (Value.Float f)) }
  | Sql_ast.String_lit s -> { touches = []; build = (fun _ -> Expr.Const (Value.Str s)) }
  | Sql_ast.Cmp (op, a, b) ->
      let ba = bind_expr binding a and bb = bind_expr binding b in
      {
        touches = IS.elements (IS.union (IS.of_list ba.touches) (IS.of_list bb.touches));
        build = (fun o -> Expr.Cmp (op, ba.build o, bb.build o));
      }
  | Sql_ast.And (a, b) ->
      let ba = bind_expr binding a and bb = bind_expr binding b in
      {
        touches = IS.elements (IS.union (IS.of_list ba.touches) (IS.of_list bb.touches));
        build = (fun o -> Expr.And [ ba.build o; bb.build o ]);
      }
  | Sql_ast.Or (a, b) ->
      let ba = bind_expr binding a and bb = bind_expr binding b in
      {
        touches = IS.elements (IS.union (IS.of_list ba.touches) (IS.of_list bb.touches));
        build = (fun o -> Expr.Or [ ba.build o; bb.build o ]);
      }
  | Sql_ast.Not a ->
      let ba = bind_expr binding a in
      { touches = ba.touches; build = (fun o -> Expr.Not (ba.build o)) }
  | Sql_ast.Contains (a, kw) ->
      let ba = bind_expr binding a in
      { touches = ba.touches; build = (fun o -> Expr.Contains (ba.build o, kw)) }
  | Sql_ast.Exists _ | Sql_ast.Not_exists _ ->
      fail "EXISTS is only supported as a top-level WHERE conjunct"
  | Sql_ast.Agg _ -> fail "aggregates are only allowed in the select list"

(* --- conjunct classification ----------------------------------------- *)

type conjunct =
  | Local of int * bound_expr  (* touches exactly one instance *)
  | Join_edge of (int * int) * (int * int)  (* (inst, col) = (inst, col) *)
  | Residual of bound_expr
  | Subquery of bool * Sql_ast.select  (* semi? (true = EXISTS) *)

let rec flatten_conjuncts (e : Sql_ast.expr) =
  match e with
  | Sql_ast.And (a, b) -> flatten_conjuncts a @ flatten_conjuncts b
  | _ -> [ e ]

let classify binding (e : Sql_ast.expr) =
  match e with
  | Sql_ast.Exists sub -> Subquery (true, sub)
  | Sql_ast.Not_exists sub -> Subquery (false, sub)
  | Sql_ast.Cmp (Expr.Eq, Sql_ast.Column a, Sql_ast.Column b) -> (
      let ia, pa = resolve_column binding a and ib, pb = resolve_column binding b in
      if ia <> ib then Join_edge ((ia, pa), (ib, pb))
      else
        let be = bind_expr binding e in
        Local (ia, be))
  | _ -> (
      let be = bind_expr binding e in
      match be.touches with
      | [ i ] -> Local (i, be)
      | [] -> Residual be
      | _ :: _ :: _ -> Residual be)

(* --- planning a single select ----------------------------------------- *)

type partial = { plan : Physical.t; placed : int list }

let instance_offset binding placed target =
  let rec go acc = function
    | [] -> fail "internal: instance %d not yet placed" target
    | i :: rest ->
        if i = target then acc else go (acc + Schema.arity binding.instances.(i).base_schema) rest
  in
  go 0 placed

let rec plan_select catalog (select : Sql_ast.select) =
  let binding = make_binding catalog select in
  let conjs =
    (match select.Sql_ast.where with None -> [] | Some w -> flatten_conjuncts w)
    @ List.concat_map
        (fun (_, _, _, cond) -> match cond with Some c -> flatten_conjuncts c | None -> [])
        select.Sql_ast.joins
  in
  (* Natural joins (ON-less) contribute join edges on shared columns. *)
  let natural_edges =
    List.filter_map
      (fun (base_alias, _, alias, cond) ->
        match cond with
        | Some _ -> None
        | None ->
            let find a =
              match Array.find_opt (fun i -> i.alias = a) binding.instances with
              | Some i -> i
              | None -> fail "unknown alias %s" a
            in
            let a = find base_alias and b = find alias in
            (* Surrogate primary keys (the edge-id columns our relationship
               tables carry, unlike the paper's) are not natural-join
               keys. *)
            let pk inst = Table.primary_key (Catalog.find catalog inst.table) in
            let excluded = List.filter_map Fun.id [ pk a; pk b ] in
            let shared =
              Array.to_list (Schema.columns a.base_schema)
              |> List.filter_map (fun (c : Schema.column) ->
                     if List.mem c.name excluded then None
                     else
                       match Schema.index_opt b.base_schema c.name with
                       | Some pb -> Some ((a.idx, Schema.index_of a.base_schema c.name), (b.idx, pb))
                       | None -> None)
            in
            if shared = [] then fail "natural join of %s and %s shares no columns" base_alias alias
            else Some shared)
      select.Sql_ast.joins
    |> List.concat
  in
  let classified = List.map (classify binding) conjs in
  let locals = Hashtbl.create 8 in
  let edges = ref natural_edges in
  let residuals = ref [] in
  let subqueries = ref [] in
  List.iter
    (fun c ->
      match c with
      | Local (i, be) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt locals i) in
          Hashtbl.replace locals i (be :: cur)
      | Join_edge (a, b) -> edges := (a, b) :: !edges
      | Residual be -> residuals := be :: !residuals
      | Subquery (semi, sub) -> subqueries := (semi, sub) :: !subqueries)
    classified;
  let scan_of inst =
    let preds = Option.value ~default:[] (Hashtbl.find_opt locals inst.idx) in
    let pred =
      match preds with
      | [] -> None
      | _ ->
          (* Local predicates run against the base schema: offset 0. *)
          Some (Expr.And (List.map (fun be -> be.build (fun _ -> 0)) preds))
    in
    Physical.Scan { table = inst.table; alias = Some inst.alias; pred }
  in
  (* Greedy connected join order starting from the first instance. *)
  let n = Array.length binding.instances in
  let start = { plan = scan_of binding.instances.(0); placed = [ 0 ] } in
  let rec add_joins partial =
    if List.length partial.placed = n then partial
    else begin
      let remaining = List.filter (fun i -> not (List.mem i partial.placed)) (List.init n Fun.id) in
      (* Prefer an instance connected to the placed prefix by an edge. *)
      let connected =
        List.filter_map
          (fun r ->
            let relevant =
              List.filter_map
                (fun ((ia, pa), (ib, pb)) ->
                  if ia = r && List.mem ib partial.placed then Some ((ib, pb), (r, pa))
                  else if ib = r && List.mem ia partial.placed then Some ((ia, pa), (r, pb))
                  else None)
                !edges
            in
            if relevant = [] then None else Some (r, relevant))
          remaining
      in
      match connected with
      | (r, pairs) :: _ ->
          let inst = binding.instances.(r) in
          let left_cols =
            Array.of_list
              (List.map (fun ((pi, pp), _) -> instance_offset binding partial.placed pi + pp) pairs)
          in
          let right_cols = Array.of_list (List.map (fun (_, (_, rp)) -> rp) pairs) in
          let plan =
            Physical.HashJoin
              { left = partial.plan; right = scan_of inst; left_cols; right_cols; residual = None }
          in
          add_joins { plan; placed = partial.placed @ [ r ] }
      | [] -> (
          match remaining with
          | r :: _ ->
              let inst = binding.instances.(r) in
              let plan = Physical.NLJoin { left = partial.plan; right = scan_of inst; residual = None } in
              add_joins { plan; placed = partial.placed @ [ r ] }
          | [] -> partial)
    end
  in
  let joined = add_joins start in
  let offset i = instance_offset binding joined.placed i in
  (* Residual filters over the joined schema. *)
  let plan =
    List.fold_left
      (fun plan be -> Physical.Filter { input = plan; pred = be.build offset })
      joined.plan !residuals
  in
  (* Decorrelate subqueries into semi/anti joins. *)
  let plan =
    List.fold_left (fun plan (semi, sub) -> apply_subquery catalog binding offset plan semi sub) plan
      (List.rev !subqueries)
  in
  (* Projection via Compute. *)
  let rec infer_ty (be_ast : Sql_ast.expr) =
    match be_ast with
    | Sql_ast.Column segs ->
        let inst, pos = resolve_column binding segs in
        (Schema.column binding.instances.(inst).base_schema pos).Schema.ty
    | Sql_ast.Int_lit _ -> Schema.TInt
    | Sql_ast.Float_lit _ -> Schema.TFloat
    | Sql_ast.String_lit _ -> Schema.TStr
    | Sql_ast.Cmp _ | Sql_ast.And _ | Sql_ast.Or _ | Sql_ast.Not _ | Sql_ast.Contains _
    | Sql_ast.Exists _ | Sql_ast.Not_exists _ ->
        Schema.TInt
    | Sql_ast.Agg ((Sql_ast.Count_star | Sql_ast.Count), _) -> Schema.TInt
    | Sql_ast.Agg (Sql_ast.Avg, _) -> Schema.TFloat
    | Sql_ast.Agg ((Sql_ast.Sum | Sql_ast.Min | Sql_ast.Max), Some arg) -> infer_ty arg
    | Sql_ast.Agg ((Sql_ast.Sum | Sql_ast.Min | Sql_ast.Max), None) -> Schema.TInt
  in
  let item_name i e alias =
    match alias with
    | Some a -> a
    | None -> (
        match e with
        | Sql_ast.Column segs -> String.concat "." segs
        | Sql_ast.Agg _ -> Sql_ast.expr_to_string e
        | _ -> Printf.sprintf "col%d" i)
  in
  let rec has_agg = function
    | Sql_ast.Agg _ -> true
    | Sql_ast.Cmp (_, a, b) | Sql_ast.And (a, b) | Sql_ast.Or (a, b) -> has_agg a || has_agg b
    | Sql_ast.Not e | Sql_ast.Contains (e, _) -> has_agg e
    | Sql_ast.Column _ | Sql_ast.Int_lit _ | Sql_ast.Float_lit _ | Sql_ast.String_lit _
    | Sql_ast.Exists _ | Sql_ast.Not_exists _ ->
        false
  in
  let aggregated =
    select.Sql_ast.group_by <> [] || List.exists (fun (e, _) -> has_agg e) select.Sql_ast.items
  in
  let plan =
    if not aggregated then begin
      let items =
        List.mapi
          (fun i (e, alias) ->
            let be = bind_expr binding e in
            (be.build offset, item_name i e alias, infer_ty e))
          select.Sql_ast.items
      in
      Physical.Compute { input = plan; items }
    end
    else begin
      (* GROUP BY planning: every item must be a group key or an
         aggregate. *)
      let keys =
        List.mapi
          (fun i g ->
            let be = bind_expr binding g in
            (be.build offset, Printf.sprintf "k%d" i, infer_ty g))
          select.Sql_ast.group_by
      in
      let aggs = ref [] in
      (* item -> position in the Aggregate output (keys then aggs) *)
      let n_keys = List.length keys in
      let key_index g =
        let rec find i = function
          | [] -> None
          | g' :: rest -> if g' = g then Some i else find (i + 1) rest
        in
        find 0 select.Sql_ast.group_by
      in
      let item_positions =
        List.map
          (fun (e, _) ->
            match key_index e with
            | Some i -> i
            | None -> (
                match e with
                | Sql_ast.Agg (kind, arg) ->
                    let physical_kind =
                      match kind with
                      | Sql_ast.Count_star -> Physical.Count_star
                      | Sql_ast.Count -> Physical.Count
                      | Sql_ast.Sum -> Physical.Sum
                      | Sql_ast.Min -> Physical.Min
                      | Sql_ast.Max -> Physical.Max
                      | Sql_ast.Avg -> Physical.Avg
                    in
                    let bound_arg = Option.map (fun a -> (bind_expr binding a).build offset) arg in
                    let ty = infer_ty e in
                    let pos = n_keys + List.length !aggs in
                    aggs := !aggs @ [ (physical_kind, bound_arg, Printf.sprintf "a%d" (List.length !aggs), ty) ];
                    pos
                | _ -> fail "select item %s is neither a GROUP BY key nor an aggregate" (Sql_ast.expr_to_string e)))
          select.Sql_ast.items
      in
      let agg_plan = Physical.Aggregate { input = plan; keys; aggs = !aggs } in
      let agg_cols =
        List.map (fun (_, n, ty) -> (n, ty)) keys @ List.map (fun (_, _, n, ty) -> (n, ty)) !aggs
      in
      let items =
        List.mapi
          (fun i ((e, alias), pos) ->
            let _, ty = List.nth agg_cols pos in
            (Expr.Col pos, item_name i e alias, ty))
          (List.combine select.Sql_ast.items item_positions)
      in
      Physical.Compute { input = agg_plan; items }
    end
  in
  if select.Sql_ast.distinct then Physical.Distinct plan else plan

and apply_subquery catalog outer_binding outer_offset outer_plan semi sub =
  (* Split the subquery's conjuncts into correlations (equalities touching
     an outer instance) and inner-only conditions. *)
  let conjs = match sub.Sql_ast.where with None -> [] | Some w -> flatten_conjuncts w in
  let correlations = ref [] in
  let inner_conjs = ref [] in
  let outer_has segs =
    match segs with
    | [ q; _ ] -> Array.exists (fun i -> i.alias = q) outer_binding.instances
    | _ -> false
  in
  List.iter
    (fun c ->
      match c with
      | Sql_ast.Cmp (Expr.Eq, Sql_ast.Column a, Sql_ast.Column b)
        when outer_has a || outer_has b ->
          let outer_segs, inner_segs = if outer_has a then (a, b) else (b, a) in
          if outer_has inner_segs then fail "subquery correlation between two outer columns";
          correlations := (outer_segs, inner_segs) :: !correlations
      | _ -> inner_conjs := c :: !inner_conjs)
    conjs;
  if !correlations = [] then fail "uncorrelated EXISTS subqueries are not supported";
  let inner_where =
    match List.rev !inner_conjs with
    | [] -> None
    | c :: rest -> Some (List.fold_left (fun acc e -> Sql_ast.And (acc, e)) c rest)
  in
  let inner_select =
    {
      sub with
      Sql_ast.where = inner_where;
      Sql_ast.group_by = [];
      Sql_ast.items =
        List.map (fun (_, inner_segs) -> (Sql_ast.Column inner_segs, None)) (List.rev !correlations);
      Sql_ast.distinct = false;
    }
  in
  let inner_plan = plan_select catalog inner_select in
  let left_cols =
    Array.of_list
      (List.map
         (fun (outer_segs, _) ->
           let inst, pos = resolve_column outer_binding outer_segs in
           outer_offset inst + pos)
         (List.rev !correlations))
  in
  let right_cols = Array.init (Array.length left_cols) Fun.id in
  if semi then Physical.SemiJoin { left = outer_plan; right = inner_plan; left_cols; right_cols }
  else Physical.AntiJoin { left = outer_plan; right = inner_plan; left_cols; right_cols }

let plan catalog (query : Sql_ast.query) =
  let selects = List.map (plan_select catalog) query.Sql_ast.selects in
  let combined =
    match selects with
    | [] -> fail "empty query"
    | first :: rest -> List.fold_left (fun acc s -> Physical.Union (acc, s)) first rest
  in
  (* ORDER BY resolves against the output schema (item aliases). *)
  let out_schema = Physical.schema catalog combined in
  let plan =
    match query.Sql_ast.order_by with
    | [] -> combined
    | keys ->
        let by =
          List.map
            (fun (e, desc) ->
              match e with
              | Sql_ast.Column [ name ] -> (
                  match Schema.index_opt out_schema name with
                  | Some pos -> (pos, desc)
                  | None -> (
                      (* Fall back to matching the unqualified tail of
                         output names (ORDER BY freq against "T.freq"). *)
                      let suffix = "." ^ name in
                      let hits =
                        Array.to_list (Schema.columns out_schema)
                        |> List.mapi (fun i (c : Schema.column) -> (i, c.Schema.name))
                        |> List.filter (fun (_, n) ->
                               String.length n > String.length suffix
                               && String.sub n (String.length n - String.length suffix)
                                    (String.length suffix)
                                  = suffix)
                      in
                      match hits with
                      | [ (pos, _) ] -> (pos, desc)
                      | [] -> fail "ORDER BY column %s is not in the output" name
                      | _ :: _ -> fail "ORDER BY column %s is ambiguous" name))
              | _ -> fail "ORDER BY supports output column names only")
            keys
        in
        Physical.Sort { input = combined; by }
  in
  match query.Sql_ast.fetch with None -> plan | Some k -> Physical.Limit (k, plan)
