let to_plan catalog text = Sql_binder.plan catalog (Sql_parser.parse text)

let query catalog text =
  let plan = to_plan catalog text in
  (Physical.schema catalog plan, Physical.run catalog plan)

let explain catalog text = Physical.explain (to_plan catalog text)

let render catalog text =
  let schema, rows = query catalog text in
  let header = Array.to_list (Array.map (fun (c : Schema.column) -> c.Schema.name) (Schema.columns schema)) in
  let body =
    List.map (fun tuple -> Array.to_list (Array.map Value.to_string tuple)) rows
  in
  Topo_util.Pretty.render ~header body
