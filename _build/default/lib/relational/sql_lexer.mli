(** Hand-written lexer for the SQL dialect. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword: SELECT, FROM, ... *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int  (** message, byte offset *)

(** [tokenize input] is the full token stream, ending with [EOF].
    Keywords are recognized case-insensitively; identifiers keep their
    spelling.  @raise Lex_error on malformed input. *)
val tokenize : string -> token array

(** [token_to_string t] for error messages. *)
val token_to_string : token -> string
