(** SQL facade: parse, plan and run queries against a catalog. *)

(** [query catalog text] parses, plans and executes; returns the output
    schema and result rows.
    @raise Sql_parser.Parse_error, Sql_lexer.Lex_error or
    Sql_binder.Bind_error on bad input. *)
val query : Catalog.t -> string -> Schema.t * Tuple.t list

(** [explain catalog text] is the physical plan chosen for the query,
    rendered as text. *)
val explain : Catalog.t -> string -> string

(** [to_plan catalog text] parses and plans without executing. *)
val to_plan : Catalog.t -> string -> Physical.t

(** [render catalog text] runs the query and pretty-prints the result table
    (header = output column names). *)
val render : Catalog.t -> string -> string
