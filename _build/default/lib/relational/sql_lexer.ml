type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int

let keywords =
  [
    (* ASC/DESC/TOP are deliberately absent: "desc" is a column name in the
       paper's schema and "Top" its TopInfo alias; both are parsed
       context-sensitively as identifiers. *)
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "EXISTS"; "AS"; "UNION";
    "ORDER"; "BY"; "GROUP"; "FETCH"; "FIRST"; "ROWS"; "ROW"; "ONLY"; "JOIN"; "ON";
    "IS"; "NULL";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = Topo_util.Dyn.create () in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let error msg = raise (Lex_error (msg, !pos)) in
  let read_while p =
    let start = !pos in
    while !pos < n && p input.[!pos] do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let rec loop () =
    match peek () with
    | None -> Topo_util.Dyn.push tokens EOF
    | Some c ->
        (match c with
        | ' ' | '\t' | '\n' | '\r' -> advance ()
        | '(' -> advance (); Topo_util.Dyn.push tokens LPAREN
        | ')' -> advance (); Topo_util.Dyn.push tokens RPAREN
        | ',' -> advance (); Topo_util.Dyn.push tokens COMMA
        | '.' -> advance (); Topo_util.Dyn.push tokens DOT
        | '*' -> advance (); Topo_util.Dyn.push tokens STAR
        | '=' -> advance (); Topo_util.Dyn.push tokens EQ
        | '<' ->
            advance ();
            (match peek () with
            | Some '>' -> advance (); Topo_util.Dyn.push tokens NE
            | Some '=' -> advance (); Topo_util.Dyn.push tokens LE
            | Some _ | None -> Topo_util.Dyn.push tokens LT)
        | '>' ->
            advance ();
            (match peek () with
            | Some '=' -> advance (); Topo_util.Dyn.push tokens GE
            | Some _ | None -> Topo_util.Dyn.push tokens GT)
        | '!' ->
            advance ();
            (match peek () with
            | Some '=' -> advance (); Topo_util.Dyn.push tokens NE
            | Some _ | None -> error "expected '=' after '!'")
        | '\'' ->
            advance ();
            let buf = Buffer.create 16 in
            let rec str () =
              match peek () with
              | None -> error "unterminated string literal"
              | Some '\'' -> (
                  advance ();
                  (* Doubled quote escapes a quote, SQL style. *)
                  match peek () with
                  | Some '\'' ->
                      Buffer.add_char buf '\'';
                      advance ();
                      str ()
                  | Some _ | None -> ())
              | Some c ->
                  Buffer.add_char buf c;
                  advance ();
                  str ()
            in
            str ();
            Topo_util.Dyn.push tokens (STRING (Buffer.contents buf))
        | c when is_digit c ->
            let whole = read_while is_digit in
            let tok =
              match peek () with
              | Some '.' when !pos + 1 < n && is_digit input.[!pos + 1] ->
                  advance ();
                  let frac = read_while is_digit in
                  FLOAT (float_of_string (whole ^ "." ^ frac))
              | Some _ | None -> INT (int_of_string whole)
            in
            Topo_util.Dyn.push tokens tok
        | c when is_ident_start c ->
            let word = read_while is_ident_char in
            let upper = String.uppercase_ascii word in
            if List.mem upper keywords then Topo_util.Dyn.push tokens (KW upper)
            else Topo_util.Dyn.push tokens (IDENT word)
        | c -> error (Printf.sprintf "unexpected character %C" c));
        if Topo_util.Dyn.is_empty tokens || Topo_util.Dyn.last tokens <> EOF then loop ()
  in
  loop ();
  Topo_util.Dyn.to_array tokens

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> "'" ^ s ^ "'"
  | KW s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
