(** Recursive-descent parser for the SQL dialect. *)

exception Parse_error of string

(** [parse input] parses a full query (a UNION chain with optional ORDER BY
    / FETCH FIRST tail).  @raise Parse_error / {!Sql_lexer.Lex_error} on
    malformed input. *)
val parse : string -> Sql_ast.query
