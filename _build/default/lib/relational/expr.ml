type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t list
  | Or of t list
  | Not of t
  | Contains of t * string
  | IsNull of t

let bool_value b = if b then Value.Int 1 else Value.Int 0

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let keyword_matches ~keyword ~text =
  let keyword = String.lowercase_ascii keyword in
  let text = String.lowercase_ascii text in
  let klen = String.length keyword and tlen = String.length text in
  if klen = 0 then true
  else
    let rec scan from =
      if from + klen > tlen then false
      else
        match String.index_from_opt text from keyword.[0] with
        | None -> false
        | Some i ->
            if i + klen > tlen then false
            else if
              String.sub text i klen = keyword
              && (i = 0 || not (is_word_char text.[i - 1]))
              && (i + klen = tlen || not (is_word_char text.[i + klen]))
            then true
            else scan (i + 1)
    in
    scan 0

let apply_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    let c = Value.compare a b in
    bool_value
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)

let rec eval expr tuple =
  match expr with
  | Col i -> tuple.(i)
  | Const v -> v
  | Cmp (op, a, b) -> apply_cmp op (eval a tuple) (eval b tuple)
  | And es ->
      let rec loop saw_null = function
        | [] -> if saw_null then Value.Null else bool_value true
        | e :: rest -> (
            match eval e tuple with
            | Value.Null -> loop true rest
            | v -> if Value.equal v (bool_value false) then bool_value false else loop saw_null rest)
      in
      loop false es
  | Or es ->
      let rec loop saw_null = function
        | [] -> if saw_null then Value.Null else bool_value false
        | e :: rest -> (
            match eval e tuple with
            | Value.Null -> loop true rest
            | v -> if Value.equal v (bool_value false) then loop saw_null rest else bool_value true)
      in
      loop false es
  | Not e -> (
      match eval e tuple with
      | Value.Null -> Value.Null
      | v -> bool_value (Value.equal v (bool_value false)))
  | Contains (e, keyword) -> (
      match eval e tuple with
      | Value.Null -> Value.Null
      | Value.Str s -> bool_value (keyword_matches ~keyword ~text:s)
      | Value.Int _ | Value.Float _ -> bool_value false)
  | IsNull e -> bool_value (Value.is_null (eval e tuple))

let truthy expr tuple =
  match eval expr tuple with
  | Value.Null -> false
  | v -> not (Value.equal v (Value.Int 0))

let always_true = function
  | And [] -> true
  | Const (Value.Int n) -> n <> 0
  | Col _ | Const _ | Cmp _ | And _ | Or _ | Not _ | Contains _ | IsNull _ -> false

let conj a b =
  match (a, b) with
  | x, y when always_true x -> y
  | x, y when always_true y -> x
  | And xs, And ys -> And (xs @ ys)
  | And xs, y -> And (xs @ [ y ])
  | x, And ys -> And (x :: ys)
  | x, y -> And [ x; y ]

let rec shift_cols offset = function
  | Col i -> Col (i + offset)
  | Const v -> Const v
  | Cmp (op, a, b) -> Cmp (op, shift_cols offset a, shift_cols offset b)
  | And es -> And (List.map (shift_cols offset) es)
  | Or es -> Or (List.map (shift_cols offset) es)
  | Not e -> Not (shift_cols offset e)
  | Contains (e, k) -> Contains (shift_cols offset e, k)
  | IsNull e -> IsNull (shift_cols offset e)

let columns expr =
  let module IS = Set.Make (Int) in
  let rec go acc = function
    | Col i -> IS.add i acc
    | Const _ -> acc
    | Cmp (_, a, b) -> go (go acc a) b
    | And es | Or es -> List.fold_left go acc es
    | Not e | Contains (e, _) | IsNull e -> go acc e
  in
  IS.elements (go IS.empty expr)

let cmp_to_string = function Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec to_string = function
  | Col i -> "#" ^ string_of_int i
  | Const v -> Value.to_string v
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) (cmp_to_string op) (to_string b)
  | And es -> "(" ^ String.concat " AND " (List.map to_string es) ^ ")"
  | Or es -> "(" ^ String.concat " OR " (List.map to_string es) ^ ")"
  | Not e -> "NOT " ^ to_string e
  | Contains (e, k) -> Printf.sprintf "%s.ct('%s')" (to_string e) k
  | IsNull e -> to_string e ^ " IS NULL"
