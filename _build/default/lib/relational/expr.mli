(** Scalar expressions over tuples.

    Expressions are already resolved: column references are positional.  The
    SQL binder produces these from named ASTs; the topology engine builds
    them directly.  [Contains] implements the paper's keyword-containment
    predicate (written [desc.ct('enzyme')] in the paper's queries): true when
    the given keyword occurs in the string value as a whole word,
    case-insensitively. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int  (** resolved column position *)
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t list
  | Or of t list
  | Not of t
  | Contains of t * string  (** keyword containment on a string column *)
  | IsNull of t

(** [eval expr tuple] evaluates to a value; comparisons yield [Int 1] /
    [Int 0], and any comparison against [Null] yields [Null]. *)
val eval : t -> Tuple.t -> Value.t

(** [truthy expr tuple] is SQL-style: true only when [eval] yields a nonzero
    non-null value. *)
val truthy : t -> Tuple.t -> bool

(** [always_true expr] is a syntactic check for the trivial predicate. *)
val always_true : t -> bool

(** [conj a b] conjoins, flattening [And] and dropping trivially-true
    conjuncts. *)
val conj : t -> t -> t

(** [shift_cols offset expr] adds [offset] to every column reference; used
    when an expression formulated against a join's right input must run
    against the concatenated tuple. *)
val shift_cols : int -> t -> t

(** [columns expr] is the sorted list of distinct column positions
    referenced. *)
val columns : t -> int list

(** [keyword_matches keyword text] is the primitive behind [Contains]:
    whole-word, case-insensitive containment. *)
val keyword_matches : keyword:string -> text:string -> bool

(** [to_string expr] for plan display, with [Col i] shown as [#i]. *)
val to_string : t -> string
