type ty = TInt | TFloat | TStr

type column = { name : string; ty : ty }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let build cols =
  let by_name = Hashtbl.create (Array.length cols * 2) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    cols;
  { cols; by_name }

let make columns = build (Array.of_list columns)

let columns t = Array.copy t.cols

let arity t = Array.length t.cols

let column t i =
  if i < 0 || i >= Array.length t.cols then invalid_arg (Printf.sprintf "Schema.column: index %d" i);
  t.cols.(i)

let index_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let index_opt t name = Hashtbl.find_opt t.by_name name

let mem t name = Hashtbl.mem t.by_name name

let concat a b =
  (* Join outputs are addressed positionally; colliding names (two
     unqualified base tables sharing a column name) are disambiguated with a
     deterministic suffix so the combined schema stays well-formed. *)
  let taken = Hashtbl.create 16 in
  let fresh name =
    if not (Hashtbl.mem taken name) then begin
      Hashtbl.add taken name ();
      name
    end
    else begin
      let rec try_suffix k =
        let candidate = Printf.sprintf "%s#%d" name k in
        if Hashtbl.mem taken candidate then try_suffix (k + 1)
        else begin
          Hashtbl.add taken candidate ();
          candidate
        end
      in
      try_suffix 2
    end
  in
  build (Array.map (fun c -> { c with name = fresh c.name }) (Array.append a.cols b.cols))

let base_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let qualify alias t =
  build (Array.map (fun c -> { c with name = alias ^ "." ^ base_name c.name }) t.cols)

let project t indices =
  build (Array.of_list (List.map (fun i -> column t i) indices))

let ty_to_string = function TInt -> "int" | TFloat -> "float" | TStr -> "str"

let to_string t =
  let parts = Array.to_list (Array.map (fun c -> c.name ^ ":" ^ ty_to_string c.ty) t.cols) in
  "(" ^ String.concat ", " parts ^ ")"
