let filtered_next pred fetch =
  match pred with
  | None -> fetch
  | Some p ->
      let rec loop () =
        match fetch () with
        | None -> None
        | Some tuple -> if Expr.truthy p tuple then Some tuple else loop ()
      in
      loop

let seq ?pred table =
  let pos = ref 0 in
  let n_rows = ref 0 in
  let fetch () =
    if !pos >= !n_rows then None
    else begin
      let tuple = Table.get table !pos in
      incr pos;
      Iterator.Counters.add_scanned 1;
      Some tuple
    end
  in
  Iterator.ungrouped ~schema:(Table.schema table)
    ~open_:(fun () ->
      pos := 0;
      n_rows := Table.row_count table)
    ~next:(filtered_next pred fetch)
    ~close:(fun () -> ())

let rows_iterator ?pred table rownos =
  let pos = ref 0 in
  let fetch () =
    if !pos >= Array.length rownos then None
    else begin
      let tuple = Table.get table rownos.(!pos) in
      incr pos;
      Some tuple
    end
  in
  Iterator.ungrouped ~schema:(Table.schema table)
    ~open_:(fun () -> pos := 0)
    ~next:(filtered_next pred fetch)
    ~close:(fun () -> ())

let index_probe ?pred table ~cols ~key =
  let idx = Table.ensure_index table ~kind:Index.Hash ~cols in
  Iterator.Counters.add_probes 1;
  let rownos = Array.of_list (Index.probe idx key) in
  rows_iterator ?pred table rownos

let ordered ?pred ?(desc = false) table ~cols =
  let idx = Table.ensure_index table ~kind:Index.Sorted ~cols in
  let rownos = Index.ordered_rows ~desc idx in
  rows_iterator ?pred table rownos

let grouped_by_tuple (it : Iterator.t) =
  let group = ref (-1) in
  {
    Iterator.schema = it.Iterator.schema;
    open_ =
      (fun () ->
        group := -1;
        it.Iterator.open_ ());
    next =
      (fun () ->
        match it.Iterator.next () with
        | Some tuple ->
            incr group;
            Some tuple
        | None -> None);
    close = it.Iterator.close;
    advance_group = (fun () -> ());
    last_group = (fun () -> !group);
  }
