(** Table access operators: sequential scan, index scan, ordered scan, and
    the grouped ordered scan that feeds DGJ stacks. *)

(** [seq ?pred table] scans all rows, applying the optional residual
    predicate.  Ungrouped. *)
val seq : ?pred:Expr.t -> Table.t -> Iterator.t

(** [index_probe ?pred table ~cols ~key] returns rows whose indexed columns
    equal [key] (hash index built/reused on demand).  Ungrouped. *)
val index_probe : ?pred:Expr.t -> Table.t -> cols:string list -> key:Value.t array -> Iterator.t

(** [ordered ?pred ?desc table ~cols] scans rows in the order of the named
    columns using a sorted index.  Ungrouped. *)
val ordered : ?pred:Expr.t -> ?desc:bool -> Table.t -> cols:string list -> Iterator.t

(** [grouped_by_tuple it] wraps an iterator so every returned tuple forms its
    own group with increasing ids — this is the "idxScan TopoInfo (score
    order)" source at the bottom of Figure 15's plans, where each topology
    is one group.  [advance_group] is a no-op because a group is exhausted
    the moment its tuple is returned. *)
val grouped_by_tuple : Iterator.t -> Iterator.t
