(** Relation schemas: ordered, named, typed columns.

    Column names are qualified with the relation alias once plans are built
    (["P.ID"]), so joins concatenate schemas without collisions. *)

type ty = TInt | TFloat | TStr

type column = { name : string; ty : ty }

type t

(** [make columns] builds a schema. @raise Invalid_argument on duplicate
    column names. *)
val make : column list -> t

(** [columns t] in declaration order. *)
val columns : t -> column array

(** [arity t] is the number of columns. *)
val arity : t -> int

(** [column t i]. @raise Invalid_argument when out of bounds. *)
val column : t -> int -> column

(** [index_of t name] is the position of [name].
    @raise Not_found when absent. *)
val index_of : t -> string -> int

(** [index_opt t name]. *)
val index_opt : t -> string -> int option

(** [mem t name]. *)
val mem : t -> string -> bool

(** [concat a b] appends [b]'s columns after [a]'s; used by join operators.
    Name collisions are disambiguated with a deterministic ["#k"] suffix
    (join outputs are addressed positionally, so this only affects
    display). *)
val concat : t -> t -> t

(** [qualify alias t] prefixes every column name with ["alias."].  Columns
    already containing a dot keep only their last segment before
    re-qualifying, so re-aliasing a derived relation behaves like SQL. *)
val qualify : string -> t -> t

(** [project t indices] keeps the listed columns in the given order. *)
val project : t -> int list -> t

(** [to_string t] is a human-readable rendering like
    ["(ID:int, desc:str)"]. *)
val to_string : t -> string

(** [ty_to_string ty]. *)
val ty_to_string : ty -> string
