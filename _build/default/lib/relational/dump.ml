let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 't' -> Buffer.add_char buf '\t'
       | 'n' -> Buffer.add_char buf '\n'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let value_to_field = function
  | Value.Null -> "\\N"
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Str s -> escape s

let field_to_value ty field =
  if field = "\\N" then Value.Null
  else
    match ty with
    | Schema.TInt -> Value.Int (int_of_string field)
    | Schema.TFloat -> Value.Float (float_of_string field)
    | Schema.TStr -> Value.Str (unescape field)

let ty_of_string = function
  | "int" -> Schema.TInt
  | "float" -> Schema.TFloat
  | "str" -> Schema.TStr
  | s -> failwith ("Dump: unknown column type " ^ s)

let save_table table ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Table.schema table in
      Printf.fprintf oc "table %s\n" (Table.name table);
      let cols =
        Array.to_list (Schema.columns schema)
        |> List.map (fun (c : Schema.column) -> c.Schema.name ^ ":" ^ Schema.ty_to_string c.Schema.ty)
      in
      Printf.fprintf oc "schema %s\n" (String.concat "," cols);
      Printf.fprintf oc "pk %s\n" (match Table.primary_key table with Some c -> c | None -> "-");
      Table.iter
        (fun _ tuple ->
          let fields = Array.to_list (Array.map value_to_field tuple) in
          output_string oc (String.concat "\t" fields);
          output_char oc '\n')
        table)

let split_line line = String.split_on_char '\t' line

let load_table ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header prefix =
        let line = input_line ic in
        if String.length line < String.length prefix || String.sub line 0 (String.length prefix) <> prefix
        then failwith (Printf.sprintf "Dump.load_table(%s): expected '%s' line" path prefix)
        else String.sub line (String.length prefix) (String.length line - String.length prefix)
      in
      let name = header "table " in
      let schema_line = header "schema " in
      let pk_line = header "pk " in
      let columns =
        String.split_on_char ',' schema_line
        |> List.map (fun part ->
               match String.index_opt part ':' with
               | Some i ->
                   {
                     Schema.name = String.sub part 0 i;
                     ty = ty_of_string (String.sub part (i + 1) (String.length part - i - 1));
                   }
               | None -> failwith ("Dump.load_table: bad column spec " ^ part))
      in
      let schema = Schema.make columns in
      let primary_key = if pk_line = "-" then None else Some pk_line in
      let table = Table.create ~name ~schema ?primary_key () in
      let tys = Array.map (fun (c : Schema.column) -> c.Schema.ty) (Schema.columns schema) in
      (try
         (* Every written row is exactly one line (newlines are escaped),
            so read them all; an empty line is a legitimate single-column
            empty string. *)
         while true do
           let line = input_line ic in
           let fields = Array.of_list (split_line line) in
           if Array.length fields <> Array.length tys then
             failwith (Printf.sprintf "Dump.load_table(%s): arity mismatch" path);
           Table.insert table (Array.map2 field_to_value tys fields)
         done
       with End_of_file -> ());
      table)

let save catalog ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun table -> save_table table ~path:(Filename.concat dir (Table.name table ^ ".tbl")))
    (Catalog.tables catalog)

let load ~dir =
  let catalog = Catalog.create () in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.iter (fun file ->
         if Filename.check_suffix file ".tbl" then
           Catalog.add catalog (load_table ~path:(Filename.concat dir file)));
  catalog
