module Key = struct
  type t = Value.t array

  let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 19 k

  let compare a b =
    let rec loop i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    if Array.length a <> Array.length b then Int.compare (Array.length a) (Array.length b) else loop 0
end

module KeyTbl = Hashtbl.Make (Key)

type kind = Hash | Sorted

type t = {
  kind : kind;
  cols : int array;
  hash : int Topo_util.Dyn.t KeyTbl.t;
  (* For Sorted: entries ordered by key then row number. *)
  sorted : (Key.t * int) array;
}

let build ~kind ~cols rows =
  let hash = KeyTbl.create (Array.length rows) in
  Array.iteri
    (fun rowno tuple ->
      let key = Tuple.key tuple cols in
      match KeyTbl.find_opt hash key with
      | Some bucket -> Topo_util.Dyn.push bucket rowno
      | None ->
          let bucket = Topo_util.Dyn.create () in
          Topo_util.Dyn.push bucket rowno;
          KeyTbl.add hash key bucket)
    rows;
  let sorted =
    match kind with
    | Hash -> [||]
    | Sorted ->
        let entries = Array.mapi (fun rowno tuple -> (Tuple.key tuple cols, rowno)) rows in
        Array.sort
          (fun (ka, ra) (kb, rb) ->
            let c = Key.compare ka kb in
            if c <> 0 then c else Int.compare ra rb)
          entries;
        entries
  in
  { kind; cols; hash; sorted }

let kind t = t.kind

let cols t = Array.copy t.cols

let probe t key =
  match KeyTbl.find_opt t.hash key with
  | Some bucket -> Topo_util.Dyn.to_list bucket
  | None -> []

let probe_count t key =
  match KeyTbl.find_opt t.hash key with
  | Some bucket -> Topo_util.Dyn.length bucket
  | None -> 0

let ordered_rows ?(desc = false) t =
  match t.kind with
  | Hash -> invalid_arg "Index.ordered_rows: hash index has no order"
  | Sorted ->
      let n = Array.length t.sorted in
      if desc then Array.init n (fun i -> snd t.sorted.(n - 1 - i))
      else Array.map snd t.sorted

let distinct_keys t = KeyTbl.length t.hash

let probe_cost t =
  match t.kind with
  | Hash -> 1.0
  | Sorted ->
      let n = max 2 (Array.length t.sorted) in
      Float.log2 (float_of_int n)

let probe_bucket t key =
  match KeyTbl.find_opt t.hash key with
  | Some bucket -> (Topo_util.Dyn.length bucket, Topo_util.Dyn.get bucket)
  | None -> (0, fun _ -> invalid_arg "Index.probe_bucket: empty bucket")
