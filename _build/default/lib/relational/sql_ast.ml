type agg_kind = Count_star | Count | Sum | Min | Max | Avg

type expr =
  | Column of string list
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Cmp of Expr.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Contains of expr * string
  | Exists of select
  | Not_exists of select
  | Agg of agg_kind * expr option

and select = {
  distinct : bool;
  items : (expr * string option) list;
  from : (string * string) list;
  joins : (string * string * string * expr option) list;
  where : expr option;
  group_by : expr list;
}

type query = {
  selects : select list;
  order_by : (expr * bool) list;
  fetch : int option;
}

let cmp_to_string = function
  | Expr.Eq -> "="
  | Expr.Ne -> "<>"
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let rec expr_to_string = function
  | Column segs -> String.concat "." segs
  | Int_lit n -> string_of_int n
  | Float_lit f -> Printf.sprintf "%g" f
  | String_lit s -> "'" ^ s ^ "'"
  | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (expr_to_string a) (cmp_to_string op) (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> "NOT " ^ expr_to_string e
  | Contains (e, kw) -> Printf.sprintf "%s.ct('%s')" (expr_to_string e) kw
  | Exists _ -> "EXISTS (...)"
  | Not_exists _ -> "NOT EXISTS (...)"
  | Agg (kind, e) ->
      let name =
        match kind with
        | Count_star | Count -> "COUNT"
        | Sum -> "SUM"
        | Min -> "MIN"
        | Max -> "MAX"
        | Avg -> "AVG"
      in
      let arg = match (kind, e) with Count_star, _ -> "*" | _, Some e -> expr_to_string e | _, None -> "*" in
      Printf.sprintf "%s(%s)" name arg
