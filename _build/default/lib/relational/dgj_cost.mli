(** Cost model for stacks of DGJ operators (Sections 5.4.2 and 5.4.3).

    The model prices a plan that feeds [m] groups of tuples (group [i] has
    [cards.(i)] tuples, in processing order — score order for topology
    queries) through a stack of [n] DGJ operators, stopping after [k] groups
    have produced a result.  Each level [i] of the stack is described by the
    statistics of Section 5.4.3:

    - [n_inner]: cardinality N_i of the inner relation,
    - [probe_cost]: index probe cost I_i,
    - [pred_sel]: local predicate selectivity rho_i,
    - [join_sel]: join selectivity s_i.

    Two formulas in the paper are typos which we repair (and note in
    DESIGN.md / code comments):

    - Lemma 1 as printed gives x_n = 0 because x_{n+1} = 0 zeroes every
      term; the base case must be x_{n+1} = 1 (a tuple surviving the whole
      stack {e is} a result).  We also weight by the binomial coefficient
      the paper omits.
    - Theorem 4 uses rho_l where the success probability of an input tuple
      is x_l; we use x_l. *)

type level = { n_inner : int; probe_cost : float; pred_sel : float; join_sel : float }

type input = {
  cards : int array;  (** Card_i per group, in processing order *)
  levels : level array;  (** bottom-up stack of DGJ operators *)
  k : int;  (** desired number of result groups *)
  per_group_overhead : float;  (** fixed cost of expanding one group (e.g. the TID probe into the fact table) *)
}

(** [hit_probabilities levels] is the array x_1..x_{n+1} of Lemma 1:
    [x.(i)] is the probability that a tuple entering level [i] (0-based)
    yields at least one plan result. *)
val hit_probabilities : level array -> float array

(** [probe_costs levels] is delta_1..delta_{n+1} of Lemma 2: expected index
    probe cost charged to one level-[i] input tuple that yields no result. *)
val probe_costs : level array -> float array

(** [group_params input] is the per-group [(np_i, nc_i, ec_i)] of Theorems
    2-4. *)
val group_params : input -> (float * float * float) array

(** [expected_cost input] is E[Z^k_{1:m}] of Theorem 1, computed by dynamic
    programming over (group, remaining-k). *)
val expected_cost : input -> float

(** [expected_groups_examined input] is the expected number of groups the
    plan opens before finding [k] results (diagnostic; reported by the
    optimizer's explain output). *)
val expected_groups_examined : input -> float
