(** Name resolution and planning for parsed SQL.

    The binder resolves table aliases and column names against a catalog,
    classifies WHERE conjuncts into local predicates (pushed into scans),
    equi-join edges (turned into hash joins over a connected greedy join
    order), correlated [\[NOT\] EXISTS] subqueries (decorrelated into
    semi/anti joins on their equality correlations), and residual filters.
    The result is a {!Physical.t} plan. *)

exception Bind_error of string

(** [plan catalog query] builds an executable plan for the full query
    (UNION chain, ORDER BY, FETCH FIRST). *)
val plan : Catalog.t -> Sql_ast.query -> Physical.t

(** [plan_select catalog select] plans a single SELECT block (no UNION /
    ORDER BY tail); exposed for tests. *)
val plan_select : Catalog.t -> Sql_ast.select -> Physical.t
