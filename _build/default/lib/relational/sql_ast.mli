(** Abstract syntax for the SQL dialect.

    The dialect covers exactly what the paper's queries (SQL1-SQL6) need:
    [SELECT \[DISTINCT\]] with expression items and [AS] aliases, comma-style
    and [JOIN ... ON] from-lists, [WHERE] with [AND]/[OR]/[NOT],
    comparisons, the keyword-containment predicate [col.ct('word')],
    correlated [\[NOT\] EXISTS] subqueries, [UNION], [ORDER BY ... DESC] and
    [FETCH FIRST k ROWS ONLY]. *)

type agg_kind = Count_star | Count | Sum | Min | Max | Avg

type expr =
  | Column of string list  (** qualified name segments, e.g. [\["P"; "desc"\]] *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Cmp of Expr.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Contains of expr * string  (** [e.ct('kw')] *)
  | Exists of select
  | Not_exists of select
  | Agg of agg_kind * expr option
      (** [COUNT(STAR)], [SUM(e)], ... — allowed in select items only *)

and select = {
  distinct : bool;
  items : (expr * string option) list;  (** expression, optional AS alias *)
  from : (string * string) list;  (** table name, alias (alias = name when omitted) *)
  joins : (string * string * string * expr option) list;
      (** base alias, joined table, joined alias, optional ON condition;
          an absent condition is a natural join on shared column names, and
          the joined alias then also names the combined relation (the
          paper's ["Uni_encodes JOIN Uni_contains as PUD"]) *)
  where : expr option;
  group_by : expr list;  (** GROUP BY keys; empty means no grouping *)
}

type query = {
  selects : select list;  (** members of the UNION chain, at least one *)
  order_by : (expr * bool) list;  (** expression, descending? *)
  fetch : int option;
}

(** [expr_to_string e] round-trips for error messages. *)
val expr_to_string : expr -> string
