type level = { n_inner : int; probe_cost : float; pred_sel : float; join_sel : float }

type input = {
  cards : int array;
  levels : level array;
  k : int;
  per_group_overhead : float;
}

let expected_matches level =
  (* K_i: how many inner tuples one outer tuple joins with.  For the
     foreign-key joins of topology plans this is 1. *)
  let k = level.join_sel *. float_of_int level.n_inner in
  if k < 1.0 then 1.0 else Float.round k

(* Binomial(n, p) expectation of f(j): sum_j C(n,j) p^j (1-p)^(n-j) f(j).
   n is small (K_i), so the direct sum is fine; we walk the probability
   mass recursively to avoid computing large binomial coefficients. *)
let binomial_expect n p f =
  let n = int_of_float n in
  if n <= 0 then f 0
  else begin
    (* Iteratively: P(j) = C(n,j) p^j (1-p)^(n-j). *)
    let q = 1.0 -. p in
    let acc = ref 0.0 in
    let prob = ref (Float.pow q (float_of_int n)) in
    for j = 0 to n do
      acc := !acc +. (!prob *. f j);
      (* P(j+1) = P(j) * (n-j)/(j+1) * p/q *)
      if j < n then
        prob :=
          if q = 0.0 then if j + 1 = n then 1.0 else 0.0
          else !prob *. (float_of_int (n - j) /. float_of_int (j + 1)) *. (p /. q)
    done;
    !acc
  end

let hit_probabilities levels =
  let n = Array.length levels in
  let x = Array.make (n + 1) 1.0 in
  (* Paper's Lemma 1 with the base case repaired: x_{n+1} = 1. *)
  for i = n - 1 downto 0 do
    let level = levels.(i) in
    let k = expected_matches level in
    x.(i) <-
      binomial_expect k level.pred_sel (fun j -> 1.0 -. Float.pow (1.0 -. x.(i + 1)) (float_of_int j))
  done;
  x

let probe_costs levels =
  let n = Array.length levels in
  let delta = Array.make (n + 1) 0.0 in
  (* Lemma 2 closed form: delta_i = I_i + rho_i * K_i * delta_{i+1}. *)
  for i = n - 1 downto 0 do
    let level = levels.(i) in
    let k = expected_matches level in
    delta.(i) <- level.probe_cost +. (level.pred_sel *. k *. delta.(i + 1))
  done;
  delta

(* Truncated sum S(h, q) = sum_{j=1}^{h} (j-1) q^{j-1}; the expected number
   of failing tuples processed before the first success, unnormalized.
   Closed form: S = q (1 - h q^{h-1} + (h-1) q^h) / (1-q)^2, with the
   degenerate q -> 1 limit h(h-1)/2. *)
let failure_weight h q =
  let hf = float_of_int h in
  if q >= 1.0 -. 1e-12 then hf *. (hf -. 1.0) /. 2.0
  else if q <= 0.0 then 0.0
  else
    let qh1 = Float.pow q (hf -. 1.0) in
    let qh = qh1 *. q in
    q *. (1.0 -. (hf *. qh1) +. ((hf -. 1.0) *. qh)) /. ((1.0 -. q) *. (1.0 -. q))

(* Theorem 4 (with x_l in place of the paper's rho_l as the probability that
   an input tuple produces a result):

     EC_{l:n}(h) = sum_{j=1}^{h} x_l (1-x_l)^{j-1}
                     [ (j-1) delta_l + I_l + EC_{l+1:n}(K_l) ]
     EC_{n+1:n}(h) = 0

   The bracket depends on j only through (j-1) delta_l, so
     EC_{l:n}(h) = (1-(1-x_l)^h) (I_l + EC_{l+1:n}(K_l))
                   + x_l delta_l S(h, 1-x_l). *)
let ec_machinery levels =
  let n = Array.length levels in
  let x = hit_probabilities levels in
  let delta = probe_costs levels in
  (* upper.(l) = EC_{l+1:n}(K_l), the cost incurred above level l by the
     first successful tuple's matches. *)
  let upper = Array.make n 0.0 in
  let ec_at l h =
    if n = 0 then 0.0
    else
      let level = levels.(l) in
      let q = 1.0 -. x.(l) in
      ((1.0 -. Float.pow q (float_of_int h)) *. (level.probe_cost +. upper.(l)))
      +. (x.(l) *. delta.(l) *. failure_weight h q)
  in
  for l = n - 1 downto 0 do
    if l = n - 1 then upper.(l) <- 0.0
    else upper.(l) <- ec_at (l + 1) (int_of_float (expected_matches levels.(l)))
  done;
  (x, delta, ec_at)


let group_params input =
  let n = Array.length input.levels in
  let x, delta, ec_at = ec_machinery input.levels in
  let x1 = if n = 0 then 1.0 else x.(0) in
  let delta1 = if n = 0 then 0.0 else delta.(0) in
  Array.map
    (fun card ->
      let cardf = float_of_int card in
      let np = Float.pow (1.0 -. x1) cardf in
      (* Theorem 3: cost of exhausting the group without a result, weighted
         by its probability. *)
      let nc = np *. cardf *. delta1 in
      let ec = if n = 0 then 0.0 else ec_at 0 card in
      (np, nc +. input.per_group_overhead, ec))
    input.cards

let expected_cost input =
  let params = group_params input in
  let m = Array.length params in
  let k = input.k in
  (* E[Z^k'_{l:m}] by DP; E = 0 when l > m or k' = 0 (Theorem 1). *)
  let dp = Array.make_matrix (m + 1) (k + 1) 0.0 in
  for l = m - 1 downto 0 do
    for k' = 1 to k do
      let np, nc, ec = params.(l) in
      dp.(l).(k') <-
        ec +. ((1.0 -. np) *. dp.(l + 1).(k' - 1)) +. nc +. (np *. dp.(l + 1).(k'))
    done
  done;
  if m = 0 || k = 0 then 0.0 else dp.(0).(k)

let expected_groups_examined input =
  let params = group_params input in
  let m = Array.length params in
  let k = input.k in
  let dp = Array.make_matrix (m + 1) (k + 1) 0.0 in
  for l = m - 1 downto 0 do
    for k' = 1 to k do
      let np, _, _ = params.(l) in
      dp.(l).(k') <- 1.0 +. ((1.0 -. np) *. dp.(l + 1).(k' - 1)) +. (np *. dp.(l + 1).(k'))
    done
  done;
  if m = 0 || k = 0 then 0.0 else dp.(0).(k)
