(** Runtime values of the relational engine.

    The Biozon subset we model needs integers (object ids), strings
    (descriptions, type attributes) and floats (topology scores); [Null]
    rounds out the lattice for outer-ish operations.  Values are immutable
    and totally ordered with [Null] smallest, then ints/floats numerically,
    then strings. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

(** Total order used by sort operators and sorted indexes. *)
val compare : t -> t -> int

(** Structural equality consistent with {!compare}. *)
val equal : t -> t -> bool

(** Hash consistent with {!equal}; used by hash joins and hash indexes. *)
val hash : t -> int

(** [to_string v] renders for display ([Null] as ["NULL"]). *)
val to_string : t -> string

(** [as_int v] extracts an integer. @raise Invalid_argument otherwise. *)
val as_int : t -> int

(** [as_float v] extracts a float, coercing [Int]. @raise Invalid_argument
    otherwise. *)
val as_float : t -> float

(** [as_string v] extracts a string. @raise Invalid_argument otherwise. *)
val as_string : t -> string

(** [is_null v]. *)
val is_null : t -> bool

(** [width v] is the estimated storage footprint in bytes, used for the
    space accounting of Table 1 (ints 8, floats 8, strings length + 8). *)
val width : t -> int
