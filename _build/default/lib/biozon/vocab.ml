let protein_keywords = [ ("kinase", 0.15); ("enzyme", 0.50); ("protein", 0.85) ]

let interaction_keywords = [ ("inhibition", 0.15); ("binding", 0.50); ("complex", 0.85) ]

let keyword_for kind sel =
  let table = match kind with `Protein -> protein_keywords | `Interaction -> interaction_keywords in
  let idx = match sel with `Selective -> 0 | `Medium -> 1 | `Unselective -> 2 in
  fst (List.nth table idx)

let dna_types = [ ("mRNA", 0.5); ("EST", 0.3); ("genomic", 0.2) ]

let fillers =
  [|
    "ubiquitin"; "conjugating"; "homolog"; "putative"; "hypothetical"; "variant"; "sapiens";
    "transcription"; "factor"; "regulatory"; "membrane"; "nuclear"; "mitochondrial"; "ribosomal";
    "polymerase"; "synthase"; "receptor"; "transporter"; "domain"; "zinc"; "finger"; "helix";
    "carrier"; "chain"; "alpha"; "beta"; "gamma"; "precursor"; "isoform"; "subunit"; "dependent";
    "induced"; "repressor"; "activator"; "cds"; "partial"; "fragment"; "chromosome"; "operon";
  |]

let description prng ~keywords =
  let n = Topo_util.Prng.int_in_range prng ~lo:3 ~hi:6 in
  let words = ref [] in
  for _ = 1 to n do
    words := Topo_util.Prng.choose prng fillers :: !words
  done;
  List.iter
    (fun (kw, p) -> if Topo_util.Prng.chance prng p then words := kw :: !words)
    keywords;
  (* Shuffle so keywords do not always lead. *)
  let arr = Array.of_list !words in
  Topo_util.Prng.shuffle prng arr;
  String.concat " " (Array.to_list arr)

let dna_type prng =
  let u = Topo_util.Prng.float prng in
  let rec pick acc = function
    | [] -> fst (List.hd dna_types)
    | (ty, w) :: rest -> if u < acc +. w then ty else pick (acc +. w) rest
  in
  pick 0.0 dna_types
