(** The exact example database of Figure 3 / Figure 6.

    Four proteins, three DNAs, four Unigene clusters, and the eleven
    relationship rows of Figure 6 (edge ids preserved: "Uni_encodes 25",
    "Encodes 44", ...).  This tiny instance drives every worked example in
    Sections 1-4:

    - PS(78, 215, 3) = three paths in two equivalence classes,
    - 3-Top(78, 215) = the complex topologies T3 and T4,
    - 3-Top(32, 214) = the simple encodes path T1,
    - 3-Top(44, 742) = the P-U-D path T2,
    - query Q1 = (Protein "enzyme", DNA type mRNA) returns T1..T4.

    Tests and the quickstart example check these published facts
    verbatim. *)

(** [catalog ()] is a fresh catalog holding exactly the Figure 3 data. *)
val catalog : unit -> Topo_sql.Catalog.t

(** The protein / DNA ids the worked examples use. *)
val p32 : int

val p34 : int

val p44 : int

val p78 : int

val d214 : int

val d215 : int

val d742 : int

val u103 : int

val u150 : int

val u188 : int

val u194 : int
