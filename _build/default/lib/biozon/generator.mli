(** Synthetic Biozon instance generator.

    The real Biozon dump is unavailable, so experiments run on a generated
    instance engineered to reproduce the statistical properties the paper's
    techniques exploit (DESIGN.md, substitutions):

    - {b Zipfian topology frequency} (Figure 11): most entity pairs are
      related by one simple path; sharing of Unigene clusters, long DNAs
      and interaction partners follows skewed (Zipf) distributions, so a
      few pairs are related in rich, rare ways.
    - {b Simple frequent topologies} (Figure 12): the bulk of edges form
      P-D / P-U-D / P-I-D patterns.
    - {b The Figure 16 motif}: operon-style DNAs encode several proteins,
      and consecutive operon proteins interact with probability
      [p_operon_interaction]; some interactions also touch the DNA
      (self-regulation, Figure 2's third topology).
    - {b Weak relationships} (Section 6.2.3): EST-containing Unigene
      clusters create P-D-P-U-D paths at l = 4.
    - {b Calibrated predicate selectivities} for Table 2 via
      {!Vocab.protein_keywords} / {!Vocab.interaction_keywords}.

    Generation is deterministic from [seed]. *)

type params = {
  seed : int;
  n_proteins : int;
  n_unigenes : int;
  n_interactions : int;
  n_families : int;
  n_structures : int;
  n_pathways : int;
  p_operon_interaction : float;  (** interaction between consecutive operon proteins *)
  p_self_regulation : float;  (** interaction also linking a protein's own DNA *)
  p_interaction_dna : float;  (** interaction touching some DNA *)
  zipf_s : float;  (** skew of shared-entity popularity *)
}

(** Defaults sized so the full AllTops precomputation (l = 3) runs in
    seconds: 1200 proteins and proportional sibling populations.  DNAs are
    derived from proteins (mRNAs, operons, genomic sequences), roughly
    0.9 per protein. *)
val default : params

(** [scale f params] multiplies every population by [f] (at least 1). *)
val scale : float -> params -> params

(** [generate params] builds the catalog.  Object ids are globally unique
    across all entity tables; relationship rows get their own id space. *)
val generate : params -> Topo_sql.Catalog.t

(** [summary catalog] is [(table, row_count)] for every table. *)
val summary : Topo_sql.Catalog.t -> (string * int) list
