open Topo_sql

let p32 = 32

let p34 = 34

let p44 = 44

let p78 = 78

let d214 = 214

let d215 = 215

let d742 = 742

let u103 = 103

let u150 = 150

let u188 = 188

let u194 = 194

let catalog () =
  let cat = Bschema.make_catalog () in
  let insert name values = Table.insert_values (Catalog.find cat name) values in
  let i n = Value.Int n and s v = Value.Str v in
  (* Proteins (Figure 3, first Definitions table). *)
  insert "Protein" [ i 32; s "Ubiquitin-conjugating enzyme UBCi" ];
  insert "Protein" [ i 78; s "Ubiquitin-conjugating enzyme variant MMS2" ];
  insert "Protein" [ i 34; s "vitamin D inducible protein [Homo sapiens]" ];
  insert "Protein" [ i 44; s "ubiquitin-conjugating enzyme E2B (homolog)" ];
  (* Unigene clusters (second Definitions table). *)
  insert "Unigene" [ i 103; s "ubiquitin-conjugating enzyme E2" ];
  insert "Unigene" [ i 150; s "hypothetical protein FLJ13855" ];
  insert "Unigene" [ i 188; s "ubiquitin-conjugating enzyme E2S" ];
  insert "Unigene" [ i 194; s "ubiquitin-conjugating enzyme E2S" ];
  (* DNAs (third table, all mRNA). *)
  insert "DNA" [ i 214; s "Oryctolagus cuniculus ubiquitin-conjugating enzyme UBCi mRNA"; s "mRNA" ];
  insert "DNA" [ i 215; s "Homo sapiens MMS2 (MMS2) mRNA, complete cds."; s "mRNA" ];
  insert "DNA" [ i 742; s "Human ubiquitin carrier protein (E2-EPF) mRNA, complete cds"; s "mRNA" ];
  (* Relationships with the edge ids of Figure 6. *)
  insert "Encodes" [ i 44; i 32; i 214 ];
  insert "Encodes" [ i 57; i 34; i 215 ];
  insert "Uni_encodes" [ i 25; i 103; i 78 ];
  insert "Uni_encodes" [ i 14; i 103; i 34 ];
  insert "Uni_encodes" [ i 31; i 150; i 78 ];
  insert "Uni_encodes" [ i 42; i 188; i 44 ];
  insert "Uni_encodes" [ i 11; i 194; i 44 ];
  insert "Uni_contains" [ i 62; i 103; i 215 ];
  insert "Uni_contains" [ i 93; i 150; i 215 ];
  insert "Uni_contains" [ i 121; i 188; i 742 ];
  insert "Uni_contains" [ i 37; i 194; i 742 ];
  cat
