open Topo_sql

type entity = { e_table : string; extra_cols : (string * Schema.ty) list }

type relationship = {
  r_table : string;
  rel_name : string;
  from_type : string;
  from_col : string;
  to_type : string;
  to_col : string;
}

let entities =
  [
    { e_table = "Protein"; extra_cols = [] };
    { e_table = "DNA"; extra_cols = [ ("type", Schema.TStr) ] };
    { e_table = "Unigene"; extra_cols = [] };
    { e_table = "Interaction"; extra_cols = [] };
    { e_table = "Family"; extra_cols = [] };
    { e_table = "Structure"; extra_cols = [] };
    { e_table = "Pathway"; extra_cols = [] };
  ]

let relationships =
  [
    {
      r_table = "Encodes";
      rel_name = "encodes";
      from_type = "Protein";
      from_col = "PID";
      to_type = "DNA";
      to_col = "DID";
    };
    {
      r_table = "Uni_encodes";
      rel_name = "uni_encodes";
      from_type = "Unigene";
      from_col = "UID";
      to_type = "Protein";
      to_col = "PID";
    };
    {
      r_table = "Uni_contains";
      rel_name = "uni_contains";
      from_type = "Unigene";
      from_col = "UID";
      to_type = "DNA";
      to_col = "DID";
    };
    {
      r_table = "Interacts_protein";
      rel_name = "interacts_p";
      from_type = "Protein";
      from_col = "PID";
      to_type = "Interaction";
      to_col = "IID";
    };
    {
      r_table = "Interacts_dna";
      rel_name = "interacts_d";
      from_type = "DNA";
      from_col = "DID";
      to_type = "Interaction";
      to_col = "IID";
    };
    {
      r_table = "Belongs";
      rel_name = "belongs";
      from_type = "Protein";
      from_col = "PID";
      to_type = "Family";
      to_col = "FID";
    };
    {
      r_table = "Manifest";
      rel_name = "manifest";
      from_type = "Protein";
      from_col = "PID";
      to_type = "Structure";
      to_col = "SID";
    };
    {
      r_table = "Pathway_member";
      rel_name = "pathway_member";
      from_type = "Family";
      from_col = "FID";
      to_type = "Pathway";
      to_col = "WID";
    };
  ]

let relationship_named name =
  match List.find_opt (fun r -> r.rel_name = name) relationships with
  | Some r -> r
  | None -> raise Not_found

let make_catalog () =
  let cat = Catalog.create () in
  List.iter
    (fun e ->
      let cols =
        { Schema.name = "ID"; ty = Schema.TInt }
        :: { Schema.name = "desc"; ty = Schema.TStr }
        :: List.map (fun (name, ty) -> { Schema.name; ty }) e.extra_cols
      in
      ignore (Catalog.create_table cat ~name:e.e_table ~schema:(Schema.make cols) ~primary_key:"ID" ()))
    entities;
  List.iter
    (fun r ->
      let cols =
        [
          { Schema.name = "ID"; ty = Schema.TInt };
          { Schema.name = r.from_col; ty = Schema.TInt };
          { Schema.name = r.to_col; ty = Schema.TInt };
        ]
      in
      ignore (Catalog.create_table cat ~name:r.r_table ~schema:(Schema.make cols) ~primary_key:"ID" ()))
    relationships;
  cat

let schema_graph () =
  let g = Topo_graph.Schema_graph.create () in
  List.iter (fun e -> Topo_graph.Schema_graph.add_entity g e.e_table) entities;
  List.iter
    (fun r ->
      Topo_graph.Schema_graph.add_relationship g ~name:r.rel_name ~from_:r.from_type ~to_:r.to_type)
    relationships;
  g

let data_graph catalog interner =
  let dg = Topo_graph.Data_graph.create interner in
  List.iter
    (fun e ->
      let table = Catalog.find catalog e.e_table in
      Table.iter (fun _ tuple -> Topo_graph.Data_graph.add_entity dg ~ty:e.e_table ~id:(Value.as_int tuple.(0))) table)
    entities;
  List.iter
    (fun r ->
      let table = Catalog.find catalog r.r_table in
      Table.iter
        (fun _ tuple ->
          Topo_graph.Data_graph.add_relationship dg ~rel:r.rel_name ~a:(Value.as_int tuple.(1))
            ~b:(Value.as_int tuple.(2)))
        table)
    relationships;
  dg

let entity_of_id catalog id =
  List.find_map
    (fun e ->
      let table = Catalog.find catalog e.e_table in
      Option.map (fun tuple -> (e.e_table, tuple)) (Table.find_by_pk table (Value.Int id)))
    entities
