open Topo_sql
module Prng = Topo_util.Prng
module Zipf = Topo_util.Zipf

type params = {
  seed : int;
  n_proteins : int;
  n_unigenes : int;
  n_interactions : int;
  n_families : int;
  n_structures : int;
  n_pathways : int;
  p_operon_interaction : float;
  p_self_regulation : float;
  p_interaction_dna : float;
  zipf_s : float;
}

let default =
  {
    seed = 20070415;
    n_proteins = 1200;
    n_unigenes = 700;
    n_interactions = 420;
    n_families = 150;
    n_structures = 200;
    n_pathways = 60;
    p_operon_interaction = 0.35;
    p_self_regulation = 0.08;
    p_interaction_dna = 0.25;
    zipf_s = 1.1;
  }

let scale f p =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    p with
    n_proteins = s p.n_proteins;
    n_unigenes = s p.n_unigenes;
    n_interactions = s p.n_interactions;
    n_families = s p.n_families;
    n_structures = s p.n_structures;
    n_pathways = s p.n_pathways;
  }

type state = {
  cat : Catalog.t;
  prng : Prng.t;
  mutable next_oid : int;  (* entity object ids *)
  mutable next_eid : int;  (* relationship row ids *)
}

let fresh_oid st =
  let id = st.next_oid in
  st.next_oid <- id + 1;
  id

let add_edge st table from_id to_id =
  let id = st.next_eid in
  st.next_eid <- id + 1;
  Table.insert_values (Catalog.find st.cat table) [ Value.Int id; Value.Int from_id; Value.Int to_id ]

let add_entity st table values =
  Table.insert_values (Catalog.find st.cat table) values

let generate p =
  let st =
    { cat = Bschema.make_catalog (); prng = Prng.create p.seed; next_oid = 1000; next_eid = 1 }
  in
  let prng = st.prng in
  let i n = Value.Int n and s v = Value.Str v in

  (* --- families, structures, pathways -------------------------------- *)
  let families = Array.init p.n_families (fun _ -> fresh_oid st) in
  Array.iter
    (fun id -> add_entity st "Family" [ i id; s (Vocab.description prng ~keywords:[]) ])
    families;
  let structures = Array.init p.n_structures (fun _ -> fresh_oid st) in
  Array.iter
    (fun id -> add_entity st "Structure" [ i id; s (Vocab.description prng ~keywords:[]) ])
    structures;
  let pathways = Array.init p.n_pathways (fun _ -> fresh_oid st) in
  Array.iter
    (fun id -> add_entity st "Pathway" [ i id; s (Vocab.description prng ~keywords:[]) ])
    pathways;
  (* Families join 0-2 pathways. *)
  let pathway_zipf = Zipf.create ~n:(max 1 p.n_pathways) ~s:p.zipf_s in
  Array.iter
    (fun fid ->
      let n = Prng.int prng 3 in
      let seen = ref [] in
      for _ = 1 to n do
        let w = pathways.(Zipf.sample pathway_zipf prng - 1) in
        if not (List.mem w !seen) then begin
          seen := w :: !seen;
          add_edge st "Pathway_member" fid w
        end
      done)
    families;

  (* --- proteins and their DNAs ---------------------------------------- *)
  let proteins = Array.init p.n_proteins (fun _ -> fresh_oid st) in
  Array.iter
    (fun id -> add_entity st "Protein" [ i id; s (Vocab.description prng ~keywords:Vocab.protein_keywords) ])
    proteins;
  (* Families and structures are shared, but only mildly hub-like: a pure
     Zipf assignment makes the top family relate most protein pairs through
     P-F-P and floods the exception tables with multi-class pairs. *)
  let family_zipf = Zipf.create ~n:(max 1 p.n_families) ~s:p.zipf_s in
  let structure_zipf = Zipf.create ~n:(max 1 p.n_structures) ~s:p.zipf_s in
  let pick_mixed arr zipf =
    if Prng.chance prng 0.5 then arr.(Prng.int prng (Array.length arr))
    else arr.(Zipf.sample zipf prng - 1)
  in
  Array.iter
    (fun pid ->
      add_edge st "Belongs" pid (pick_mixed families family_zipf);
      if Prng.chance prng 0.3 then add_edge st "Manifest" pid (pick_mixed structures structure_zipf))
    proteins;

  (* DNAs are created on demand: dedicated mRNAs, operon DNAs encoding
     several proteins, and long genomic DNAs shared by many. *)
  let dnas = Topo_util.Dyn.create () in
  let new_dna ?ty () =
    let id = fresh_oid st in
    let ty = match ty with Some t -> t | None -> Vocab.dna_type prng in
    add_entity st "DNA" [ i id; s (Vocab.description prng ~keywords:[]); s ty ];
    Topo_util.Dyn.push dnas id;
    id
  in
  (* encodes edges, remembered for motif wiring: protein -> its DNAs. *)
  let encodes_of = Hashtbl.create p.n_proteins in
  let encode pid did =
    add_edge st "Encodes" pid did;
    Hashtbl.replace encodes_of pid (did :: Option.value ~default:[] (Hashtbl.find_opt encodes_of pid))
  in
  (* Long genomic DNAs: a Zipf-shared pool (chromosome-like). *)
  let n_genomic = max 1 (p.n_proteins / 60) in
  let genomic = Array.init n_genomic (fun _ -> new_dna ~ty:"genomic" ()) in
  let genomic_zipf = Zipf.create ~n:n_genomic ~s:p.zipf_s in

  let interactions_made = ref 0 in
  let new_interaction () =
    let id = fresh_oid st in
    add_entity st "Interaction" [ i id; s (Vocab.description prng ~keywords:Vocab.interaction_keywords) ];
    incr interactions_made;
    id
  in
  let interact_pp ?with_dna a b =
    let iid = new_interaction () in
    add_edge st "Interacts_protein" a iid;
    if a <> b then add_edge st "Interacts_protein" b iid;
    match with_dna with None -> () | Some did -> add_edge st "Interacts_dna" did iid
  in

  (* Operons: groups of 2-5 consecutive proteins share one DNA; consecutive
     members interact with probability p_operon_interaction — the Figure 16
     motif. *)
  let idx = ref 0 in
  let n = Array.length proteins in
  while !idx < n do
    let remaining = n - !idx in
    let roll = Prng.float prng in
    if roll < 0.12 && remaining >= 2 then begin
      (* operon of 2-5 proteins *)
      let size = min remaining (Prng.int_in_range prng ~lo:2 ~hi:5) in
      let did = new_dna ~ty:"mRNA" () in
      for j = !idx to !idx + size - 1 do
        encode proteins.(j) did
      done;
      for j = !idx to !idx + size - 2 do
        if Prng.chance prng p.p_operon_interaction then begin
          let with_dna = if Prng.chance prng 0.5 then Some did else None in
          interact_pp ?with_dna proteins.(j) proteins.(j + 1)
        end
      done;
      idx := !idx + size
    end
    else begin
      let pid = proteins.(!idx) in
      (* Dedicated mRNA with probability 0.85; also a genomic copy with
         probability 0.25; 5% of proteins have no DNA at all. *)
      if Prng.chance prng 0.95 then begin
        if Prng.chance prng 0.85 then encode pid (new_dna ~ty:"mRNA" ());
        if Prng.chance prng 0.25 then encode pid genomic.(Zipf.sample genomic_zipf prng - 1)
      end;
      incr idx
    end
  done;

  (* Self-regulation: a protein interacting with its own DNA (Figure 2,
     third topology). *)
  Array.iter
    (fun pid ->
      if Prng.chance prng p.p_self_regulation then
        match Hashtbl.find_opt encodes_of pid with
        | Some (did :: _) -> interact_pp ~with_dna:did pid pid
        | Some [] | None -> ())
    proteins;

  (* Remaining interactions: one uniform endpoint, one Zipf-popular (hub
     proteins exist but do not dominate every pair). *)
  let protein_zipf = Zipf.create ~n ~s:p.zipf_s in
  while !interactions_made < p.n_interactions do
    let a = proteins.(Prng.int prng n) in
    let b = proteins.(Zipf.sample protein_zipf prng - 1) in
    if a <> b then begin
      let with_dna =
        if Prng.chance prng p.p_interaction_dna && Topo_util.Dyn.length dnas > 0 then
          Some (Topo_util.Dyn.get dnas (Prng.int prng (Topo_util.Dyn.length dnas)))
        else None
      in
      interact_pp ?with_dna a b
    end
  done;

  (* --- Unigene clusters ------------------------------------------------ *)
  (* A cluster covers 1-3 homologous proteins (Zipf-popular) and contains
     the mRNAs of those proteins (overlap!) plus 0-3 EST DNAs of its own —
     the source of T3/T4-style interactions and of l=4 weak paths. *)
  for _ = 1 to p.n_unigenes do
    let uid = fresh_oid st in
    add_entity st "Unigene" [ i uid; s (Vocab.description prng ~keywords:[]) ];
    (* Mostly one (uniform) member; homolog clusters add Zipf-popular
       extras, so rich sharing exists without popular proteins joining
       every cluster. *)
    let n_members =
      let u = Prng.float prng in
      if u < 0.7 then 1 else if u < 0.9 then 2 else 3
    in
    let members = ref [ proteins.(Prng.int prng n) ] in
    for _ = 2 to n_members do
      let pid = proteins.(Zipf.sample protein_zipf prng - 1) in
      if not (List.mem pid !members) then members := pid :: !members
    done;
    List.iter (fun pid -> add_edge st "Uni_encodes" uid pid) !members;
    (* Contained DNAs: occasionally a member's own mRNA (creating the
       two-class U-D pairs behind topologies T3/T4), but clusters are
       mostly made of their own ESTs, as in Biozon. *)
    List.iter
      (fun pid ->
        match Hashtbl.find_opt encodes_of pid with
        | Some (did :: _) when Prng.chance prng 0.25 -> add_edge st "Uni_contains" uid did
        | Some _ | None -> ())
      !members;
    let n_ests = 1 + Prng.int prng 3 in
    for _ = 1 to n_ests do
      add_edge st "Uni_contains" uid (new_dna ~ty:"EST" ())
    done
  done;

  st.cat

let summary catalog =
  List.map (fun t -> (Table.name t, Table.row_count t)) (Catalog.tables catalog)
