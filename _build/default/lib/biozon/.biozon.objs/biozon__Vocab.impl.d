lib/biozon/vocab.ml: Array List String Topo_util
