lib/biozon/paper_db.ml: Bschema Catalog Table Topo_sql Value
