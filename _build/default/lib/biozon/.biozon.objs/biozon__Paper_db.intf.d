lib/biozon/paper_db.mli: Topo_sql
