lib/biozon/generator.ml: Array Bschema Catalog Hashtbl List Option Table Topo_sql Topo_util Value Vocab
