lib/biozon/vocab.mli: Topo_util
