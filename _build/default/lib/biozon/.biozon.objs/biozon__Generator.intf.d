lib/biozon/generator.mli: Topo_sql
