lib/biozon/bschema.mli: Topo_graph Topo_sql Topo_util
