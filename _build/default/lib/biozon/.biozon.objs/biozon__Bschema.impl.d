lib/biozon/bschema.ml: Array Catalog List Option Schema Table Topo_graph Topo_sql Value
