(** The Biozon schema (Figure 1), reconstructed.

    Seven entity sets and eight relationship sets — the paper's "28 million
    biological objects (stored in seven tables) and 9.6 million binary
    relationships (stored in eight tables)".  The relationship topology is
    chosen so that exactly ten schema paths of length <= 3 connect Proteins
    and DNAs, matching Section 3.1:

    - length 1: P-D (encodes)
    - length 2: P-U-D, P-I-D
    - length 3: P-F-P-D, P-S-P-D, P-I-P-D, P-U-P-D, P-D-P-D, P-D-U-D,
      P-D-I-D

    Pathways attach to Families (Appendix B's FWF / FWFP weak paths) and so
    do not contribute paths of length <= 3 between P and D.

    Every entity table is [ (ID, desc) ] plus DNA's [type] attribute; every
    relationship table is [ (ID, <from>, <to>) ] with its own edge id, so
    instance paths can name the concrete relationship rows they traverse
    (Figure 4 shows edge ids like "Uni_encodes 25"). *)

type entity = { e_table : string; extra_cols : (string * Topo_sql.Schema.ty) list }

type relationship = {
  r_table : string;
  rel_name : string;  (** label used in schema/instance graphs *)
  from_type : string;  (** entity table name *)
  from_col : string;
  to_type : string;
  to_col : string;
}

(** The seven entity sets, in declaration order: Protein, DNA, Unigene,
    Interaction, Family, Structure, Pathway. *)
val entities : entity list

(** The eight relationship sets. *)
val relationships : relationship list

(** [relationship_named name] looks a relationship up by [rel_name].
    @raise Not_found when absent. *)
val relationship_named : string -> relationship

(** [make_catalog ()] creates a fresh catalog with all fifteen (empty)
    tables, primary keys on every ID column. *)
val make_catalog : unit -> Topo_sql.Catalog.t

(** [schema_graph ()] is the schema as a graph for path enumeration. *)
val schema_graph : unit -> Topo_graph.Schema_graph.t

(** [data_graph catalog interner] materializes the instance graph from the
    fifteen tables. *)
val data_graph : Topo_sql.Catalog.t -> Topo_util.Interner.t -> Topo_graph.Data_graph.t

(** [entity_of_id catalog id] finds which entity table holds object [id]
    (object ids are globally unique), as [(table, tuple)]. *)
val entity_of_id : Topo_sql.Catalog.t -> int -> (string * Topo_sql.Tuple.t) option
