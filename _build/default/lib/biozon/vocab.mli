(** Vocabulary for synthetic entity descriptions.

    Descriptions are bags of biological-ish words plus {e calibrated
    keywords}: words injected with a fixed probability so that the Table 2
    predicate grid (selective = 15%, medium = 50%, unselective = 85%) has
    keywords of known selectivity to search for. *)

(** [(keyword, probability)] pairs injected into protein descriptions:
    [("kinase", 0.15); ("enzyme", 0.50); ("protein", 0.85)]. *)
val protein_keywords : (string * float) list

(** Injected into interaction descriptions:
    [("inhibition", 0.15); ("binding", 0.50); ("complex", 0.85)]. *)
val interaction_keywords : (string * float) list

(** [keyword_for kind selectivity] looks the calibrated keyword up;
    [kind] is [`Protein] or [`Interaction], [selectivity] is [`Selective]
    (15%), [`Medium] (50%) or [`Unselective] (85%). *)
val keyword_for : [ `Protein | `Interaction ] -> [ `Selective | `Medium | `Unselective ] -> string

(** DNA [type] attribute values with sampling weights:
    mRNA 0.5, EST 0.3, genomic 0.2. *)
val dna_types : (string * float) list

(** [description prng ~keywords] builds a description: 3-6 filler words,
    plus each calibrated keyword independently with its probability. *)
val description : Topo_util.Prng.t -> keywords:(string * float) list -> string

(** [dna_type prng] samples a DNA type attribute. *)
val dna_type : Topo_util.Prng.t -> string
