type result = {
  count : int;
  topologies : (Lgraph.t * string) list;
  gluings_examined : int;
  truncated : bool;
}

type slot = { slot_id : int; path : int; ty : string }

exception Budget_exhausted

let enumerate interner schema ~from_ ~to_ ~max_len ?(collect = true) ?(max_gluings = 10_000_000) () =
  let paths = Array.of_list (Schema_graph.paths schema ~from_ ~to_ ~max_len) in
  let npaths = Array.length paths in
  if npaths > 20 then
    invalid_arg
      (Printf.sprintf "Glue.enumerate: %d schema paths; subset enumeration infeasible" npaths);
  let node_label ty = Topo_util.Interner.intern interner ("n:" ^ ty) in
  let edge_label rel = Topo_util.Interner.intern interner ("e:" ^ rel) in
  let seen : (string, Lgraph.t) Hashtbl.t = Hashtbl.create 1024 in
  let examined = ref 0 in
  let truncated = ref false in
  (* Endpoint node ids 0 and 1; slots get ids from 2. *)
  let try_subset mask =
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init npaths Fun.id) in
    (* Intermediate slots of every member path. *)
    let slots = ref [] in
    let next_slot = ref 2 in
    let slot_of = Hashtbl.create 16 in
    (* (path, position) -> slot id *)
    List.iter
      (fun pi ->
        let p = paths.(pi) in
        let l = Schema_graph.path_length p in
        for pos = 1 to l - 1 do
          let id = !next_slot in
          incr next_slot;
          Hashtbl.add slot_of (pi, pos) id;
          slots := { slot_id = id; path = pi; ty = p.Schema_graph.types.(pos) } :: !slots
        done)
      members;
    let slots = Array.of_list (List.rev !slots) in
    (* Enumerate partitions: assign each slot to an existing block (same
       type, no same-path member) or a fresh block. *)
    let blocks : slot list array = Array.make (Array.length slots) [] in
    let nblocks = ref 0 in
    let emit () =
      incr examined;
      if !examined > max_gluings then begin
        truncated := true;
        raise Budget_exhausted
      end;
      (* Build the glued graph. *)
      let g = Lgraph.empty () in
      Lgraph.add_node g ~id:0 ~label:(node_label from_);
      Lgraph.add_node g ~id:1 ~label:(node_label to_);
      let block_node = Hashtbl.create 16 in
      (* slot id -> representative node id *)
      for b = 0 to !nblocks - 1 do
        match blocks.(b) with
        | [] -> ()
        | first :: _ as all ->
            Lgraph.add_node g ~id:first.slot_id ~label:(node_label first.ty);
            List.iter (fun s -> Hashtbl.replace block_node s.slot_id first.slot_id) all
      done;
      let resolve pi pos p_len =
        if pos = 0 then 0
        else if pos = p_len then 1
        else Hashtbl.find block_node (Hashtbl.find slot_of (pi, pos))
      in
      List.iter
        (fun pi ->
          let p = paths.(pi) in
          let l = Schema_graph.path_length p in
          for e = 0 to l - 1 do
            let u = resolve pi e l and v = resolve pi (e + 1) l in
            (* A slot glued onto an endpoint cannot occur (endpoints are not
               slots), but two merged neighbors can make u = v only if two
               consecutive positions merged, which same-path merging forbids. *)
            Lgraph.add_edge g ~u ~v ~label:(edge_label p.Schema_graph.rels.(e))
          done)
        members;
      let key = Canon.key g in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key g
    in
    let rec assign i =
      if i >= Array.length slots then emit ()
      else begin
        let s = slots.(i) in
        for b = 0 to !nblocks - 1 do
          let block = blocks.(b) in
          match block with
          | [] -> ()
          | first :: _ ->
              if first.ty = s.ty && not (List.exists (fun m -> m.path = s.path) block) then begin
                blocks.(b) <- s :: block;
                assign (i + 1);
                blocks.(b) <- block
              end
        done;
        (* Fresh block. *)
        let b = !nblocks in
        blocks.(b) <- [ s ];
        incr nblocks;
        assign (i + 1);
        decr nblocks;
        blocks.(b) <- []
      end
    in
    assign 0
  in
  (try
     for mask = 1 to (1 lsl npaths) - 1 do
       try_subset mask
     done
   with Budget_exhausted -> ());
  let topologies =
    if not collect then []
    else
      Hashtbl.fold (fun key g acc -> (g, key) :: acc) seen []
      |> List.sort (fun (a, ka) (b, kb) ->
             let c = Int.compare (Lgraph.node_count a) (Lgraph.node_count b) in
             if c <> 0 then c
             else
               let c = Int.compare (Lgraph.edge_count a) (Lgraph.edge_count b) in
               if c <> 0 then c else compare ka kb)
  in
  { count = Hashtbl.length seen; topologies; gluings_examined = !examined; truncated = !truncated }
