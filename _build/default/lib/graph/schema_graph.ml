type t = {
  mutable entity_order : string list;  (* reverse declaration order *)
  entity_set : (string, unit) Hashtbl.t;
  mutable rels : (string * string * string) list;  (* reverse order *)
  adj : (string, (string * string) list ref) Hashtbl.t;  (* entity -> (rel, other) *)
}

type path = { types : string array; rels : string array }

let create () =
  { entity_order = []; entity_set = Hashtbl.create 16; rels = []; adj = Hashtbl.create 16 }

let add_entity t name =
  if not (Hashtbl.mem t.entity_set name) then begin
    Hashtbl.add t.entity_set name ();
    t.entity_order <- name :: t.entity_order;
    Hashtbl.add t.adj name (ref [])
  end

let add_relationship (t : t) ~name ~from_ ~to_ =
  add_entity t from_;
  add_entity t to_;
  if List.exists (fun (n, f, g) -> n = name && ((f = from_ && g = to_) || (f = to_ && g = from_))) t.rels
  then invalid_arg (Printf.sprintf "Schema_graph.add_relationship: duplicate %s(%s,%s)" name from_ to_);
  t.rels <- (name, from_, to_) :: t.rels;
  let a = Hashtbl.find t.adj from_ and b = Hashtbl.find t.adj to_ in
  a := (name, to_) :: !a;
  if from_ <> to_ then b := (name, from_) :: !b

let entities t = List.rev t.entity_order

let relationships (t : t) = List.rev t.rels

let path_length p = Array.length p.rels

let signature p =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i ty ->
      Buffer.add_string buf ty;
      if i < Array.length p.rels then begin
        Buffer.add_char buf '~';
        Buffer.add_string buf p.rels.(i);
        Buffer.add_char buf '~'
      end)
    p.types;
  Buffer.contents buf

let reverse p =
  let n = Array.length p.types in
  let m = Array.length p.rels in
  {
    types = Array.init n (fun i -> p.types.(n - 1 - i));
    rels = Array.init m (fun i -> p.rels.(m - 1 - i));
  }

let path_key p =
  let a = signature p and b = signature (reverse p) in
  if a <= b then a else b

let path_to_string p =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i ty ->
      Buffer.add_string buf ty;
      if i < Array.length p.rels then Buffer.add_string buf (Printf.sprintf " -%s- " p.rels.(i)))
    p.types;
  Buffer.contents buf

let paths t ~from_ ~to_ ~max_len =
  if not (Hashtbl.mem t.entity_set from_) then
    invalid_arg ("Schema_graph.paths: unknown entity " ^ from_);
  if not (Hashtbl.mem t.entity_set to_) then invalid_arg ("Schema_graph.paths: unknown entity " ^ to_);
  let results = Hashtbl.create 64 in
  (* key -> path, oriented from [from_] *)
  let rec walk current types rels depth =
    if depth > 0 && current = to_ then begin
      let p = { types = Array.of_list (List.rev types); rels = Array.of_list (List.rev rels) } in
      let key = path_key p in
      if not (Hashtbl.mem results key) then Hashtbl.add results key p
    end;
    if depth < max_len then
      List.iter
        (fun (rel, other) -> walk other (other :: types) (rel :: rels) (depth + 1))
        !(Hashtbl.find t.adj current)
  in
  walk from_ [ from_ ] [] 0;
  let all = Hashtbl.fold (fun _ p acc -> p :: acc) results [] in
  List.sort
    (fun a b ->
      let c = Int.compare (path_length a) (path_length b) in
      if c <> 0 then c else compare (signature a) (signature b))
    all

let path_to_lgraph interner p ~ids =
  if Array.length ids <> Array.length p.types then
    invalid_arg "Schema_graph.path_to_lgraph: ids length mismatch";
  let node_label ty = Topo_util.Interner.intern interner ("n:" ^ ty) in
  let edge_label rel = Topo_util.Interner.intern interner ("e:" ^ rel) in
  let nodes = Array.mapi (fun i id -> (id, node_label p.types.(i))) ids in
  let edge_labels = Array.map edge_label p.rels in
  Lgraph.of_path ~nodes ~edge_labels
