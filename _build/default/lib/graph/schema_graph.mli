(** The database schema as a graph, and schema-path enumeration.

    Entity sets are nodes, relationship sets are edges (Figure 1).  A
    {e schema path} between two entity types is a walk in this graph —
    walks, not simple paths, because an instance path may revisit a type
    (Protein-DNA-Protein) while never revisiting an instance node.

    A schema path's identity is its label sequence normalized against its
    reversal; that normalized sequence is exactly the path equivalence class
    of Definition 1 restricted to paths (proved equivalent to general
    isomorphism in the test suite). *)

type t

(** A schema path: alternating entity types and relationship types,
    [types.(0) -- rels.(0) -- types.(1) ... rels.(l-1) -- types.(l)]. *)
type path = { types : string array; rels : string array }

(** [create ()] is an empty schema. *)
val create : unit -> t

(** [add_entity t name] declares an entity set (idempotent). *)
val add_entity : t -> string -> unit

(** [add_relationship t ~name ~from_ ~to_] declares a relationship set
    between two entity sets (declared on first use).  Relationship names
    must be unique per (name, endpoints) but one name may connect different
    endpoint pairs (Biozon's two "interaction" tables are distinct
    relationship sets here). *)
val add_relationship : t -> name:string -> from_:string -> to_:string -> unit

(** [entities t] in declaration order. *)
val entities : t -> string list

(** [relationships t] as [(name, from, to)] in declaration order. *)
val relationships : t -> (string * string * string) list

(** [paths t ~from_ ~to_ ~max_len] enumerates every schema path (walk) from
    [from_] to [to_] of length 1..[max_len], deduplicated against reversals
    (each undirected path class appears once, oriented with
    [types.(0) = from_] where possible).  Sorted by (length, labels).
    @raise Invalid_argument on unknown entity names. *)
val paths : t -> from_:string -> to_:string -> max_len:int -> path list

(** [path_length p]. *)
val path_length : path -> int

(** [path_key p] is the reversal-normalized label-sequence key identifying
    the path's equivalence class. *)
val path_key : path -> string

(** [path_to_string p] like ["Protein -uni_encodes- Unigene -uni_contains- DNA"]. *)
val path_to_string : path -> string

(** [reverse p]. *)
val reverse : path -> path

(** [path_to_lgraph interner p ~ids] builds the labeled graph of a path
    instantiated on the given node ids (one per position); labels are
    interned through [interner] as ["n:<type>"] / ["e:<rel>"]. *)
val path_to_lgraph : Topo_util.Interner.t -> path -> ids:int array -> Lgraph.t
