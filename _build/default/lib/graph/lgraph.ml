type edge = { u : int; v : int; label : int }

type t = {
  labels : (int, int) Hashtbl.t;  (* node id -> type label *)
  adj : (int, (int * int) list ref) Hashtbl.t;  (* node id -> (edge label, other) *)
  edge_set : (int * int * int, unit) Hashtbl.t;  (* (min, max, label) *)
}

let empty () = { labels = Hashtbl.create 16; adj = Hashtbl.create 16; edge_set = Hashtbl.create 16 }

let add_node g ~id ~label =
  match Hashtbl.find_opt g.labels id with
  | Some existing ->
      if existing <> label then
        invalid_arg (Printf.sprintf "Lgraph.add_node: node %d re-added with different label" id)
  | None ->
      Hashtbl.add g.labels id label;
      Hashtbl.add g.adj id (ref [])

let mem_node g id = Hashtbl.mem g.labels id

let node_label g id =
  match Hashtbl.find_opt g.labels id with
  | Some l -> l
  | None -> raise Not_found

let edge_key u v label = if u < v then (u, v, label) else (v, u, label)

let mem_edge g ~u ~v ~label = Hashtbl.mem g.edge_set (edge_key u v label)

let add_edge g ~u ~v ~label =
  if u = v then invalid_arg "Lgraph.add_edge: self-loop";
  if not (mem_node g u) then invalid_arg (Printf.sprintf "Lgraph.add_edge: missing node %d" u);
  if not (mem_node g v) then invalid_arg (Printf.sprintf "Lgraph.add_edge: missing node %d" v);
  let key = edge_key u v label in
  if not (Hashtbl.mem g.edge_set key) then begin
    Hashtbl.add g.edge_set key ();
    let au = Hashtbl.find g.adj u and av = Hashtbl.find g.adj v in
    au := (label, v) :: !au;
    av := (label, u) :: !av
  end

let nodes g = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) g.labels [])

let node_count g = Hashtbl.length g.labels

let edges g =
  Hashtbl.fold (fun (u, v, label) () acc -> { u; v; label } :: acc) g.edge_set []
  |> List.sort compare

let edge_count g = Hashtbl.length g.edge_set

let neighbors g id =
  match Hashtbl.find_opt g.adj id with
  | Some l -> List.sort compare !l
  | None -> []

let degree g id = match Hashtbl.find_opt g.adj id with Some l -> List.length !l | None -> 0

let copy g =
  let out = empty () in
  Hashtbl.iter (fun id label -> add_node out ~id ~label) g.labels;
  Hashtbl.iter (fun (u, v, label) () -> add_edge out ~u ~v ~label) g.edge_set;
  out

let union a b =
  let out = copy a in
  Hashtbl.iter (fun id label -> add_node out ~id ~label) b.labels;
  Hashtbl.iter (fun (u, v, label) () -> add_edge out ~u ~v ~label) b.edge_set;
  out

let of_path ~nodes ~edge_labels =
  let n = Array.length nodes in
  if Array.length edge_labels <> n - 1 then invalid_arg "Lgraph.of_path: length mismatch";
  let g = empty () in
  Array.iter
    (fun (id, label) ->
      if mem_node g id then invalid_arg "Lgraph.of_path: repeated node id";
      add_node g ~id ~label)
    nodes;
  Array.iteri (fun i label -> add_edge g ~u:(fst nodes.(i)) ~v:(fst nodes.(i + 1)) ~label) edge_labels;
  g

let connected g =
  match nodes g with
  | [] -> false
  | start :: _ ->
      let seen = Hashtbl.create 16 in
      let rec dfs id =
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          List.iter (fun (_, other) -> dfs other) (neighbors g id)
        end
      in
      dfs start;
      Hashtbl.length seen = node_count g

let to_string ?(node_name = string_of_int) ?(edge_name = string_of_int) g =
  let ns =
    List.map (fun id -> Printf.sprintf "%d:%s" id (node_name (node_label g id))) (nodes g)
  in
  let es =
    List.map (fun { u; v; label } -> Printf.sprintf "%d-%s-%d" u (edge_name label) v) (edges g)
  in
  Printf.sprintf "nodes[%s] edges[%s]" (String.concat " " ns) (String.concat " " es)
