(** Schema-level enumeration of possible topologies (Section 3.1, Figure 8).

    A possible l-topology between two entity types is obtained by taking a
    nonempty subset of the schema paths of length <= l connecting them (one
    path per equivalence class — schema paths are already distinct classes)
    and "intermixing" them: merging intermediate nodes of equal type across
    different paths in every possible way.  Both endpoints are always
    shared.  Each gluing yields a labeled graph; distinct canonical forms
    are distinct possible topologies.

    This is the enumeration behind the paper's count of 88453 possible
    3-topologies between Proteins and DNAs, and behind Figure 8's listing of
    all possible 2-topologies. *)

type result = {
  count : int;  (** number of distinct possible topologies *)
  topologies : (Lgraph.t * string) list;
      (** representative graph and canonical key, sorted by (node count,
          edge count, key); present only when [collect] was set *)
  gluings_examined : int;  (** total (subset, partition) combinations tried *)
  truncated : bool;  (** true when [max_gluings] stopped the enumeration *)
}

(** [enumerate interner schema ~from_ ~to_ ~max_len ?collect ?max_gluings ()]
    runs the full enumeration.  [collect] (default true) keeps
    representative graphs; disable it for pure counting at scale.
    [max_gluings] (default 10_000_000) bounds work.
    @raise Invalid_argument if there are more than 20 schema paths (the
    subset enumeration would be infeasible; the paper hits this too — it
    restricts the SQL method to observed topologies). *)
val enumerate :
  Topo_util.Interner.t ->
  Schema_graph.t ->
  from_:string ->
  to_:string ->
  max_len:int ->
  ?collect:bool ->
  ?max_gluings:int ->
  unit ->
  result
