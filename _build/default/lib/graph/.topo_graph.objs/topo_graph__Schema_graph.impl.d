lib/graph/schema_graph.ml: Array Buffer Hashtbl Int Lgraph List Printf Topo_util
