lib/graph/canon.mli: Lgraph
