lib/graph/schema_graph.mli: Lgraph Topo_util
