lib/graph/canon.ml: Array Buffer Hashtbl Lgraph List Printf
