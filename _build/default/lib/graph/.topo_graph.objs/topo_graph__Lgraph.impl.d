lib/graph/lgraph.ml: Array Hashtbl List Printf String
