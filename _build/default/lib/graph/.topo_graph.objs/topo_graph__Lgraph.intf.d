lib/graph/lgraph.mli:
