lib/graph/iso.mli: Lgraph
