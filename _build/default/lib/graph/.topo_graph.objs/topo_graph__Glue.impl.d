lib/graph/glue.ml: Array Canon Fun Hashtbl Int Lgraph List Printf Schema_graph Topo_util
