lib/graph/data_graph.mli: Lgraph Schema_graph Topo_util
