lib/graph/data_graph.ml: Array Hashtbl Lgraph List Printf Schema_graph Topo_util
