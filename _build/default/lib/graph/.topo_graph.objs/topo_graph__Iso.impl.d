lib/graph/iso.ml: Array Hashtbl Int Lgraph List Option
