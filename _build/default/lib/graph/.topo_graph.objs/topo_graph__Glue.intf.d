lib/graph/glue.mli: Lgraph Schema_graph Topo_util
