(** Labeled undirected graphs.

    Nodes carry an integer id (an object id at the instance level, a slot id
    at the schema level) and an integer type label (interned entity-type
    name); edges carry an integer type label (interned relationship-type
    name).  The graph is simple per (u, v, label): adding the same labeled
    edge twice is a no-op, which implements the path-union semantics of
    Definition 2 (two paths sharing an edge union into one edge).

    This is the common representation for instance subgraphs (unions of
    result paths) and topologies (their canonical forms). *)

type t

type edge = { u : int; v : int; label : int }

(** [empty ()] is the graph with no nodes. *)
val empty : unit -> t

(** [add_node g ~id ~label] inserts a node; re-adding with the same label is
    a no-op.  @raise Invalid_argument if [id] exists with another label. *)
val add_node : t -> id:int -> label:int -> unit

(** [add_edge g ~u ~v ~label] inserts an undirected edge; both endpoints
    must exist.  Self-loops are rejected (paths are simple).
    @raise Invalid_argument on a missing endpoint or [u = v]. *)
val add_edge : t -> u:int -> v:int -> label:int -> unit

(** [mem_node g id]. *)
val mem_node : t -> int -> bool

(** [node_label g id].  @raise Not_found if absent. *)
val node_label : t -> int -> int

(** [mem_edge g ~u ~v ~label]. *)
val mem_edge : t -> u:int -> v:int -> label:int -> bool

(** [nodes g] is the node ids, ascending. *)
val nodes : t -> int list

(** [node_count g]. *)
val node_count : t -> int

(** [edges g] is every edge once, with [u < v], sorted. *)
val edges : t -> edge list

(** [edge_count g]. *)
val edge_count : t -> int

(** [neighbors g id] is the [(edge_label, other_endpoint)] list of [id],
    sorted. *)
val neighbors : t -> int -> (int * int) list

(** [degree g id]. *)
val degree : t -> int -> int

(** [union a b] is a fresh graph over the shared node-id space: node and
    edge sets are unioned.  @raise Invalid_argument when a node id carries
    different labels in [a] and [b]. *)
val union : t -> t -> t

(** [copy g]. *)
val copy : t -> t

(** [of_path ~nodes ~edge_labels] builds the graph of a simple path: node
    [i] connects to node [i+1] with [edge_labels.(i)].  [nodes] pairs ids
    with labels.  @raise Invalid_argument on length mismatch or a repeated
    node id. *)
val of_path : nodes:(int * int) array -> edge_labels:int array -> t

(** [connected g] is true when the graph is connected (and nonempty). *)
val connected : t -> bool

(** [to_string ?node_name ?edge_name g] renders nodes and edges for debug
    output, mapping interned labels through the given printers. *)
val to_string : ?node_name:(int -> string) -> ?edge_name:(int -> string) -> t -> string
