(** Canonical forms for labeled graphs.

    Topology identity (Definition 2's equivalence classes) is labeled-graph
    isomorphism; we decide it by computing a canonical key: a string that is
    identical for two graphs iff they are isomorphic.

    Algorithm: iterative color refinement (1-WL) seeded with (node label,
    degree); when the partition is not discrete, individualize a node from
    the first non-singleton class and recurse over its members, keeping the
    lexicographically smallest serialization.  Exact for all graphs; fast
    for the small, label-rich graphs topologies are (the backtracking
    branches only on label-symmetric nodes). *)

(** [key g] is the canonical key.  The key embeds node labels, edge labels
    and structure; it is stable across OCaml versions (no polymorphic
    hashing in the serialization). *)
val key : Lgraph.t -> string

(** [canonical_order g] is a node permutation realizing the canonical form:
    the list of original node ids in canonical position order.  Useful for
    rendering a topology with deterministic node numbering. *)
val canonical_order : Lgraph.t -> int list

(** [iso a b] is true iff [a] and [b] are isomorphic as labeled graphs
    (same key). *)
val iso : Lgraph.t -> Lgraph.t -> bool
