(** Subgraph isomorphism (Section 2.1's definition).

    [embeds ~pattern ~host] decides whether there is an injection from
    pattern nodes to host nodes preserving node labels and mapping every
    pattern edge to a host edge with the same label — exactly the paper's
    "subgraph isomorphic" relation.  [anchors] pre-pins pattern nodes to
    host nodes, which is how the topology engine checks "entities a and b
    are related by a graph shaped like T": the two query endpoints are
    anchored.

    Backtracking search ordered by pattern degree; adequate for the small
    patterns topologies are. *)

val embeds : pattern:Lgraph.t -> host:Lgraph.t -> ?anchors:(int * int) list -> unit -> bool

(** [find_embedding ~pattern ~host ?anchors ()] returns one injection as
    [(pattern_node, host_node)] pairs, if any. *)
val find_embedding :
  pattern:Lgraph.t -> host:Lgraph.t -> ?anchors:(int * int) list -> unit -> (int * int) list option
