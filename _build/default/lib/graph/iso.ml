let find_embedding ~pattern ~host ?(anchors = []) () =
  let pnodes = Array.of_list (Lgraph.nodes pattern) in
  let n = Array.length pnodes in
  (* Order pattern nodes: anchored first, then by descending degree so the
     search fails fast. *)
  let anchored p = List.mem_assoc p anchors in
  Array.sort
    (fun a b ->
      match (anchored a, anchored b) with
      | true, false -> -1
      | false, true -> 1
      | true, true | false, false -> Int.compare (Lgraph.degree pattern b) (Lgraph.degree pattern a))
    pnodes;
  let mapping = Hashtbl.create n in
  (* pattern -> host *)
  let used = Hashtbl.create n in
  (* host nodes already used *)
  let compatible p h =
    Lgraph.node_label pattern p = Lgraph.node_label host h
    && (not (Hashtbl.mem used h))
    && List.for_all
         (fun (el, pnbr) ->
           match Hashtbl.find_opt mapping pnbr with
           | None -> true
           | Some hnbr -> Lgraph.mem_edge host ~u:h ~v:hnbr ~label:el)
         (Lgraph.neighbors pattern p)
  in
  let candidates p =
    match List.assoc_opt p anchors with
    | Some h -> [ h ]
    | None -> (
        (* Prefer extending along an already-mapped neighbor. *)
        let mapped_nbr =
          List.find_map
            (fun (el, pnbr) ->
              match Hashtbl.find_opt mapping pnbr with
              | Some hnbr -> Some (el, hnbr)
              | None -> None)
            (Lgraph.neighbors pattern p)
        in
        match mapped_nbr with
        | Some (el, hnbr) ->
            List.filter_map
              (fun (el', h) -> if el' = el then Some h else None)
              (Lgraph.neighbors host hnbr)
        | None -> Lgraph.nodes host)
  in
  let rec solve i =
    if i >= n then true
    else begin
      let p = pnodes.(i) in
      let rec try_candidates = function
        | [] -> false
        | h :: rest ->
            if compatible p h then begin
              Hashtbl.add mapping p h;
              Hashtbl.add used h ();
              if solve (i + 1) then true
              else begin
                Hashtbl.remove mapping p;
                Hashtbl.remove used h;
                try_candidates rest
              end
            end
            else try_candidates rest
      in
      try_candidates (candidates p)
    end
  in
  (* Reject anchor pairs that are themselves invalid. *)
  let anchors_ok =
    List.for_all
      (fun (p, h) -> Lgraph.mem_node pattern p && Lgraph.mem_node host h)
      anchors
  in
  if anchors_ok && solve 0 then
    Some (Hashtbl.fold (fun p h acc -> (p, h) :: acc) mapping [] |> List.sort compare)
  else None

let embeds ~pattern ~host ?(anchors = []) () =
  Option.is_some (find_embedding ~pattern ~host ~anchors ())
