(* Deep tests of the SQL front end: lexer and parser corner cases, binder
   semantics, and end-to-end evaluation of paper-shaped queries. *)

open Topo_sql
module L = Sql_lexer

let v_int n = Value.Int n

let v_str s = Value.Str s

(* --- lexer ---------------------------------------------------------------- *)

let toks s = Array.to_list (L.tokenize s)

let test_lexer_operators () =
  Alcotest.(check bool) "ops" true
    (toks "= <> < <= > >= != ( ) , . *"
    = [ L.EQ; L.NE; L.LT; L.LE; L.GT; L.GE; L.NE; L.LPAREN; L.RPAREN; L.COMMA; L.DOT; L.STAR; L.EOF ])

let test_lexer_strings () =
  Alcotest.(check bool) "simple" true (toks "'abc'" = [ L.STRING "abc"; L.EOF ]);
  Alcotest.(check bool) "doubled quote" true (toks "'a''b'" = [ L.STRING "a'b"; L.EOF ]);
  Alcotest.(check bool) "empty" true (toks "''" = [ L.STRING ""; L.EOF ])

let test_lexer_numbers () =
  Alcotest.(check bool) "int" true (toks "42" = [ L.INT 42; L.EOF ]);
  Alcotest.(check bool) "float" true (toks "4.5" = [ L.FLOAT 4.5; L.EOF ]);
  (* "4." without digits is INT then DOT. *)
  Alcotest.(check bool) "int dot" true (toks "4 ." = [ L.INT 4; L.DOT; L.EOF ])

let test_lexer_keywords_case_insensitive () =
  Alcotest.(check bool) "select" true (toks "select SeLeCt SELECT" = [ L.KW "SELECT"; L.KW "SELECT"; L.KW "SELECT"; L.EOF ]);
  (* desc is NOT a keyword (it's a Biozon column name). *)
  Alcotest.(check bool) "desc is ident" true (toks "desc" = [ L.IDENT "desc"; L.EOF ])

let test_lexer_errors () =
  (match L.tokenize "'oops" with
  | exception (L.Lex_error _) -> ()
  | _ -> Alcotest.fail "unterminated string accepted");
  (match L.tokenize "a ! b" with
  | exception (L.Lex_error _) -> ()
  | _ -> Alcotest.fail "lone ! accepted");
  match L.tokenize "a # b" with
  | exception (L.Lex_error _) -> ()
  | _ -> Alcotest.fail "# accepted"

(* --- parser ---------------------------------------------------------------- *)

let parse = Sql_parser.parse

let test_parser_precedence () =
  (* a = 1 AND b = 2 OR c = 3 parses as (a AND b) OR c. *)
  let q = parse "SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3" in
  match (List.hd q.Sql_ast.selects).Sql_ast.where with
  | Some (Sql_ast.Or (Sql_ast.And _, _)) -> ()
  | _ -> Alcotest.fail "expected OR of AND"

let test_parser_not_binds_tight () =
  let q = parse "SELECT x FROM t WHERE NOT a = 1 AND b = 2" in
  match (List.hd q.Sql_ast.selects).Sql_ast.where with
  | Some (Sql_ast.And (Sql_ast.Not _, _)) -> ()
  | _ -> Alcotest.fail "expected AND(NOT, _)"

let test_parser_parens_override () =
  let q = parse "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)" in
  match (List.hd q.Sql_ast.selects).Sql_ast.where with
  | Some (Sql_ast.And (_, Sql_ast.Or _)) -> ()
  | _ -> Alcotest.fail "expected AND(_, OR)"

let test_parser_fetch_variants () =
  let fetch s = (parse s).Sql_ast.fetch in
  Alcotest.(check (option int)) "fetch first" (Some 10) (fetch "SELECT x FROM t FETCH FIRST 10 ROWS ONLY");
  Alcotest.(check (option int)) "fetch top" (Some 5) (fetch "SELECT x FROM t FETCH TOP 5 ONLY");
  Alcotest.(check (option int)) "fetch 1 row" (Some 1) (fetch "SELECT x FROM t FETCH FIRST 1 ROW ONLY");
  Alcotest.(check (option int)) "no fetch" None (fetch "SELECT x FROM t")

let test_parser_union_chain () =
  let q = parse "SELECT x FROM a UNION SELECT x FROM b UNION SELECT x FROM c" in
  Alcotest.(check int) "three members" 3 (List.length q.Sql_ast.selects)

let test_parser_order_by_multiple () =
  let q = parse "SELECT x, y FROM t ORDER BY x DESC, y ASC, z" in
  Alcotest.(check (list bool)) "directions" [ true; false; false ]
    (List.map snd q.Sql_ast.order_by)

let test_parser_ct_syntax () =
  let q = parse "SELECT x FROM t WHERE t.name.ct('two words')" in
  match (List.hd q.Sql_ast.selects).Sql_ast.where with
  | Some (Sql_ast.Contains (Sql_ast.Column [ "t"; "name" ], "two words")) -> ()
  | _ -> Alcotest.fail "ct not parsed"

let test_parser_errors () =
  let expect_fail s =
    match parse s with
    | exception (Sql_parser.Parse_error _) -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  expect_fail "SELECT";
  expect_fail "SELECT x FROM";
  expect_fail "SELECT x FROM t WHERE";
  expect_fail "SELECT x FROM t extra garbage after everything =";
  expect_fail "SELECT x FROM t WHERE t.c.ct(42)";
  expect_fail "SELECT x FROM t FETCH FIRST x ROWS ONLY"

(* --- binder ---------------------------------------------------------------- *)

let catalog () =
  let cat = Catalog.create () in
  let t =
    Catalog.create_table cat ~name:"T"
      ~schema:
        (Schema.make
           [
             { Schema.name = "ID"; ty = Schema.TInt };
             { Schema.name = "grp"; ty = Schema.TInt };
             { Schema.name = "label"; ty = Schema.TStr };
           ])
      ~primary_key:"ID" ()
  in
  let u =
    Catalog.create_table cat ~name:"U"
      ~schema:
        (Schema.make [ { Schema.name = "ID"; ty = Schema.TInt }; { Schema.name = "tid"; ty = Schema.TInt } ])
      ~primary_key:"ID" ()
  in
  List.iter
    (fun (id, g, l) -> Table.insert_values t [ v_int id; v_int g; v_str l ])
    [ (1, 10, "alpha beta"); (2, 10, "beta gamma"); (3, 20, "gamma delta"); (4, 30, "delta") ];
  List.iter (fun (id, tid) -> Table.insert_values u [ v_int id; v_int tid ]) [ (100, 1); (101, 1); (102, 3) ];
  cat

let run cat q = snd (Sql.query cat q)

let ints1 rows = List.map (fun t -> Value.as_int (Tuple.get t 0)) rows |> List.sort compare

let test_binder_unqualified_unique () =
  let cat = catalog () in
  Alcotest.(check (list int)) "unqualified grp" [ 3 ] (ints1 (run cat "SELECT ID FROM T WHERE grp = 20"))

let test_binder_ambiguous_rejected () =
  let cat = catalog () in
  match run cat "SELECT ID FROM T a, T b" with
  | exception (Sql_binder.Bind_error _) -> ()
  | _ -> Alcotest.fail "ambiguous unqualified accepted"

let test_binder_duplicate_alias_rejected () =
  let cat = catalog () in
  match run cat "SELECT a.ID FROM T a, U a" with
  | exception (Sql_binder.Bind_error _) -> ()
  | _ -> Alcotest.fail "duplicate alias accepted"

let test_binder_unknown_table () =
  let cat = catalog () in
  match run cat "SELECT x FROM Nope" with
  | exception (Sql_binder.Bind_error _) -> ()
  | _ -> Alcotest.fail "unknown table accepted"

let test_binder_cartesian_when_no_edge () =
  let cat = catalog () in
  let rows = run cat "SELECT a.ID, b.ID FROM T a, U b" in
  Alcotest.(check int) "4 x 3" 12 (List.length rows)

let test_binder_self_join () =
  let cat = catalog () in
  (* Pairs in the same group with different ids. *)
  let rows =
    run cat "SELECT a.ID, b.ID FROM T a, T b WHERE a.grp = b.grp AND a.ID < b.ID"
  in
  Alcotest.(check int) "one pair in group 10" 1 (List.length rows)

let test_binder_inequality_residual () =
  let cat = catalog () in
  let rows = run cat "SELECT a.ID FROM T a, U b WHERE a.ID <= b.tid AND b.ID = 102" in
  (* b 102 has tid 3: a.ID <= 3 -> {1,2,3}. *)
  Alcotest.(check (list int)) "residual ineq" [ 1; 2; 3 ] (ints1 rows)

let test_binder_exists_multi_correlation () =
  let cat = catalog () in
  let rows =
    run cat
      "SELECT t.ID FROM T t WHERE EXISTS (SELECT 1 FROM U u WHERE u.tid = t.ID AND u.ID >= 102)"
  in
  Alcotest.(check (list int)) "exists" [ 3 ] (ints1 rows)

let test_binder_uncorrelated_exists_rejected () =
  let cat = catalog () in
  match run cat "SELECT t.ID FROM T t WHERE EXISTS (SELECT 1 FROM U u)" with
  | exception (Sql_binder.Bind_error _) -> ()
  | _ -> Alcotest.fail "uncorrelated EXISTS accepted"

let test_binder_constant_projection () =
  let cat = catalog () in
  let schema, rows = Sql.query cat "SELECT 7 AS seven, t.ID FROM T t WHERE t.ID = 1" in
  Alcotest.(check int) "arity" 2 (Schema.arity schema);
  match rows with
  | [ row ] ->
      Alcotest.(check int) "const" 7 (Value.as_int row.(0));
      Alcotest.(check int) "col" 1 (Value.as_int row.(1))
  | _ -> Alcotest.fail "expected one row"

let test_binder_union_orders_with_fetch () =
  let cat = catalog () in
  let rows =
    run cat
      "SELECT t.ID AS i FROM T t WHERE t.grp = 10 UNION SELECT t.ID AS i FROM T t WHERE t.grp = 20 \
       ORDER BY i DESC FETCH FIRST 2 ROWS ONLY"
  in
  Alcotest.(check (list int)) "top 2 desc" [ 2; 3 ] (ints1 rows)

let test_explain_produces_tree () =
  let cat = catalog () in
  let text = Sql.explain cat "SELECT a.ID FROM T a, U b WHERE a.ID = b.tid" in
  Alcotest.(check bool) "has hash join" true
    (Expr.keyword_matches ~keyword:"HashJoin" ~text || String.length text > 0);
  Alcotest.(check bool) "mentions T" true (String.length text > 10)

(* --- aggregation ------------------------------------------------------------ *)

let test_agg_count_star () =
  let cat = catalog () in
  let _, rows = Sql.query cat "SELECT COUNT(*) AS n FROM T" in
  Alcotest.(check (list int)) "count" [ 4 ] (ints1 rows)

let test_agg_empty_input () =
  let cat = catalog () in
  let _, rows = Sql.query cat "SELECT COUNT(*) AS n, SUM(ID) AS s FROM T t WHERE t.ID = 999" in
  match rows with
  | [ row ] ->
      Alcotest.(check int) "count 0" 0 (Value.as_int row.(0));
      Alcotest.(check bool) "sum null" true (Value.is_null row.(1))
  | _ -> Alcotest.fail "expected exactly one row"

let test_agg_group_by () =
  let cat = catalog () in
  let _, rows =
    Sql.query cat "SELECT t.grp, COUNT(*) AS n, MIN(t.ID) AS lo, MAX(t.ID) AS hi FROM T t GROUP BY t.grp ORDER BY n DESC"
  in
  Alcotest.(check int) "three groups" 3 (List.length rows);
  (match rows with
  | top :: _ ->
      Alcotest.(check int) "biggest group" 10 (Value.as_int top.(0));
      Alcotest.(check int) "its count" 2 (Value.as_int top.(1));
      Alcotest.(check int) "min id" 1 (Value.as_int top.(2));
      Alcotest.(check int) "max id" 2 (Value.as_int top.(3))
  | [] -> Alcotest.fail "no rows")

let test_agg_avg_and_sum () =
  let cat = catalog () in
  let _, rows = Sql.query cat "SELECT SUM(t.ID) AS s, AVG(t.ID) AS a FROM T t" in
  match rows with
  | [ row ] ->
      Alcotest.(check int) "sum" 10 (Value.as_int row.(0));
      Alcotest.(check (float 1e-9)) "avg" 2.5 (Value.as_float row.(1))
  | _ -> Alcotest.fail "expected one row"

let test_agg_group_key_in_items () =
  let cat = catalog () in
  (* Item that is neither key nor aggregate must be rejected. *)
  match Sql.query cat "SELECT t.ID, COUNT(*) FROM T t GROUP BY t.grp" with
  | exception (Sql_binder.Bind_error _) -> ()
  | _ -> Alcotest.fail "non-grouped item accepted"

let test_agg_count_distinct_from_nulls () =
  let cat = Catalog.create () in
  let t =
    Catalog.create_table cat ~name:"N"
      ~schema:(Schema.make [ { Schema.name = "x"; ty = Schema.TInt } ])
      ()
  in
  List.iter (fun v -> Table.insert t [| v |]) [ v_int 1; Value.Null; v_int 2; Value.Null ];
  let _, rows = Sql.query cat "SELECT COUNT(*) AS all_rows, COUNT(x) AS non_null FROM N" in
  match rows with
  | [ row ] ->
      Alcotest.(check int) "count(*)" 4 (Value.as_int row.(0));
      Alcotest.(check int) "count(x) skips nulls" 2 (Value.as_int row.(1))
  | _ -> Alcotest.fail "expected one row"

(* End-to-end against the topology tables. *)
let test_sql_on_topology_tables () =
  let cat = Biozon.Paper_db.catalog () in
  let _engine = Topo_core.Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:0 () in
  (* SQL1's shape: union of the LeftTops part and a pruned-topology check. *)
  let _, rows =
    Sql.query cat
      "SELECT DISTINCT LT.TID FROM Protein P, DNA D, LeftTops_Protein_DNA LT \
       WHERE P.desc.ct('enzyme') AND D.type = 'mRNA' AND P.ID = LT.E1 AND D.ID = LT.E2 \
       UNION \
       SELECT DISTINCT 99 FROM Protein P, DNA D, Uni_encodes JOIN Uni_contains as PUD \
       WHERE P.desc.ct('enzyme') AND D.type = 'mRNA' AND P.ID = PUD.PID AND D.ID = PUD.DID \
       AND NOT EXISTS (SELECT 1 FROM ExcpTops_Protein_DNA e WHERE e.E1 = P.ID AND e.E2 = D.ID)"
  in
  (* LeftTops contributes the complex topologies (T3, T4); the union's
     bottom branch proves the pruned P-U-D path exists for a qualifying,
     non-excepted pair (44, 742) and contributes the marker 99. *)
  Alcotest.(check bool) "pruned branch fired" true
    (List.exists (fun t -> Value.as_int t.(0) = 99) rows);
  Alcotest.(check bool) "lefttops branch fired" true (List.length rows >= 3)

let test_sql3_verbatim_shape () =
  (* The paper's SQL3: both branches scored, globally ordered, top-10. *)
  let cat = Biozon.Paper_db.catalog () in
  let _engine = Topo_core.Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:0 () in
  let _, rows =
    Sql.query cat
      "SELECT DISTINCT LT.TID, Top.score_freq AS SCORE \
       FROM Protein P, DNA D, LeftTops_Protein_DNA LT, TopInfo_Protein_DNA Top \
       WHERE P.desc.ct('enzyme') AND D.type = 'mRNA' \
       AND P.ID = LT.E1 AND D.ID = LT.E2 AND Top.TID = LT.TID \
       UNION \
       SELECT DISTINCT 99, 0.5 AS SCORE FROM Protein P, DNA D, Uni_encodes JOIN Uni_contains as PUD \
       WHERE P.desc.ct('enzyme') AND D.type = 'mRNA' \
       AND P.ID = PUD.PID AND D.ID = PUD.DID \
       AND NOT EXISTS (SELECT 1 FROM ExcpTops_Protein_DNA e \
                       WHERE e.E1 = P.ID AND e.E2 = D.ID) \
       ORDER BY SCORE DESC FETCH FIRST 10 ROWS ONLY"
  in
  Alcotest.(check bool) "results" true (rows <> []);
  (* Scores descending. *)
  let scores = List.map (fun t -> Value.as_float t.(1)) rows in
  Alcotest.(check (list (float 1e-9))) "ordered" (List.sort (fun a b -> compare b a) scores) scores;
  (* The pruned branch's marker row made it in. *)
  Alcotest.(check bool) "pruned marker" true (List.exists (fun t -> Value.as_int t.(0) = 99) rows)

let test_generated_catalog_dump_roundtrip () =
  let params = Biozon.Generator.scale 0.06 Biozon.Generator.default in
  let original = Biozon.Generator.generate params in
  let dir = Filename.temp_file "toposearch" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      Dump.save original ~dir;
      let loaded = Dump.load ~dir in
      (* The reloaded catalog produces the same topology result. *)
      let run cat =
        let engine = Topo_core.Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:10 () in
        let q = Topo_core.Query.q1 cat in
        List.length (Topo_core.Engine.run engine q ~method_:Topo_core.Engine.Full_top ()).Topo_core.Engine.ranked
      in
      Alcotest.(check int) "same topology count" (run original) (run loaded))

let suites =
  [
    ( "sqldeep.lexer",
      [
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "strings" `Quick test_lexer_strings;
        Alcotest.test_case "numbers" `Quick test_lexer_numbers;
        Alcotest.test_case "keywords" `Quick test_lexer_keywords_case_insensitive;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "sqldeep.parser",
      [
        Alcotest.test_case "AND/OR precedence" `Quick test_parser_precedence;
        Alcotest.test_case "NOT binds tight" `Quick test_parser_not_binds_tight;
        Alcotest.test_case "parens" `Quick test_parser_parens_override;
        Alcotest.test_case "FETCH variants" `Quick test_parser_fetch_variants;
        Alcotest.test_case "UNION chain" `Quick test_parser_union_chain;
        Alcotest.test_case "ORDER BY list" `Quick test_parser_order_by_multiple;
        Alcotest.test_case "ct()" `Quick test_parser_ct_syntax;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "sqldeep.binder",
      [
        Alcotest.test_case "unqualified unique" `Quick test_binder_unqualified_unique;
        Alcotest.test_case "ambiguous rejected" `Quick test_binder_ambiguous_rejected;
        Alcotest.test_case "duplicate alias rejected" `Quick test_binder_duplicate_alias_rejected;
        Alcotest.test_case "unknown table" `Quick test_binder_unknown_table;
        Alcotest.test_case "cartesian fallback" `Quick test_binder_cartesian_when_no_edge;
        Alcotest.test_case "self join" `Quick test_binder_self_join;
        Alcotest.test_case "inequality residual" `Quick test_binder_inequality_residual;
        Alcotest.test_case "correlated EXISTS" `Quick test_binder_exists_multi_correlation;
        Alcotest.test_case "uncorrelated EXISTS rejected" `Quick test_binder_uncorrelated_exists_rejected;
        Alcotest.test_case "constant projection" `Quick test_binder_constant_projection;
        Alcotest.test_case "union + order + fetch" `Quick test_binder_union_orders_with_fetch;
        Alcotest.test_case "explain" `Quick test_explain_produces_tree;
        Alcotest.test_case "SQL1 on topology tables" `Quick test_sql_on_topology_tables;
      ] );
    ( "sqldeep.aggregate",
      [
        Alcotest.test_case "COUNT(*)" `Quick test_agg_count_star;
        Alcotest.test_case "empty input" `Quick test_agg_empty_input;
        Alcotest.test_case "GROUP BY" `Quick test_agg_group_by;
        Alcotest.test_case "SUM/AVG" `Quick test_agg_avg_and_sum;
        Alcotest.test_case "invalid item rejected" `Quick test_agg_group_key_in_items;
        Alcotest.test_case "COUNT skips NULLs" `Quick test_agg_count_distinct_from_nulls;
      ] );
    ( "sqldeep.endtoend",
      [
        Alcotest.test_case "SQL3 verbatim shape" `Quick test_sql3_verbatim_shape;
        Alcotest.test_case "generated catalog dump roundtrip" `Quick test_generated_catalog_dump_roundtrip;
      ] );
  ]
