(* Remaining corners: schema-path enumeration cross-checked against a naive
   walker, Definition 2's union mechanics on the paper's own paths, context
   helpers, geometric sampling, and table rendering. *)

open Topo_core
module Sg = Topo_graph.Schema_graph

(* --- schema paths vs a naive reference walker --------------------------------- *)

let naive_walk_count schema ~from_ ~to_ ~max_len =
  (* Re-derive the path-class count with an independent implementation:
     enumerate label strings of all walks, normalize against reversal,
     count distinct. *)
  let rels = Sg.relationships schema in
  let steps_from ty =
    List.concat_map
      (fun (name, a, b) ->
        (if a = ty then [ (name, b) ] else []) @ if b = ty && a <> b then [ (name, a) ] else [])
      rels
  in
  let seen = Hashtbl.create 64 in
  let rec walk ty trail len =
    if len > 0 && ty = to_ then begin
      let fwd = String.concat "|" (List.rev trail) in
      let bwd = String.concat "|" trail in
      let key = if fwd <= bwd then fwd else bwd in
      Hashtbl.replace seen key ()
    end;
    if len < max_len then
      List.iter (fun (rel, next) -> walk next (next :: rel :: trail) (len + 1)) (steps_from ty)
  in
  walk from_ [ from_ ] 0;
  Hashtbl.length seen

let test_paths_match_naive_walker () =
  let schema = Biozon.Bschema.schema_graph () in
  List.iter
    (fun (t1, t2, l) ->
      let fast = List.length (Sg.paths schema ~from_:t1 ~to_:t2 ~max_len:l) in
      let naive = naive_walk_count schema ~from_:t1 ~to_:t2 ~max_len:l in
      Alcotest.(check int) (Printf.sprintf "%s-%s l=%d" t1 t2 l) naive fast)
    [
      ("Protein", "DNA", 3);
      ("Protein", "DNA", 4);
      ("Protein", "Interaction", 3);
      ("Unigene", "Unigene", 3);
      ("Family", "Pathway", 2);
    ]

(* --- Definition 2 union mechanics ----------------------------------------------- *)

let test_union_shares_edges () =
  (* l2 = 78-103-215 and l6 = 78-103-34-215 share the uni_encodes(78,103)
     edge: their union must have 4 nodes and 4 edges, not 5. *)
  let cat = Biozon.Paper_db.catalog () in
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph cat interner in
  let schema = Biozon.Bschema.schema_graph () in
  let find_path types =
    List.find (fun (p : Sg.path) -> p.Sg.types = types) (Sg.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:3)
  in
  let pud = find_path [| "Protein"; "Unigene"; "DNA" |] in
  let pupd = find_path [| "Protein"; "Unigene"; "Protein"; "DNA" |] in
  let g =
    Compute.union_of_representatives dg
      [ (pud, [| 78; 103; 215 |]); (pupd, [| 78; 103; 34; 215 |]) ]
  in
  Alcotest.(check int) "nodes" 4 (Topo_graph.Lgraph.node_count g);
  Alcotest.(check int) "edges (shared edge deduplicated)" 4 (Topo_graph.Lgraph.edge_count g)

let test_union_disjoint_paths () =
  (* l3 = 78-150-215 and l6 = 78-103-34-215 share only endpoints: 5 nodes,
     5 edges — the T4 shape. *)
  let cat = Biozon.Paper_db.catalog () in
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph cat interner in
  let schema = Biozon.Bschema.schema_graph () in
  let find_path types =
    List.find (fun (p : Sg.path) -> p.Sg.types = types) (Sg.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:3)
  in
  let pud = find_path [| "Protein"; "Unigene"; "DNA" |] in
  let pupd = find_path [| "Protein"; "Unigene"; "Protein"; "DNA" |] in
  let g =
    Compute.union_of_representatives dg
      [ (pud, [| 78; 150; 215 |]); (pupd, [| 78; 103; 34; 215 |]) ]
  in
  Alcotest.(check int) "nodes" 5 (Topo_graph.Lgraph.node_count g);
  Alcotest.(check int) "edges" 5 (Topo_graph.Lgraph.edge_count g)

(* --- context helpers -------------------------------------------------------------- *)

let test_class_exists_between () =
  let cat = Biozon.Paper_db.catalog () in
  let engine = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 () in
  let ctx = engine.Engine.ctx in
  let schema = ctx.Context.schema in
  let pud =
    List.find
      (fun (p : Sg.path) -> p.Sg.types = [| "Protein"; "Unigene"; "DNA" |])
      (Sg.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:3)
  in
  let key = Sg.path_key pud in
  Alcotest.(check bool) "(78,215) has PUD" true (Context.class_exists_between ctx key ~a:78 ~b:215);
  Alcotest.(check bool) "(32,215) lacks PUD" false (Context.class_exists_between ctx key ~a:32 ~b:215)

let test_satisfying_ids () =
  let cat = Biozon.Paper_db.catalog () in
  let engine = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 () in
  let ids =
    Context.satisfying_ids engine.Engine.ctx (Query.keyword cat "Protein" ~col:"desc" ~kw:"enzyme")
  in
  Alcotest.(check (array int)) "enzyme proteins sorted" [| 32; 44; 78 |] ids;
  let all = Context.satisfying_ids engine.Engine.ctx (Query.endpoint cat "Protein") in
  Alcotest.(check int) "all proteins" 4 (Array.length all)

(* --- prng tails -------------------------------------------------------------------- *)

let test_geometric_mean () =
  let prng = Topo_util.Prng.create 77 in
  let p = 0.25 in
  let n = 20000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Topo_util.Prng.geometric prng p
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Failures before first success: mean (1-p)/p = 3. *)
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 3" mean) true (Float.abs (mean -. 3.0) < 0.2)

let test_chance_extremes () =
  let prng = Topo_util.Prng.create 3 in
  Alcotest.(check bool) "p=1" true (Topo_util.Prng.chance prng 1.5);
  Alcotest.(check bool) "p=0" false (Topo_util.Prng.chance prng (-0.2))

(* --- pretty alignment ----------------------------------------------------------------- *)

let test_pretty_right_alignment () =
  let out =
    Topo_util.Pretty.render ~header:[ "name"; "n" ]
      ~aligns:[ Topo_util.Pretty.Left; Topo_util.Pretty.Right ]
      [ [ "a"; "5" ]; [ "bb"; "123" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (* The numeric column is right-aligned: "5" ends where "123" ends. *)
  let line_a = List.nth lines 2 and line_b = List.nth lines 3 in
  Alcotest.(check int) "same width" (String.length line_b) (String.length line_a);
  Alcotest.(check bool) "right aligned" true (String.length line_a > 0 && line_a.[String.length line_a - 1] = '5')

let suites =
  [
    ( "misc.schema_paths",
      [ Alcotest.test_case "matches naive walker" `Quick test_paths_match_naive_walker ] );
    ( "misc.union",
      [
        Alcotest.test_case "shared edges dedup (T3)" `Quick test_union_shares_edges;
        Alcotest.test_case "disjoint paths (T4)" `Quick test_union_disjoint_paths;
      ] );
    ( "misc.context",
      [
        Alcotest.test_case "class_exists_between" `Quick test_class_exists_between;
        Alcotest.test_case "satisfying_ids" `Quick test_satisfying_ids;
      ] );
    ( "misc.prng",
      [
        Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
        Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
      ] );
    ( "misc.pretty", [ Alcotest.test_case "right alignment" `Quick test_pretty_right_alignment ] );
  ]
