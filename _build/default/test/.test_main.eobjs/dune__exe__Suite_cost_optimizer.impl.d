test/suite_cost_optimizer.ml: Alcotest Array Catalog Dgj_cost Expr Float Histogram List Optimizer Physical Printf QCheck QCheck_alcotest Schema String Table Table_stats Topo_sql Topo_util Value
