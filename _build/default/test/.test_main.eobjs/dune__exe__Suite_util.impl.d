test/suite_util.ml: Alcotest Array Dyn Fun Int Interner List Pretty Prng QCheck QCheck_alcotest Set String Timer Topo_util Zipf
