test/suite_graph.ml: Alcotest Array Biozon Canon Data_graph Glue Iso Lgraph List QCheck QCheck_alcotest Schema_graph Topo_graph Topo_util
