test/suite_misc.ml: Alcotest Array Biozon Compute Context Engine Float Hashtbl List Printf Query String Topo_core Topo_graph Topo_util
