test/suite_operators_deep.ml: Alcotest Array Biozon Catalog Expr Iterator List Op_basic Op_dgj Op_join Op_scan Physical Printf QCheck QCheck_alcotest Schema String Table Topo_core Topo_sql Value
