test/suite_invariants.ml: Alcotest Biozon Compute Context Engine List Nquery QCheck QCheck_alcotest Query Store Topo_core Topo_graph Topo_sql Topo_util
