test/suite_sql_deep.ml: Alcotest Array Biozon Catalog Dump Expr Filename Fun List Schema Sql Sql_ast Sql_binder Sql_lexer Sql_parser String Sys Table Topo_core Topo_sql Tuple Unix Value
