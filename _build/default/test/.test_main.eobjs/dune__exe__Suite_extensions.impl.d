test/suite_extensions.ml: Alcotest Array Biozon Compare Context Engine Filename Fun List Nquery Printf QCheck QCheck_alcotest Query String Sys Topo_core Topo_graph Topo_sql Topology Unix
