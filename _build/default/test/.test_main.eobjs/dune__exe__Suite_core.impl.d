test/suite_core.ml: Alcotest Analysis Array Biozon Compute Context Engine Hashtbl Instances Lazy List Option Printf Query Ranking Store String Topo_core Topo_graph Topo_sql Topo_util Topology Weak
