test/suite_engine_matrix.ml: Alcotest Array Biozon Compute Context Engine Hashtbl List Option Printf QCheck QCheck_alcotest Query Ranking Store String Topo_core Topo_sql Topo_util Topology Weak
