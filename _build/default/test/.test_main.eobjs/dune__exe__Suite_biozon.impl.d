test/suite_biozon.ml: Alcotest Biozon Catalog Expr Float Hashtbl List Option Printf Schema Sql Table Topo_graph Topo_sql Topo_util Tuple Value
