(* Tests for the future-work extensions (Section 8): n-ary queries,
   cross-query comparison primitives, and catalog persistence. *)

open Topo_core
module Value = Topo_sql.Value

let paper_engine () =
  let cat = Biozon.Paper_db.catalog () in
  (cat, Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 ())

(* --- n-ary queries ------------------------------------------------------- *)

let test_nquery_rejects_single_endpoint () =
  let cat, engine = paper_engine () in
  let e = Query.endpoint cat "Protein" in
  match Nquery.run engine.Engine.ctx ~endpoints:[ e ] () with
  | exception (Invalid_argument _) -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_nquery_two_endpoints_matches_pairwise () =
  (* A 2-ary n-query must agree with the pairwise machinery. *)
  let cat, engine = paper_engine () in
  let ctx = engine.Engine.ctx in
  let q = Query.q1 cat in
  let r = Nquery.run ctx ~endpoints:[ q.Query.e1; q.Query.e2 ] () in
  let pairwise = Engine.run engine q ~method_:Engine.Full_top () in
  Alcotest.(check (list int)) "same topology set"
    (List.map fst pairwise.Engine.ranked |> List.sort compare)
    r.Nquery.topologies

let test_nquery_triple_on_paper_db () =
  (* The triple (78, 103, 215): protein 78, unigene 103, DNA 215 are fully
     interconnected (Figure 6); the 3-query topology must connect all
     three. *)
  let cat, engine = paper_engine () in
  let ctx = engine.Engine.ctx in
  ignore cat;
  let tids =
    Nquery.tuple_topologies ctx ~types:[| "Protein"; "Unigene"; "DNA" |] ~entities:[| 78; 103; 215 |]
  in
  Alcotest.(check bool) "some topology" true (tids <> []);
  List.iter
    (fun tid ->
      let t = Engine.topology engine tid in
      let ids = Topo_graph.Lgraph.nodes t.Topology.graph in
      (* A representative graph from this tuple contains all three
         endpoints (node ids are entity ids in the registered graph only
         for the first registration, so check size instead). *)
      Alcotest.(check bool) "at least 3 nodes" true (List.length ids >= 3))
    tids

let test_nquery_disconnected_tuple_empty () =
  let _, engine = paper_engine () in
  let ctx = engine.Engine.ctx in
  (* Protein 32 and DNA 742 are unrelated; adding Unigene 188 (related to
     742 only) cannot connect 32. *)
  let tids =
    Nquery.tuple_topologies ctx ~types:[| "Protein"; "Unigene"; "DNA" |] ~entities:[| 32; 188; 742 |]
  in
  Alcotest.(check (list int)) "no spanning topology" [] tids

let test_nquery_run_finds_triples () =
  let cat, engine = paper_engine () in
  let ctx = engine.Engine.ctx in
  let endpoints =
    [
      Query.keyword cat "Protein" ~col:"desc" ~kw:"enzyme";
      Query.endpoint cat "Unigene";
      Query.equals cat "DNA" ~col:"type" ~value:(Value.Str "mRNA");
    ]
  in
  let r = Nquery.run ctx ~endpoints () in
  Alcotest.(check bool) "rows found" true (r.Nquery.rows <> []);
  Alcotest.(check bool) "not truncated" false r.Nquery.truncated;
  (* (78, 103, 215) must be among the qualifying tuples. *)
  Alcotest.(check bool) "contains (78,103,215)" true
    (List.exists (fun (row : Nquery.row) -> row.Nquery.entities = [| 78; 103; 215 |]) r.Nquery.rows)

let test_nquery_truncation () =
  let cat, engine = paper_engine () in
  let ctx = engine.Engine.ctx in
  let endpoints = [ Query.endpoint cat "Protein"; Query.endpoint cat "Unigene"; Query.endpoint cat "DNA" ] in
  let r = Nquery.run ctx ~endpoints ~max_tuples:1 () in
  Alcotest.(check bool) "truncated" true r.Nquery.truncated

(* --- comparison primitives ------------------------------------------------ *)

let test_compare_diff () =
  let d = Compare.diff ~left:[ 3; 1; 2 ] ~right:[ 2; 4 ] in
  Alcotest.(check (list int)) "common" [ 2 ] d.Compare.common;
  Alcotest.(check (list int)) "only left" [ 1; 3 ] d.Compare.only_left;
  Alcotest.(check (list int)) "only right" [ 4 ] d.Compare.only_right

let test_compare_subsumption_on_paper_topologies () =
  let cat, engine = paper_engine () in
  let registry = engine.Engine.ctx.Context.registry in
  let q = Query.q1 cat in
  let r = Engine.run engine q ~method_:Engine.Full_top () in
  let tids = List.map fst r.Engine.ranked in
  (* T3 (the P-U-D + P-U-P-D union sharing the Unigene) subsumes the plain
     P-U-D path T2. *)
  let find p = List.find p (List.map (Engine.topology engine) tids) in
  let t2 = find (fun t -> Topology.is_single_path t && t.Topology.n_edges = 2) in
  let t3 = find (fun t -> (not (Topology.is_single_path t)) && t.Topology.n_nodes = 4) in
  Alcotest.(check bool) "T3 subsumes T2" true
    (Compare.subsumes registry ~outer:t3.Topology.tid ~inner:t2.Topology.tid);
  Alcotest.(check bool) "T2 does not subsume T3" false
    (Compare.subsumes registry ~outer:t2.Topology.tid ~inner:t3.Topology.tid);
  Alcotest.(check bool) "reflexive" true
    (Compare.subsumes registry ~outer:t2.Topology.tid ~inner:t2.Topology.tid)

let test_compare_maximal () =
  let cat, engine = paper_engine () in
  let registry = engine.Engine.ctx.Context.registry in
  let q = Query.q1 cat in
  let r = Engine.run engine q ~method_:Engine.Full_top () in
  let tids = List.map fst r.Engine.ranked in
  let maximal = Compare.maximal registry tids in
  (* T2 (P-U-D) is subsumed by T3 and T4, T1 (P-D) by nothing in the result
     set. *)
  let t2 =
    List.find
      (fun tid ->
        let t = Engine.topology engine tid in
        Topology.is_single_path t && t.Topology.n_edges = 2)
      tids
  in
  Alcotest.(check bool) "T2 not maximal" false (List.mem t2 maximal);
  Alcotest.(check bool) "maximal non-empty" true (maximal <> []);
  (* refinements of T3 include T2 *)
  let refinements = Compare.refinements registry tids in
  Alcotest.(check bool) "some refinement recorded" true
    (List.exists (fun (_, subs) -> List.mem t2 subs) refinements)

let test_compare_similarity () =
  let cat, engine = paper_engine () in
  let registry = engine.Engine.ctx.Context.registry in
  let q = Query.q1 cat in
  let r = Engine.run engine q ~method_:Engine.Full_top () in
  let tids = List.map fst r.Engine.ranked in
  List.iter
    (fun tid -> Alcotest.(check (float 1e-9)) "self similarity" 1.0 (Compare.similarity registry tid tid))
    tids;
  (* T3 vs T4 share most labels. *)
  let complexes =
    List.filter (fun tid -> not (Topology.is_single_path (Engine.topology engine tid))) tids
  in
  (match complexes with
  | [ a; b ] ->
      let s = Compare.similarity registry a b in
      Alcotest.(check bool) (Printf.sprintf "T3~T4 similar (%.2f)" s) true (s > 0.5 && s < 1.0)
  | _ -> Alcotest.fail "expected two complex topologies");
  ignore cat

(* --- persistence ----------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "toposearch" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_dump_roundtrip_paper_db () =
  with_temp_dir (fun dir ->
      let original = Biozon.Paper_db.catalog () in
      Topo_sql.Dump.save original ~dir;
      let loaded = Topo_sql.Dump.load ~dir in
      List.iter
        (fun table ->
          let name = Topo_sql.Table.name table in
          let reloaded = Topo_sql.Catalog.find loaded name in
          Alcotest.(check int) ("rows of " ^ name) (Topo_sql.Table.row_count table)
            (Topo_sql.Table.row_count reloaded);
          Alcotest.(check (option string)) ("pk of " ^ name) (Topo_sql.Table.primary_key table)
            (Topo_sql.Table.primary_key reloaded);
          Topo_sql.Table.iter
            (fun i tuple ->
              Alcotest.(check bool) "tuple equal" true
                (Topo_sql.Tuple.equal tuple (Topo_sql.Table.get reloaded i)))
            table)
        (Topo_sql.Catalog.tables original))

let test_dump_roundtrip_values () =
  with_temp_dir (fun dir ->
      let schema =
        Topo_sql.Schema.make
          [
            { Topo_sql.Schema.name = "a"; ty = Topo_sql.Schema.TInt };
            { Topo_sql.Schema.name = "b"; ty = Topo_sql.Schema.TFloat };
            { Topo_sql.Schema.name = "c"; ty = Topo_sql.Schema.TStr };
          ]
      in
      let table = Topo_sql.Table.create ~name:"tricky" ~schema () in
      Topo_sql.Table.insert_values table
        [ Value.Int (-42); Value.Float 0.1; Value.Str "tab\there\nnewline\\backslash" ];
      Topo_sql.Table.insert_values table [ Value.Null; Value.Null; Value.Null ];
      Topo_sql.Table.insert_values table [ Value.Int max_int; Value.Float infinity; Value.Str "\\N" ];
      let path = Filename.concat dir "tricky.tbl" in
      Topo_sql.Dump.save_table table ~path;
      let loaded = Topo_sql.Dump.load_table ~path in
      Topo_sql.Table.iter
        (fun i tuple ->
          Alcotest.(check bool) (Printf.sprintf "row %d" i) true
            (Topo_sql.Tuple.equal tuple (Topo_sql.Table.get loaded i)))
        table)

let test_dump_engine_on_loaded_catalog () =
  (* A reloaded catalog supports the full pipeline. *)
  with_temp_dir (fun dir ->
      Topo_sql.Dump.save (Biozon.Paper_db.catalog ()) ~dir;
      let catalog = Topo_sql.Dump.load ~dir in
      let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 () in
      let r = Engine.run engine (Query.q1 catalog) ~method_:Engine.Fast_top () in
      Alcotest.(check int) "four topologies" 4 (List.length r.Engine.ranked))

let test_dump_malformed_rejected () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.tbl" in
      let oc = open_out path in
      output_string oc "not a table file\n";
      close_out oc;
      match Topo_sql.Dump.load_table ~path with
      | exception (Failure _) -> ()
      | _ -> Alcotest.fail "expected Failure")

let prop_dump_string_escaping =
  QCheck.Test.make ~name:"dump escaping roundtrips strings" ~count:300 QCheck.string (fun s ->
      (* Escape/unescape through a full table save/load. *)
      QCheck.assume (not (String.contains s '\r'));
      with_temp_dir (fun dir ->
          let schema = Topo_sql.Schema.make [ { Topo_sql.Schema.name = "s"; ty = Topo_sql.Schema.TStr } ] in
          let table = Topo_sql.Table.create ~name:"t" ~schema () in
          Topo_sql.Table.insert_values table [ Value.Str s ];
          let path = Filename.concat dir "t.tbl" in
          Topo_sql.Dump.save_table table ~path;
          let loaded = Topo_sql.Dump.load_table ~path in
          Value.equal (Topo_sql.Table.get loaded 0).(0) (Value.Str s)))

let suites =
  [
    ( "ext.nquery",
      [
        Alcotest.test_case "rejects single endpoint" `Quick test_nquery_rejects_single_endpoint;
        Alcotest.test_case "2-ary matches pairwise" `Quick test_nquery_two_endpoints_matches_pairwise;
        Alcotest.test_case "triple on paper db" `Quick test_nquery_triple_on_paper_db;
        Alcotest.test_case "disconnected tuple" `Quick test_nquery_disconnected_tuple_empty;
        Alcotest.test_case "run finds triples" `Quick test_nquery_run_finds_triples;
        Alcotest.test_case "truncation" `Quick test_nquery_truncation;
      ] );
    ( "ext.compare",
      [
        Alcotest.test_case "diff" `Quick test_compare_diff;
        Alcotest.test_case "subsumption" `Quick test_compare_subsumption_on_paper_topologies;
        Alcotest.test_case "maximal + refinements" `Quick test_compare_maximal;
        Alcotest.test_case "similarity" `Quick test_compare_similarity;
      ] );
    ( "ext.dump",
      [
        Alcotest.test_case "paper db roundtrip" `Quick test_dump_roundtrip_paper_db;
        Alcotest.test_case "tricky values roundtrip" `Quick test_dump_roundtrip_values;
        Alcotest.test_case "engine on loaded catalog" `Quick test_dump_engine_on_loaded_catalog;
        Alcotest.test_case "malformed rejected" `Quick test_dump_malformed_rejected;
        QCheck_alcotest.to_alcotest prop_dump_string_escaping;
      ] );
  ]
