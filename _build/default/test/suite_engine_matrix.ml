(* Integration matrix: method agreement and structural invariants across
   random generator seeds, path limits and pruning settings — the
   cross-validation net for the whole pipeline. *)

open Topo_core
module Value = Topo_sql.Value

let small_params seed =
  Biozon.Generator.scale 0.12 { Biozon.Generator.default with Biozon.Generator.seed = seed }

let engine_for ?(l = 3) ?(pruning_threshold = 10) ?(exclude_weak = false) seed =
  let cat = Biozon.Generator.generate (small_params seed) in
  (cat, Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~l ~pruning_threshold ~exclude_weak ())

let queries cat =
  [
    Query.make
      (Query.keyword cat "Protein" ~col:"desc" ~kw:"enzyme")
      (Query.equals cat "DNA" ~col:"type" ~value:(Value.Str "mRNA"));
    Query.make (Query.endpoint cat "Protein") (Query.endpoint cat "DNA");
    Query.make
      (Query.keyword cat "Protein" ~col:"desc" ~kw:"kinase")
      (Query.equals cat "DNA" ~col:"type" ~value:(Value.Str "EST"));
  ]

let test_method_agreement_across_seeds () =
  List.iter
    (fun seed ->
      let cat, engine = engine_for seed in
      List.iteri
        (fun qi q ->
          let tids m = List.map fst (Engine.run engine q ~method_:m ()).Engine.ranked in
          let full = tids Engine.Full_top in
          Alcotest.(check (list int))
            (Printf.sprintf "seed %d q%d fast=full" seed qi)
            full (tids Engine.Fast_top);
          Alcotest.(check (list int))
            (Printf.sprintf "seed %d q%d sql=full" seed qi)
            full (tids Engine.Sql))
        (queries cat))
    [ 1; 2; 3 ]

let test_topk_scores_agree_across_seeds () =
  List.iter
    (fun seed ->
      let cat, engine = engine_for seed in
      let q = List.hd (queries cat) in
      List.iter
        (fun scheme ->
          let scores m =
            List.map
              (fun (_, s) -> Option.get s)
              (Engine.run engine q ~method_:m ~scheme ~k:5 ()).Engine.ranked
            |> List.sort compare
          in
          let reference = scores Engine.Full_top_k in
          List.iter
            (fun m ->
              Alcotest.(check (list (float 1e-9)))
                (Printf.sprintf "seed %d %s %s" seed (Engine.method_name m) (Ranking.name scheme))
                reference (scores m))
            [ Engine.Fast_top_k; Engine.Full_top_k_et; Engine.Fast_top_k_et ])
        Ranking.all)
    [ 4; 5 ]

let test_pruning_threshold_invariance () =
  (* The query answer must not depend on the pruning threshold. *)
  let cat0, e0 = engine_for ~pruning_threshold:0 7 in
  let _, e_mid = engine_for ~pruning_threshold:20 7 in
  let _, e_inf = engine_for ~pruning_threshold:max_int 7 in
  List.iteri
    (fun qi q ->
      let tids e = List.map fst (Engine.run e q ~method_:Engine.Fast_top ()).Engine.ranked in
      let reference = tids e_inf in
      Alcotest.(check (list int)) (Printf.sprintf "q%d threshold 0" qi) reference (tids e0);
      Alcotest.(check (list int)) (Printf.sprintf "q%d threshold 20" qi) reference (tids e_mid))
    (queries cat0)

let test_l_monotonicity () =
  (* Raising l can only reveal richer structure: every pair related at
     l=2 stays related at l=3 (possibly by a different, larger topology). *)
  let _, e2 = engine_for ~l:2 11 in
  let _, e3 = engine_for ~l:3 11 in
  let pairs e =
    let store = Engine.store e ~t1:"Protein" ~t2:"DNA" in
    List.map (fun (r : Compute.pair_row) -> (r.Compute.a, r.Compute.b)) store.Store.rows
    |> List.sort_uniq compare
  in
  let p2 = pairs e2 and p3 = pairs e3 in
  List.iter
    (fun pair -> Alcotest.(check bool) "pair persists" true (List.mem pair p3))
    p2;
  Alcotest.(check bool) "l=3 finds more pairs" true (List.length p3 >= List.length p2)

let test_exclude_weak_removes_weak_classes () =
  let _, e = engine_for ~l:4 13 ~exclude_weak:true in
  let store = Engine.store e ~t1:"Protein" ~t2:"DNA" in
  List.iter
    (fun (r : Compute.pair_row) ->
      List.iter
        (fun key ->
          Alcotest.(check bool) "no weak class key" false (Weak.is_weak_class_key key))
        r.Compute.class_keys)
    store.Store.rows

let test_rebuild_same_catalog_is_idempotent () =
  let cat = Biozon.Generator.generate (small_params 17) in
  let e1 = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:10 () in
  let rows1 =
    Topo_sql.Table.row_count
      (Topo_sql.Catalog.find cat (Engine.store e1 ~t1:"Protein" ~t2:"DNA").Store.alltops)
  in
  (* Rebuilding replaces the derived tables in place. *)
  let e2 = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:10 () in
  let rows2 =
    Topo_sql.Table.row_count
      (Topo_sql.Catalog.find cat (Engine.store e2 ~t1:"Protein" ~t2:"DNA").Store.alltops)
  in
  Alcotest.(check int) "same alltops rows" rows1 rows2

let test_alltops_rows_match_pair_recomputation () =
  (* Sampled pairs from the sweep agree with direct per-pair computation
     (Definitions 1-3 evaluated both ways). *)
  let _, engine = engine_for 19 in
  let ctx = engine.Engine.ctx in
  let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
  let rows = Array.of_list store.Store.rows in
  let prng = Topo_util.Prng.create 555 in
  for _ = 1 to 25 do
    let r = rows.(Topo_util.Prng.int prng (Array.length rows)) in
    let recomputed =
      Compute.pair_topologies ctx.Context.dg ctx.Context.schema ctx.Context.registry ~t1:"Protein"
        ~t2:"DNA" ~a:r.Compute.a ~b:r.Compute.b ~l:3 ~caps:ctx.Context.caps
    in
    Alcotest.(check (list int))
      (Printf.sprintf "(%d,%d)" r.Compute.a r.Compute.b)
      r.Compute.tids recomputed.Compute.tids
  done

let test_frequencies_sum_to_alltops_rows () =
  let _, engine = engine_for 23 in
  let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
  let cat = engine.Engine.ctx.Context.catalog in
  let freq_sum = Hashtbl.fold (fun _ f acc -> acc + f) store.Store.frequencies 0 in
  Alcotest.(check int) "sum freq = |AllTops|" (Topo_sql.Table.row_count (Topo_sql.Catalog.find cat store.Store.alltops)) freq_sum

let test_lefttops_plus_pruned_covers_alltops () =
  let _, engine = engine_for 29 in
  let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
  let cat = engine.Engine.ctx.Context.catalog in
  let count name = Topo_sql.Table.row_count (Topo_sql.Catalog.find cat name) in
  let pruned_rows =
    List.fold_left (fun acc (p : Topology.t) -> acc + Store.frequency store p.Topology.tid) 0
      store.Store.pruned
  in
  Alcotest.(check int) "partition" (count store.Store.alltops)
    (count store.Store.lefttops + pruned_rows)

let prop_describe_total =
  (* describe never raises on any registered topology. *)
  QCheck.Test.make ~name:"describe total on all topologies" ~count:1
    QCheck.unit
    (fun () ->
      let _, engine = engine_for 31 in
      let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
      Hashtbl.fold
        (fun tid _ ok -> ok && String.length (Engine.describe engine tid) > 0)
        store.Store.frequencies true)

let suites =
  [
    ( "matrix.agreement",
      [
        Alcotest.test_case "methods agree across seeds" `Slow test_method_agreement_across_seeds;
        Alcotest.test_case "top-k scores agree across seeds" `Slow test_topk_scores_agree_across_seeds;
        Alcotest.test_case "pruning threshold invariance" `Quick test_pruning_threshold_invariance;
        Alcotest.test_case "l monotonicity" `Quick test_l_monotonicity;
      ] );
    ( "matrix.invariants",
      [
        Alcotest.test_case "exclude_weak" `Quick test_exclude_weak_removes_weak_classes;
        Alcotest.test_case "rebuild idempotent" `Quick test_rebuild_same_catalog_is_idempotent;
        Alcotest.test_case "sweep matches per-pair recompute" `Quick test_alltops_rows_match_pair_recomputation;
        Alcotest.test_case "freq sums to AllTops" `Quick test_frequencies_sum_to_alltops_rows;
        Alcotest.test_case "LeftTops + pruned = AllTops" `Quick test_lefttops_plus_pruned_covers_alltops;
        QCheck_alcotest.to_alcotest prop_describe_total;
      ] );
  ]
