(* Cross-cutting invariants, mostly property-based: determinism of the
   capped computation, n-query/pairwise consistency, combinatorial
   identities of the gluing enumerator, and total-order laws of the value
   lattice. *)

open Topo_core
module Value = Topo_sql.Value

(* --- determinism under tight caps -------------------------------------------- *)

let tight_caps = { Compute.max_reps_per_class = 2; max_combos_per_pair = 8; max_paths_per_class = 100000 }

let prop_sweep_matches_anchored_under_caps =
  (* The design claim behind method agreement: even when caps truncate, the
     offline sweep and the anchored recomputation select the same canonical
     sample and therefore the same topology sets. *)
  QCheck.Test.make ~name:"sweep = anchored recomputation under tight caps" ~count:8
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let params =
        Biozon.Generator.scale 0.08 { Biozon.Generator.default with Biozon.Generator.seed = seed }
      in
      let cat = Biozon.Generator.generate params in
      let engine = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~caps:tight_caps ~pruning_threshold:10 () in
      let ctx = engine.Engine.ctx in
      let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
      List.for_all
        (fun (r : Compute.pair_row) ->
          let again =
            Compute.pair_topologies ctx.Context.dg ctx.Context.schema ctx.Context.registry
              ~t1:"Protein" ~t2:"DNA" ~a:r.Compute.a ~b:r.Compute.b ~l:3 ~caps:tight_caps
          in
          again.Compute.tids = r.Compute.tids)
        store.Store.rows)

let prop_nquery_two_ary_matches_pairwise =
  QCheck.Test.make ~name:"2-ary nquery = pairwise engine across seeds" ~count:6
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let params =
        Biozon.Generator.scale 0.08 { Biozon.Generator.default with Biozon.Generator.seed = seed }
      in
      let cat = Biozon.Generator.generate params in
      let engine = Engine.build cat ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:10 () in
      let q =
        Query.make
          (Query.keyword cat "Protein" ~col:"desc" ~kw:"enzyme")
          (Query.equals cat "DNA" ~col:"type" ~value:(Value.Str "mRNA"))
      in
      let pairwise =
        List.map fst (Engine.run engine q ~method_:Engine.Full_top ()).Engine.ranked
      in
      let nary =
        (Nquery.run engine.Engine.ctx ~endpoints:[ q.Query.e1; q.Query.e2 ] ~max_tuples:20000 ()).Nquery.topologies
      in
      nary = pairwise)

(* --- gluing combinatorics ------------------------------------------------------ *)

let test_glue_bell_identity () =
  (* Schema with exactly 4 distinct A-B paths through a single X-typed
     intermediate: gluings per k-subset = Bell(k) partitions of k X-slots,
     so total gluings = sum_k C(4,k) Bell(k) = 4 + 12 + 20 + 15 = 51. *)
  let s = Topo_graph.Schema_graph.create () in
  List.iter
    (fun (r1, r2) ->
      Topo_graph.Schema_graph.add_relationship s ~name:r1 ~from_:"A" ~to_:"X";
      Topo_graph.Schema_graph.add_relationship s ~name:r2 ~from_:"X" ~to_:"B")
    [ ("r1", "s1"); ("r2", "s2") ];
  (* Paths: r1-s1, r1-s2, r2-s1, r2-s2 = 4 distinct classes. *)
  let interner = Topo_util.Interner.create () in
  let r = Topo_graph.Glue.enumerate interner s ~from_:"A" ~to_:"B" ~max_len:2 () in
  Alcotest.(check int) "gluings = sum C(4,k) Bell(k)" 51 r.Topo_graph.Glue.gluings_examined

let test_glue_distinct_counts () =
  (* Same schema: count distinct canonical graphs by brute reasoning is
     harder; sanity: count is positive and bounded by gluings. *)
  let s = Topo_graph.Schema_graph.create () in
  Topo_graph.Schema_graph.add_relationship s ~name:"r" ~from_:"A" ~to_:"X";
  Topo_graph.Schema_graph.add_relationship s ~name:"q" ~from_:"X" ~to_:"B";
  let interner = Topo_util.Interner.create () in
  let r = Topo_graph.Glue.enumerate interner s ~from_:"A" ~to_:"B" ~max_len:2 () in
  (* One path only: one subset, one gluing, one topology. *)
  Alcotest.(check int) "single path" 1 r.Topo_graph.Glue.count;
  Alcotest.(check int) "single gluing" 1 r.Topo_graph.Glue.gluings_examined

let prop_glue_count_le_gluings =
  (* l <= 2 keeps the enumeration cheap; fig8's bench covers l = 3. *)
  QCheck.Test.make ~name:"distinct topologies <= gluings examined" ~count:6
    QCheck.(int_range 1 2)
    (fun l ->
      let interner = Topo_util.Interner.create () in
      let r =
        Topo_graph.Glue.enumerate interner (Biozon.Bschema.schema_graph ()) ~from_:"Protein" ~to_:"DNA"
          ~max_len:l ~collect:false ()
      in
      r.Topo_graph.Glue.count <= r.Topo_graph.Glue.gluings_examined && r.Topo_graph.Glue.count > 0)

(* --- value lattice laws ---------------------------------------------------------- *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun n -> Value.Int n) small_signed_int;
        map (fun f -> Value.Float f) (float_range (-100.0) 100.0);
        map (fun s -> Value.Str s) (string_size (int_range 0 6));
      ])

let prop_value_order_total =
  QCheck.Test.make ~name:"value compare is a total order" ~count:500
    (QCheck.make QCheck.Gen.(triple gen_value gen_value gen_value))
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* Antisymmetry. *)
      (sgn (Value.compare a b) = -sgn (Value.compare b a))
      (* Transitivity (on the <= relation). *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0) || Value.compare a c <= 0))

let prop_value_hash_respects_equal =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_value gen_value))
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suites =
  [
    ( "inv.determinism",
      [
        QCheck_alcotest.to_alcotest prop_sweep_matches_anchored_under_caps;
        QCheck_alcotest.to_alcotest prop_nquery_two_ary_matches_pairwise;
      ] );
    ( "inv.glue",
      [
        Alcotest.test_case "Bell identity" `Quick test_glue_bell_identity;
        Alcotest.test_case "single path" `Quick test_glue_distinct_counts;
        QCheck_alcotest.to_alcotest prop_glue_count_le_gluings;
      ] );
    ( "inv.values",
      [
        QCheck_alcotest.to_alcotest prop_value_order_total;
        QCheck_alcotest.to_alcotest prop_value_hash_respects_equal;
      ] );
  ]
