(* Tests for the Biozon substrate: schema shape, the Figure 3 database, the
   vocabulary calibration and the synthetic generator. *)

open Topo_sql

let test_schema_table_counts () =
  (* "28 million objects (stored in seven tables) and 9.6 million binary
     relationships (stored in eight tables)". *)
  Alcotest.(check int) "seven entity tables" 7 (List.length Biozon.Bschema.entities);
  Alcotest.(check int) "eight relationship tables" 8 (List.length Biozon.Bschema.relationships)

let test_make_catalog_tables () =
  let cat = Biozon.Bschema.make_catalog () in
  Alcotest.(check int) "fifteen tables" 15 (List.length (Catalog.tables cat));
  let protein = Catalog.find cat "Protein" in
  Alcotest.(check bool) "desc column" true (Schema.mem (Table.schema protein) "desc");
  let dna = Catalog.find cat "DNA" in
  Alcotest.(check bool) "type column" true (Schema.mem (Table.schema dna) "type")

let test_relationship_named () =
  let r = Biozon.Bschema.relationship_named "uni_contains" in
  Alcotest.(check string) "endpoints" "Unigene" r.Biozon.Bschema.from_type;
  Alcotest.(check string) "endpoints" "DNA" r.Biozon.Bschema.to_type;
  match Biozon.Bschema.relationship_named "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_paper_db_contents () =
  let cat = Biozon.Paper_db.catalog () in
  Alcotest.(check int) "four proteins" 4 (Table.row_count (Catalog.find cat "Protein"));
  Alcotest.(check int) "three dnas" 3 (Table.row_count (Catalog.find cat "DNA"));
  Alcotest.(check int) "four unigenes" 4 (Table.row_count (Catalog.find cat "Unigene"));
  Alcotest.(check int) "two encodes" 2 (Table.row_count (Catalog.find cat "Encodes"));
  Alcotest.(check int) "five uni_encodes" 5 (Table.row_count (Catalog.find cat "Uni_encodes"));
  Alcotest.(check int) "four uni_contains" 4 (Table.row_count (Catalog.find cat "Uni_contains"))

let test_paper_db_queryable_by_sql () =
  let cat = Biozon.Paper_db.catalog () in
  let _, rows = Sql.query cat "SELECT P.ID FROM Protein P WHERE P.desc.ct('enzyme')" in
  let ids = List.map (fun t -> Value.as_int (Tuple.get t 0)) rows |> List.sort compare in
  (* Proteins 32, 44, 78 mention "enzyme"; 34 does not. *)
  Alcotest.(check (list int)) "enzyme proteins" [ 32; 44; 78 ] ids

let test_paper_db_entity_of_id () =
  let cat = Biozon.Paper_db.catalog () in
  (match Biozon.Bschema.entity_of_id cat 103 with
  | Some ("Unigene", _) -> ()
  | Some (other, _) -> Alcotest.failf "expected Unigene, got %s" other
  | None -> Alcotest.fail "unknown id");
  Alcotest.(check bool) "absent id" true (Biozon.Bschema.entity_of_id cat 999999 = None)

let test_vocab_keyword_selectivities () =
  (* Generate many protein descriptions and verify the calibrated keyword
     rates land near their targets. *)
  let prng = Topo_util.Prng.create 99 in
  let n = 4000 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to n do
    let d = Biozon.Vocab.description prng ~keywords:Biozon.Vocab.protein_keywords in
    List.iter
      (fun (kw, _) ->
        if Expr.keyword_matches ~keyword:kw ~text:d then
          Hashtbl.replace counts kw (1 + Option.value ~default:0 (Hashtbl.find_opt counts kw)))
      Biozon.Vocab.protein_keywords
  done;
  List.iter
    (fun (kw, p) ->
      let rate = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts kw)) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate %.3f near %.2f" kw rate p)
        true
        (Float.abs (rate -. p) < 0.03))
    Biozon.Vocab.protein_keywords

let test_vocab_keyword_for () =
  Alcotest.(check string) "protein selective" "kinase" (Biozon.Vocab.keyword_for `Protein `Selective);
  Alcotest.(check string) "interaction medium" "binding"
    (Biozon.Vocab.keyword_for `Interaction `Medium)

let test_generator_deterministic () =
  let p = { Biozon.Generator.default with Biozon.Generator.n_proteins = 150; n_unigenes = 80; n_interactions = 50 } in
  let a = Biozon.Generator.generate p and b = Biozon.Generator.generate p in
  List.iter2
    (fun (na, ca) (nb, cb) ->
      Alcotest.(check string) "table order" na nb;
      Alcotest.(check int) ("rows " ^ na) ca cb)
    (Biozon.Generator.summary a) (Biozon.Generator.summary b);
  (* Spot-check actual content equality on a table. *)
  let ta = Catalog.find a "Protein" and tb = Catalog.find b "Protein" in
  Table.iter (fun i tuple -> Alcotest.(check bool) "tuple equal" true (Tuple.equal tuple (Table.get tb i))) ta

let test_generator_ids_globally_unique () =
  let p = { Biozon.Generator.default with Biozon.Generator.n_proteins = 120 } in
  let cat = Biozon.Generator.generate p in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (e : Biozon.Bschema.entity) ->
      Table.iter
        (fun _ tuple ->
          let id = Value.as_int (Tuple.get tuple 0) in
          Alcotest.(check bool) "unique id" false (Hashtbl.mem seen id);
          Hashtbl.add seen id ())
        (Catalog.find cat e.Biozon.Bschema.e_table))
    Biozon.Bschema.entities

let test_generator_referential_integrity () =
  let p = { Biozon.Generator.default with Biozon.Generator.n_proteins = 120 } in
  let cat = Biozon.Generator.generate p in
  List.iter
    (fun (r : Biozon.Bschema.relationship) ->
      let from_table = Catalog.find cat r.Biozon.Bschema.from_type in
      let to_table = Catalog.find cat r.Biozon.Bschema.to_type in
      Table.iter
        (fun _ tuple ->
          let f = Tuple.get tuple 1 and t = Tuple.get tuple 2 in
          Alcotest.(check bool) "from exists" true (Table.find_by_pk from_table f <> None);
          Alcotest.(check bool) "to exists" true (Table.find_by_pk to_table t <> None))
        (Catalog.find cat r.Biozon.Bschema.r_table))
    Biozon.Bschema.relationships

let test_generator_scale () =
  let base = Biozon.Generator.default in
  let doubled = Biozon.Generator.scale 2.0 base in
  Alcotest.(check int) "proteins doubled" (2 * base.Biozon.Generator.n_proteins)
    doubled.Biozon.Generator.n_proteins;
  let tiny = Biozon.Generator.scale 0.00001 base in
  Alcotest.(check bool) "never zero" true (tiny.Biozon.Generator.n_proteins >= 1)

let test_generator_selectivity_targets () =
  let cat = Biozon.Generator.generate { Biozon.Generator.default with Biozon.Generator.n_proteins = 2000 } in
  let protein = Catalog.find cat "Protein" in
  let matching kw =
    let n = ref 0 in
    Table.iter
      (fun _ tuple ->
        if Expr.keyword_matches ~keyword:kw ~text:(Value.as_string (Tuple.get tuple 1)) then incr n)
      protein;
    float_of_int !n /. float_of_int (Table.row_count protein)
  in
  Alcotest.(check bool) "kinase ~15%" true (Float.abs (matching "kinase" -. 0.15) < 0.04);
  Alcotest.(check bool) "enzyme ~50%" true (Float.abs (matching "enzyme" -. 0.50) < 0.04);
  Alcotest.(check bool) "protein ~85%" true (Float.abs (matching "protein" -. 0.85) < 0.04)

let test_generator_contains_fig16_motif () =
  (* At default scale the operon wiring must produce at least one pair of
     interacting proteins encoded by the same DNA. *)
  let cat = Biozon.Generator.generate Biozon.Generator.default in
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph cat interner in
  let found = ref false in
  let encodes = Catalog.find cat "Encodes" in
  let by_dna = Hashtbl.create 256 in
  Table.iter
    (fun _ tuple ->
      let pid = Value.as_int (Tuple.get tuple 1) and did = Value.as_int (Tuple.get tuple 2) in
      Hashtbl.replace by_dna did (pid :: Option.value ~default:[] (Hashtbl.find_opt by_dna did)))
    encodes;
  Hashtbl.iter
    (fun _ pids ->
      if not !found then
        List.iter
          (fun p1 ->
            List.iter
              (fun p2 ->
                if p1 < p2 then begin
                  (* Interacting = share an Interaction neighbor. *)
                  let i1 = Topo_graph.Data_graph.neighbors_by dg ~id:p1 ~rel:"interacts_p" ~ty:"Interaction" in
                  let i2 = Topo_graph.Data_graph.neighbors_by dg ~id:p2 ~rel:"interacts_p" ~ty:"Interaction" in
                  if List.exists (fun i -> List.mem i i2) i1 then found := true
                end)
              pids)
          pids)
    by_dna;
  Alcotest.(check bool) "Fig 16 motif present" true !found

let suites =
  [
    ( "biozon.schema",
      [
        Alcotest.test_case "table counts" `Quick test_schema_table_counts;
        Alcotest.test_case "catalog tables" `Quick test_make_catalog_tables;
        Alcotest.test_case "relationship lookup" `Quick test_relationship_named;
      ] );
    ( "biozon.paper_db",
      [
        Alcotest.test_case "contents" `Quick test_paper_db_contents;
        Alcotest.test_case "SQL queryable" `Quick test_paper_db_queryable_by_sql;
        Alcotest.test_case "entity_of_id" `Quick test_paper_db_entity_of_id;
      ] );
    ( "biozon.vocab",
      [
        Alcotest.test_case "keyword selectivities" `Slow test_vocab_keyword_selectivities;
        Alcotest.test_case "keyword_for" `Quick test_vocab_keyword_for;
      ] );
    ( "biozon.generator",
      [
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "globally unique ids" `Quick test_generator_ids_globally_unique;
        Alcotest.test_case "referential integrity" `Quick test_generator_referential_integrity;
        Alcotest.test_case "scaling" `Quick test_generator_scale;
        Alcotest.test_case "selectivity targets" `Slow test_generator_selectivity_targets;
        Alcotest.test_case "Fig 16 motif present" `Slow test_generator_contains_fig16_motif;
      ] );
  ]
