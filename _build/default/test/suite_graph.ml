(* Tests for the graph kit: labeled graphs, canonical forms, isomorphism,
   schema graphs, instance path enumeration and the gluing enumerator. *)

open Topo_graph
module Interner = Topo_util.Interner

let mk_graph nodes edges =
  let g = Lgraph.empty () in
  List.iter (fun (id, label) -> Lgraph.add_node g ~id ~label) nodes;
  List.iter (fun (u, v, label) -> Lgraph.add_edge g ~u ~v ~label) edges;
  g

(* --- lgraph ------------------------------------------------------------ *)

let test_lgraph_basics () =
  let g = mk_graph [ (1, 10); (2, 20); (3, 10) ] [ (1, 2, 5); (2, 3, 5) ] in
  Alcotest.(check int) "nodes" 3 (Lgraph.node_count g);
  Alcotest.(check int) "edges" 2 (Lgraph.edge_count g);
  Alcotest.(check int) "degree" 2 (Lgraph.degree g 2);
  Alcotest.(check bool) "mem_edge" true (Lgraph.mem_edge g ~u:2 ~v:1 ~label:5);
  Alcotest.(check bool) "connected" true (Lgraph.connected g)

let test_lgraph_duplicate_edge_collapses () =
  let g = mk_graph [ (1, 10); (2, 20) ] [ (1, 2, 5); (2, 1, 5) ] in
  Alcotest.(check int) "one edge" 1 (Lgraph.edge_count g);
  (* Same endpoints, different label: kept as a distinct edge. *)
  Lgraph.add_edge g ~u:1 ~v:2 ~label:6;
  Alcotest.(check int) "two labels" 2 (Lgraph.edge_count g)

let test_lgraph_rejects_bad_edges () =
  let g = mk_graph [ (1, 10) ] [] in
  Alcotest.check_raises "self loop" (Invalid_argument "Lgraph.add_edge: self-loop") (fun () ->
      Lgraph.add_edge g ~u:1 ~v:1 ~label:0);
  Alcotest.check_raises "missing node" (Invalid_argument "Lgraph.add_edge: missing node 9") (fun () ->
      Lgraph.add_edge g ~u:1 ~v:9 ~label:0)

let test_lgraph_union () =
  let a = mk_graph [ (1, 10); (2, 20) ] [ (1, 2, 5) ] in
  let b = mk_graph [ (2, 20); (3, 10) ] [ (2, 3, 6) ] in
  let u = Lgraph.union a b in
  Alcotest.(check int) "union nodes" 3 (Lgraph.node_count u);
  Alcotest.(check int) "union edges" 2 (Lgraph.edge_count u)

let test_lgraph_disconnected () =
  let g = mk_graph [ (1, 10); (2, 20) ] [] in
  Alcotest.(check bool) "disconnected" false (Lgraph.connected g)

(* --- canonical forms ---------------------------------------------------- *)

let test_canon_iso_invariance () =
  (* Same path, different node ids. *)
  let a = mk_graph [ (1, 10); (2, 20); (3, 30) ] [ (1, 2, 5); (2, 3, 6) ] in
  let b = mk_graph [ (7, 30); (9, 10); (4, 20) ] [ (9, 4, 5); (4, 7, 6) ] in
  Alcotest.(check string) "same key" (Canon.key a) (Canon.key b)

let test_canon_distinguishes_labels () =
  let a = mk_graph [ (1, 10); (2, 20) ] [ (1, 2, 5) ] in
  let b = mk_graph [ (1, 10); (2, 20) ] [ (1, 2, 6) ] in
  let c = mk_graph [ (1, 10); (2, 30) ] [ (1, 2, 5) ] in
  Alcotest.(check bool) "edge label" true (Canon.key a <> Canon.key b);
  Alcotest.(check bool) "node label" true (Canon.key a <> Canon.key c)

let test_canon_distinguishes_structure () =
  (* Path of 4 vs star of 4, same label multiset. *)
  let path = mk_graph [ (1, 10); (2, 10); (3, 10); (4, 10) ] [ (1, 2, 5); (2, 3, 5); (3, 4, 5) ] in
  let star = mk_graph [ (1, 10); (2, 10); (3, 10); (4, 10) ] [ (1, 2, 5); (1, 3, 5); (1, 4, 5) ] in
  Alcotest.(check bool) "path <> star" true (Canon.key path <> Canon.key star)

let test_canon_symmetric_graph () =
  (* A 6-cycle with uniform labels exercises the individualization
     branch (refinement alone cannot make it discrete). *)
  let cycle ids =
    mk_graph
      (List.map (fun id -> (id, 10)) ids)
    (match ids with
      | [ a; b; c; d; e; f ] -> [ (a, b, 5); (b, c, 5); (c, d, 5); (d, e, 5); (e, f, 5); (f, a, 5) ]
      | _ -> assert false)
  in
  let a = cycle [ 1; 2; 3; 4; 5; 6 ] in
  let b = cycle [ 60; 10; 40; 20; 50; 30 ] in
  Alcotest.(check string) "cycles iso" (Canon.key a) (Canon.key b);
  (* 6-path with same labels differs. *)
  let path =
    mk_graph
      (List.map (fun id -> (id, 10)) [ 1; 2; 3; 4; 5; 6 ])
      [ (1, 2, 5); (2, 3, 5); (3, 4, 5); (4, 5, 5); (5, 6, 5) ]
  in
  Alcotest.(check bool) "cycle <> path" true (Canon.key a <> Canon.key path)

let test_canonical_order_is_permutation () =
  let g = mk_graph [ (3, 10); (7, 20); (9, 30) ] [ (3, 7, 5); (7, 9, 6) ] in
  let order = Canon.canonical_order g in
  Alcotest.(check (list int)) "permutation of nodes" [ 3; 7; 9 ] (List.sort compare order)

(* QCheck: canonical key invariant under random relabeling of node ids. *)
let gen_small_graph =
  QCheck.Gen.(
    let* n = int_range 2 7 in
    let* labels = array_size (return n) (int_range 0 2) in
    let* density = float_range 0.2 0.9 in
    let* edge_rolls = array_size (return (n * n)) (float_range 0.0 1.0) in
    let* edge_labels = array_size (return (n * n)) (int_range 100 101) in
    return (n, labels, density, edge_rolls, edge_labels))

let graph_of_spec (n, labels, density, edge_rolls, edge_labels) =
  let g = Lgraph.empty () in
  for i = 0 to n - 1 do
    Lgraph.add_node g ~id:i ~label:labels.(i)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if edge_rolls.((i * n) + j) < density then
        Lgraph.add_edge g ~u:i ~v:j ~label:edge_labels.((i * n) + j)
    done
  done;
  g

let permute_graph perm g =
  let out = Lgraph.empty () in
  List.iter (fun id -> Lgraph.add_node out ~id:perm.(id) ~label:(Lgraph.node_label g id)) (Lgraph.nodes g);
  List.iter
    (fun { Lgraph.u; v; label } -> Lgraph.add_edge out ~u:perm.(u) ~v:perm.(v) ~label)
    (Lgraph.edges g);
  out

let prop_canon_invariant =
  QCheck.Test.make ~name:"canonical key invariant under relabeling" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* spec = gen_small_graph in
         let* seed = int_range 0 100000 in
         return (spec, seed)))
    (fun (spec, seed) ->
      let g = graph_of_spec spec in
      let n = (fun (n, _, _, _, _) -> n) spec in
      let prng = Topo_util.Prng.create seed in
      let perm = Array.init n (fun i -> i + 100) in
      Topo_util.Prng.shuffle prng perm;
      let h = permute_graph perm g in
      Canon.key g = Canon.key h)

let prop_canon_detects_edge_removal =
  QCheck.Test.make ~name:"key changes when an edge is dropped" ~count:200
    (QCheck.make gen_small_graph)
    (fun spec ->
      let g = graph_of_spec spec in
      match Lgraph.edges g with
      | [] -> QCheck.assume_fail ()
      | { Lgraph.u; v; label } :: _ ->
          (* Rebuild without the first edge. *)
          let h = Lgraph.empty () in
          List.iter (fun id -> Lgraph.add_node h ~id ~label:(Lgraph.node_label g id)) (Lgraph.nodes g);
          List.iter
            (fun e ->
              if not (e.Lgraph.u = u && e.Lgraph.v = v && e.Lgraph.label = label) then
                Lgraph.add_edge h ~u:e.Lgraph.u ~v:e.Lgraph.v ~label:e.Lgraph.label)
            (Lgraph.edges g);
          Canon.key g <> Canon.key h)

(* --- subgraph isomorphism ------------------------------------------------ *)

let test_iso_embeds_path_in_triangle () =
  let tri = mk_graph [ (1, 10); (2, 20); (3, 30) ] [ (1, 2, 5); (2, 3, 5); (1, 3, 5) ] in
  let path = mk_graph [ (8, 10); (9, 20) ] [ (8, 9, 5) ] in
  Alcotest.(check bool) "embeds" true (Iso.embeds ~pattern:path ~host:tri ());
  Alcotest.(check bool) "reverse does not" false (Iso.embeds ~pattern:tri ~host:path ())

let test_iso_respects_labels () =
  let host = mk_graph [ (1, 10); (2, 20) ] [ (1, 2, 5) ] in
  let bad_label = mk_graph [ (8, 10); (9, 20) ] [ (8, 9, 7) ] in
  Alcotest.(check bool) "edge label mismatch" false (Iso.embeds ~pattern:bad_label ~host ())

let test_iso_anchored () =
  let host = mk_graph [ (1, 10); (2, 20); (3, 10) ] [ (1, 2, 5); (3, 2, 5) ] in
  let pat = mk_graph [ (8, 10); (9, 20) ] [ (8, 9, 5) ] in
  Alcotest.(check bool) "anchor ok" true (Iso.embeds ~pattern:pat ~host ~anchors:[ (8, 3) ] ());
  (* Anchoring a pattern node on a wrong-label host node fails. *)
  Alcotest.(check bool) "anchor bad" false (Iso.embeds ~pattern:pat ~host ~anchors:[ (8, 2) ] ())

(* --- schema graph -------------------------------------------------------- *)

let biozon_schema () = Biozon.Bschema.schema_graph ()

let test_schema_ten_paths_p_d () =
  (* The Section 3.1 claim: ten schema paths of length <= 3 connect
     Proteins and DNAs. *)
  let paths = Schema_graph.paths (biozon_schema ()) ~from_:"Protein" ~to_:"DNA" ~max_len:3 in
  Alcotest.(check int) "ten paths" 10 (List.length paths)

let test_schema_path_lengths () =
  let paths = Schema_graph.paths (biozon_schema ()) ~from_:"Protein" ~to_:"DNA" ~max_len:3 in
  let by_len n = List.length (List.filter (fun p -> Schema_graph.path_length p = n) paths) in
  Alcotest.(check int) "one direct" 1 (by_len 1);
  Alcotest.(check int) "two of length 2" 2 (by_len 2);
  Alcotest.(check int) "seven of length 3" 7 (by_len 3)

let test_schema_path_key_reversal () =
  let p = { Schema_graph.types = [| "A"; "B"; "C" |]; rels = [| "r"; "s" |] } in
  Alcotest.(check string) "key equals reversed key" (Schema_graph.path_key p)
    (Schema_graph.path_key (Schema_graph.reverse p))

let test_schema_duplicate_relationship_rejected () =
  let g = Schema_graph.create () in
  Schema_graph.add_relationship g ~name:"r" ~from_:"A" ~to_:"B";
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema_graph.add_relationship: duplicate r(B,A)") (fun () ->
      Schema_graph.add_relationship g ~name:"r" ~from_:"B" ~to_:"A")

(* Path-class keys agree with full graph isomorphism on schema paths. *)
let prop_path_key_matches_isomorphism =
  let schema = biozon_schema () in
  let paths = Array.of_list (Schema_graph.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:4) in
  QCheck.Test.make ~name:"path_key = graph isomorphism on schema paths" ~count:300
    QCheck.(pair (int_range 0 (Array.length paths - 1)) (int_range 0 (Array.length paths - 1)))
    (fun (i, j) ->
      let interner = Interner.create () in
      let pi = paths.(i) and pj = paths.(j) in
      let gi =
        Schema_graph.path_to_lgraph interner pi
          ~ids:(Array.init (Array.length pi.Schema_graph.types) (fun k -> k))
      in
      let gj =
        Schema_graph.path_to_lgraph interner pj
          ~ids:(Array.init (Array.length pj.Schema_graph.types) (fun k -> k + 50))
      in
      Canon.iso gi gj = (Schema_graph.path_key pi = Schema_graph.path_key pj))

(* --- data graph ----------------------------------------------------------- *)

let paper_dg () =
  let cat = Biozon.Paper_db.catalog () in
  let interner = Interner.create () in
  (cat, Biozon.Bschema.data_graph cat interner)

let test_data_graph_counts () =
  let _, dg = paper_dg () in
  Alcotest.(check int) "nodes" 11 (Data_graph.node_count dg);
  Alcotest.(check int) "edges" 11 (Data_graph.edge_count dg)

let test_data_graph_entities_of_type () =
  let _, dg = paper_dg () in
  Alcotest.(check (array int)) "proteins" [| 32; 34; 44; 78 |] (Data_graph.entities_of_type dg "Protein");
  Alcotest.(check (array int)) "dnas" [| 214; 215; 742 |] (Data_graph.entities_of_type dg "DNA")

let find_path schema key =
  List.find
    (fun p -> Schema_graph.path_key p = key)
    (Schema_graph.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:3)

let pud_path schema =
  List.find
    (fun p -> Schema_graph.path_length p = 2 && Array.mem "Unigene" p.Schema_graph.types)
    (Schema_graph.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:2)

let test_instance_paths_pud () =
  let _, dg = paper_dg () in
  let schema = biozon_schema () in
  let p = pud_path schema in
  let found = ref [] in
  Data_graph.iter_instance_paths dg p ~f:(fun ids -> found := Array.to_list ids :: !found);
  let found = List.sort compare !found in
  (* P-U-D instances in Figure 6: 78-103-215, 78-150-215, 34-103-215,
     44-188-742, 44-194-742. *)
  Alcotest.(check (list (list int)))
    "all PUD instances"
    [ [ 34; 103; 215 ]; [ 44; 188; 742 ]; [ 44; 194; 742 ]; [ 78; 103; 215 ]; [ 78; 150; 215 ] ]
    found

let test_instance_paths_between () =
  let _, dg = paper_dg () in
  let schema = biozon_schema () in
  let p = pud_path schema in
  let count = ref 0 in
  Data_graph.iter_instance_paths_between dg p ~a:78 ~b:215 ~f:(fun _ -> incr count);
  Alcotest.(check int) "PS(78,215) has two PUD paths" 2 !count;
  ignore find_path

let test_instance_paths_simple_only () =
  (* P-U-P-D instances never revisit a node. *)
  let _, dg = paper_dg () in
  let schema = biozon_schema () in
  let pupd =
    List.find
      (fun p ->
        Schema_graph.path_length p = 3
        && p.Schema_graph.types = [| "Protein"; "Unigene"; "Protein"; "DNA" |])
      (Schema_graph.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:3)
  in
  Data_graph.iter_instance_paths dg pupd ~f:(fun ids ->
      let l = Array.to_list ids in
      Alcotest.(check int) "distinct nodes" (List.length l)
        (List.length (List.sort_uniq compare l)))

(* --- gluing enumeration ---------------------------------------------------- *)

let test_glue_fig8_two_topologies () =
  (* Figure 8: all possible 2-topologies between Protein and DNA.  Three
     schema paths (P-D, P-U-D, P-I-D) with single intermediates of distinct
     types: gluings = nonempty subsets = 7 distinct topologies. *)
  let interner = Interner.create () in
  let result = Glue.enumerate interner (biozon_schema ()) ~from_:"Protein" ~to_:"DNA" ~max_len:2 () in
  Alcotest.(check int) "seven 2-topologies" 7 result.Glue.count;
  Alcotest.(check bool) "not truncated" false result.Glue.truncated

let test_glue_counts_sharing () =
  (* Two paths with same-type intermediates: A-r-X-s-B and A-t-X-u-B can
     share X or not: subsets {p1}, {p2}, {p1,p2} split, {p1,p2} glued = 4. *)
  let s = Schema_graph.create () in
  Schema_graph.add_relationship s ~name:"r" ~from_:"A" ~to_:"X";
  Schema_graph.add_relationship s ~name:"s" ~from_:"X" ~to_:"B";
  Schema_graph.add_relationship s ~name:"t" ~from_:"A" ~to_:"X";
  Schema_graph.add_relationship s ~name:"u" ~from_:"X" ~to_:"B";
  let interner = Interner.create () in
  let result = Glue.enumerate interner s ~from_:"A" ~to_:"B" ~max_len:2 () in
  (* Schema paths A..B of length <= 2: A-r-X-s-B, A-r-X-u-B, A-t-X-s-B,
     A-t-X-u-B -> 4 singletons; pairs (6) x {merged, split}; triples (4);
     quad (1) with partitions of 4 X-slots... just check it found more than
     the 15 subsets and nothing crashed. *)
  Alcotest.(check bool) "sharing multiplies" true (result.Glue.count > 15)

let test_glue_respects_budget () =
  let interner = Interner.create () in
  let result =
    Glue.enumerate interner (biozon_schema ()) ~from_:"Protein" ~to_:"DNA" ~max_len:3 ~collect:false
      ~max_gluings:100 ()
  in
  Alcotest.(check bool) "truncated" true result.Glue.truncated;
  Alcotest.(check bool) "examined bounded" true (result.Glue.gluings_examined <= 101)

let suites =
  [
    ( "graph.lgraph",
      [
        Alcotest.test_case "basics" `Quick test_lgraph_basics;
        Alcotest.test_case "duplicate edges collapse" `Quick test_lgraph_duplicate_edge_collapses;
        Alcotest.test_case "bad edges rejected" `Quick test_lgraph_rejects_bad_edges;
        Alcotest.test_case "union" `Quick test_lgraph_union;
        Alcotest.test_case "disconnected" `Quick test_lgraph_disconnected;
      ] );
    ( "graph.canon",
      [
        Alcotest.test_case "iso invariance" `Quick test_canon_iso_invariance;
        Alcotest.test_case "label sensitivity" `Quick test_canon_distinguishes_labels;
        Alcotest.test_case "structure sensitivity" `Quick test_canon_distinguishes_structure;
        Alcotest.test_case "symmetric graphs" `Quick test_canon_symmetric_graph;
        Alcotest.test_case "canonical order" `Quick test_canonical_order_is_permutation;
        QCheck_alcotest.to_alcotest prop_canon_invariant;
        QCheck_alcotest.to_alcotest prop_canon_detects_edge_removal;
      ] );
    ( "graph.iso",
      [
        Alcotest.test_case "path in triangle" `Quick test_iso_embeds_path_in_triangle;
        Alcotest.test_case "label respect" `Quick test_iso_respects_labels;
        Alcotest.test_case "anchored" `Quick test_iso_anchored;
      ] );
    ( "graph.schema",
      [
        Alcotest.test_case "ten P-D paths (Sec 3.1)" `Quick test_schema_ten_paths_p_d;
        Alcotest.test_case "path length breakdown" `Quick test_schema_path_lengths;
        Alcotest.test_case "key reversal" `Quick test_schema_path_key_reversal;
        Alcotest.test_case "duplicate rel rejected" `Quick test_schema_duplicate_relationship_rejected;
        QCheck_alcotest.to_alcotest prop_path_key_matches_isomorphism;
      ] );
    ( "graph.data",
      [
        Alcotest.test_case "paper db counts" `Quick test_data_graph_counts;
        Alcotest.test_case "entities of type" `Quick test_data_graph_entities_of_type;
        Alcotest.test_case "PUD instances (Fig 6)" `Quick test_instance_paths_pud;
        Alcotest.test_case "anchored enumeration" `Quick test_instance_paths_between;
        Alcotest.test_case "paths stay simple" `Quick test_instance_paths_simple_only;
      ] );
    ( "graph.glue",
      [
        Alcotest.test_case "Fig 8 count" `Quick test_glue_fig8_two_topologies;
        Alcotest.test_case "sharing multiplies" `Quick test_glue_counts_sharing;
        Alcotest.test_case "budget respected" `Quick test_glue_respects_budget;
      ] );
  ]
