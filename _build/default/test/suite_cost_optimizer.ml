(* Deep tests of the cost model (Dgj_cost) and the optimizer: closed-form
   identities checked against brute force, monotonicity properties, and
   plan-choice consistency on randomized mini-databases. *)

open Topo_sql

(* --- Dgj_cost --------------------------------------------------------------- *)

let mk_level ?(n_inner = 100) ?(probe_cost = 1.0) ?(pred_sel = 0.5) ?(join_sel = 0.01) () =
  { Dgj_cost.n_inner; probe_cost; pred_sel; join_sel }

(* Brute-force S(h, q) = sum_{j=1}^{h} (j-1) q^{j-1} to validate the closed
   form via expected_cost identities on single-level stacks. *)
let brute_ec ~x ~delta ~probe ~h =
  (* EC(h) = sum_j x (1-x)^{j-1} [(j-1) delta + probe]  for one level. *)
  let acc = ref 0.0 in
  for j = 1 to h do
    acc := !acc +. (x *. ((1.0 -. x) ** float_of_int (j - 1)) *. ((float_of_int (j - 1) *. delta) +. probe))
  done;
  !acc

let test_single_level_ec_matches_brute_force () =
  List.iter
    (fun (sel, card) ->
      let level = mk_level ~pred_sel:sel () in
      let input = { Dgj_cost.cards = [| card |]; levels = [| level |]; k = 1; per_group_overhead = 0.0 } in
      let params = Dgj_cost.group_params input in
      let _, _, ec = params.(0) in
      (* With K = 1 inner match per tuple and one level, x1 = sel and
         delta1 = probe_cost. *)
      let expected = brute_ec ~x:sel ~delta:1.0 ~probe:1.0 ~h:card in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "sel=%.2f card=%d" sel card) expected ec)
    [ (0.5, 1); (0.5, 10); (0.1, 50); (0.9, 3); (0.25, 200) ]

let test_np_formula () =
  let level = mk_level ~pred_sel:0.3 () in
  let input = { Dgj_cost.cards = [| 7 |]; levels = [| level |]; k = 1; per_group_overhead = 0.0 } in
  let np, _, _ = (Dgj_cost.group_params input).(0) in
  Alcotest.(check (float 1e-9)) "np = (1-x1)^card" (Float.pow 0.7 7.0) np

let test_expected_cost_zero_cases () =
  let level = mk_level () in
  let zero_k = { Dgj_cost.cards = [| 5 |]; levels = [| level |]; k = 0; per_group_overhead = 1.0 } in
  Alcotest.(check (float 1e-9)) "k=0" 0.0 (Dgj_cost.expected_cost zero_k);
  let no_groups = { Dgj_cost.cards = [||]; levels = [| level |]; k = 3; per_group_overhead = 1.0 } in
  Alcotest.(check (float 1e-9)) "m=0" 0.0 (Dgj_cost.expected_cost no_groups)

let test_expected_groups_bounds () =
  let level = mk_level ~pred_sel:0.4 () in
  let input = { Dgj_cost.cards = Array.make 30 5; levels = [| level |]; k = 4; per_group_overhead = 0.0 } in
  let g = Dgj_cost.expected_groups_examined input in
  Alcotest.(check bool) (Printf.sprintf "k <= %g <= m" g) true (g >= 4.0 && g <= 30.0)

let test_overhead_linear () =
  let level = mk_level ~pred_sel:0.9 () in
  let input oh = { Dgj_cost.cards = Array.make 10 3; levels = [| level |]; k = 2; per_group_overhead = oh } in
  let c0 = Dgj_cost.expected_cost (input 0.0) in
  let c5 = Dgj_cost.expected_cost (input 5.0) in
  let groups = Dgj_cost.expected_groups_examined (input 0.0) in
  Alcotest.(check (float 1e-6)) "overhead scales with groups examined" (c0 +. (5.0 *. groups)) c5

let prop_cost_monotone_in_selectivity =
  QCheck.Test.make ~name:"cost decreases as predicates get less selective" ~count:100
    QCheck.(pair (float_range 0.05 0.45) (float_range 0.5 0.95))
    (fun (lo, hi) ->
      let cost sel =
        Dgj_cost.expected_cost
          {
            Dgj_cost.cards = Array.make 40 6;
            levels = [| mk_level ~pred_sel:sel () |];
            k = 5;
            per_group_overhead = 1.0;
          }
      in
      cost lo >= cost hi)

let prop_cost_monotone_in_k =
  QCheck.Test.make ~name:"cost increases with k" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 11 30))
    (fun (k1, k2) ->
      let cost k =
        Dgj_cost.expected_cost
          {
            Dgj_cost.cards = Array.make 50 4;
            levels = [| mk_level ~pred_sel:0.3 () |];
            k;
            per_group_overhead = 1.0;
          }
      in
      cost k1 <= cost k2)

let test_hit_probability_two_levels_k1 () =
  (* K = 1 at both levels: x1 = rho1 * rho2 exactly. *)
  let levels = [| mk_level ~pred_sel:0.4 ~join_sel:0.005 (); mk_level ~pred_sel:0.7 ~join_sel:0.005 () |] in
  let x = Dgj_cost.hit_probabilities levels in
  Alcotest.(check (float 1e-9)) "x1" (0.4 *. 0.7) x.(0)

let test_hit_probability_fanout () =
  (* K = 4 matches, sel = 0.5: x = 1 - (1-0.5)^j summed over binomial;
     equals 1 - (1 - 0.5)^4 when x_{next} = 1 for all surviving tuples:
     prob at least one of 4 passes = 1 - 0.5^4. *)
  let levels = [| mk_level ~n_inner:400 ~pred_sel:0.5 ~join_sel:0.01 () |] in
  let x = Dgj_cost.hit_probabilities levels in
  Alcotest.(check (float 1e-9)) "1 - q^K" (1.0 -. (0.5 ** 4.0)) x.(0)

let test_probe_costs_accumulate () =
  let levels = [| mk_level ~probe_cost:2.0 ~pred_sel:0.5 ~join_sel:0.01 (); mk_level ~probe_cost:3.0 () |] in
  let delta = Dgj_cost.probe_costs levels in
  (* delta2 = 3; delta1 = 2 + 0.5 * K1 * delta2 with K1 = 1. *)
  Alcotest.(check (float 1e-9)) "delta2" 3.0 delta.(1);
  Alcotest.(check (float 1e-9)) "delta1" (2.0 +. (0.5 *. 1.0 *. 3.0)) delta.(0)

(* --- Optimizer on randomized mini-databases ---------------------------------- *)

let random_spec_db seed =
  let prng = Topo_util.Prng.create seed in
  let cat = Catalog.create () in
  let g =
    Catalog.create_table cat ~name:"G"
      ~schema:
        (Schema.make
           [ { Schema.name = "TID"; ty = Schema.TInt }; { Schema.name = "score"; ty = Schema.TFloat } ])
      ~primary_key:"TID" ()
  in
  let f =
    Catalog.create_table cat ~name:"F"
      ~schema:
        (Schema.make [ { Schema.name = "TID"; ty = Schema.TInt }; { Schema.name = "E"; ty = Schema.TInt } ])
      ()
  in
  let d =
    Catalog.create_table cat ~name:"D"
      ~schema:
        (Schema.make [ { Schema.name = "ID"; ty = Schema.TInt }; { Schema.name = "v"; ty = Schema.TInt } ])
      ~primary_key:"ID" ()
  in
  let n_groups = Topo_util.Prng.int_in_range prng ~lo:3 ~hi:25 in
  let next_e = ref 1000 in
  for tid = 1 to n_groups do
    (* Distinct scores so every method agrees on order. *)
    Table.insert_values g [ Value.Int tid; Value.Float (float_of_int (tid * 10) +. Topo_util.Prng.float prng) ];
    let members = Topo_util.Prng.int_in_range prng ~lo:0 ~hi:12 in
    for _ = 1 to members do
      let e = !next_e in
      incr next_e;
      Table.insert_values f [ Value.Int tid; Value.Int e ];
      Table.insert_values d [ Value.Int e; Value.Int (Topo_util.Prng.int prng 4) ]
    done
  done;
  cat

let spec_for k =
  {
    Optimizer.group_table = "G";
    group_key = "TID";
    score_col = "score";
    group_pred = None;
    fact_table = "F";
    fact_group_col = "TID";
    dims =
      [
        {
          Optimizer.dim_table = "D";
          dim_alias = "D1";
          dim_key = "ID";
          fact_col = "E";
          dim_pred = Some (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (Value.Int 0)));
        };
      ];
    k;
  }

let naive_topk cat k =
  (* Reference evaluation: for each group (by descending score), check if
     any member joins a v=0 dimension row. *)
  let g = Catalog.find cat "G" and f = Catalog.find cat "F" and d = Catalog.find cat "D" in
  let groups = ref [] in
  Table.iter
    (fun _ t -> groups := (Value.as_int t.(0), Value.as_float t.(1)) :: !groups)
    g;
  let groups = List.sort (fun (_, a) (_, b) -> Float.compare b a) !groups in
  let qualifies tid =
    let found = ref false in
    Table.iter
      (fun _ t ->
        if Value.as_int t.(0) = tid then
          match Table.find_by_pk d t.(1) with
          | Some dt -> if Value.as_int dt.(1) = 0 then found := true
          | None -> ())
      f;
    !found
  in
  List.filter (fun (tid, _) -> qualifies tid) groups |> List.filteri (fun i _ -> i < k)

let prop_optimizer_strategies_agree =
  QCheck.Test.make ~name:"regular/ET/naive top-k agree on random databases" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 8))
    (fun (seed, k) ->
      let cat = random_spec_db seed in
      let spec = spec_for k in
      let expected = naive_topk cat k in
      let reg_plan, _ = Optimizer.regular_plan cat spec in
      let reg =
        Physical.run cat reg_plan
        |> List.map (fun t -> (Value.as_int t.(0), Value.as_float t.(1)))
      in
      let et =
        match Optimizer.best_et_plan cat spec with
        | Some (plan, _) ->
            let decision =
              { Optimizer.plan; strategy = Optimizer.Early_termination; regular_cost = 0.0; et_cost = 0.0; explain = "" }
            in
            Optimizer.run_topk cat spec decision
            |> List.map (fun (v, s) -> (Value.as_int v, s))
        | None -> []
      in
      reg = expected && et = expected)

let test_choose_reports_both_costs () =
  let cat = random_spec_db 99 in
  let d = Optimizer.choose cat (spec_for 3) in
  Alcotest.(check bool) "finite costs" true
    (Float.is_finite d.Optimizer.regular_cost && Float.is_finite d.Optimizer.et_cost);
  Alcotest.(check bool) "explain non-empty" true (String.length d.Optimizer.explain > 0)

(* --- histogram corner cases --------------------------------------------------- *)

let test_histogram_range_outside () =
  let h = Histogram.build (Array.init 50 (fun i -> Value.Int i)) in
  Alcotest.(check (float 1e-9)) "above max" 0.0 (Histogram.selectivity_range h ~lo:(Value.Int 100) ());
  Alcotest.(check (float 1e-9)) "below min" 0.0 (Histogram.selectivity_range h ~hi:(Value.Int (-1)) ());
  Alcotest.(check (float 0.01)) "full" 1.0 (Histogram.selectivity_range h ());
  Alcotest.(check (float 1e-9)) "missing eq" 0.0 (Histogram.selectivity_eq h (Value.Int 999))

let test_histogram_heavy_hitter_exact () =
  (* 900 copies of 1 and 100 distinct others: MCV tracking must make the
     heavy hitter's selectivity exact. *)
  let values = Array.init 1000 (fun i -> Value.Int (if i < 900 then 1 else i)) in
  let h = Histogram.build values in
  Alcotest.(check (float 1e-9)) "heavy hitter" 0.9 (Histogram.selectivity_eq h (Value.Int 1))

let test_histogram_min_max () =
  let h = Histogram.build [| Value.Int 5; Value.Int 2; Value.Int 9 |] in
  Alcotest.(check bool) "min" true (Histogram.min_value h = Some (Value.Int 2));
  Alcotest.(check bool) "max" true (Histogram.max_value h = Some (Value.Int 9))

let prop_predicate_selectivity_bounded =
  QCheck.Test.make ~name:"predicate selectivity stays in [0,1]" ~count:200
    QCheck.(triple (int_range 0 1000) (int_range 0 20) (int_range 0 3))
    (fun (seed, c, shape) ->
      let prng = Topo_util.Prng.create seed in
      let cat = Catalog.create () in
      let t =
        Catalog.create_table cat ~name:"X"
          ~schema:(Schema.make [ { Schema.name = "a"; ty = Schema.TInt } ])
          ()
      in
      for _ = 1 to 50 do
        Table.insert_values t [ Value.Int (Topo_util.Prng.int prng 10) ]
      done;
      let stats = Catalog.stats cat "X" in
      let base = Expr.Cmp (Expr.Le, Expr.Col 0, Expr.Const (Value.Int c)) in
      let expr =
        match shape with
        | 0 -> base
        | 1 -> Expr.Not base
        | 2 -> Expr.And [ base; Expr.Cmp (Expr.Ge, Expr.Col 0, Expr.Const (Value.Int 2)) ]
        | _ -> Expr.Or [ base; Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (Value.Int 0)) ]
      in
      let s = Table_stats.predicate_selectivity stats (Table.schema t) expr in
      s >= 0.0 && s <= 1.0)

let suites =
  [
    ( "cost.model",
      [
        Alcotest.test_case "EC matches brute force" `Quick test_single_level_ec_matches_brute_force;
        Alcotest.test_case "np formula" `Quick test_np_formula;
        Alcotest.test_case "zero cases" `Quick test_expected_cost_zero_cases;
        Alcotest.test_case "groups-examined bounds" `Quick test_expected_groups_bounds;
        Alcotest.test_case "overhead linear" `Quick test_overhead_linear;
        Alcotest.test_case "x1 two levels" `Quick test_hit_probability_two_levels_k1;
        Alcotest.test_case "x1 fanout" `Quick test_hit_probability_fanout;
        Alcotest.test_case "probe costs accumulate" `Quick test_probe_costs_accumulate;
        QCheck_alcotest.to_alcotest prop_cost_monotone_in_selectivity;
        QCheck_alcotest.to_alcotest prop_cost_monotone_in_k;
      ] );
    ( "cost.optimizer",
      [
        QCheck_alcotest.to_alcotest prop_optimizer_strategies_agree;
        Alcotest.test_case "choose reports costs" `Quick test_choose_reports_both_costs;
      ] );
    ( "cost.histogram",
      [
        Alcotest.test_case "ranges outside domain" `Quick test_histogram_range_outside;
        Alcotest.test_case "heavy hitter exact" `Quick test_histogram_heavy_hitter_exact;
        Alcotest.test_case "min/max" `Quick test_histogram_min_max;
        QCheck_alcotest.to_alcotest prop_predicate_selectivity_bounded;
      ] );
  ]
