(* The introduction's motivating question: "how are transcription factor
   proteins related to DNAs?"

   Generates a synthetic Biozon instance, searches for proteins whose
   description mentions "factor" against mRNA DNAs, and prints the ranked
   topology summary (schema level) followed by sample instances — the
   "big picture" presentation of Figure 5, instead of the 250,000 isolated
   rows of Figure 4.

     dune exec examples/tf_dna.exe *)

open Topo_core

let () =
  let catalog = Biozon.Generator.generate (Biozon.Generator.scale 0.5 Biozon.Generator.default) in
  Printf.printf "synthetic Biozon instance:\n";
  List.iter
    (fun (name, count) -> if count > 0 then Printf.printf "  %-18s %6d\n" name count)
    (Biozon.Generator.summary catalog);

  let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:25 () in

  let q =
    Query.make
      (Query.keyword catalog "Protein" ~col:"desc" ~kw:"factor")
      (Query.equals catalog "DNA" ~col:"type" ~value:(Topo_sql.Value.Str "mRNA"))
  in
  Printf.printf "\nquery: %s\n" (Query.to_string q);

  (* Full topology result: the schema-level summary. *)
  let r = Engine.run engine q ~method_:Engine.Fast_top () in
  Printf.printf "\n%d topologies relate 'factor' proteins to mRNAs:\n" (List.length r.Engine.ranked);

  (* Rank by biological significance and show the top five with one
     instance each. *)
  let top = Engine.run engine q ~method_:Engine.Fast_top_k_opt ~scheme:Ranking.Domain ~k:5 () in
  let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
  let ctx = engine.Engine.ctx in
  List.iteri
    (fun i (tid, score) ->
      Printf.printf "\n%d. [domain score %.1f, %d pairs overall] %s\n" (i + 1)
        (Option.value ~default:0.0 score) (Store.frequency store tid) (Engine.describe engine tid);
      match Instances.qualifying_pairs ctx store ~e1:q.Query.e1 ~e2:q.Query.e2 ~tid with
      | (a, b) :: _ ->
          let protein_desc =
            match Biozon.Bschema.entity_of_id catalog a with
            | Some (_, tuple) -> Topo_sql.Value.as_string tuple.(1)
            | None -> "?"
          in
          Printf.printf "   e.g. Protein %d (%s) - DNA %d\n" a protein_desc b
      | [] -> ())
    top.Engine.ranked;
  match top.Engine.strategy with
  | Some strategy ->
      Printf.printf "\n(optimizer chose the %s plan)\n"
        (match strategy with
        | Topo_sql.Optimizer.Regular -> "regular join"
        | Topo_sql.Optimizer.Early_termination -> "early-termination DGJ")
  | None -> ()
