(* Multi-endpoint topology queries — the paper's future-work extension
   (Section 8: "extensions to support multiple end-points in a topology").

   Asks how a protein, a Unigene cluster and a DNA sequence can all be
   interrelated at once, on the paper's own Figure 3 database (where the
   triple (78, 103, 215) is the star of Section 2's examples) and then on
   a synthetic instance.

     dune exec examples/multi_endpoint.exe *)

open Topo_core

let () =
  (* --- Figure 3 ------------------------------------------------------- *)
  let catalog = Biozon.Paper_db.catalog () in
  let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 () in
  let ctx = engine.Engine.ctx in
  print_endline "Figure 3 database: 3-queries over (Protein, Unigene, DNA)";
  let endpoints =
    [
      Query.keyword catalog "Protein" ~col:"desc" ~kw:"enzyme";
      Query.endpoint catalog "Unigene";
      Query.equals catalog "DNA" ~col:"type" ~value:(Topo_sql.Value.Str "mRNA");
    ]
  in
  let r = Nquery.run ctx ~endpoints () in
  Printf.printf "%d qualifying (protein, unigene, dna) tuples, %d topologies\n\n"
    (List.length r.Nquery.rows) (List.length r.Nquery.topologies);
  List.iter
    (fun (row : Nquery.row) ->
      Printf.printf "  tuple (%s):\n"
        (String.concat ", " (Array.to_list (Array.map string_of_int row.Nquery.entities)));
      List.iter (fun tid -> Printf.printf "    %s\n" (Engine.describe engine tid)) row.Nquery.tids)
    r.Nquery.rows;

  (* --- comparing two queries' topology sets --------------------------- *)
  print_endline "\ncomparing result shapes of two 2-queries (the second future-work item):";
  let run_q kw =
    let q =
      Query.make
        (Query.keyword catalog "Protein" ~col:"desc" ~kw)
        (Query.equals catalog "DNA" ~col:"type" ~value:(Topo_sql.Value.Str "mRNA"))
    in
    List.map fst (Engine.run engine q ~method_:Engine.Full_top ()).Engine.ranked
  in
  let enzyme = run_q "enzyme" and mms2 = run_q "MMS2" in
  let d = Compare.diff ~left:enzyme ~right:mms2 in
  Printf.printf "  'enzyme' proteins: %d shapes; 'MMS2' proteins: %d shapes\n" (List.length enzyme)
    (List.length mms2);
  Printf.printf "  shared shapes: %s\n"
    (String.concat ", " (List.map (Engine.describe engine) d.Compare.common));
  Printf.printf "  only 'enzyme': %d, only 'MMS2': %d\n" (List.length d.Compare.only_left)
    (List.length d.Compare.only_right);
  let registry = ctx.Context.registry in
  let maximal = Compare.maximal registry enzyme in
  Printf.printf "  maximal (unsubsumed) shapes among 'enzyme' results: %d of %d\n" (List.length maximal)
    (List.length enzyme)
