(* Weak relationships (Section 6.2.3 / Appendix B): what happens to
   topology search when l grows to 4, and what domain-knowledge pruning
   buys back.

     dune exec examples/weak_relationships.exe *)

open Topo_core
module Sg = Topo_graph.Schema_graph

let () =
  print_endline "Appendix B, Table 4 — relationships that give rise to weak paths:";
  List.iter (fun (path, why) -> Printf.printf "  %-5s %s\n" path why) Weak.table4;

  let catalog = Biozon.Generator.generate (Biozon.Generator.scale 0.4 Biozon.Generator.default) in
  let schema = Biozon.Bschema.schema_graph () in
  print_endline "\nProtein-DNA schema paths at l = 4, classified:";
  let paths = Sg.paths schema ~from_:"Protein" ~to_:"DNA" ~max_len:4 in
  List.iter
    (fun p ->
      Printf.printf "  [%s] %s\n" (if Weak.is_weak_path p then "WEAK" else "ok  ") (Sg.path_to_string p))
    paths;

  (* Build twice: with and without weak paths. *)
  let t0 = Unix.gettimeofday () in
  let with_weak = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~l:4 ~pruning_threshold:25 () in
  let t_with = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let without_weak =
    Engine.build (Biozon.Generator.generate (Biozon.Generator.scale 0.4 Biozon.Generator.default))
      ~pairs:[ ("Protein", "DNA") ] ~l:4 ~pruning_threshold:25 ~exclude_weak:true ()
  in
  let t_without = Unix.gettimeofday () -. t0 in
  let count engine =
    let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
    Hashtbl.length store.Store.frequencies
  in
  Printf.printf "\nwith weak paths:    %3d topologies, build %.1fs\n" (count with_weak) t_with;
  Printf.printf "without weak paths: %3d topologies, build %.1fs\n" (count without_weak) t_without;

  (* Show a concrete weak topology and why a biologist would discard it. *)
  let store = Engine.store with_weak ~t1:"Protein" ~t2:"DNA" in
  let weak_tid =
    Hashtbl.fold
      (fun tid _ acc ->
        let t = Engine.topology with_weak tid in
        if Weak.is_weak_topology t then Some tid else acc)
      store.Store.frequencies None
  in
  match weak_tid with
  | Some tid ->
      Printf.printf "\nexample weak topology (TID %d):\n  %s\n" tid (Engine.describe with_weak tid);
      Printf.printf "  domain-significance score: %.2f (weak classes are penalized)\n"
        (Ranking.domain_score with_weak.Engine.ctx.Context.interner (Engine.topology with_weak tid))
  | None -> print_endline "\n(no purely-weak topology in this draw)"
