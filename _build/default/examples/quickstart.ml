(* Quickstart: the paper's running example, end to end.

   Loads the exact Figure 3 database, runs the offline topology
   computation, evaluates query Q1 = {(Protein, desc.ct('enzyme')),
   (DNA, type='mRNA')} with every method, and prints the four topology
   results T1-T4 with the instance pairs behind each.

     dune exec examples/quickstart.exe *)

open Topo_core

let () =
  (* 1. The database of Figure 3: four proteins, three DNAs, four Unigene
     clusters and eleven relationship rows. *)
  let catalog = Biozon.Paper_db.catalog () in
  print_endline "Figure 3 database loaded:";
  List.iter
    (fun table ->
      Printf.printf "  %-14s %d rows\n" (Topo_sql.Table.name table) (Topo_sql.Table.row_count table))
    (List.filter (fun t -> Topo_sql.Table.row_count t > 0) (Topo_sql.Catalog.tables catalog));

  (* 2. Offline phase: compute AllTops / LeftTops / ExcpTops / TopInfo for
     the Protein-DNA entity-set pair with l = 3 (Section 4). *)
  let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~l:3 ~pruning_threshold:50 () in

  (* 3. The query of Example 2.1. *)
  let q = Query.q1 catalog in
  Printf.printf "\nquery: %s\n\n" (Query.to_string q);

  (* 4. Every method returns the same four topologies (Section 2.2:
     3-Topology(Q, G) = {T1, T2, T3, T4}). *)
  List.iter
    (fun m ->
      let r = Engine.run engine q ~method_:m () in
      Printf.printf "%-16s -> %d topologies\n" (Engine.method_name m) (List.length r.Engine.ranked))
    Engine.all_methods;

  (* 5. The topologies themselves, with their instance pairs. *)
  let r = Engine.run engine q ~method_:Engine.Full_top () in
  let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
  let ctx = engine.Engine.ctx in
  print_endline "\ntopology results:";
  List.iter
    (fun (tid, _) ->
      Printf.printf "\n  TID %d: %s\n" tid (Engine.describe engine tid);
      let pairs =
        Instances.qualifying_pairs ctx store ~e1:q.Query.e1 ~e2:q.Query.e2 ~tid
      in
      List.iter
        (fun (a, b) ->
          Printf.printf "    instance: Protein %d - DNA %d" a b;
          match Instances.witness ctx ~tid ~a ~b with
          | Some g -> Printf.printf "  (witness: %d nodes, %d edges)\n"
                        (Topo_graph.Lgraph.node_count g) (Topo_graph.Lgraph.edge_count g)
          | None -> print_newline ())
        pairs)
    r.Engine.ranked;

  (* 6. The famous exception: (78, 215) satisfies the P-U-D path condition
     but is related by the more complex T3/T4, so after pruning it lives in
     ExcpTops (Section 4.2.2). *)
  let engine0 = Engine.build (Biozon.Paper_db.catalog ()) ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:0 () in
  let store0 = Engine.store engine0 ~t1:"Protein" ~t2:"DNA" in
  let pud =
    List.find
      (fun (t : Topology.t) -> t.Topology.n_edges = 2)
      store0.Store.pruned
  in
  Printf.printf "\nafter pruning T2 (%s):\n" (Engine.describe engine0 pud.Topology.tid);
  Printf.printf "  (78, 215) in ExcpTops: %b   (related by T3/T4 instead)\n"
    (Store.is_excepted store0 engine0.Engine.ctx.Context.catalog ~a:78 ~b:215 ~tid:pud.Topology.tid);
  Printf.printf "  (44, 742) in ExcpTops: %b   (genuinely related by T2)\n"
    (Store.is_excepted store0 engine0.Engine.ctx.Context.catalog ~a:44 ~b:742 ~tid:pud.Topology.tid)
