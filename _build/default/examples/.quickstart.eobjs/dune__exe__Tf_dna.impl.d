examples/tf_dna.ml: Array Biozon Engine Instances List Option Printf Query Ranking Store Topo_core Topo_sql
