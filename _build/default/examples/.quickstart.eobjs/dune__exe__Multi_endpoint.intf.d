examples/multi_endpoint.mli:
