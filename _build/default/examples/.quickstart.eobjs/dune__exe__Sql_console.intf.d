examples/sql_console.mli:
