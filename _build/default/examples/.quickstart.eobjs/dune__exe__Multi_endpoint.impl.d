examples/multi_endpoint.ml: Array Biozon Compare Context Engine List Nquery Printf Query String Topo_core Topo_sql
