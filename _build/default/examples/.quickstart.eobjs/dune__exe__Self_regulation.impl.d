examples/self_regulation.ml: Array Biozon Context Engine Instances List Printf Query Ranking Topo_core Topo_graph Topo_sql Topo_util Topology
