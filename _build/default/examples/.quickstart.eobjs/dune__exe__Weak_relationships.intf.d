examples/weak_relationships.mli:
