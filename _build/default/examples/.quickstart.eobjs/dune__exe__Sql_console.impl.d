examples/sql_console.ml: Array Biozon List Printf Sys Topo_core Topo_sql
