examples/self_regulation.mli:
