examples/tf_dna.mli:
