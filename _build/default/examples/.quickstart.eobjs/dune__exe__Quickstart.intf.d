examples/quickstart.mli:
