examples/quickstart.ml: Biozon Context Engine Instances List Printf Query Store Topo_core Topo_graph Topo_sql Topology
