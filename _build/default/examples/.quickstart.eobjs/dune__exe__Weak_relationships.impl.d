examples/weak_relationships.ml: Biozon Context Engine Hashtbl List Printf Ranking Store Topo_core Topo_graph Unix Weak
