(* Self-regulation: Figure 2's third topology — a protein that is encoded
   by a DNA sequence *and* interacts with it, suggesting the protein
   regulates its own gene ("the TF self-regulates itself").

   Builds the topology's shape explicitly, finds it in a synthetic
   instance's registry by canonical key, and lists the proteins exhibiting
   the motif.

     dune exec examples/self_regulation.exe *)

open Topo_core
module Lgraph = Topo_graph.Lgraph
module Interner = Topo_util.Interner

(* P -encodes- D plus P -interacts- I -interacts- D: the protein touches
   its own DNA through an interaction object. *)
let self_regulation_graph interner =
  let n ty = Interner.intern interner ("n:" ^ ty) in
  let e rel = Interner.intern interner ("e:" ^ rel) in
  let g = Lgraph.empty () in
  List.iter
    (fun (id, ty) -> Lgraph.add_node g ~id ~label:(n ty))
    [ (1, "Protein"); (2, "DNA"); (3, "Interaction") ];
  List.iter
    (fun (u, v, rel) -> Lgraph.add_edge g ~u ~v ~label:(e rel))
    [ (1, 2, "encodes"); (1, 3, "interacts_p"); (2, 3, "interacts_d") ];
  g

let () =
  let catalog = Biozon.Generator.generate (Biozon.Generator.scale 0.5 Biozon.Generator.default) in
  let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:25 () in
  let ctx = engine.Engine.ctx in
  let interner = ctx.Context.interner in
  let key = Topo_graph.Canon.key (self_regulation_graph interner) in
  match Topology.find_by_key ctx.Context.registry key with
  | None -> print_endline "no self-regulation instances in this synthetic draw"
  | Some t ->
      let tid = t.Topology.tid in
      let store = Engine.store engine ~t1:"Protein" ~t2:"DNA" in
      Printf.printf "self-regulation topology found: TID %d\n  %s\n" tid (Engine.describe engine tid);
      let pairs = Instances.pairs_of_topology ctx store ~tid in
      Printf.printf "\n%d protein-DNA pairs exhibit it:\n" (List.length pairs);
      List.iteri
        (fun i (p, d) ->
          if i < 10 then begin
            let desc id =
              match Biozon.Bschema.entity_of_id catalog id with
              | Some (_, tuple) -> Topo_sql.Value.as_string tuple.(1)
              | None -> "?"
            in
            Printf.printf "  Protein %d (%s)\n    regulates its own DNA %d (%s)\n" p (desc p) d (desc d)
          end)
        pairs;
      (* How does the Domain ranking treat it? *)
      let q = Query.make (Query.endpoint catalog "Protein") (Query.endpoint catalog "DNA") in
      let all = Engine.run engine q ~method_:Engine.Full_top_k ~scheme:Ranking.Domain ~k:100000 () in
      (match List.find_index (fun (t', _) -> t' = tid) all.Engine.ranked with
      | Some i ->
          Printf.printf "\nDomain-significance rank: %d of %d topologies\n" (i + 1)
            (List.length all.Engine.ranked)
      | None -> ())
