bench/exp_table3.ml: Bench_common Engine List Pretty Printf Ranking Store Topo_core Topo_util
