bench/exp_fig12.ml: Bench_common Engine List Pretty Printf Topo_core Topo_util
