bench/exp_ablations.ml: Bench_common Biozon Engine Hashtbl List Pretty Printf Ranking Store String Topo_core Topo_util
