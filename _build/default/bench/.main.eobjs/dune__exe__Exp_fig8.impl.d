bench/exp_fig8.ml: Biozon List Printf Topo_graph Topo_util Unix
