bench/exp_baseline.ml: Array Bench_common Biozon Engine List Pretty Printf Query String Topo_core Topo_util
