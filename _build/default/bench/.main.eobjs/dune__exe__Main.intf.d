bench/main.mli:
