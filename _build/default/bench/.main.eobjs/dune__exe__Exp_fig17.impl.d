bench/exp_fig17.ml: Bench_common Biozon Engine Exp_fig16 Hashtbl Int List Printf Store Topo_core Topo_graph Topo_util
