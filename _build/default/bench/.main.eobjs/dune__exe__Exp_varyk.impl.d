bench/exp_varyk.ml: Bench_common Engine List Pretty Ranking Topo_core Topo_util
