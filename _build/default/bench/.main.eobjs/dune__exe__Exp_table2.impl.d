bench/exp_table2.ml: Bench_common Engine Float List Pretty Printf Ranking Topo_core Topo_sql Topo_util
