bench/exp_varyl.ml: Bench_common Biozon Engine Hashtbl List Pretty Printf Query Ranking Store Topo_core Topo_sql Topo_util
