bench/exp_fig16.ml: Bench_common Engine List Printf Query Ranking Store Topo_core Topo_graph Topo_util
