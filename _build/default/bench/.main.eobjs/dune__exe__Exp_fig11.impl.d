bench/exp_fig11.ml: Array Bench_common Engine List Pretty Printf String Topo_core Topo_util
