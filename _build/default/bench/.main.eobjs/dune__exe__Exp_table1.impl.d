bench/exp_table1.ml: Bench_common Engine Hashtbl List Pretty Printf Store Topo_core Topo_util
