bench/exp_instances.ml: Bench_common Engine List Pretty Printf Topo_core Topo_util
