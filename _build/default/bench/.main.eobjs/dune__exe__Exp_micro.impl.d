bench/exp_micro.ml: Analyze Array Bechamel Benchmark Biozon Exp_fig16 Hashtbl Instance Lazy List Measure Printf Staged Test Time Toolkit Topo_core Topo_graph Topo_sql Topo_util
