bench/bench_common.ml: Biozon Hashtbl Printf String Topo_core Topo_sql Topo_util Unix
