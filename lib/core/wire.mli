(** Binary wire framing for the sharded serving tier.

    A frame is the unit of exchange between the router and a shard
    server:

    {v
    offset  size  field
    0       8     magic "TOPOWIRE"
    8       2     protocol version (u16 LE)
    10      1     frame kind (u8)
    11      4     payload length (u32 LE)
    15      16    MD5 checksum of the payload (raw bytes)
    31      n     payload
    v}

    This module knows framing, little-endian primitives, a
    bounds-checked payload reader and socket IO — but nothing about
    payload contents. {!Request.to_wire}/{!Request.of_wire} own the
    payload codecs and delegate the envelope here, which keeps [Wire]
    below [Request] in the module graph.

    Every decoding failure — bad magic, cross-version header, oversized
    length, truncation, checksum mismatch, out-of-range tag — raises
    {!Error} with a message naming the field and offset. *)

exception Error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Error} with a formatted message. Exposed so
    payload codecs built on this module report errors uniformly. *)

val magic : string

val version : int

val max_payload : int
(** Upper bound on one frame's payload; larger announced lengths are
    rejected before any allocation. *)

val header_length : int
(** Size in bytes of the fixed frame header (31). *)

(** {1 Frame kinds} *)

val kind_request : int

val kind_outcome : int

val kind_batch_request : int

val kind_batch_outcome : int

val kind_hello : int

val kind_name : int -> string

(** {1 Writer primitives}

    Little-endian, streamed into a [Buffer.t]; the same conventions as
    the snapshot codec. *)

val w_u8 : Buffer.t -> int -> unit

val w_u16 : Buffer.t -> int -> unit

val w_u32 : Buffer.t -> int -> unit

val w_i64 : Buffer.t -> int -> unit

val w_f64 : Buffer.t -> float -> unit

val w_str : Buffer.t -> string -> unit

val w_bool : Buffer.t -> bool -> unit

(** {1 Bounds-checked payload reader} *)

type reader

val reader : ?what:string -> string -> reader
(** [reader ?what payload] starts a cursor at offset 0. [what] names the
    payload in error messages (default ["payload"]). *)

val r_u8 : reader -> string -> int

val r_u16 : reader -> string -> int

val r_u32 : reader -> string -> int

val r_i64 : reader -> string -> int

val r_f64 : reader -> string -> float

val r_str : reader -> string -> string

val r_bool : reader -> string -> bool

val r_count : reader -> string -> int
(** Like {!r_u32} but additionally rejects counts larger than the bytes
    remaining — a cheap plausibility check on corrupt length fields. *)

val r_list : reader -> int -> string -> (unit -> 'a) -> 'a list
(** [r_list r n what f] reads [n] elements with [f] in order. *)

val r_end : reader -> unit
(** Asserts the cursor consumed the whole payload; trailing bytes are a
    codec error. *)

(** {1 Frames} *)

val frame : kind:int -> string -> string
(** [frame ~kind payload] produces one complete frame: header (with
    checksum) followed by the payload. *)

val decode_frame : string -> int * string
(** [decode_frame data] validates a complete in-memory frame and returns
    [(kind, payload)]. *)

(** {1 Socket IO} *)

val set_timeouts : ?read_s:float -> ?write_s:float -> Unix.file_descr -> unit
(** Sets SO_RCVTIMEO / SO_SNDTIMEO. A blocked {!recv} or {!send} then
    fails with a timeout {!Error} instead of hanging forever. *)

val send : Unix.file_descr -> kind:int -> string -> unit
(** Writes one complete frame, looping over short writes. *)

val recv : Unix.file_descr -> (int * string) option
(** Reads one complete frame. [None] on clean EOF at a frame boundary;
    {!Error} on truncation mid-frame, timeout, or any header/checksum
    violation. *)

(** {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> addr
(** ["host:port"] with a numeric port parses as {!Tcp}; anything else is
    a Unix-domain socket path. *)

val addr_to_string : addr -> string

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Binds and listens. For a Unix socket, unlinks a stale path first;
    for TCP, sets SO_REUSEADDR. *)

val connect : ?read_s:float -> ?write_s:float -> addr -> Unix.file_descr
