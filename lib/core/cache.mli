(** Domain-safe result + plan caching for the serving tier.

    Two tiers behind one mechanism: the {e result} tier memoizes
    [(method, canonical query, scheme, k)] to the query's full observable
    outcome — ranked (TID, score) list, optimizer strategy choice, and the
    isolated work counters, replayed on a hit so outcome fingerprints stay
    bit-identical between cold and warm passes — and the {e plan} tier
    memoizes optimizer output (the regular-plan dynamic program and the
    regular-vs-ET choice) keyed by the canonical aligned spec so repeated
    queries skip pricing entirely.

    Both tiers use the topology registry's snapshot-under-[Atomic.t]
    pattern: lookups are lock-free (one [Atomic.get] plus an atomic
    recency stamp), writers serialize on a mutex and publish immutable
    snapshots.  Eviction is LRU by entry count against a fixed capacity.

    Invalidation is {e epoch-based}: entries are stamped with
    {!Topology.generation} as observed before their value was computed,
    and any lookup whose entry stamp differs from the current generation
    is a miss (counted as an invalidation; the stale entry is dropped).
    Online re-registration by the SQL method therefore can never cause a
    stale cached result to be served. *)

type stats = {
  hits : int;
  misses : int;  (** includes invalidation misses *)
  evictions : int;  (** LRU victims removed at capacity *)
  invalidations : int;  (** lookups that found a stale-generation entry *)
  insertions : int;
  entries : int;  (** entries currently resident *)
}

type totals = { results : stats; plans : stats }

type t

(** [create ?results ?plans registry] with per-tier entry-count capacities
    (defaults 1024 result entries, 512 plan entries; minimum 1).  The cache
    is tied to [registry]: its generation is the invalidation epoch. *)
val create : ?results:int -> ?plans:int -> Topology.registry -> t

(** [stamp t] is the registry generation to compute under {e before}
    evaluating; pass it to [add_result]/[add_plan] so a registry mutation
    that raced the evaluation invalidates the entry. *)
val stamp : t -> int

(** {1 Result tier} *)

type result_payload = {
  ranked : (int * float option) list;
  strategy : Topo_sql.Optimizer.strategy option;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** the work the evaluation performed, replayed verbatim on a hit *)
}

(** [find_result t ~key] is a lock-free lookup; [None] on miss or when the
    entry's generation stamp is stale. *)
val find_result : t -> key:string -> result_payload option

(** [add_result t ~key ~stamp payload] inserts (or refreshes) an entry,
    evicting the least-recently-used entry when past capacity.  A racing
    insert of the same key and stamp is kept (the values are equal by the
    determinism contract). *)
val add_result : t -> key:string -> stamp:int -> result_payload -> unit

(** {1 Plan tier} *)

type plan =
  | Regular_plan of Topo_sql.Physical.t * float
      (** {!Topo_sql.Optimizer.regular_plan} output: best plan and cost *)
  | Choice of Topo_sql.Optimizer.strategy
      (** {!Topo_sql.Optimizer.choose}'s regular-vs-early-termination pick *)

(** [find_plan ?check t ~key] is a lock-free lookup like {!find_result}.
    When [check] is given, a [Regular_plan] hit is re-run through
    {!Topo_sql.Plan_check.check} against that catalog before being
    served, so verification mode applies to memoized plans exactly as to
    freshly priced ones; a corrupted or stale entry raises
    {!Topo_sql.Plan_check.Plan_error} instead of executing.  [Choice]
    entries carry no plan and are never checked. *)
val find_plan : ?check:Topo_sql.Catalog.t -> t -> key:string -> plan option

val add_plan : t -> key:string -> stamp:int -> plan -> unit

(** [plan_key ~tag spec] renders a canonical key for an optimizer spec
    (tables, score column, k, dimension predicates); [tag] separates the
    regular-plan and choose namespaces. *)
val plan_key : tag:string -> Topo_sql.Optimizer.spec -> string

(** {1 Statistics} *)

val result_stats : t -> stats

val plan_stats : t -> stats

val totals : t -> totals

val zero_stats : stats

val zero_totals : totals

(** [diff ~before ~after] subtracts cumulative counters (per-batch deltas);
    [entries] is taken from [after]. *)
val diff : before:totals -> after:totals -> totals

(** [hit_rate stats] is [hits / (hits + misses)], 0 when nothing was looked
    up. *)
val hit_rate : stats -> float
