(* The binary wire protocol's framing layer.

   One frame is one message between a router and a shard server:

     magic "TOPOWIRE" | version u16 | kind u8 | payload length u32
     | payload checksum (MD5, 16 raw bytes) | payload bytes

   All integers are little-endian, matching the snapshot codec; the
   header is a fixed 31 bytes so a reader can pull it in one blocking
   read and know exactly how much payload follows.  The checksum covers
   every payload byte, so a flipped bit in transit is a loud [Error],
   never a silently wrong answer.

   This module is deliberately *below* [Request] in the module graph: it
   knows framing, little-endian primitives and socket IO, but nothing
   about what the payloads mean.  [Request.to_wire]/[Request.of_wire]
   own the payload codecs and delegate the frame envelope here, so the
   canonical key, the cache key and the wire form live at one site.

   Socket IO: [send]/[recv] speak frames over a connected socket with
   optional read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO, see
   [set_timeouts]).  A timeout or a connection torn down mid-frame
   surfaces as [Error] with the offset reached — the router's
   degradation path depends on blocked reads being bounded. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let magic = "TOPOWIRE"

let version = 1

(* A corrupt or hostile length field must not drive a gigabyte
   allocation before the checksum can catch it.  16 MiB comfortably
   holds any batch the serving tier produces. *)
let max_payload = 16 * 1024 * 1024

(* Frame kinds.  The codec owners assign payload meanings; the numbers
   are declared here so both sides of the protocol share one registry. *)
let kind_request = 1

let kind_outcome = 2

let kind_batch_request = 3

let kind_batch_outcome = 4

let kind_hello = 5

let kind_name = function
  | 1 -> "request"
  | 2 -> "outcome"
  | 3 -> "batch-request"
  | 4 -> "batch-outcome"
  | 5 -> "hello"
  | k -> Printf.sprintf "unknown-%d" k

(* ------------------------------------------------------------------ *)
(* Writer primitives (Buffer-streamed, little-endian)                  *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u16 buf n =
  if n < 0 || n > 0xffff then fail "encode: u16 out of range (%d)" n;
  Buffer.add_uint16_le buf n

let w_u32 buf n =
  if n < 0 then fail "encode: negative length %d" n;
  Buffer.add_int32_le buf (Int32.of_int n)

let w_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let w_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_bool buf b = w_u8 buf (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Reader: a bounds-checked cursor over one payload                    *)

type reader = { data : string; mutable pos : int; ctx : string }

let reader ?(what = "payload") data = { data; pos = 0; ctx = what }

let need r n what =
  if n < 0 || r.pos + n > String.length r.data then
    fail "truncated %s: need %d byte(s) for %s at offset %d of %d" r.ctx n what r.pos
      (String.length r.data)

let r_u8 r what =
  need r 1 what;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u16 r what =
  need r 2 what;
  let v = String.get_uint16_le r.data r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then fail "corrupt %s: negative %s (%d) at offset %d" r.ctx what v (r.pos - 4);
  v

let r_i64 r what =
  need r 8 what;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let r_f64 r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_count r what =
  let n = r_u32 r what in
  (* Every counted element occupies at least one byte downstream:
     anything bigger than the remaining bytes is a corrupt length. *)
  if n > String.length r.data - r.pos then
    fail "corrupt %s: implausible %s %d (%d byte(s) remain)" r.ctx what n
      (String.length r.data - r.pos);
  n

let r_str r what =
  let n = r_count r what in
  need r n what;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_bool r what =
  match r_u8 r what with
  | 0 -> false
  | 1 -> true
  | b -> fail "corrupt %s: bad boolean %d reading %s" r.ctx b what

(* Explicit recursion: List.init's evaluation order is unspecified and
   the element reader advances the cursor. *)
let r_list (_ : reader) n (_ : string) f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc) in
  go 0 []

let r_end r =
  if r.pos <> String.length r.data then
    fail "corrupt %s: %d trailing byte(s) after the last field" r.ctx (String.length r.data - r.pos)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)

let header_length = String.length magic + 2 + 1 + 4 + 16

let frame ~kind payload =
  if kind < 0 || kind > 0xff then fail "encode: bad frame kind %d" kind;
  if String.length payload > max_payload then
    fail "encode: %s payload of %d bytes exceeds the %d-byte frame limit" (kind_name kind)
      (String.length payload) max_payload;
  let buf = Buffer.create (header_length + String.length payload) in
  Buffer.add_string buf magic;
  w_u16 buf version;
  w_u8 buf kind;
  w_u32 buf (String.length payload);
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Validates a header already in hand and returns (kind, payload length).
   Shared by the whole-string and socket paths so both reject bad magic,
   cross-version frames and oversized lengths with the same messages. *)
let decode_header header =
  if String.length header < header_length then
    fail "truncated frame: %d byte(s), the fixed header alone is %d" (String.length header)
      header_length;
  let m = String.sub header 0 (String.length magic) in
  if m <> magic then fail "bad frame magic %S: not a toposearch wire frame (expected %S)" m magic;
  let r = reader ~what:"frame header" header in
  r.pos <- String.length magic;
  let v = r_u16 r "version" in
  if v <> version then
    fail "unsupported wire version %d (this build speaks version %d)" v version;
  let kind = r_u8 r "frame kind" in
  let len = r_u32 r "payload length" in
  if len > max_payload then
    fail "oversized frame: %s payload of %d bytes exceeds the %d-byte limit" (kind_name kind) len
      max_payload;
  let checksum = String.sub header (r.pos) 16 in
  (kind, len, checksum)

let verify_checksum ~kind ~checksum payload =
  let actual = Digest.string payload in
  if actual <> checksum then
    fail "corrupt %s frame: payload checksum mismatch (header %s, payload digests to %s)"
      (kind_name kind) (Digest.to_hex checksum) (Digest.to_hex actual)

let decode_frame data =
  let kind, len, checksum = decode_header data in
  let have = String.length data - header_length in
  if have <> len then
    fail "truncated %s frame: header promises %d payload byte(s), %d present" (kind_name kind) len
      have;
  let payload = String.sub data header_length len in
  verify_checksum ~kind ~checksum payload;
  (kind, payload)

(* ------------------------------------------------------------------ *)
(* Socket IO                                                           *)

let set_timeouts ?read_s ?write_s fd =
  (match read_s with
  | Some t -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
  | None -> ());
  match write_s with
  | Some t -> Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
  | None -> ()

let io_error what = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      fail "%s timed out" what
  | Unix.Unix_error (e, _, _) -> fail "%s failed: %s" what (Unix.error_message e)
  | e -> raise e

let send_all fd data =
  let bytes = Bytes.unsafe_of_string data in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd bytes !written (n - !written) with
    | 0 -> fail "frame write made no progress at byte %d of %d" !written n
    | w -> written := !written + w
    | exception e -> io_error "frame write" e
  done

let send fd ~kind payload = send_all fd (frame ~kind payload)

(* Reads exactly [n] bytes; [at_start] distinguishes a clean EOF between
   frames (None) from a connection torn down mid-frame (Error). *)
let read_exactly fd n ~what ~at_start =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> eof := true
    | r -> got := !got + r
    | exception e -> io_error (Printf.sprintf "read of %s" what) e
  done;
  if !got = n then Some (Bytes.unsafe_to_string buf)
  else if !got = 0 && at_start then None
  else fail "connection closed mid-%s: got %d of %d byte(s)" what !got n

let recv fd =
  match read_exactly fd header_length ~what:"frame header" ~at_start:true with
  | None -> None
  | Some header ->
      let kind, len, checksum = decode_header header in
      let payload =
        if len = 0 then ""
        else
          match read_exactly fd len ~what:(kind_name kind ^ " frame payload") ~at_start:false with
          | Some p -> p
          | None ->
              (* Unreachable: read_exactly with ~at_start:false raises on
                 any shortfall rather than returning None. *)
              fail "connection closed before any of the %s frame payload" (kind_name kind)
      in
      verify_checksum ~kind ~checksum payload;
      Some (kind, payload)

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && not (String.contains host '/') -> Tcp (host, p)
      | _ -> Unix_sock s)
  | _ -> Unix_sock s

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> fail "no address for host %s" host
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> fail "unknown host %s" host
      in
      Unix.ADDR_INET (ip, port)

(* A peer that hangs up mid-conversation must surface as EPIPE on the
   next write, not as a process-killing SIGPIPE: a dropped connection is
   an expected event in the degradation protocol (router abandons a slow
   shard, shard answers a vanished client). *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

let listen ?(backlog = 16) addr =
  ignore_sigpipe ();
  let sa = sockaddr_of addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Unix_sock path -> if Sys.file_exists path then Unix.unlink path
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd sa;
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error (Printf.sprintf "listen on %s" (addr_to_string addr)) e);
  fd

let connect ?read_s ?write_s addr =
  ignore_sigpipe ();
  let sa = sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error (Printf.sprintf "connect to %s" (addr_to_string addr)) e);
  set_timeouts ?read_s ?write_s fd;
  fd
