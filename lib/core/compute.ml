module Dyn = Topo_util.Dyn
module Pool = Topo_util.Pool
module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph
module Lgraph = Topo_graph.Lgraph
module Canon = Topo_graph.Canon

type caps = { max_reps_per_class : int; max_combos_per_pair : int; max_paths_per_class : int }

let default_caps = { max_reps_per_class = 8; max_combos_per_pair = 256; max_paths_per_class = 2_000_000 }

type stats = {
  schema_paths : int;
  instance_paths : int;
  pairs : int;
  unions : int;
  capped_pairs : int;
}

type pair_row = { a : int; b : int; tids : int list; class_keys : string list }

(* A representative of a path equivalence class: the schema path plus the
   concrete node ids realizing it. *)
type rep = Sg.path * int array

(* Normalize a representative's orientation (same-type pairs can discover
   one instance from either end) so sorting is stable across enumeration
   directions. *)
let normalize_rep path ids : rep =
  let n = Array.length ids in
  let rev_ids = Array.init n (fun i -> ids.(n - 1 - i)) in
  if compare rev_ids ids < 0 then (Sg.reverse path, rev_ids) else (path, ids)

let compare_reps ((_, ids_a) : rep) ((_, ids_b) : rep) = compare ids_a ids_b

let union_of_representatives dg reps =
  let g = Lgraph.empty () in
  List.iter
    (fun ((p : Sg.path), ids) ->
      Array.iter
        (fun id -> if not (Lgraph.mem_node g id) then Lgraph.add_node g ~id ~label:(Dg.node_type_label dg id))
        ids;
      Array.iteri
        (fun i rel ->
          let label = Topo_util.Interner.intern (Dg.interner dg) ("e:" ^ rel) in
          Lgraph.add_edge g ~u:ids.(i) ~v:ids.(i + 1) ~label)
        p.Sg.rels)
    reps;
  g

(* ------------------------------------------------------------------ *)
(* Staged sweep pipeline.

   The offline sweep runs in three phases so the heavy work parallelizes
   over a domain pool while TID assignment stays serial and deterministic:

     enumerate_path   one task per schema path: enumerate its instance
                      paths and bucket representatives by (first, last)
                      entity pair.  Reads the data graph only (labels must
                      be pre-interned via Dg.intern_path_labels).
     merge_shards     coordinator: combine the per-path shards into one
                      pending record per entity pair, classes in schema
                      path order, pairs sorted by (a, b).
     unions_of_pair   one task per pair: sort/truncate representatives,
                      run the Definition 2 cartesian product of unions,
                      canonicalize, dedup — producing canonical keys and
                      representative graphs but no TIDs.
     commit           coordinator: walk pairs in (a, b) order and register
                      every topology, assigning TIDs at merge time only.
                      jobs = n therefore yields bit-identical rows,
                      registry contents and TIDs to jobs = 1. *)

exception Path_budget

type shard = {
  sh_key : string;  (* the path's equivalence class key *)
  sh_reps : (int * int, rep Dyn.t) Hashtbl.t;
  sh_instances : int;
}

let enumerate_path dg caps ~same_type (p : Sg.path) =
  let reps : (int * int, rep Dyn.t) Hashtbl.t = Hashtbl.create 1024 in
  let count = ref 0 in
  let handle ids =
    incr count;
    if !count > caps.max_paths_per_class then raise Path_budget;
    let a0 = ids.(0) and b0 = ids.(Array.length ids - 1) in
    let pk = if same_type && a0 > b0 then (b0, a0) else (a0, b0) in
    let dyn =
      match Hashtbl.find_opt reps pk with
      | Some d -> d
      | None ->
          let d = Dyn.create () in
          Hashtbl.add reps pk d;
          d
    in
    Dyn.push dyn (normalize_rep p ids)
  in
  (try Dg.iter_instance_paths dg p ~f:handle with Path_budget -> ());
  { sh_key = Sg.path_key p; sh_reps = reps; sh_instances = !count }

let shard_instances sh = sh.sh_instances

type pending = {
  pd_a : int;
  pd_b : int;
  pd_classes : (string * rep array) Dyn.t;  (* schema path order *)
}

let merge_shards shards =
  let merged : (int * int, (string * rep array) Dyn.t) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun sh ->
      (* Sort each shard's pairs so the merge never depends on hash-table
         iteration order. *)
      let pairs = Hashtbl.fold (fun pk d acc -> (pk, d) :: acc) sh.sh_reps [] in
      let pairs = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) pairs in
      List.iter
        (fun (pk, d) ->
          let classes =
            match Hashtbl.find_opt merged pk with
            | Some c -> c
            | None ->
                let c = Dyn.create () in
                Hashtbl.add merged pk c;
                c
          in
          Dyn.push classes (sh.sh_key, Dyn.to_array d))
        pairs)
    shards;
  let all = Hashtbl.fold (fun (a, b) classes acc -> { pd_a = a; pd_b = b; pd_classes = classes } :: acc) merged [] in
  let arr = Array.of_list all in
  Array.sort (fun p1 p2 -> compare (p1.pd_a, p1.pd_b) (p2.pd_a, p2.pd_b)) arr;
  arr

type proto = {
  pr_a : int;
  pr_b : int;
  pr_topos : (string * Lgraph.t) list;  (* distinct canonical keys, discovery order *)
  pr_class_keys : string list;  (* sorted *)
  pr_combos : int;
  pr_capped : bool;
}

let proto_combos pr = pr.pr_combos

let proto_capped pr = pr.pr_capped

(* Representatives were collected unbounded and are truncated here against
   a deterministic (sorted) order, so every code path — the offline sweep,
   anchored recomputation, witness retrieval — selects the same sample and
   the methods stay mutually consistent even on capped pairs. *)
let unions_of_pair dg caps pd =
  let capped = ref false in
  let classes =
    Dyn.to_list pd.pd_classes
    |> List.map (fun (key, arr) ->
           Array.sort compare_reps arr;
           let kept =
             if Array.length arr > caps.max_reps_per_class then begin
               capped := true;
               Array.sub arr 0 caps.max_reps_per_class
             end
             else arr
           in
           (key, kept))
    |> List.sort (fun ((ka : string), _) (kb, _) -> compare ka kb)
  in
  let class_keys = List.map fst classes in
  let rep_arrays = List.map snd classes in
  let n_classes = List.length rep_arrays in
  let counts = Array.of_list (List.map Array.length rep_arrays) in
  let reps = Array.of_list rep_arrays in
  let indices = Array.make n_classes 0 in
  (* Definition 2: union one representative per class, over the (capped)
     cartesian product of representatives; canonicalize and dedup. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let topos = ref [] in
  let combos = ref 0 in
  let continue = ref true in
  while !continue do
    incr combos;
    let chosen = List.init n_classes (fun c -> reps.(c).(indices.(c))) in
    let g = union_of_representatives dg chosen in
    let key = Canon.key g in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      topos := (key, g) :: !topos
    end;
    (* Odometer increment. *)
    let rec bump c =
      if c < 0 then continue := false
      else begin
        indices.(c) <- indices.(c) + 1;
        if indices.(c) >= counts.(c) then begin
          indices.(c) <- 0;
          bump (c - 1)
        end
      end
    in
    bump (n_classes - 1);
    if !combos >= caps.max_combos_per_pair && !continue then begin
      capped := true;
      continue := false
    end
  done;
  {
    pr_a = pd.pd_a;
    pr_b = pd.pd_b;
    pr_topos = List.rev !topos;
    pr_class_keys = class_keys;
    pr_combos = !combos;
    pr_capped = !capped;
  }

let commit registry protos =
  Array.to_list protos
  |> List.map (fun pr ->
         let tids =
           List.map
             (fun (_, g) -> (Topology.register registry g ~decomposition:pr.pr_class_keys).Topology.tid)
             pr.pr_topos
         in
         { a = pr.pr_a; b = pr.pr_b; tids = List.sort compare tids; class_keys = pr.pr_class_keys })

let sweep_stats ~schema_paths ~shards ~protos ~rows =
  {
    schema_paths;
    instance_paths = List.fold_left (fun acc sh -> acc + sh.sh_instances) 0 shards;
    pairs = List.length rows;
    unions = Array.fold_left (fun acc pr -> acc + pr.pr_combos) 0 protos;
    capped_pairs = Array.fold_left (fun acc pr -> acc + if pr.pr_capped then 1 else 0) 0 protos;
  }

let schema_paths_between schema ~t1 ~t2 ~l = Sg.paths schema ~from_:t1 ~to_:t2 ~max_len:l

(* Chunk size for per-pair tasks: pairs are numerous and individually
   small, so claim them in runs to keep pool cursor traffic negligible. *)
let pair_chunk ~jobs n = max 1 (n / (jobs * 8))

let alltops dg schema registry ~t1 ~t2 ~l ~caps ?(path_filter = fun _ -> true) ?pool () =
  let paths = List.filter path_filter (schema_paths_between schema ~t1 ~t2 ~l) in
  List.iter (Dg.intern_path_labels dg) paths;
  let same_type = t1 = t2 in
  let pmap ?chunk arr ~f =
    match pool with Some p -> Pool.parallel_map ?chunk p arr ~f | None -> Array.map f arr
  in
  let shards = pmap (Array.of_list paths) ~f:(enumerate_path dg caps ~same_type) in
  let pending = merge_shards (Array.to_list shards) in
  let jobs = match pool with Some p -> Pool.jobs p | None -> 1 in
  let protos =
    pmap ~chunk:(pair_chunk ~jobs (Array.length pending)) pending ~f:(unions_of_pair dg caps)
  in
  let rows = commit registry protos in
  (rows, sweep_stats ~schema_paths:(List.length paths) ~shards:(Array.to_list shards) ~protos ~rows)

let pair_topologies dg schema registry ~t1 ~t2 ~a ~b ~l ~caps =
  let paths = schema_paths_between schema ~t1 ~t2 ~l in
  let by_key : (string, rep Dyn.t) Hashtbl.t = Hashtbl.create 16 in
  let classes = Dyn.create () in
  let push key path ids =
    let dyn =
      match Hashtbl.find_opt by_key key with
      | Some d -> d
      | None ->
          let d = Dyn.create () in
          Hashtbl.add by_key key d;
          Dyn.push classes (key, d);
          d
    in
    Dyn.push dyn (normalize_rep path ids)
  in
  List.iter
    (fun (p : Sg.path) ->
      let key = Sg.path_key p in
      Dg.iter_instance_paths_between dg p ~a ~b ~f:(fun ids -> push key p ids);
      (* When both endpoints have the same type, instances of this class may
         read as the reversed sequence from [a]. *)
      if t1 = t2 then begin
        let rev = Sg.reverse p in
        if rev <> p then Dg.iter_instance_paths_between dg rev ~a ~b ~f:(fun ids -> push key rev ids)
      end)
    paths;
  if Dyn.is_empty classes then { a; b; tids = []; class_keys = [] }
  else begin
    let pd = { pd_a = a; pd_b = b; pd_classes = Dyn.map (fun (key, d) -> (key, Dyn.to_array d)) classes } in
    let pr = unions_of_pair dg caps pd in
    match commit registry [| pr |] with
    | [ row ] -> row
    | rows ->
        failwith
          (Printf.sprintf "Compute.pair_topologies: commit of one proto yielded %d rows"
             (List.length rows))
  end
