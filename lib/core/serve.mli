(** The online serving tier: evaluate a batch of topology queries
    concurrently across OCaml 5 domains.

    Each query keeps its single-coordinator evaluation; the {e batch} is
    what parallelizes — one {!Topo_util.Pool} task per query, one query per
    domain at a time.  Domains work through a per-domain {e engine handle}:
    the shared read-only engine state (catalog, stores, topology registry,
    interner, data graph — frozen after the offline build) plus per-domain
    scratch.  Each query is evaluated by {!Engine.run_request}: a fresh
    {!Topo_sql.Iterator.Counters} scope, a private trace sink when tracing
    is requested, and the optional shared {!Cache.t}.

    Determinism contract: [run ~jobs:n] returns outcomes bit-identical to
    [run ~jobs:1] — and to a sequential {!Engine.run} loop — in input
    order, whether the cache is cold, warm, or absent.  A query that
    raises yields [Error] in its own slot; the rest of the batch still
    completes, and failures are never memoized. *)

(** The historical request type, now an alias of {!Request.t}. *)
type request = Request.t = {
  method_ : Engine.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
}

(** [request ?scheme ?k method_ query] is {!Request.make}. *)
val request : ?scheme:Ranking.scheme -> ?k:int -> Engine.method_ -> Query.t -> request

(** The historical outcome type, now an alias of {!Request.outcome}. *)
type outcome = Request.outcome = {
  request : request;
  result : (Engine.result, exn) Stdlib.result;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** operator work performed by this query alone — concurrent queries
          never contribute to each other's counts; on a cache hit, the
          stored snapshot of the original evaluation *)
  served_by : int;  (** id of the domain that evaluated the query *)
  trace : Topo_obs.Trace.t option;  (** the query's private span tree, when requested *)
  cache : Request.cache_status;  (** how the result cache participated *)
}

type stats = {
  jobs : int;  (** parallelism degree actually used *)
  queries : int;
  errors : int;  (** outcomes whose [result] is [Error] *)
  elapsed_s : float;  (** wall time for the whole batch *)
  throughput_qps : float option;
      (** [queries /. elapsed_s], or [None] when the batch finished under
          the clock's resolution ([elapsed_s = 0.0]) — "not measurable",
          never to be read as zero throughput *)
  domains_used : int;  (** distinct domains that served at least one query *)
  cache : Cache.totals option;
      (** cache activity attributable to this batch alone (a before/after
          {!Cache.diff}); [None] when no cache was attached *)
}

(** [run ?pool ?jobs ?traces ?cache engine requests] evaluates every
    request and returns outcomes in input order plus batch statistics.
    With [?pool] the caller's pool is used (and kept alive — the
    long-running server pattern); otherwise a fresh pool of [?jobs]
    domains is created for the batch and shut down afterwards.  [?jobs]
    is capped at the machine's recommended domain count —
    oversubscribing a serving workload only adds cross-domain GC
    synchronization, and results are jobs-invariant anyway; pass [?pool]
    to force a specific domain count.  [traces] (default false) attaches
    a private {!Topo_obs.Trace.t} to each query.  [cache], when given,
    is shared by all serving domains: hits are lock-free snapshot reads,
    entries are generation-stamped against the topology registry so
    online re-registration can never serve a stale result, and
    [stats.cache] reports this batch's hits/misses/evictions/
    invalidations. *)
val run :
  ?pool:Topo_util.Pool.t ->
  ?jobs:int ->
  ?traces:bool ->
  ?cache:Cache.t ->
  Engine.t ->
  request list ->
  outcome list * stats

(** [fingerprint outcomes] renders the batch's full observable output —
    ranked lists with scores, strategy choices, per-query counters,
    exceptions — excluding wall-clock fields and the per-outcome cache
    status (which occurrence of a repeated query populates the cache
    depends on domain scheduling; the values served do not).
    Bit-identical across jobs values and across cold/warm/no-cache runs;
    the benchmark and CI gate compare these digests. *)
val fingerprint : outcome list -> string
