(** The online serving tier: evaluate a batch of topology queries
    concurrently across OCaml 5 domains.

    Each query keeps its single-coordinator evaluation; the {e batch} is
    what parallelizes — one {!Topo_util.Pool} task per query, one query per
    domain at a time.  Domains work through a per-domain {e engine handle}:
    the shared read-only engine state (catalog, stores, topology registry,
    interner, data graph — frozen after the offline build) plus per-domain
    scratch: a fresh {!Topo_sql.Iterator.Counters} scope per query and a
    private trace sink when tracing is requested.

    Determinism contract: [run ~jobs:n] returns outcomes bit-identical to
    [run ~jobs:1] — and to a sequential {!Engine.run} loop — in input
    order.  A query that raises yields [Error] in its own slot; the rest
    of the batch still completes. *)

type request = {
  method_ : Engine.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
}

(** [request ?scheme ?k method_ query] with [scheme] defaulting to [Freq]
    and [k] to 10. *)
val request : ?scheme:Ranking.scheme -> ?k:int -> Engine.method_ -> Query.t -> request

type outcome = {
  request : request;
  result : (Engine.result, exn) Stdlib.result;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** operator work performed by this query alone — concurrent queries
          never contribute to each other's counts *)
  served_by : int;  (** id of the domain that evaluated the query *)
  trace : Topo_obs.Trace.t option;  (** the query's private span tree, when requested *)
}

type stats = {
  jobs : int;  (** parallelism degree actually used *)
  queries : int;
  errors : int;  (** outcomes whose [result] is [Error] *)
  elapsed_s : float;  (** wall time for the whole batch *)
  throughput_qps : float;  (** [queries /. elapsed_s] *)
  domains_used : int;  (** distinct domains that served at least one query *)
}

(** [run ?pool ?jobs ?traces engine requests] evaluates every request and
    returns outcomes in input order plus batch statistics.  With [?pool]
    the caller's pool is used (and kept alive — the long-running server
    pattern); otherwise a fresh pool of [?jobs] domains is created for the
    batch and shut down afterwards.  [?jobs] is capped at the machine's
    recommended domain count — oversubscribing a serving workload only
    adds cross-domain GC synchronization, and results are jobs-invariant
    anyway; pass [?pool] to force a specific domain count.  [traces]
    (default false) attaches a private {!Topo_obs.Trace.t} to each
    query. *)
val run :
  ?pool:Topo_util.Pool.t ->
  ?jobs:int ->
  ?traces:bool ->
  Engine.t ->
  request list ->
  outcome list * stats

(** [fingerprint outcomes] renders the batch's full observable output —
    ranked lists with scores, strategy choices, per-query counters,
    exceptions — excluding wall-clock fields.  Bit-identical across jobs
    values; the benchmark and CI gate compare these digests. *)
val fingerprint : outcome list -> string
