(** The online serving tier: evaluate a batch of topology queries
    concurrently across OCaml 5 domains — closed-loop ({!run}) or
    open-loop with admission control and deadlines ({!run_open}).

    Each query keeps its single-coordinator evaluation; the {e batch} is
    what parallelizes — one {!Topo_util.Pool} task per query, one query per
    domain at a time.  Domains work through a per-domain {e engine handle}:
    the shared read-only engine state (catalog, stores, topology registry,
    interner, data graph — frozen after the offline build) plus per-domain
    scratch.  Each query is evaluated by {!Engine.run_request}: a fresh
    {!Topo_sql.Iterator.Counters} scope, a private trace sink when tracing
    is requested, the optional shared {!Cache.t}, and the request's
    deadline enforced (admission-time expiry, mid-evaluation [Partial]
    truncation).

    Determinism contract: [run ~jobs:n] returns outcomes bit-identical to
    [run ~jobs:1] — and to a sequential {!Engine.run} loop — in input
    order, whether the cache is cold, warm, or absent.  A query that
    raises yields [Failed] in its own slot; the rest of the batch still
    completes, and failures are never memoized.  [Ticks]-deadline
    batches extend the contract: the same tick budget produces the same
    [Partial] prefix on every run and jobs value. *)

(** The historical request type, now an alias of {!Request.t}. *)
type request = Request.t = {
  method_ : Engine.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
  deadline : Budget.deadline option;
}

(** [request ?scheme ?k ?deadline method_ query] is {!Request.make}. *)
val request :
  ?scheme:Ranking.scheme -> ?k:int -> ?deadline:Budget.deadline -> Engine.method_ -> Query.t -> request

(** The historical outcome type, now an alias of {!Request.outcome}. *)
type outcome = Request.outcome = {
  request : request;
  result : Request.outcome_result;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** operator work performed by this query alone — concurrent queries
          never contribute to each other's counts; on a cache hit, the
          stored snapshot of the original evaluation; all-zero for
          rejections *)
  served_by : int;  (** id of the domain that evaluated (or rejected) the query *)
  trace : Topo_obs.Trace.t option;  (** the query's private span tree, when requested *)
  cache : Request.cache_status;  (** how the result cache participated *)
}

type stats = {
  jobs : int;  (** parallelism degree actually used *)
  queries : int;
  errors : int;  (** outcomes whose result is [Failed] *)
  rejected : int;  (** [Rejected] outcomes (expired deadlines, in closed loop) *)
  partials : int;  (** [Partial] outcomes (deadline tripped mid-evaluation) *)
  elapsed_s : float;  (** wall time for the whole batch *)
  throughput_qps : float option;
      (** [queries /. elapsed_s], or [None] when the batch finished under
          the clock's resolution ([elapsed_s = 0.0]) — "not measurable",
          never to be read as zero throughput *)
  domains_used : int;  (** distinct domains that served at least one query *)
  cache : Cache.totals option;
      (** cache activity attributable to this batch alone (a before/after
          {!Cache.diff}); [None] when no cache was attached *)
}

(** [run ?pool ?jobs ?traces ?cache engine requests] is the historical
    closed-loop entry point.
    @deprecated Use {!exec} with the default (closed) {!config}. *)
val run :
  ?pool:Topo_util.Pool.t ->
  ?jobs:int ->
  ?traces:bool ->
  ?cache:Cache.t ->
  Engine.t ->
  request list ->
  outcome list * stats
[@@ocaml.deprecated "Use Serve.exec: Serve.exec (Serve.config ...) engine requests."]

(** {1 Open-loop serving} *)

(** One scheduled request: [at] is its intended arrival instant in
    seconds from the start of the run. *)
type arrival = { at : float; arrival_request : request }

(** An outcome with its open-loop timing.  All instants are seconds from
    the start of the run; [latency_s = finished_s -. intended_s] — the
    coordinated-omission-corrected latency, charged from the instant the
    request {e should} have arrived, so queueing delay counts against
    the server rather than vanishing from the histogram. *)
type timed = {
  timed_outcome : outcome;
  intended_s : float;  (** the arrival schedule's instant for this request *)
  started_s : float;  (** when a worker picked it up (= rejection instant for overloads) *)
  finished_s : float;
  latency_s : float;
}

type open_stats = {
  open_jobs : int;  (** worker domains used *)
  offered : int;  (** every scheduled arrival; [admitted + rejected_overload] *)
  admitted : int;  (** entered the bounded queue *)
  rejected_overload : int;  (** turned away at admission: queue at [max_queue] *)
  expired : int;  (** admitted, but the deadline passed before evaluation began *)
  completed : int;  (** [Done] outcomes *)
  partial : int;  (** [Partial] outcomes (deadline tripped mid-evaluation) *)
  failed : int;  (** [Failed] outcomes — always unexpected *)
  wall_s : float;  (** run duration: last finish (or rejection) instant *)
  offered_rate : float option;  (** [offered /. wall_s]; [None] under clock resolution *)
  achieved_rate : float option;  (** answered ([completed + partial]) per second *)
}

(** [run_open ?jobs ?max_queue ?deadline_s ?traces ?cache engine arrivals]
    is the historical open-loop entry point.
    @deprecated Use {!exec} with [mode = Open _]. *)
val run_open :
  ?jobs:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?traces:bool ->
  ?cache:Cache.t ->
  Engine.t ->
  arrival list ->
  timed list * open_stats
[@@ocaml.deprecated
  "Use Serve.exec: Serve.exec (Serve.config ~mode:(Serve.Open ...) ()) engine requests."]

(** {1 The unified entry point}

    {!exec} subsumes [run]/[run_open]: one {!config} record names the
    execution resources and one {!mode} picks closed- or open-loop, so
    "how a batch executes" is spelled the same way in-process, in the
    shard server behind a socket, and in the benchmarks. *)

(** Open-loop parameters.  [schedule i] is the intended arrival instant
    of the i-th request, in seconds from the start of the run — the
    open-loop analogue of {!arrival.at}, kept positional so {!exec}'s
    request list stays the single source of what runs. *)
type open_config = {
  max_queue : int;  (** admission-queue bound; excess is [Rejected Overloaded] *)
  deadline_s : float option;
      (** per-request wall deadline measured from the {e intended} arrival
          instant; requests already carrying a deadline keep theirs *)
  schedule : int -> float;
}

(** [open_config ?max_queue ?deadline_s ?schedule ()] with [max_queue]
    defaulting to 64 and [schedule] to "everything arrives at t = 0". *)
val open_config :
  ?max_queue:int -> ?deadline_s:float -> ?schedule:(int -> float) -> unit -> open_config

type mode =
  | Closed  (** evaluate the whole batch as fast as the pool allows *)
  | Open of open_config  (** replay an arrival schedule with admission control *)

type config = {
  pool : Topo_util.Pool.t option;
      (** closed mode: serve on the caller's long-lived pool; ignored in
          open mode, which paces its own worker domains *)
  jobs : int option;
      (** domain count when no pool is given; capped at the machine's
          recommended count *)
  traces : bool;  (** attach a private {!Topo_obs.Trace.t} per query *)
  cache : Cache.t option;
      (** shared by all serving domains: lock-free snapshot-read hits,
          generation-stamped entries, per-batch activity in [stats.cache] *)
  mode : mode;
}

(** [config ?pool ?jobs ?traces ?cache ?mode ()] with [traces] defaulting
    to false and [mode] to [Closed]. *)
val config :
  ?pool:Topo_util.Pool.t ->
  ?jobs:int ->
  ?traces:bool ->
  ?cache:Cache.t ->
  ?mode:mode ->
  unit ->
  config

(** [default] is [config ()]: closed-loop, default pool sizing, no
    traces, no cache. *)
val default : config

(** What one {!exec} call produced.  [outcomes] and [stats] are always
    populated; [timed]/[open_stats] are [Some] exactly in open mode.
    Open-mode [stats] are synthesized from the open-loop accounting:
    [rejected = rejected_overload + expired], [elapsed_s = wall_s],
    [throughput_qps = achieved_rate]. *)
type result = {
  outcomes : outcome list;
  stats : stats;
  timed : timed list option;
  open_stats : open_stats option;
}

(** [exec config engine requests] evaluates the batch under [config] and
    returns outcomes in input order (open mode: in intended-arrival
    order, which is input order whenever the schedule is monotone).
    Closed mode inherits {!run}'s determinism contract — bit-identical
    outcomes for every jobs value, cold or warm cache. *)
val exec : config -> Engine.t -> request list -> result

(** [fingerprint outcomes] renders the batch's full observable output —
    ranked lists with scores (flagged when deadline-truncated), strategy
    choices, per-query counters, rejection kinds, exceptions — excluding
    wall-clock fields and the per-outcome cache status (which occurrence
    of a repeated query populates the cache depends on domain
    scheduling; the values served do not).  Bit-identical across jobs
    values and across cold/warm/no-cache runs, and — for [Ticks]
    deadlines — across repeated runs of the same truncated batch; the
    benchmark and CI gate compare these digests. *)
val fingerprint : outcome list -> string
