(* Binary snapshot codec for the offline build output.

   Layout (all integers little-endian):

     header   "TOPOSNAP" | version u32 | flags u32 | payload length u64
              | fingerprint (length-prefixed hex digest)
     payload  'I' intern pool        strings in id order
              'G' class-key pool     the distinct path-class keys referenced
                                     by decompositions and store rows
              'C' catalog            every table: name, schema, primary key,
                                     then column-major cell data
              'X' index specs        (kind, column names) per table
              'S' statistics        histograms + samples per table
              'T' topology registry  graphs + decompositions in TID order
              'B' build config       l, caps, jobs, per-pair sweep stats
              'P' stores             pruned TIDs, frequencies, pair rows
              'E' end marker

   Table cells are column-major: one tag byte per cell (null/int/float/
   string), then — for columns declared numeric — a fixed-width 8-byte
   payload per row (ints as-is, floats by bit pattern), so the big
   AllTops/LeftTops columns are a flat, Bigarray-friendly array and a
   future mmap path only has to change this codec.  String columns store
   length-prefixed bytes per non-null cell.

   The loader bounds-checks every read and converts any decode failure
   into [Error] with the offset and what was being read; after
   reconstruction it recomputes [Engine.fingerprint] and refuses to return
   an engine that does not reproduce the digest recorded at save time. *)

open Topo_sql

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let magic = "TOPOSNAP"

let version = 1

(* ------------------------------------------------------------------ *)
(* Writer primitives (Buffer-streamed)                                 *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u32 buf n =
  if n < 0 then fail "save: negative length %d" n;
  Buffer.add_int32_le buf (Int32.of_int n)

let w_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let w_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_value buf = function
  | Value.Null -> w_u8 buf 0
  | Value.Int n ->
      w_u8 buf 1;
      w_i64 buf n
  | Value.Float f ->
      w_u8 buf 2;
      w_f64 buf f
  | Value.Str s ->
      w_u8 buf 3;
      w_str buf s

let cell_tag = function Value.Null -> 0 | Value.Int _ -> 1 | Value.Float _ -> 2 | Value.Str _ -> 3

let ty_tag = function Schema.TInt -> 0 | Schema.TFloat -> 1 | Schema.TStr -> 2

let kind_tag = function Index.Hash -> 0 | Index.Sorted -> 1

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

let save ?(class_pairs = []) (engine : Engine.t) ~path =
  let ctx = engine.Engine.ctx in
  let catalog = ctx.Context.catalog in
  let interner = ctx.Context.interner in
  let fingerprint = Engine.fingerprint engine in
  let topologies = Topology.all ctx.Context.registry in
  let stores =
    List.map
      (fun (t1, t2, _) ->
        match Hashtbl.find_opt ctx.Context.stores (t1, t2) with
        | Some s -> s
        | None -> fail "save: no store for built pair %s-%s" t1 t2)
      engine.Engine.build_stats
  in
  (* Class-key pool: decomposition keys and row class keys repeat heavily;
     intern them into one string pool, first-seen order. *)
  let pool_ids = Hashtbl.create 256 in
  let pool = Topo_util.Dyn.create () in
  let pool_id s =
    match Hashtbl.find_opt pool_ids s with
    | Some i -> i
    | None ->
        let i = Topo_util.Dyn.length pool in
        Topo_util.Dyn.push pool s;
        Hashtbl.add pool_ids s i;
        i
  in
  List.iter
    (fun (t : Topology.t) ->
      List.iter
        (fun d -> List.iter (fun key -> ignore (pool_id key)) d)
        (Atomic.get t.Topology.decompositions))
    topologies;
  List.iter
    (fun (s : Store.t) ->
      List.iter
        (fun (r : Compute.pair_row) ->
          List.iter (fun key -> ignore (pool_id key)) r.Compute.class_keys)
        s.Store.rows)
    stores;
  let body = Buffer.create (1 lsl 20) in
  (* 'I' intern pool. *)
  Buffer.add_char body 'I';
  w_u32 body (Topo_util.Interner.count interner);
  Topo_util.Interner.iter (fun _ name -> w_str body name) interner;
  (* 'G' class-key pool. *)
  Buffer.add_char body 'G';
  let pool_arr = Topo_util.Dyn.to_array pool in
  w_u32 body (Array.length pool_arr);
  Array.iter (fun s -> w_str body s) pool_arr;
  (* 'C' catalog tables, registration order, column-major cells. *)
  let tables = Catalog.tables catalog in
  Buffer.add_char body 'C';
  w_u32 body (List.length tables);
  List.iter
    (fun tb ->
      let name = Table.name tb in
      let schema = Table.schema tb in
      let cols = Schema.columns schema in
      w_str body name;
      w_u32 body (Array.length cols);
      Array.iter
        (fun (c : Schema.column) ->
          w_str body c.Schema.name;
          w_u8 body (ty_tag c.Schema.ty))
        cols;
      (match Table.primary_key tb with
      | None -> w_u8 body 0
      | Some pk ->
          w_u8 body 1;
          w_str body pk);
      let rows = Table.rows tb in
      let n = Array.length rows in
      w_i64 body n;
      Array.iteri
        (fun ci (c : Schema.column) ->
          Array.iter (fun row -> w_u8 body (cell_tag (Tuple.get row ci))) rows;
          match c.Schema.ty with
          | Schema.TInt | Schema.TFloat ->
              (* Fixed-width 8-byte lane, one slot per row. *)
              Array.iter
                (fun row ->
                  match Tuple.get row ci with
                  | Value.Null -> w_i64 body 0
                  | Value.Int x -> w_i64 body x
                  | Value.Float f -> w_f64 body f
                  | Value.Str s ->
                      fail "save: string value %S in numeric column %s.%s" s name c.Schema.name)
                rows
          | Schema.TStr ->
              Array.iter
                (fun row ->
                  match Tuple.get row ci with
                  | Value.Null -> ()
                  | Value.Int x -> w_i64 body x
                  | Value.Float f -> w_f64 body f
                  | Value.Str s -> w_str body s)
                rows)
        cols)
    tables;
  (* 'X' index specs, same table order. *)
  Buffer.add_char body 'X';
  List.iter
    (fun tb ->
      let specs = Table.index_specs tb in
      w_u32 body (List.length specs);
      List.iter
        (fun (kind, cols) ->
          w_u8 body (kind_tag kind);
          w_u32 body (List.length cols);
          List.iter (fun c -> w_str body c) cols)
        specs)
    tables;
  (* 'S' statistics, same table order (computed now if not yet cached). *)
  Buffer.add_char body 'S';
  w_u32 body (List.length tables);
  List.iter
    (fun tb ->
      let name = Table.name tb in
      let st = Catalog.stats catalog name in
      w_str body name;
      w_i64 body (Table_stats.row_count st);
      w_f64 body (Table_stats.avg_row_width st);
      let ncols = Table_stats.columns st in
      w_u32 body ncols;
      for ci = 0 to ncols - 1 do
        let h = Table_stats.histogram st ci in
        w_i64 body (Histogram.total h);
        w_i64 body (Histogram.null_count h);
        w_i64 body (Histogram.distinct h);
        let buckets = Histogram.buckets h in
        w_u32 body (Array.length buckets);
        Array.iter
          (fun (lo, hi, count, d) ->
            w_value body lo;
            w_value body hi;
            w_i64 body count;
            w_i64 body d)
          buckets;
        let mcv = Histogram.mcv h in
        w_u32 body (Array.length mcv);
        Array.iter
          (fun (v, c) ->
            w_value body v;
            w_i64 body c)
          mcv;
        let sample = Table_stats.sample st ci in
        w_u32 body (Array.length sample);
        Array.iter (fun v -> w_value body v) sample
      done)
    tables;
  (* 'T' topology registry, TID order. *)
  Buffer.add_char body 'T';
  w_u32 body (List.length topologies);
  List.iter
    (fun (t : Topology.t) ->
      let g = t.Topology.graph in
      w_str body t.Topology.key;
      let nodes = Topo_graph.Lgraph.nodes g in
      w_u32 body (List.length nodes);
      List.iter
        (fun id ->
          w_i64 body id;
          w_i64 body (Topo_graph.Lgraph.node_label g id))
        nodes;
      let edges = Topo_graph.Lgraph.edges g in
      w_u32 body (List.length edges);
      List.iter
        (fun { Topo_graph.Lgraph.u; v; label } ->
          w_i64 body u;
          w_i64 body v;
          w_i64 body label)
        edges;
      let decompositions = Atomic.get t.Topology.decompositions in
      w_u32 body (List.length decompositions);
      List.iter
        (fun d ->
          w_u32 body (List.length d);
          List.iter (fun key -> w_u32 body (pool_id key)) d)
        decompositions)
    topologies;
  (* 'B' build configuration and sweep statistics. *)
  Buffer.add_char body 'B';
  w_u32 body ctx.Context.l;
  w_i64 body ctx.Context.caps.Compute.max_reps_per_class;
  w_i64 body ctx.Context.caps.Compute.max_combos_per_pair;
  w_i64 body ctx.Context.caps.Compute.max_paths_per_class;
  w_u32 body engine.Engine.jobs;
  w_u32 body (List.length engine.Engine.build_stats);
  List.iter
    (fun (t1, t2, (s : Compute.stats)) ->
      w_str body t1;
      w_str body t2;
      w_i64 body s.Compute.schema_paths;
      w_i64 body s.Compute.instance_paths;
      w_i64 body s.Compute.pairs;
      w_i64 body s.Compute.unions;
      w_i64 body s.Compute.capped_pairs)
    engine.Engine.build_stats;
  (* 'P' per-pair stores. *)
  Buffer.add_char body 'P';
  w_u32 body (List.length stores);
  List.iter
    (fun (s : Store.t) ->
      w_str body s.Store.t1;
      w_str body s.Store.t2;
      w_u32 body (List.length s.Store.pruned);
      List.iter (fun (p : Topology.t) -> w_i64 body p.Topology.tid) s.Store.pruned;
      let freqs =
        Hashtbl.fold (fun tid freq acc -> (tid, freq) :: acc) s.Store.frequencies []
        |> List.sort compare
      in
      w_u32 body (List.length freqs);
      List.iter
        (fun (tid, freq) ->
          w_i64 body tid;
          w_i64 body freq)
        freqs;
      w_i64 body (List.length s.Store.rows);
      List.iter
        (fun (r : Compute.pair_row) ->
          w_i64 body r.Compute.a;
          w_i64 body r.Compute.b;
          w_u32 body (List.length r.Compute.tids);
          List.iter (fun tid -> w_i64 body tid) r.Compute.tids;
          w_u32 body (List.length r.Compute.class_keys);
          List.iter (fun key -> w_u32 body (pool_id key)) r.Compute.class_keys)
        s.Store.rows)
    stores;
  (* 'C' class pairs (flag bit 0): pairs the registry's topologies may
     carry decomposition classes for, beyond this engine's own built
     pairs.  A shard slice keeps the full registry, and the registry
     dedupes canonical topologies across pairs — so a topology observed
     on this slice's pair can hold decompositions recorded during
     another pair's sweep.  Loading must register those pairs' schema
     paths too, or probe methods hit unknown class keys. *)
  (match class_pairs with
  | [] -> ()
  | pairs ->
      Buffer.add_char body 'C';
      w_u32 body (List.length pairs);
      List.iter
        (fun (t1, t2) ->
          w_str body t1;
          w_str body t2)
        pairs);
  Buffer.add_char body 'E';
  let header = Buffer.create 64 in
  Buffer.add_string header magic;
  w_u32 header version;
  w_u32 header (if class_pairs = [] then 0 else 1) (* flags *);
  w_i64 header (Buffer.length body);
  w_str header fingerprint;
  (* The engine fingerprint only digests the registry and the derived
     tables; the payload checksum covers every byte, so a flip in base
     data can never load silently. *)
  w_str header (Digest.to_hex (Digest.string (Buffer.contents body)));
  (match open_out_bin path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Buffer.output_buffer oc header;
          Buffer.output_buffer oc body)
  | exception Sys_error msg -> fail "save: cannot write %s: %s" path msg);
  Buffer.length header + Buffer.length body

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let load path =
  let data =
    match open_in_bin path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
    | exception Sys_error msg -> fail "cannot open snapshot: %s" msg
  in
  let limit = String.length data in
  let pos = ref 0 in
  (* Bounds-checked primitives: every read names what it was after, so a
     truncated or corrupt file fails with the offset and the field. *)
  let need n what =
    if n < 0 || !pos + n > limit then
      fail "truncated snapshot %s: need %d byte(s) for %s at offset %d of %d" path n what !pos limit
  in
  let r_u8 what =
    need 1 what;
    let c = Char.code data.[!pos] in
    pos := !pos + 1;
    c
  in
  let r_u32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_le data !pos) in
    pos := !pos + 4;
    if v < 0 then fail "corrupt snapshot: negative %s (%d) at offset %d" what v (!pos - 4);
    v
  in
  let r_i64 what =
    need 8 what;
    let v = String.get_int64_le data !pos in
    pos := !pos + 8;
    v
  in
  let r_int what = Int64.to_int (r_i64 what) in
  let r_f64 what = Int64.float_of_bits (r_i64 what) in
  let r_count what =
    let n = r_u32 what in
    (* Every counted element occupies at least one byte: anything bigger
       than the file is a corrupt length, not a big section. *)
    if n > limit then fail "corrupt snapshot: implausible %s %d (file is %d bytes)" what n limit;
    n
  in
  let r_str what =
    let n = r_count what in
    need n what;
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let r_value what =
    match r_u8 what with
    | 0 -> Value.Null
    | 1 -> Value.Int (r_int what)
    | 2 -> Value.Float (r_f64 what)
    | 3 -> Value.Str (r_str what)
    | k -> fail "corrupt snapshot: unknown value tag %d reading %s at offset %d" k what (!pos - 1)
  in
  (* Explicit recursion: List.init's evaluation order is unspecified, and
     the element reader advances [pos]. *)
  let r_list n _what f =
    let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc) in
    go 0 []
  in
  let expect marker section =
    let b = r_u8 (section ^ " section marker") in
    if b <> Char.code marker then
      fail "corrupt snapshot: expected %s section ('%c') at offset %d, found byte %d" section marker
        (!pos - 1) b
  in
  (* Header. *)
  need (String.length magic) "magic";
  let m = String.sub data 0 (String.length magic) in
  pos := String.length magic;
  if m <> magic then fail "bad magic %S in %s: not a toposearch snapshot (expected %S)" m path magic;
  let file_version = r_u32 "version" in
  if file_version <> version then
    fail "unsupported snapshot version %d in %s (this build reads version %d)" file_version path
      version;
  let flags = r_u32 "flags" in
  if flags land lnot 1 <> 0 then
    fail "unsupported snapshot flags %#x in %s (this build understands only bit 0)" flags path;
  let payload_len = r_int "payload length" in
  let fingerprint = r_str "fingerprint" in
  let checksum = r_str "payload checksum" in
  if limit - !pos <> payload_len then
    fail "truncated snapshot %s: header promises %d payload byte(s), file has %d" path payload_len
      (limit - !pos);
  let actual_checksum = Digest.to_hex (Digest.substring data !pos payload_len) in
  if actual_checksum <> checksum then
    fail "corrupt snapshot %s: payload checksum mismatch (header %s, payload digests to %s)" path
      checksum actual_checksum;
  let decode () =
    (* 'I' intern pool: re-intern in id order, verifying density. *)
    expect 'I' "intern pool";
    let interner = Topo_util.Interner.create () in
    let n_interned = r_count "interned string count" in
    for i = 0 to n_interned - 1 do
      let s = r_str "interned string" in
      let id = Topo_util.Interner.intern interner s in
      if id <> i then fail "corrupt snapshot: interned string %S got id %d, expected %d" s id i
    done;
    (* 'G' class-key pool. *)
    expect 'G' "class-key pool";
    let n_pool = r_count "class-key pool size" in
    let pool = Array.make n_pool "" in
    for i = 0 to n_pool - 1 do
      pool.(i) <- r_str "class key"
    done;
    let pool_str i =
      if i >= Array.length pool then
        fail "corrupt snapshot: class-key pool index %d out of range (pool has %d)" i
          (Array.length pool);
      pool.(i)
    in
    (* 'C' catalog tables. *)
    expect 'C' "catalog";
    let catalog = Catalog.create () in
    let n_tables = r_count "table count" in
    let tables =
      r_list n_tables "table" (fun () ->
          let name = r_str "table name" in
          let arity = r_count "table arity" in
          let cols =
            r_list arity "column" (fun () ->
                let cname = r_str "column name" in
                let ty =
                  match r_u8 "column type" with
                  | 0 -> Schema.TInt
                  | 1 -> Schema.TFloat
                  | 2 -> Schema.TStr
                  | k -> fail "corrupt snapshot: unknown column type tag %d in table %s" k name
                in
                { Schema.name = cname; ty })
          in
          let primary_key =
            match r_u8 "primary key flag" with
            | 0 -> None
            | 1 -> Some (r_str "primary key column")
            | k -> fail "corrupt snapshot: bad primary-key flag %d in table %s" k name
          in
          let schema = Schema.make cols in
          let n = r_int "row count" in
          if n < 0 || n > limit then
            fail "corrupt snapshot: implausible row count %d for table %s" n name;
          let cols_arr = Array.of_list cols in
          let arity = Array.length cols_arr in
          (* Decode each column straight into a typed lane: the codec's
             fixed-width numeric sections become Bigarray lanes with no
             per-cell [Value.t] boxing, and the resulting table serves the
             execution kernels zero-copy (rows box lazily on demand). *)
          let lanes = Array.make arity (Column.Boxed [||]) in
          let module A1 = Bigarray.Array1 in
          for ci = 0 to arity - 1 do
            let cname = cols_arr.(ci).Schema.name in
            need n "cell tags";
            let tags = Bytes.of_string (String.sub data !pos n) in
            pos := !pos + n;
            let classify limit_tag =
              (* Fold the column's tag profile: bit per tag seen. *)
              let seen = ref 0 in
              for r = 0 to n - 1 do
                let t = Char.code (Bytes.get tags r) in
                if t > limit_tag then
                  fail "corrupt snapshot: unexpected cell tag %d in %s.%s" t name cname;
                seen := !seen lor (1 lsl t)
              done;
              !seen
            in
            lanes.(ci) <-
              (match cols_arr.(ci).Schema.ty with
              | Schema.TInt | Schema.TFloat ->
                  let seen = classify 2 in
                  need (8 * n) "numeric lane";
                  let base = !pos in
                  pos := base + (8 * n);
                  if seen = 0b010 then begin
                    let a = A1.create Bigarray.int Bigarray.c_layout n in
                    for r = 0 to n - 1 do
                      A1.set a r (Int64.to_int (String.get_int64_le data (base + (8 * r))))
                    done;
                    Column.Ints a
                  end
                  else if seen = 0b100 then begin
                    let a = A1.create Bigarray.float64 Bigarray.c_layout n in
                    for r = 0 to n - 1 do
                      A1.set a r (Int64.float_of_bits (String.get_int64_le data (base + (8 * r))))
                    done;
                    Column.Floats a
                  end
                  else begin
                    let bits = A1.create Bigarray.int64 Bigarray.c_layout n in
                    for r = 0 to n - 1 do
                      A1.set bits r (String.get_int64_le data (base + (8 * r)))
                    done;
                    Column.Nums { tags; bits }
                  end
              | Schema.TStr ->
                  let seen = classify 3 in
                  if seen land 0b0110 = 0 then begin
                    (* Nulls and strings only: the interned fast lane. *)
                    let pool_ids = Hashtbl.create 64 in
                    let spool = Topo_util.Dyn.create () in
                    (* Explicit loop: the cell reader advances [pos], so
                       evaluation order must be row order. *)
                    let ids = Array.make n (-1) in
                    for r = 0 to n - 1 do
                      if Bytes.get tags r <> '\000' then
                        let s = r_str "string cell" in
                        ids.(r) <-
                          (match Hashtbl.find_opt pool_ids s with
                          | Some id -> id
                          | None ->
                              let id = Topo_util.Dyn.length spool in
                              Topo_util.Dyn.push spool s;
                              Hashtbl.add pool_ids s id;
                              id)
                    done;
                    Column.Strs { ids; pool = Topo_util.Dyn.to_array spool }
                  end
                  else begin
                    let cells = Array.make n Value.Null in
                    for r = 0 to n - 1 do
                      cells.(r) <-
                        (match Char.code (Bytes.get tags r) with
                        | 0 -> Value.Null
                        | 1 -> Value.Int (r_int "int cell")
                        | 2 -> Value.Float (r_f64 "float cell")
                        | _ -> Value.Str (r_str "string cell"))
                    done;
                    Column.Boxed cells
                  end)
          done;
          let tb = Table.of_columns ~name ~schema ?primary_key (Column.make ~rows:n lanes) in
          Catalog.add catalog tb;
          tb)
    in
    (* 'X' index specs: declared, not built — the spec list is visible
       immediately (and survives into the next snapshot), while each
       payload fills on its first probe.  Eager builds here would box
       every row of the columnar tables before the server answers its
       first query. *)
    expect 'X' "index specs";
    List.iter
      (fun tb ->
        let n_specs = r_count "index spec count" in
        for _ = 1 to n_specs do
          let kind =
            match r_u8 "index kind" with
            | 0 -> Index.Hash
            | 1 -> Index.Sorted
            | k -> fail "corrupt snapshot: unknown index kind %d on table %s" k (Table.name tb)
          in
          let n_cols = r_count "index column count" in
          let cols = r_list n_cols "index column" (fun () -> r_str "index column name") in
          Table.declare_index tb ~kind ~cols
        done)
      tables;
    (* 'S' statistics. *)
    expect 'S' "statistics";
    let n_stats = r_count "statistics count" in
    let stats_entries =
      r_list n_stats "statistics entry" (fun () ->
          let name = r_str "statistics table name" in
          let row_count = r_int "statistics row count" in
          let avg_width = r_f64 "statistics avg width" in
          let ncols = r_count "statistics column count" in
          let histograms = Array.make ncols (Histogram.build [||]) in
          let samples = Array.make ncols [||] in
          for ci = 0 to ncols - 1 do
            let total = r_int "histogram total" in
            let nulls = r_int "histogram null count" in
            let distinct = r_int "histogram distinct" in
            let n_buckets = r_count "histogram bucket count" in
            let buckets = Array.make n_buckets (Value.Null, Value.Null, 0, 0) in
            for i = 0 to n_buckets - 1 do
              let lo = r_value "bucket lo" in
              let hi = r_value "bucket hi" in
              let count = r_int "bucket count" in
              let d = r_int "bucket distinct" in
              buckets.(i) <- (lo, hi, count, d)
            done;
            let n_mcv = r_count "mcv count" in
            let mcv = Array.make n_mcv (Value.Null, 0) in
            for i = 0 to n_mcv - 1 do
              let v = r_value "mcv value" in
              let c = r_int "mcv frequency" in
              mcv.(i) <- (v, c)
            done;
            histograms.(ci) <- Histogram.restore ~total ~nulls ~distinct ~buckets ~mcv;
            let n_sample = r_count "sample size" in
            let sample = Array.make n_sample Value.Null in
            for i = 0 to n_sample - 1 do
              sample.(i) <- r_value "sample value"
            done;
            samples.(ci) <- sample
          done;
          (name, Table_stats.restore ~row_count ~histograms ~samples ~avg_width))
    in
    Catalog.restore_stats catalog stats_entries;
    (* 'T' topology registry: re-register in TID order, verify keys. *)
    expect 'T' "topology registry";
    let registry = Topology.create_registry () in
    let n_tops = r_count "topology count" in
    for tid = 1 to n_tops do
      let key = r_str "topology key" in
      let g = Topo_graph.Lgraph.empty () in
      let n_nodes = r_count "topology node count" in
      for _ = 1 to n_nodes do
        let id = r_int "node id" in
        let label = r_int "node label" in
        Topo_graph.Lgraph.add_node g ~id ~label
      done;
      let n_edges = r_count "topology edge count" in
      for _ = 1 to n_edges do
        let u = r_int "edge endpoint" in
        let v = r_int "edge endpoint" in
        let label = r_int "edge label" in
        Topo_graph.Lgraph.add_edge g ~u ~v ~label
      done;
      let n_decomps = r_count "decomposition count" in
      if n_decomps = 0 then fail "corrupt snapshot: topology %d has no decomposition" tid;
      let decompositions =
        r_list n_decomps "decomposition" (fun () ->
            let n_keys = r_count "decomposition key count" in
            r_list n_keys "decomposition key" (fun () -> pool_str (r_u32 "class-key pool index")))
      in
      let t =
        List.fold_left
          (fun _ d -> Topology.register registry g ~decomposition:d)
          (Topology.register registry g ~decomposition:(List.hd decompositions))
          (List.tl decompositions)
      in
      if t.Topology.tid <> tid || t.Topology.key <> key then
        fail
          "corrupt snapshot: topology %d reconstructed as TID %d with key %s (file records key %s)"
          tid t.Topology.tid t.Topology.key key
    done;
    (* 'B' build configuration. *)
    expect 'B' "build config";
    let l = r_count "l" in
    let max_reps_per_class = r_int "max_reps_per_class" in
    let max_combos_per_pair = r_int "max_combos_per_pair" in
    let max_paths_per_class = r_int "max_paths_per_class" in
    let caps = { Compute.max_reps_per_class; max_combos_per_pair; max_paths_per_class } in
    let jobs = r_count "jobs" in
    let n_pairs = r_count "build stats count" in
    let build_stats =
      r_list n_pairs "build stats entry" (fun () ->
          let t1 = r_str "pair t1" in
          let t2 = r_str "pair t2" in
          let schema_paths = r_int "schema paths" in
          let instance_paths = r_int "instance paths" in
          let pairs = r_int "connected pairs" in
          let unions = r_int "unions" in
          let capped_pairs = r_int "capped pairs" in
          (t1, t2, { Compute.schema_paths; instance_paths; pairs; unions; capped_pairs }))
    in
    (* The derived graphs are rebuilt, not stored: the data graph and
       schema graph are cheap relative to the sweep, and rebuilding them
       from the restored catalog + interner is exactly what Engine.build
       does.  Labels were all interned before save, so this adds no ids. *)
    let dg = Biozon.Bschema.data_graph catalog interner in
    let schema = Biozon.Bschema.schema_graph () in
    let ctx =
      {
        Context.catalog;
        interner;
        dg;
        schema;
        registry;
        l;
        caps;
        class_paths = Hashtbl.create 256;
        stores = Hashtbl.create 8;
      }
    in
    List.iter (fun (t1, t2, _) -> Context.register_class_paths ctx ~t1 ~t2) build_stats;
    (* 'P' per-pair stores. *)
    expect 'P' "stores";
    let n_stores = r_count "store count" in
    for _ = 1 to n_stores do
      let t1 = r_str "store t1" in
      let t2 = r_str "store t2" in
      let alltops, lefttops, excptops, topinfo = Store.table_names ~t1 ~t2 in
      List.iter
        (fun name ->
          if not (Catalog.mem catalog name) then
            fail "corrupt snapshot: store %s-%s references missing table %s" t1 t2 name)
        [ alltops; lefttops; excptops; topinfo ];
      let n_pruned = r_count "pruned count" in
      let pruned =
        r_list n_pruned "pruned topology" (fun () ->
            let tid = r_int "pruned TID" in
            match Topology.find registry tid with
            | t -> t
            | exception Not_found ->
                fail "corrupt snapshot: pruned TID %d of store %s-%s not in registry" tid t1 t2)
      in
      let n_freqs = r_count "frequency count" in
      let frequencies = Hashtbl.create (max 16 n_freqs) in
      for _ = 1 to n_freqs do
        let tid = r_int "frequency TID" in
        let freq = r_int "frequency" in
        Hashtbl.replace frequencies tid freq
      done;
      let n_rows = r_int "store row count" in
      if n_rows < 0 || n_rows > limit then
        fail "corrupt snapshot: implausible store row count %d for %s-%s" n_rows t1 t2;
      let rows =
        r_list n_rows "store row" (fun () ->
            let a = r_int "row a" in
            let b = r_int "row b" in
            let n_tids = r_count "row TID count" in
            let tids = r_list n_tids "row TID" (fun () -> r_int "TID") in
            let n_keys = r_count "row class-key count" in
            let class_keys =
              r_list n_keys "row class key" (fun () -> pool_str (r_u32 "class-key pool index"))
            in
            { Compute.a; b; tids; class_keys })
      in
      let store =
        { Store.t1; t2; alltops; lefttops; excptops; topinfo; pruned; frequencies; rows }
      in
      Hashtbl.replace ctx.Context.stores (t1, t2) store
    done;
    (* 'C' class pairs (flag bit 0): register schema paths for pairs whose
       sweeps contributed decompositions to this slice's shared registry. *)
    if flags land 1 <> 0 then begin
      expect 'C' "class pairs";
      let n = r_count "class pair count" in
      for _ = 1 to n do
        let t1 = r_str "class pair t1" in
        let t2 = r_str "class pair t2" in
        Context.register_class_paths ctx ~t1 ~t2
      done
    end;
    expect 'E' "end";
    if !pos <> limit then
      fail "corrupt snapshot: %d trailing byte(s) after the end marker" (limit - !pos);
    { Engine.ctx; build_stats; jobs }
  in
  let engine =
    try decode () with
    | Error _ as e -> raise e
    | e ->
        fail "corrupt snapshot %s: decode failed at offset %d: %s" path !pos
          (Printexc.to_string e)
  in
  let actual = Engine.fingerprint engine in
  if actual <> fingerprint then
    fail
      "snapshot fingerprint mismatch in %s: file records %s but the reconstructed engine digests \
       to %s (corrupt or stale snapshot)"
      path fingerprint actual;
  engine

(* ------------------------------------------------------------------ *)
(* Sharded snapshots

   A query always names an entity-set pair, so the pair is the natural
   partition key: hash each pair's canonical orientation-normalized key
   to a shard and give every shard a slice holding only that shard's
   derived tables and stores.  Each slice keeps the full intern pool,
   the full topology registry (global TIDs stay stable, so fingerprints
   compose) and every base table (endpoint predicate evaluation and the
   rebuilt data graph need them; at paper scale the derived AllTops
   tables dominate the footprint anyway).  The slices are ordinary
   snapshots — [load] works unchanged — plus a JSON [manifest] the
   router uses to map pairs to shards and verify who it is talking to. *)

let partition_derivation = "first 4 bytes of MD5(sorted \"t1:t2\") mod shards"

let pair_partition_key ~t1 ~t2 = if t1 <= t2 then t1 ^ ":" ^ t2 else t2 ^ ":" ^ t1

let shard_of_pair ~shards ~t1 ~t2 =
  if shards <= 0 then fail "shard_of_pair: shard count must be positive, got %d" shards;
  let d = Digest.string (pair_partition_key ~t1 ~t2) in
  let h =
    (Char.code d.[0] lsl 24)
    lor (Char.code d.[1] lsl 16)
    lor (Char.code d.[2] lsl 8)
    lor Char.code d.[3]
  in
  h mod shards

let shard_path ~dir k = Filename.concat dir (Printf.sprintf "shard-%d.snap" k)

let manifest_path dir = Filename.concat dir "manifest"

type manifest = {
  shards : int;
  derivation : string;
  pairs : (string * string * int) list;  (* t1, t2, shard — build orientation *)
  fingerprints : string array;  (* per-shard engine fingerprint *)
}

let manifest_shard m ~t1 ~t2 =
  let s = shard_of_pair ~shards:m.shards ~t1 ~t2 in
  if
    List.exists
      (fun (a, b, _) -> pair_partition_key ~t1:a ~t2:b = pair_partition_key ~t1 ~t2)
      m.pairs
  then Some s
  else None

(* A shard's engine: the shared base plus only its own pairs.  The
   filtered catalog preserves registration order (table identity is
   shared with the parent — slicing copies nothing but the lists), and
   statistics already computed on the parent are carried over so the
   slice does not recompute them at save time. *)
let slice_engine (engine : Engine.t) ~shards ~shard =
  let ctx = engine.Engine.ctx in
  let keep_pair t1 t2 = shard_of_pair ~shards ~t1 ~t2 = shard in
  let build_stats =
    List.filter (fun (t1, t2, _) -> keep_pair t1 t2) engine.Engine.build_stats
  in
  let dropped = Hashtbl.create 16 in
  List.iter
    (fun (t1, t2, _) ->
      if not (keep_pair t1 t2) then begin
        let alltops, lefttops, excptops, topinfo = Store.table_names ~t1 ~t2 in
        List.iter (fun n -> Hashtbl.replace dropped n ()) [ alltops; lefttops; excptops; topinfo ]
      end)
    engine.Engine.build_stats;
  let catalog = Catalog.create () in
  let kept_stats = ref [] in
  List.iter
    (fun tb ->
      let name = Table.name tb in
      if not (Hashtbl.mem dropped name) then begin
        Catalog.add catalog tb;
        kept_stats := (name, Catalog.stats ctx.Context.catalog name) :: !kept_stats
      end)
    (Catalog.tables ctx.Context.catalog);
  Catalog.restore_stats catalog (List.rev !kept_stats);
  let stores = Hashtbl.create (max 8 (List.length build_stats)) in
  List.iter
    (fun (t1, t2, _) ->
      match Hashtbl.find_opt ctx.Context.stores (t1, t2) with
      | Some s -> Hashtbl.replace stores (t1, t2) s
      | None -> fail "save_sharded: no store for built pair %s-%s" t1 t2)
    build_stats;
  let ctx = { ctx with Context.catalog; stores } in
  { engine with Engine.ctx = ctx; build_stats }

let render_manifest m =
  let module J = Topo_obs.Json in
  J.to_string ~pretty:true
    (J.Obj
       [
         ("version", J.int version);
         ("shards", J.int m.shards);
         ("partition", J.Str m.derivation);
         ( "pairs",
           J.Arr
             (List.map
                (fun (t1, t2, s) ->
                  J.Obj [ ("t1", J.Str t1); ("t2", J.Str t2); ("shard", J.int s) ])
                m.pairs) );
         ("fingerprints", J.Arr (Array.to_list (Array.map (fun f -> J.Str f) m.fingerprints)));
       ])

let save_sharded (engine : Engine.t) ~dir ~shards =
  if shards <= 0 then fail "save_sharded: shard count must be positive, got %d" shards;
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then fail "save_sharded: %s exists and is not a directory" dir;
  let pairs =
    List.map
      (fun (t1, t2, _) -> (t1, t2, shard_of_pair ~shards ~t1 ~t2))
      engine.Engine.build_stats
  in
  let fingerprints = Array.make shards "" in
  let total = ref 0 in
  for k = 0 to shards - 1 do
    let slice = slice_engine engine ~shards ~shard:k in
    fingerprints.(k) <- Engine.fingerprint slice;
    (* Every slice carries the parent's full pair list: the shared
       registry's decompositions can reference any built pair's classes. *)
    let class_pairs = List.map (fun (t1, t2, _) -> (t1, t2)) engine.Engine.build_stats in
    total := !total + save ~class_pairs slice ~path:(shard_path ~dir k)
  done;
  let m = { shards; derivation = partition_derivation; pairs; fingerprints } in
  let text = render_manifest m in
  (match open_out_bin (manifest_path dir) with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc text;
          output_char oc '\n')
  | exception Sys_error msg -> fail "save_sharded: cannot write manifest: %s" msg);
  (m, !total + String.length text + 1)

let load_manifest dir =
  let path = manifest_path dir in
  let text =
    match open_in_bin path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
    | exception Sys_error msg -> fail "cannot open manifest: %s" msg
  in
  let module J = Topo_obs.Json in
  let v = match J.parse text with Ok v -> v | Error msg -> fail "corrupt manifest %s: %s" path msg in
  let field name =
    match J.member name v with
    | Some f -> f
    | None -> fail "corrupt manifest %s: missing field %S" path name
  in
  let as_int what = function
    | J.Num f when Float.is_integer f -> int_of_float f
    | _ -> fail "corrupt manifest %s: %s is not an integer" path what
  in
  let as_str what = function
    | J.Str s -> s
    | _ -> fail "corrupt manifest %s: %s is not a string" path what
  in
  let mversion = as_int "version" (field "version") in
  if mversion <> version then
    fail "unsupported manifest version %d in %s (this build reads version %d)" mversion path version;
  let shards = as_int "shards" (field "shards") in
  if shards <= 0 then fail "corrupt manifest %s: shard count %d" path shards;
  let derivation = as_str "partition" (field "partition") in
  if derivation <> partition_derivation then
    fail "manifest %s uses partition %S; this build derives shards by %S" path derivation
      partition_derivation;
  let pairs =
    match field "pairs" with
    | J.Arr items ->
        List.map
          (fun item ->
            let pf name =
              match J.member name item with
              | Some f -> f
              | None -> fail "corrupt manifest %s: pair entry missing %S" path name
            in
            let t1 = as_str "pair t1" (pf "t1") in
            let t2 = as_str "pair t2" (pf "t2") in
            let s = as_int "pair shard" (pf "shard") in
            if s < 0 || s >= shards then
              fail "corrupt manifest %s: pair %s-%s maps to shard %d of %d" path t1 t2 s shards;
            if shard_of_pair ~shards ~t1 ~t2 <> s then
              fail "corrupt manifest %s: pair %s-%s recorded on shard %d but derives to %d" path t1
                t2 s
                (shard_of_pair ~shards ~t1 ~t2);
            (t1, t2, s))
          items
    | _ -> fail "corrupt manifest %s: pairs is not an array" path
  in
  let fingerprints =
    match field "fingerprints" with
    | J.Arr items when List.length items = shards ->
        Array.of_list (List.map (fun f -> as_str "fingerprint" f) items)
    | J.Arr items ->
        fail "corrupt manifest %s: %d fingerprint(s) for %d shard(s)" path (List.length items)
          shards
    | _ -> fail "corrupt manifest %s: fingerprints is not an array" path
  in
  { shards; derivation; pairs; fingerprints }
