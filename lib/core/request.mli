(** The shared request/outcome vocabulary of the query API.

    A {!t} is one unit of online work — (method, query, scheme, k) plus
    an optional {!Budget.deadline} — and an {!outcome} is everything
    observable about evaluating it.  {!Engine.run_request} is the
    canonical evaluator; {!Serve}, [toposearch] and the benchmarks all
    speak these types ({!Serve} re-exports them under its historical
    names).

    How a request can end ({!outcome_result}):
    - [Done r] — evaluated to completion.
    - [Partial r] — the deadline budget tripped inside a top-k method's
      early-termination loop; [r.ranked] is the deterministic prefix
      produced before the trip.
    - [Rejected Overloaded] — the open-loop admission queue was at its
      depth limit; the request was turned away without evaluation.
    - [Rejected Expired] — the deadline had already passed at admission;
      short-circuited before evaluation, cache, or counter activity.
    - [Failed e] — evaluation raised [e].

    Only [Done] results are memoized. *)

type t = {
  method_ : Methods.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
  deadline : Budget.deadline option;  (** bound on evaluation; [None] = run to completion *)
}

(** [make ?scheme ?k ?deadline method_ query] with [scheme] defaulting to
    [Freq], [k] to 10 and [deadline] to none. *)
val make :
  ?scheme:Ranking.scheme -> ?k:int -> ?deadline:Budget.deadline -> Methods.method_ -> Query.t -> t

type result = {
  ranked : (int * float option) list;  (** TIDs with scores for top-k methods *)
  elapsed_s : float;
  method_ : Methods.method_;
  strategy : Topo_sql.Optimizer.strategy option;  (** what an -Opt method chose *)
}

type rejection =
  | Overloaded  (** the bounded admission queue was full *)
  | Expired  (** the deadline had already passed at admission *)

val rejection_name : rejection -> string

type outcome_result =
  | Done of result
  | Partial of result
  | Rejected of rejection
  | Failed of exn

(** ["done"], ["partial"], ["rejected-overloaded"], ["rejected-expired"],
    ["failed"]. *)
val outcome_result_name : outcome_result -> string

(** The ranked answer, full or partial — [None] for rejections and
    failures. *)
val answered : outcome_result -> result option

(** The raised exception of a [Failed] outcome. *)
val failure : outcome_result -> exn option

type cache_status =
  | Hit  (** answered from the result cache, stored counters replayed *)
  | Miss  (** evaluated; a [Done] outcome was inserted into the cache *)
  | Uncached  (** no cache consulted (none attached, verification on, or rejected) *)

val cache_status_name : cache_status -> string

type outcome = {
  request : t;
  result : outcome_result;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** operator work performed by this query alone; on a cache hit, the
          stored snapshot of the original evaluation, replayed so cold and
          warm passes fingerprint identically; all-zero for rejections *)
  served_by : int;  (** id of the domain that evaluated (or rejected) the query *)
  trace : Topo_obs.Trace.t option;  (** the query's private span tree, when requested *)
  cache : cache_status;
}

(** [key r] is the canonical result-cache key.  Orientation is normalized
    (the two endpoint renderings are sorted when the entity sets differ —
    evaluation aligns to the stored pair, so both phrasings answer
    identically), and scheme/k are omitted for the three non-top-k methods
    that ignore them.  The deadline is deliberately excluded: it bounds
    evaluation time, not the full answer, so a cached [Done] result is
    valid under any deadline. *)
val key : t -> string

(** [to_string r] for display. *)
val to_string : t -> string

(** {1 Wire codec}

    Requests and outcomes cross process boundaries (router ↔ shard
    server) as {!Wire} frames.  The payload codecs live here, beside
    {!key}, so the canonical key, the cache key and the wire form are
    documented and maintained at one site.  Note the asymmetry with
    {!key}: the deadline is {e excluded} from the key (it bounds
    evaluation time, not the answer) but {e included} on the wire (the
    evaluating shard must enforce it).

    Outcomes round-trip bit-exactly under {!Serve.fingerprint} with two
    documented exceptions: the trace is not wire-encoded (a decoded
    outcome has [trace = None]; fingerprints ignore traces), and a
    [Failed e] arm carries [Printexc.to_string e] and decodes to
    {!Remote_failure} — whose registered printer returns the message
    verbatim, so the rendered failure is unchanged. *)

(** What a [Failed] outcome becomes after crossing the wire: the remote
    exception's rendered message.  A registered [Printexc] printer
    prints the carried message verbatim. *)
exception Remote_failure of string

(** [to_wire r] is a complete request frame ({!Wire.kind_request}). *)
val to_wire : t -> string

(** [of_wire data] decodes a frame produced by {!to_wire}.
    @raise Wire.Error on any framing or codec violation. *)
val of_wire : string -> t

(** [outcome_to_wire o] is a complete outcome frame
    ({!Wire.kind_outcome}). *)
val outcome_to_wire : outcome -> string

(** [outcome_of_wire data] decodes a frame produced by
    {!outcome_to_wire}.  @raise Wire.Error on violation. *)
val outcome_of_wire : string -> outcome

(** Payload-level codecs, for embedding many requests/outcomes in one
    batch frame ({!Wire.kind_batch_request} / {!Wire.kind_batch_outcome})
    without per-message frame overhead. *)

val write_payload : Buffer.t -> t -> unit

val read_payload : Wire.reader -> t

val write_outcome_payload : Buffer.t -> outcome -> unit

val read_outcome_payload : Wire.reader -> outcome
