(** The shared request/outcome vocabulary of the query API.

    A {!t} is one unit of online work — (method, query, scheme, k) — and
    an {!outcome} is everything observable about evaluating it.
    {!Engine.run_request} is the canonical evaluator; {!Serve},
    [toposearch] and the benchmarks all speak these types ({!Serve}
    re-exports them under its historical names). *)

type t = {
  method_ : Methods.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
}

(** [make ?scheme ?k method_ query] with [scheme] defaulting to [Freq] and
    [k] to 10. *)
val make : ?scheme:Ranking.scheme -> ?k:int -> Methods.method_ -> Query.t -> t

type result = {
  ranked : (int * float option) list;  (** TIDs with scores for top-k methods *)
  elapsed_s : float;
  method_ : Methods.method_;
  strategy : Topo_sql.Optimizer.strategy option;  (** what an -Opt method chose *)
}

type cache_status =
  | Hit  (** answered from the result cache, stored counters replayed *)
  | Miss  (** evaluated; the outcome was inserted into the cache *)
  | Uncached  (** evaluated with no cache attached (or verification on) *)

val cache_status_name : cache_status -> string

type outcome = {
  request : t;
  result : (result, exn) Stdlib.result;
  counters : Topo_sql.Iterator.Counters.snapshot;
      (** operator work performed by this query alone; on a cache hit, the
          stored snapshot of the original evaluation, replayed so cold and
          warm passes fingerprint identically *)
  served_by : int;  (** id of the domain that evaluated the query *)
  trace : Topo_obs.Trace.t option;  (** the query's private span tree, when requested *)
  cache : cache_status;
}

(** [key r] is the canonical result-cache key.  Orientation is normalized
    (the two endpoint renderings are sorted when the entity sets differ —
    evaluation aligns to the stored pair, so both phrasings answer
    identically), and scheme/k are omitted for the three non-top-k methods
    that ignore them. *)
val key : t -> string

(** [to_string r] for display. *)
val to_string : t -> string
