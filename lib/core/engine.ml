module Pool = Topo_util.Pool

type t = { ctx : Context.t; build_stats : (string * string * Compute.stats) list; jobs : int }

type method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

let all_methods =
  [
    Sql;
    Full_top;
    Fast_top;
    Full_top_k;
    Fast_top_k;
    Full_top_k_et;
    Fast_top_k_et;
    Full_top_k_opt;
    Fast_top_k_opt;
  ]

let method_name = function
  | Sql -> "SQL"
  | Full_top -> "Full-Top"
  | Fast_top -> "Fast-Top"
  | Full_top_k -> "Full-Top-k"
  | Fast_top_k -> "Fast-Top-k"
  | Full_top_k_et -> "Full-Top-k-ET"
  | Fast_top_k_et -> "Fast-Top-k-ET"
  | Full_top_k_opt -> "Full-Top-k-Opt"
  | Fast_top_k_opt -> "Fast-Top-k-Opt"

(* The offline phase, parallelized on a domain pool.  The per-entity-pair
   sweeps are flattened into two shared task arrays — one task per
   (pair, schema path) for instance enumeration, one per (pair, entity
   pair) for the union product — so a build over few entity-set pairs
   still saturates the pool.  All shared-state writes (intern pool, the
   topology registry, the catalog's derived tables) stay on the
   coordinator domain: labels are pre-interned before fan-out, and TIDs
   are assigned only at commit, in entity-pair declaration order then
   (a, b) order.  A [~jobs:n] build is therefore bit-identical to
   [~jobs:1]. *)
let build catalog ~pairs ?(l = 3) ?(caps = Compute.default_caps) ?(pruning_threshold = 50)
    ?(exclude_weak = false) ?(min_reliability = 0.0) ?jobs () =
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph catalog interner in
  let schema = Biozon.Bschema.schema_graph () in
  let registry = Topology.create_registry () in
  let ctx =
    {
      Context.catalog;
      interner;
      dg;
      schema;
      registry;
      l;
      caps;
      class_paths = Hashtbl.create 256;
      stores = Hashtbl.create 8;
    }
  in
  let path_filter p =
    ((not exclude_weak) || not (Weak.is_weak_path p)) && Weak.path_reliability p >= min_reliability
  in
  Pool.with_pool ?jobs (fun pool ->
      let pair_paths =
        List.map
          (fun (t1, t2) ->
            Context.register_class_paths ctx ~t1 ~t2;
            let paths = List.filter path_filter (Compute.schema_paths_between schema ~t1 ~t2 ~l) in
            List.iter (Topo_graph.Data_graph.intern_path_labels dg) paths;
            (t1, t2, paths))
          pairs
      in
      let n_pairs = List.length pair_paths in
      (* Phase A: instance enumeration, one task per (pair, schema path). *)
      let enum_tasks =
        Array.of_list
          (List.concat
             (List.mapi
                (fun i (t1, t2, paths) -> List.map (fun p -> (i, (t1 : string) = t2, p)) paths)
                pair_paths))
      in
      let shards =
        Pool.parallel_map pool enum_tasks ~f:(fun (_, same_type, p) ->
            Compute.enumerate_path dg caps ~same_type p)
      in
      let shards_by_pair = Array.make n_pairs [] in
      Array.iteri
        (fun idx (i, _, _) -> shards_by_pair.(i) <- shards.(idx) :: shards_by_pair.(i))
        enum_tasks;
      let shards_by_pair = Array.map List.rev shards_by_pair in
      (* Phase B: the union/canonicalize product, one task per entity pair,
         claimed in chunks (pairs are numerous and individually small). *)
      let pendings = Array.map Compute.merge_shards shards_by_pair in
      let union_tasks = Array.concat (Array.to_list pendings) in
      let chunk = max 1 (Array.length union_tasks / (Pool.jobs pool * 8)) in
      let protos = Pool.parallel_map ~chunk pool union_tasks ~f:(Compute.unions_of_pair dg caps) in
      let protos_by_pair =
        let out = Array.map (fun pds -> Array.make (Array.length pds) None) pendings in
        let cursor = ref 0 in
        Array.iteri
          (fun i pds ->
            Array.iteri
              (fun j _ ->
                out.(i).(j) <- Some protos.(!cursor);
                incr cursor)
              pds)
          pendings;
        Array.map (Array.map (function Some pr -> pr | None -> assert false)) out
      in
      (* Phase C: commit + store build, coordinator only, declared order. *)
      let build_stats =
        List.mapi
          (fun i (t1, t2, paths) ->
            let rows = Compute.commit registry protos_by_pair.(i) in
            let store = Store.build catalog interner registry ~rows ~t1 ~t2 ~pruning_threshold in
            Hashtbl.replace ctx.Context.stores (t1, t2) store;
            ( t1,
              t2,
              Compute.sweep_stats ~schema_paths:(List.length paths) ~shards:shards_by_pair.(i)
                ~protos:protos_by_pair.(i) ~rows ))
          pair_paths
      in
      { ctx; build_stats; jobs = Pool.jobs pool })

type result = {
  ranked : (int * float option) list;
  elapsed_s : float;
  method_ : method_;
  strategy : Topo_sql.Optimizer.strategy option;
}

let run t query ~method_ ?(scheme = Ranking.Freq) ?(k = 10) ?impls ?(verify_plans = false) ?trace
    () =
  let aligned = Methods.align t.ctx query in
  let check = verify_plans in
  let with_scores l = List.map (fun (tid, s) -> (tid, Some s)) l in
  let plain l = List.map (fun tid -> (tid, None)) l in
  let evaluate ?trace () =
    match method_ with
    | Sql -> (plain (Methods.sql_method ?trace t.ctx aligned), None)
    | Full_top -> (plain (Methods.full_top ~check ?trace t.ctx aligned), None)
    | Fast_top -> (plain (Methods.fast_top ~check ?trace t.ctx aligned), None)
    | Full_top_k -> (with_scores (Methods.full_top_k ~check ?trace t.ctx aligned ~scheme ~k), None)
    | Fast_top_k -> (with_scores (Methods.fast_top_k ~check ?trace t.ctx aligned ~scheme ~k), None)
    | Full_top_k_et ->
        (with_scores (Methods.full_top_k_et ~check ?trace t.ctx aligned ~scheme ~k ?impls ()), None)
    | Fast_top_k_et ->
        (with_scores (Methods.fast_top_k_et ~check ?trace t.ctx aligned ~scheme ~k ?impls ()), None)
    | Full_top_k_opt ->
        let results, strategy = Methods.full_top_k_opt ~check ?trace t.ctx aligned ~scheme ~k in
        (with_scores results, Some strategy)
    | Fast_top_k_opt ->
        let results, strategy = Methods.fast_top_k_opt ~check ?trace t.ctx aligned ~scheme ~k in
        (with_scores results, Some strategy)
  in
  let start = Unix.gettimeofday () in
  let ranked, strategy =
    match trace with
    | None -> evaluate ()
    | Some tr ->
        Topo_obs.Trace.with_span tr (method_name method_)
          ~tags:[ ("scheme", Ranking.name scheme); ("k", string_of_int k) ]
          (fun () -> evaluate ?trace ())
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  { ranked; elapsed_s; method_; strategy }

let topology t tid = Topology.find t.ctx.Context.registry tid

let describe t tid = Topology.describe t.ctx.Context.interner (topology t tid)

let store t ~t1 ~t2 = fst (Context.store_for t.ctx ~t1 ~t2)
