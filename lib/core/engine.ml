type t = { ctx : Context.t; build_stats : (string * string * Compute.stats) list }

type method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

let all_methods =
  [
    Sql;
    Full_top;
    Fast_top;
    Full_top_k;
    Fast_top_k;
    Full_top_k_et;
    Fast_top_k_et;
    Full_top_k_opt;
    Fast_top_k_opt;
  ]

let method_name = function
  | Sql -> "SQL"
  | Full_top -> "Full-Top"
  | Fast_top -> "Fast-Top"
  | Full_top_k -> "Full-Top-k"
  | Fast_top_k -> "Fast-Top-k"
  | Full_top_k_et -> "Full-Top-k-ET"
  | Fast_top_k_et -> "Fast-Top-k-ET"
  | Full_top_k_opt -> "Full-Top-k-Opt"
  | Fast_top_k_opt -> "Fast-Top-k-Opt"

let build catalog ~pairs ?(l = 3) ?(caps = Compute.default_caps) ?(pruning_threshold = 50)
    ?(exclude_weak = false) ?(min_reliability = 0.0) () =
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph catalog interner in
  let schema = Biozon.Bschema.schema_graph () in
  let registry = Topology.create_registry () in
  let ctx =
    {
      Context.catalog;
      interner;
      dg;
      schema;
      registry;
      l;
      caps;
      class_paths = Hashtbl.create 256;
      stores = Hashtbl.create 8;
    }
  in
  let build_stats =
    List.map
      (fun (t1, t2) ->
        Context.register_class_paths ctx ~t1 ~t2;
        let path_filter p =
          ((not exclude_weak) || not (Weak.is_weak_path p))
          && Weak.path_reliability p >= min_reliability
        in
        let rows, stats = Compute.alltops dg schema registry ~t1 ~t2 ~l ~caps ~path_filter () in
        let store = Store.build catalog interner registry ~rows ~t1 ~t2 ~pruning_threshold in
        Hashtbl.replace ctx.Context.stores (t1, t2) store;
        (t1, t2, stats))
      pairs
  in
  { ctx; build_stats }

type result = {
  ranked : (int * float option) list;
  elapsed_s : float;
  method_ : method_;
  strategy : Topo_sql.Optimizer.strategy option;
}

let run t query ~method_ ?(scheme = Ranking.Freq) ?(k = 10) ?impls ?(verify_plans = false) ?trace
    () =
  let aligned = Methods.align t.ctx query in
  let check = verify_plans in
  let with_scores l = List.map (fun (tid, s) -> (tid, Some s)) l in
  let plain l = List.map (fun tid -> (tid, None)) l in
  let evaluate ?trace () =
    match method_ with
    | Sql -> (plain (Methods.sql_method ?trace t.ctx aligned), None)
    | Full_top -> (plain (Methods.full_top ~check ?trace t.ctx aligned), None)
    | Fast_top -> (plain (Methods.fast_top ~check ?trace t.ctx aligned), None)
    | Full_top_k -> (with_scores (Methods.full_top_k ~check ?trace t.ctx aligned ~scheme ~k), None)
    | Fast_top_k -> (with_scores (Methods.fast_top_k ~check ?trace t.ctx aligned ~scheme ~k), None)
    | Full_top_k_et ->
        (with_scores (Methods.full_top_k_et ~check ?trace t.ctx aligned ~scheme ~k ?impls ()), None)
    | Fast_top_k_et ->
        (with_scores (Methods.fast_top_k_et ~check ?trace t.ctx aligned ~scheme ~k ?impls ()), None)
    | Full_top_k_opt ->
        let results, strategy = Methods.full_top_k_opt ~check ?trace t.ctx aligned ~scheme ~k in
        (with_scores results, Some strategy)
    | Fast_top_k_opt ->
        let results, strategy = Methods.fast_top_k_opt ~check ?trace t.ctx aligned ~scheme ~k in
        (with_scores results, Some strategy)
  in
  let start = Unix.gettimeofday () in
  let ranked, strategy =
    match trace with
    | None -> evaluate ()
    | Some tr ->
        Topo_obs.Trace.with_span tr (method_name method_)
          ~tags:[ ("scheme", Ranking.name scheme); ("k", string_of_int k) ]
          (fun () -> evaluate ?trace ())
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  { ranked; elapsed_s; method_; strategy }

let topology t tid = Topology.find t.ctx.Context.registry tid

let describe t tid = Topology.describe t.ctx.Context.interner (topology t tid)

let store t ~t1 ~t2 = fst (Context.store_for t.ctx ~t1 ~t2)
