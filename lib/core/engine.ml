module Pool = Topo_util.Pool
module Counters = Topo_sql.Iterator.Counters

type t = { ctx : Context.t; build_stats : (string * string * Compute.stats) list; jobs : int }

(* The enum lives in [Methods]; re-export it (constructors included) so
   existing callers keep writing [Engine.Fast_top_k_opt]. *)
type method_ = Methods.method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

let all_methods = Methods.all_methods

let method_name = Methods.method_name

(* The offline phase, parallelized on a domain pool.  The per-entity-pair
   sweeps are flattened into two shared task arrays — one task per
   (pair, schema path) for instance enumeration, one per (pair, entity
   pair) for the union product — so a build over few entity-set pairs
   still saturates the pool.  All shared-state writes (intern pool, the
   topology registry, the catalog's derived tables) stay on the
   coordinator domain: labels are pre-interned before fan-out, and TIDs
   are assigned only at commit, in entity-pair declaration order then
   (a, b) order.  A [~jobs:n] build is therefore bit-identical to
   [~jobs:1]. *)
let build catalog ~pairs ?(l = 3) ?(caps = Compute.default_caps) ?(pruning_threshold = 50)
    ?(exclude_weak = false) ?(min_reliability = 0.0) ?jobs () =
  let interner = Topo_util.Interner.create () in
  let dg = Biozon.Bschema.data_graph catalog interner in
  let schema = Biozon.Bschema.schema_graph () in
  let registry = Topology.create_registry () in
  let ctx =
    {
      Context.catalog;
      interner;
      dg;
      schema;
      registry;
      l;
      caps;
      class_paths = Hashtbl.create 256;
      stores = Hashtbl.create 8;
    }
  in
  let path_filter p =
    ((not exclude_weak) || not (Weak.is_weak_path p)) && Weak.path_reliability p >= min_reliability
  in
  Pool.with_pool ?jobs (fun pool ->
      let pair_paths =
        List.map
          (fun (t1, t2) ->
            Context.register_class_paths ctx ~t1 ~t2;
            let paths = List.filter path_filter (Compute.schema_paths_between schema ~t1 ~t2 ~l) in
            List.iter (Topo_graph.Data_graph.intern_path_labels dg) paths;
            (t1, t2, paths))
          pairs
      in
      let n_pairs = List.length pair_paths in
      (* Phase A: instance enumeration, one task per (pair, schema path). *)
      let enum_tasks =
        Array.of_list
          (List.concat
             (List.mapi
                (fun i (t1, t2, paths) -> List.map (fun p -> (i, (t1 : string) = t2, p)) paths)
                pair_paths))
      in
      let shards =
        Pool.parallel_map pool enum_tasks ~f:(fun (_, same_type, p) ->
            Compute.enumerate_path dg caps ~same_type p)
      in
      let shards_by_pair = Array.make n_pairs [] in
      Array.iteri
        (fun idx (i, _, _) -> shards_by_pair.(i) <- shards.(idx) :: shards_by_pair.(i))
        enum_tasks;
      let shards_by_pair = Array.map List.rev shards_by_pair in
      (* Phase B: the union/canonicalize product, one task per entity pair,
         claimed in chunks (pairs are numerous and individually small). *)
      let pendings = Array.map Compute.merge_shards shards_by_pair in
      let union_tasks = Array.concat (Array.to_list pendings) in
      let chunk = max 1 (Array.length union_tasks / (Pool.jobs pool * 8)) in
      let protos = Pool.parallel_map ~chunk pool union_tasks ~f:(Compute.unions_of_pair dg caps) in
      let protos_by_pair =
        let out = Array.map (fun pds -> Array.make (Array.length pds) None) pendings in
        let cursor = ref 0 in
        Array.iteri
          (fun i pds ->
            Array.iteri
              (fun j _ ->
                out.(i).(j) <- Some protos.(!cursor);
                incr cursor)
              pds)
          pendings;
        Array.map
          (Array.map (function
            | Some pr -> pr
            | None -> failwith "Engine.build: proto cursor misaligned with pending pairs"))
          out
      in
      (* Phase C: commit + store build, coordinator only, declared order. *)
      let build_stats =
        List.mapi
          (fun i (t1, t2, paths) ->
            let rows = Compute.commit registry protos_by_pair.(i) in
            let store = Store.build catalog interner registry ~rows ~t1 ~t2 ~pruning_threshold in
            Hashtbl.replace ctx.Context.stores (t1, t2) store;
            ( t1,
              t2,
              Compute.sweep_stats ~schema_paths:(List.length paths) ~shards:shards_by_pair.(i)
                ~protos:protos_by_pair.(i) ~rows ))
          pair_paths
      in
      { ctx; build_stats; jobs = Pool.jobs pool })

type result = Request.result = {
  ranked : (int * float option) list;
  elapsed_s : float;
  method_ : method_;
  strategy : Topo_sql.Optimizer.strategy option;
}

let cache ?results ?plans t = Cache.create ?results ?plans t.ctx.Context.registry

(* The raw evaluation: dispatch the method, time it, trace it.  Counters
   accumulate in whatever scope is installed on the calling domain;
   exceptions propagate.  Both [run] and [run_request] bottom out here. *)
let eval t (req : Request.t) ?impls ?(verify_plans = false) ?cache ?trace ?budget () =
  let aligned = Methods.align t.ctx req.Request.query in
  let evaluate ?trace () =
    Methods.dispatch req.Request.method_ ~check:verify_plans ?trace ?impls ?cache ?budget t.ctx
      aligned ~scheme:req.Request.scheme ~k:req.Request.k
  in
  let start = Unix.gettimeofday () in
  let ranked, strategy =
    match trace with
    | None -> evaluate ()
    | Some tr ->
        Topo_obs.Trace.with_span tr (method_name req.Request.method_)
          ~tags:
            [ ("scheme", Ranking.name req.Request.scheme); ("k", string_of_int req.Request.k) ]
          (fun () -> evaluate ?trace ())
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  { ranked; elapsed_s; method_ = req.Request.method_; strategy }

(* [run] predates [run_request] and stays as the sequential convenience
   wrapper: counters land in the ambient scope (a cache hit replays the
   stored work there, so counter-based tests see identical numbers with
   and without a cache) and exceptions propagate to the caller. *)
let run t query ~method_ ?scheme ?k ?impls ?(verify_plans = false) ?cache ?trace () =
  let req = Request.make ?scheme ?k method_ query in
  match cache with
  | Some c when not verify_plans -> (
      let key = Request.key req in
      match Cache.find_result c ~key with
      | Some p ->
          Counters.add_tuples p.Cache.counters.Counters.tuples;
          Counters.add_probes p.Cache.counters.Counters.index_probes;
          Counters.add_scanned p.Cache.counters.Counters.rows_scanned;
          (match trace with
          | Some tr -> Topo_obs.Trace.with_span tr "cache_hit" ~tags:[ ("key", key) ] (fun () -> ())
          | None -> ());
          {
            ranked = p.Cache.ranked;
            elapsed_s = 0.0;
            method_ = req.Request.method_;
            strategy = p.Cache.strategy;
          }
      | None ->
          let stamp = Cache.stamp c in
          (* [with_reset]: captures this query's own work for the cache
             while still crediting it to the surrounding scope. *)
          let r, counters =
            Counters.with_reset (fun () -> eval t req ?impls ~verify_plans ~cache:c ?trace ())
          in
          Cache.add_result c ~key ~stamp
            { Cache.ranked = r.ranked; strategy = r.strategy; counters };
          r)
  | Some _ | None -> eval t req ?impls ~verify_plans ?cache ?trace ()

(* All-zero counter snapshot for outcomes that never evaluated. *)
let no_work = { Counters.tuples = 0; index_probes = 0; rows_scanned = 0 }

let run_request t ?cache ?(verify_plans = false) ?(traces = false) (req : Request.t) =
  let trace = if traces then Some (Topo_obs.Trace.create ()) else None in
  (* Verification mode re-checks every plan the evaluation builds.  A
     result-tier hit would skip evaluation — and with it every check —
     so that tier is bypassed; the plan tier stays live because checked
     lookups re-verify memoized plans before serving them
     (Cache.find_plan ?check via Methods.regular_plan_cached). *)
  let result_cache = if verify_plans then None else cache in
  let outcome result counters status =
    {
      Request.request = req;
      result;
      counters;
      served_by = (Domain.self () :> int);
      trace;
      cache = status;
    }
  in
  match req.Request.deadline with
  | Some d when Budget.expired_now ~now:(Unix.gettimeofday ()) d ->
      (* Expired before any work started: short-circuit ahead of the
         cache lookup and the counter scope, so a rejected request is
         observably free — no cache traffic, no counter activity. *)
      outcome (Request.Rejected Request.Expired) no_work Request.Uncached
  | deadline -> (
      let budget = Option.map Budget.start deadline in
      let lift = function
        | Ok r ->
            if (match budget with Some b -> Budget.tripped b | None -> false) then
              Request.Partial r
            else Request.Done r
        | Error e -> Request.Failed e
      in
      let evaluate ?cache () =
        Counters.with_scope (fun () ->
            try Ok (eval t req ~verify_plans ?cache ?trace ?budget ()) with e -> Error e)
      in
      match result_cache with
      | None ->
          let result, counters = evaluate ?cache () in
          outcome (lift result) counters Request.Uncached
      | Some c -> (
          let key = Request.key req in
          match Cache.find_result c ~key with
          | Some p ->
              (match trace with
              | Some tr ->
                  Topo_obs.Trace.with_span tr "cache_hit" ~tags:[ ("key", key) ] (fun () -> ())
              | None -> ());
              outcome
                (Request.Done
                   {
                     Request.ranked = p.Cache.ranked;
                     elapsed_s = 0.0;
                     method_ = req.Request.method_;
                     strategy = p.Cache.strategy;
                   })
                p.Cache.counters Request.Hit
          | None ->
              let stamp = Cache.stamp c in
              let result, counters = evaluate ~cache:c () in
              let result = lift result in
              (match result with
              | Request.Done r ->
                  Cache.add_result c ~key ~stamp
                    { Cache.ranked = r.Request.ranked; strategy = r.Request.strategy; counters }
              | Request.Partial _ | Request.Rejected _ | Request.Failed _ ->
                  (* Only complete answers are memoized: a partial is a
                     deadline-shaped prefix, and failures re-raise
                     deterministically. *)
                  ());
              outcome result counters Request.Miss))

(* The full observable output of the offline phase, as one digest: every
   registered topology's (TID, canonical key, decompositions) plus every
   derived table's rows in insertion order.  Tables are visited sorted by
   name so the digest does not depend on catalog registration order;
   within a table, row order is meaningful (and jobs-invariant: the build
   commits rows in declared pair order then (a, b) order). *)
let derived_prefixes = [ "AllTops_"; "LeftTops_"; "ExcpTops_"; "TopInfo_" ]

let is_derived_table name =
  List.exists
    (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    derived_prefixes

let fingerprint t =
  let buf = Buffer.create (1 lsl 16) in
  List.iter
    (fun (tp : Topology.t) ->
      Buffer.add_string buf (Printf.sprintf "T%d %s" tp.Topology.tid tp.Topology.key);
      List.iter
        (fun d -> Buffer.add_string buf ("|" ^ String.concat "," d))
        (Atomic.get tp.Topology.decompositions);
      Buffer.add_char buf '\n')
    (Topology.all t.ctx.Context.registry);
  let tables =
    Topo_sql.Catalog.tables t.ctx.Context.catalog
    |> List.filter (fun tb -> is_derived_table (Topo_sql.Table.name tb))
    |> List.sort (fun a b -> compare (Topo_sql.Table.name a) (Topo_sql.Table.name b))
  in
  List.iter
    (fun tb ->
      Buffer.add_string buf (Topo_sql.Table.name tb);
      Buffer.add_char buf '\n';
      (* Renders straight off columnar backings (byte-identical to
         [Tuple.to_string]) so fingerprinting a freshly loaded engine
         does not box every derived row. *)
      Topo_sql.Table.iter_row_strings
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n')
        tb)
    tables;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let topology t tid = Topology.find t.ctx.Context.registry tid

let describe t tid = Topology.describe t.ctx.Context.interner (topology t tid)

let store t ~t1 ~t2 = fst (Context.store_for t.ctx ~t1 ~t2)
