open Topo_sql
module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph
module Canon = Topo_graph.Canon

let pairs_of_topology (ctx : Context.t) (store : Store.t) ~tid =
  let table = Catalog.find ctx.Context.catalog store.Store.alltops in
  let idx = Table.ensure_index table ~kind:Index.Hash ~cols:[ "TID" ] in
  List.map
    (fun rowno ->
      let tuple = Table.get table rowno in
      (Value.as_int tuple.(0), Value.as_int tuple.(1)))
    (Index.probe idx [| Value.Int tid |])
  |> List.sort compare

let qualifying_pairs ctx store ~e1 ~e2 ~tid =
  List.filter
    (fun (a, b) -> Context.satisfies ctx e1 a && Context.satisfies ctx e2 b)
    (pairs_of_topology ctx store ~tid)

(* Collect up to [cap] representatives of a class anchored at (a, b),
   handling the same-endpoint-type reversal as in Compute. *)
let class_reps (ctx : Context.t) key ~a ~b =
  let cap = ctx.Context.caps.Compute.max_reps_per_class in
  let p = Context.class_path ctx key in
  let reps = ref [] in
  let count = ref 0 in
  let collect path =
    if !count < cap then
      Dg.iter_instance_paths_between ctx.Context.dg path ~a ~b ~f:(fun ids ->
          if !count < cap then begin
            reps := (path, ids) :: !reps;
            incr count
          end)
  in
  collect p;
  let rev = Sg.reverse p in
  if p.Sg.types.(0) = p.Sg.types.(Array.length p.Sg.types - 1) && rev <> p then collect rev;
  List.rev !reps

let witness_combo_for (ctx : Context.t) (target : Topology.t) decomposition ~a ~b =
  let per_class = List.map (fun key -> (key, class_reps ctx key ~a ~b)) decomposition in
  if List.exists (fun (_, reps) -> reps = []) per_class then None
  else begin
    (* Search the (capped) cartesian product for a combination whose union
       canonicalizes to the target. *)
    let classes = Array.of_list per_class in
    let n = Array.length classes in
    let reps = Array.map (fun (_, r) -> Array.of_list r) classes in
    let counts = Array.map Array.length reps in
    let indices = Array.make n 0 in
    let budget = ref ctx.Context.caps.Compute.max_combos_per_pair in
    let result = ref None in
    let continue = ref true in
    while !continue && !result = None && !budget > 0 do
      decr budget;
      let chosen = List.init n (fun c -> reps.(c).(indices.(c))) in
      let g = Compute.union_of_representatives ctx.Context.dg chosen in
      if Canon.key g = target.Topology.key then
        result := Some (List.map2 (fun (key, _) rep -> (key, rep)) (Array.to_list classes) chosen)
      else begin
        let rec bump c =
          if c < 0 then continue := false
          else begin
            indices.(c) <- indices.(c) + 1;
            if indices.(c) >= counts.(c) then begin
              indices.(c) <- 0;
              bump (c - 1)
            end
          end
        in
        bump (n - 1)
      end
    done;
    !result
  end

let witness_combo (ctx : Context.t) ~tid ~a ~b =
  let target = Topology.find ctx.Context.registry tid in
  List.find_map
    (fun d -> witness_combo_for ctx target d ~a ~b)
    (Atomic.get target.Topology.decompositions)

let witness_paths ctx ~tid ~a ~b =
  Option.map (List.map (fun (key, (_, ids)) -> (key, ids))) (witness_combo ctx ~tid ~a ~b)

let witness ctx ~tid ~a ~b =
  match witness_combo ctx ~tid ~a ~b with
  | None -> None
  | Some combo ->
      Some (Compute.union_of_representatives ctx.Context.dg (List.map snd combo))
