(** The Topology Query Engine facade (Figure 10).

    [build] runs the offline phase over a Biozon-schema catalog: it
    materializes the instance graph, runs Topology Computation for each
    requested entity-set pair, prunes with the given threshold, and
    registers the derived tables.  [run] evaluates a query online with any
    of the nine methods. *)

type t = {
  ctx : Context.t;
  build_stats : (string * string * Compute.stats) list;
  jobs : int;  (** parallelism degree the offline build actually used *)
}

(** The nine-method enum, owned by {!Methods} and re-exported here with
    its constructors, so [Engine.Fast_top_k_opt] and
    [Methods.Fast_top_k_opt] are the same value. *)
type method_ = Methods.method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

(** Every method, in the order of Table 2's rows. *)
val all_methods : method_ list

(** [method_name m] is the paper's name, e.g. ["Fast-Top-k-ET"]. *)
val method_name : method_ -> string

(** [build catalog ~pairs ?l ?caps ?pruning_threshold ?exclude_weak ()]
    runs the offline phase.  [pairs] lists the entity-set pairs to
    precompute (e.g. [("Protein", "DNA")]).  [l] defaults to 3 (the paper's
    main setting), [pruning_threshold] to 50 (scaled from the paper's 2M
    for the synthetic instance size).  [exclude_weak] (default false)
    drops weak schema paths from the sweep — the Section 6.2.3 remedy —
    and [min_reliability] is the graded alternative (keep only schema
    paths with {!Weak.path_reliability} at or above the threshold).

    [jobs] sets the parallelism of the offline sweep (default
    {!Topo_util.Pool.default_jobs}: [Domain.recommended_domain_count]
    capped at 8).  The build fans instance enumeration and the union
    product out across a domain pool but keeps every shared-state write on
    the calling domain; the produced derived tables, registry and TIDs are
    bit-identical for every [jobs] value. *)
val build :
  Topo_sql.Catalog.t ->
  pairs:(string * string) list ->
  ?l:int ->
  ?caps:Compute.caps ->
  ?pruning_threshold:int ->
  ?exclude_weak:bool ->
  ?min_reliability:float ->
  ?jobs:int ->
  unit ->
  t

(** The historical result record, now an alias of {!Request.result}. *)
type result = Request.result = {
  ranked : (int * float option) list;  (** TIDs with scores for top-k methods *)
  elapsed_s : float;
  method_ : method_;
  strategy : Topo_sql.Optimizer.strategy option;  (** what an -Opt method chose *)
}

(** [cache ?results ?plans t] is a fresh {!Cache.t} tied to this engine's
    topology registry (capacities as in {!Cache.create}).  Share one cache
    per engine; it is safe for concurrent domains. *)
val cache : ?results:int -> ?plans:int -> t -> Cache.t

(** [run_request t ?cache ?verify_plans ?traces request] is the canonical
    single-query entry point: it evaluates [request] under a fresh private
    counter scope and returns the full {!Request.outcome} — the four-way
    {!Request.outcome_result}, isolated counters, serving domain,
    optional private trace, and cache status.

    Deadlines: a request whose {!Budget.deadline} has already passed
    short-circuits to [Rejected Expired] {e before} the cache lookup and
    the counter scope — a rejection is observably free.  Otherwise the
    deadline becomes a {!Budget.t} threaded into the top-k methods'
    early-termination loops; if it trips mid-evaluation the outcome is
    [Partial] with the deterministic ranked prefix.

    With [?cache], the result tier is consulted first: a hit returns the
    memoized ranked list, strategy, and the {e stored} counter snapshot
    (replayed so cold and warm passes fingerprint identically, with a
    ["cache_hit"] span when tracing) — valid under any deadline, since a
    hit costs no evaluation; a miss evaluates with the plan tier
    threaded through the optimizer and memoizes the outcome, stamped with
    the topology-registry generation observed before evaluation.  Only
    [Done] outcomes are memoized — failures re-raise deterministically
    and partials are deadline-shaped prefixes, not answers.
    [verify_plans] bypasses caching entirely (a hit would skip the
    verification the caller asked for).  [traces] (default false)
    attaches a private {!Topo_obs.Trace.t}. *)
val run_request :
  t -> ?cache:Cache.t -> ?verify_plans:bool -> ?traces:bool -> Request.t -> Request.outcome

(** [run t query ~method_ ?scheme ?k ?impls ?verify_plans ()] evaluates.
    A thin wrapper over the {!Request} machinery kept for sequential
    callers: unlike {!run_request} it lets exceptions propagate and
    accumulates counters in the {e ambient}
    {!Topo_sql.Iterator.Counters} scope (on a cache hit the stored
    counters are replayed into that scope, so counter-observing callers
    see identical numbers with and without a cache).  Not for concurrent
    use — domains sharing the global counter scope would interleave;
    concurrent callers go through {!Serve.exec} / {!run_request}.

    [scheme] defaults to [Freq], [k] to 10; both are ignored by non-top-k
    methods.  [impls] pins DGJ implementations for the -ET methods.
    [verify_plans] (default false) checks every physical plan the method
    builds with {!Topo_sql.Plan_check} before executing it — raising
    {!Topo_sql.Plan_check.Plan_error} on a malformed plan — and runs -ET
    iterator trees under the {!Topo_sql.Iterator_check} protocol
    checker.  [cache], when given (and verification is off), memoizes
    results and optimizer pricing exactly as in {!run_request}.  [trace],
    when given, records a span tree of the evaluation phases (root span
    named after the method, tagged with scheme and k) into the supplied
    {!Topo_obs.Trace}. *)
val run :
  t ->
  Query.t ->
  method_:method_ ->
  ?scheme:Ranking.scheme ->
  ?k:int ->
  ?impls:[ `I | `H ] list ->
  ?verify_plans:bool ->
  ?cache:Cache.t ->
  ?trace:Topo_obs.Trace.t ->
  unit ->
  result

(** [fingerprint t] digests the full observable output of the offline
    phase: every registered topology's (TID, canonical key,
    decompositions) plus every derived
    [AllTops_*/LeftTops_*/ExcpTops_*/TopInfo_*] table's rows in insertion
    order, as one hex digest.  Builds with different [jobs] values
    fingerprint identically; {!Snapshot.save} records it and
    {!Snapshot.load} refuses a snapshot whose reconstructed engine does
    not reproduce it. *)
val fingerprint : t -> string

(** [topology t tid].  @raise Not_found for unknown TIDs. *)
val topology : t -> int -> Topology.t

(** [describe t tid] pretty-prints a topology. *)
val describe : t -> int -> string

(** [store t ~t1 ~t2] exposes a pair's store (either orientation).
    @raise Not_found when the pair was not built. *)
val store : t -> t1:string -> t2:string -> Store.t
