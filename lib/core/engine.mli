(** The Topology Query Engine facade (Figure 10).

    [build] runs the offline phase over a Biozon-schema catalog: it
    materializes the instance graph, runs Topology Computation for each
    requested entity-set pair, prunes with the given threshold, and
    registers the derived tables.  [run] evaluates a query online with any
    of the nine methods. *)

type t = {
  ctx : Context.t;
  build_stats : (string * string * Compute.stats) list;
  jobs : int;  (** parallelism degree the offline build actually used *)
}

type method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

(** Every method, in the order of Table 2's rows. *)
val all_methods : method_ list

(** [method_name m] is the paper's name, e.g. ["Fast-Top-k-ET"]. *)
val method_name : method_ -> string

(** [build catalog ~pairs ?l ?caps ?pruning_threshold ?exclude_weak ()]
    runs the offline phase.  [pairs] lists the entity-set pairs to
    precompute (e.g. [("Protein", "DNA")]).  [l] defaults to 3 (the paper's
    main setting), [pruning_threshold] to 50 (scaled from the paper's 2M
    for the synthetic instance size).  [exclude_weak] (default false)
    drops weak schema paths from the sweep — the Section 6.2.3 remedy —
    and [min_reliability] is the graded alternative (keep only schema
    paths with {!Weak.path_reliability} at or above the threshold).

    [jobs] sets the parallelism of the offline sweep (default
    {!Topo_util.Pool.default_jobs}: [Domain.recommended_domain_count]
    capped at 8).  The build fans instance enumeration and the union
    product out across a domain pool but keeps every shared-state write on
    the calling domain; the produced derived tables, registry and TIDs are
    bit-identical for every [jobs] value. *)
val build :
  Topo_sql.Catalog.t ->
  pairs:(string * string) list ->
  ?l:int ->
  ?caps:Compute.caps ->
  ?pruning_threshold:int ->
  ?exclude_weak:bool ->
  ?min_reliability:float ->
  ?jobs:int ->
  unit ->
  t

type result = {
  ranked : (int * float option) list;  (** TIDs with scores for top-k methods *)
  elapsed_s : float;
  method_ : method_;
  strategy : Topo_sql.Optimizer.strategy option;  (** what an -Opt method chose *)
}

(** [run t query ~method_ ?scheme ?k ?impls ?verify_plans ()] evaluates.
    [scheme] defaults to [Freq], [k] to 10; both are ignored by non-top-k
    methods.  [impls] pins DGJ implementations for the -ET methods.
    [verify_plans] (default false) checks every physical plan the method
    builds with {!Topo_sql.Plan_check} before executing it — raising
    {!Topo_sql.Plan_check.Plan_error} on a malformed plan — and runs -ET
    iterator trees under the {!Topo_sql.Iterator_check} protocol
    checker.  [trace], when given, records a span tree of the evaluation
    phases (root span named after the method, tagged with scheme and k)
    into the supplied {!Topo_obs.Trace}. *)
val run :
  t ->
  Query.t ->
  method_:method_ ->
  ?scheme:Ranking.scheme ->
  ?k:int ->
  ?impls:[ `I | `H ] list ->
  ?verify_plans:bool ->
  ?trace:Topo_obs.Trace.t ->
  unit ->
  result

(** [topology t tid].  @raise Not_found for unknown TIDs. *)
val topology : t -> int -> Topology.t

(** [describe t tid] pretty-prints a topology. *)
val describe : t -> int -> string

(** [store t ~t1 ~t2] exposes a pair's store (either orientation).
    @raise Not_found when the pair was not built. *)
val store : t -> t1:string -> t2:string -> Store.t
