(** The nine query-evaluation methods of the experimental study
    (Section 6.1): SQL, Full-Top, Fast-Top, Full-Top-k, Fast-Top-k,
    Full-Top-k-ET, Fast-Top-k-ET, Full-Top-k-Opt and Fast-Top-k-Opt.

    All methods answer the same question — the (top-k) l-topology result of
    a 2-query — against the same context; they differ in which derived
    tables they touch and how much work they can skip:

    - Full-* methods read the complete AllTops table (Section 3.2).
    - Fast-* methods read the pruned LeftTops table and re-derive pruned
      topologies from base data with ExcpTops anti-checks (Section 4.3).
    - *-k methods stop at the k best topologies under a ranking scheme
      (Section 5.1).
    - *-ET methods evaluate through DGJ-operator plans with early
      termination (Section 5.3).
    - *-Opt methods pick between the -k and -ET plans with the Section 5.4
      cost model. *)

type aligned = {
  store : Store.t;
  ea : Query.endpoint;  (** the endpoint on the store's E1 side *)
  eb : Query.endpoint;  (** the E2 side *)
}

(** [align ctx query] resolves the query's entity pair to its store,
    swapping endpoints if the query was phrased in the opposite
    orientation.  @raise Not_found when the pair was not precomputed. *)
val align : Context.t -> Query.t -> aligned

(** {1 Non-top-k methods} — all return ascending TIDs. *)

(** [sql_method ctx aligned] issues one existence probe per observed
    topology (the paper restricts the SQL method to topologies with at
    least one occurrence, "close to 200"); each probe recomputes pair
    topologies from scratch, which is the method's documented
    inefficiency.

    Every method takes an optional [?trace]; when given, the method opens
    {!Topo_obs.Trace} spans around its phases (plan building, optimizer
    choice, execution, pruned-topology checks) so [toposearch profile] can
    show where the time goes. *)
val sql_method : ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** [full_top ctx aligned] evaluates the single AllTops join of
    Section 3.2.  On every plan-building method, [~check:true] (default
    false) verifies each plan with {!Topo_sql.Plan_check} before execution
    and, for the -ET stream, runs the iterator tree under
    {!Topo_sql.Iterator_check}. *)
val full_top : ?check:bool -> ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** [fast_top ctx aligned] evaluates the LeftTops join plus one base-data
    check per pruned topology with the ExcpTops anti-join (SQL1 of
    Section 4.3). *)
val fast_top : ?check:bool -> ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** {1 Top-k methods} — return at most [k] (tid, score) pairs, score
    descending. *)

val full_top_k :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list

val fast_top_k :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list

(** [impls] optionally pins the DGJ implementations (head = fact level) so
    benchmarks can time the paper's "best and worst plans"; default is all
    IDGJ. *)
val full_top_k_et :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> ?impls:[ `I | `H ] list -> unit -> (int * float) list

val fast_top_k_et :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> ?impls:[ `I | `H ] list -> unit -> (int * float) list

(** The cost-based choices; also return which strategy the optimizer
    picked. *)
val full_top_k_opt :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list * Topo_sql.Optimizer.strategy

val fast_top_k_opt :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list * Topo_sql.Optimizer.strategy

(** [pruned_check ctx aligned topology] decides whether some qualifying
    pair satisfies the pruned topology's path condition and survives the
    ExcpTops anti-check — the bottom sub-query of SQL1/SQL5.  Exposed for
    tests. *)
val pruned_check : Context.t -> aligned -> Topology.t -> bool
