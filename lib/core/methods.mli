(** The nine query-evaluation methods of the experimental study
    (Section 6.1): SQL, Full-Top, Fast-Top, Full-Top-k, Fast-Top-k,
    Full-Top-k-ET, Fast-Top-k-ET, Full-Top-k-Opt and Fast-Top-k-Opt.

    All methods answer the same question — the (top-k) l-topology result of
    a 2-query — against the same context; they differ in which derived
    tables they touch and how much work they can skip:

    - Full-* methods read the complete AllTops table (Section 3.2).
    - Fast-* methods read the pruned LeftTops table and re-derive pruned
      topologies from base data with ExcpTops anti-checks (Section 4.3).
    - *-k methods stop at the k best topologies under a ranking scheme
      (Section 5.1).
    - *-ET methods evaluate through DGJ-operator plans with early
      termination (Section 5.3).
    - *-Opt methods pick between the -k and -ET plans with the Section 5.4
      cost model. *)

(** The method enum, in the order of Table 2's rows.  This module owns the
    type; {!Engine} re-exports it (constructors included) so callers keep
    writing [Engine.Fast_top_k_opt]. *)
type method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

(** Every method, in the order of Table 2's rows. *)
val all_methods : method_ list

(** [method_name m] is the paper's name, e.g. ["Fast-Top-k-ET"]. *)
val method_name : method_ -> string

(** [ranks m] is false for the three methods (SQL, Full-Top, Fast-Top)
    that ignore the ranking scheme and k entirely; the cache key
    normalizes on this. *)
val ranks : method_ -> bool

type aligned = {
  store : Store.t;
  ea : Query.endpoint;  (** the endpoint on the store's E1 side *)
  eb : Query.endpoint;  (** the E2 side *)
}

(** [align ctx query] resolves the query's entity pair to its store,
    swapping endpoints if the query was phrased in the opposite
    orientation.  @raise Not_found when the pair was not precomputed. *)
val align : Context.t -> Query.t -> aligned

(** {1 Non-top-k methods} — all return ascending TIDs. *)

(** [sql_method ctx aligned] issues one existence probe per observed
    topology (the paper restricts the SQL method to topologies with at
    least one occurrence, "close to 200"); each probe recomputes pair
    topologies from scratch, which is the method's documented
    inefficiency.

    All nine methods share the [?check ?trace] labelled-argument prefix.
    [?check] (default false) verifies physical plans before execution —
    accepted-but-inert here, as the SQL method builds none.  [?trace],
    when given, opens {!Topo_obs.Trace} spans around each method's phases
    (plan building, optimizer choice, execution, pruned-topology checks)
    so [toposearch profile] can show where the time goes. *)
val sql_method : ?check:bool -> ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** [full_top ctx aligned] evaluates the single AllTops join of
    Section 3.2.  On every plan-building method, [~check:true] (default
    false) verifies each plan with {!Topo_sql.Plan_check} before execution
    and, for the -ET stream, runs the iterator tree under
    {!Topo_sql.Iterator_check}. *)
val full_top : ?check:bool -> ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** [fast_top ctx aligned] evaluates the LeftTops join plus one base-data
    check per pruned topology with the ExcpTops anti-join (SQL1 of
    Section 4.3). *)
val fast_top : ?check:bool -> ?trace:Topo_obs.Trace.t -> Context.t -> aligned -> int list

(** {1 Top-k methods} — return at most [k] (tid, score) pairs, score
    descending. *)

(** The plan-pricing methods additionally take [?cache]: when given (and
    [check] is off), the optimizer's pricing output — the regular-plan
    dynamic program here, the regular-vs-ET choice for the -Opt methods —
    is memoized in the cache's plan tier, keyed by the canonical aligned
    spec and stamped with the topology-registry generation. *)
val full_top_k :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?cache:Cache.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list

val fast_top_k :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?cache:Cache.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list

(** [impls] optionally pins the DGJ implementations (head = fact level) so
    benchmarks can time the paper's "best and worst plans"; default is all
    IDGJ.  [budget], when given, is ticked once per witness pull (or
    merge step for the Fast variant): a trip stops the loop and the
    results so far are the deterministic prefix of the full answer's
    stream order — the [Partial] outcome's payload. *)
val full_top_k_et :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?budget:Budget.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> ?impls:[ `I | `H ] list -> unit -> (int * float) list

val fast_top_k_et :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?budget:Budget.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> ?impls:[ `I | `H ] list -> unit -> (int * float) list

(** The cost-based choices; also return which strategy the optimizer
    picked.  [budget] reaches only the early-termination branch — a
    regular plan runs to completion. *)
val full_top_k_opt :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?cache:Cache.t ->
  ?budget:Budget.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list * Topo_sql.Optimizer.strategy

val fast_top_k_opt :
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?cache:Cache.t ->
  ?budget:Budget.t ->
  Context.t -> aligned -> scheme:Ranking.scheme -> k:int -> (int * float) list * Topo_sql.Optimizer.strategy

(** [dispatch method_ ?check ?trace ?impls ?cache ctx aligned ~scheme ~k]
    is the single entry point over the method enum: it lifts every result
    to the uniform [(tid, score option)] shape (scores present exactly for
    top-k methods) and reports the -Opt methods' strategy choice.
    [?impls] reaches only the -ET methods, [?cache] (the plan tier) only
    the plan-pricing methods, and [?budget] (the deadline) only the
    early-termination loops — every other method runs to completion, so
    complete answers are bit-identical with and without a deadline.
    {!Engine}, the serving tier and the benchmarks route through this
    instead of hand-written nine-way matches. *)
val dispatch :
  method_ ->
  ?check:bool ->
  ?trace:Topo_obs.Trace.t ->
  ?impls:[ `I | `H ] list ->
  ?cache:Cache.t ->
  ?budget:Budget.t ->
  Context.t ->
  aligned ->
  scheme:Ranking.scheme ->
  k:int ->
  (int * float option) list * Topo_sql.Optimizer.strategy option

(** [pruned_check ctx aligned topology] decides whether some qualifying
    pair satisfies the pruned topology's path condition and survives the
    ExcpTops anti-check — the bottom sub-query of SQL1/SQL5.  Exposed for
    tests. *)
val pruned_check : Context.t -> aligned -> Topology.t -> bool
