(* One shard of the distributed serving tier: a socket server over one
   snapshot slice.

   The accept loop runs on its own domain; each accepted connection gets
   a domain of its own that speaks the wire protocol sequentially —
   recv a frame, evaluate, send the reply.  Parallelism comes from two
   places: many connections evaluate concurrently, and each batch fans
   out over the server's shared [Pool] through [Serve.exec] exactly as a
   single-process server would.  The evaluation path is therefore
   byte-identical to local serving — which is what lets the router
   assert sharded ≡ single-process fingerprints.

   Admission control: [max_inflight] bounds the requests being evaluated
   across all connections, reserved batch-at-a-time with an [Atomic]
   compare-and-set (no lock on the admission path).  A batch that does
   not fit is answered immediately — every request [Rejected Overloaded]
   — rather than queued, mirroring [Serve]'s open-loop shed-don't-buffer
   policy across the process boundary.  Per-request deadlines travel
   inside the requests themselves and are enforced by [Engine.run_request]
   / [Budget] on this side, where the evaluation actually happens.

   Shutdown: [stop] shuts down the listening socket and every live
   connection before closing them — on Linux a plain [close] does NOT
   wake another domain blocked in [accept]/[read] on that fd, only
   [shutdown] does — then joins all the domains.  All logging goes to stderr —
   this module is on the serving hot path, where stdout is reserved for
   query results. *)

module Pool = Topo_util.Pool

type t = {
  addr : Wire.addr;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards conns *)
  mutable conns : (Unix.file_descr * unit Domain.t) list;
  mutable accept_domain : unit Domain.t option;
  pool : Pool.t option;  (* owned: created at start, shut down at stop *)
  owns_pool : bool;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let log fmt = Printf.ksprintf (fun msg -> prerr_endline ("[shard] " ^ msg)) fmt

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Wake any domain blocked in accept/read on [fd], then close it.  The
   shutdown is the load-bearing half: closing an fd out from under a
   blocked syscall leaves that syscall blocked forever on Linux, which
   would turn stop()'s Domain.join into a hang. *)
let shutdown_and_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_quietly fd

let zero_counters = { Topo_sql.Iterator.Counters.tuples = 0; index_probes = 0; rows_scanned = 0 }

let overloaded_outcome req =
  {
    Request.request = req;
    result = Request.Rejected Request.Overloaded;
    counters = zero_counters;
    served_by = (Domain.self () :> int);
    trace = None;
    cache = Request.Uncached;
  }

(* Batch-at-a-time capacity reservation: admit the whole batch or none
   of it, so a half-admitted batch can never deadlock a client waiting
   for outcomes that were silently dropped. *)
let rec reserve inflight ~limit n =
  let cur = Atomic.get inflight in
  if cur + n > limit then false
  else if Atomic.compare_and_set inflight cur (cur + n) then true
  else reserve inflight ~limit n

let read_batch payload =
  let r = Wire.reader ~what:"batch request payload" payload in
  let n = Wire.r_count r "batch size" in
  let reqs = Wire.r_list r n "batch request" (fun () -> Request.read_payload r) in
  Wire.r_end r;
  reqs

let write_batch outcomes =
  let buf = Buffer.create 4096 in
  Wire.w_u32 buf (List.length outcomes);
  List.iter (fun o -> Request.write_outcome_payload buf o) outcomes;
  Buffer.contents buf

let hello_payload ~shard ~fingerprint =
  let buf = Buffer.create 64 in
  Wire.w_u32 buf shard;
  Wire.w_str buf fingerprint;
  Buffer.contents buf

(* Evaluate one admitted batch through the shared serving tier.  The
   config is forced closed-loop onto the server's pool: open-loop pacing
   belongs to the client side of the socket, and the pool is what makes
   concurrent connections share the machine instead of oversubscribing
   it. *)
let evaluate ~serve ~pool ~inflight engine reqs =
  let n = List.length reqs in
  Fun.protect
    ~finally:(fun () -> ignore (Atomic.fetch_and_add inflight (-n)))
    (fun () ->
      let cfg = { serve with Serve.mode = Serve.Closed; pool } in
      (Serve.exec cfg engine reqs).Serve.outcomes)

let serve_conn ~serve ~pool ~inflight ~max_inflight ~shard ~fingerprint engine fd =
  Wire.send fd ~kind:Wire.kind_hello (hello_payload ~shard ~fingerprint);
  let respond ~kind outcomes = Wire.send fd ~kind (write_batch outcomes) in
  let rec loop () =
    match Wire.recv fd with
    | None -> ()
    | Some (kind, payload) when kind = Wire.kind_batch_request ->
        let reqs = read_batch payload in
        let outcomes =
          if reserve inflight ~limit:max_inflight (List.length reqs) then
            evaluate ~serve ~pool ~inflight engine reqs
          else List.map overloaded_outcome reqs
        in
        respond ~kind:Wire.kind_batch_outcome outcomes;
        loop ()
    | Some (kind, payload) when kind = Wire.kind_request ->
        let r = Wire.reader ~what:"request payload" payload in
        let req = Request.read_payload r in
        Wire.r_end r;
        let outcomes =
          if reserve inflight ~limit:max_inflight 1 then
            evaluate ~serve ~pool ~inflight engine [ req ]
          else [ overloaded_outcome req ]
        in
        (match outcomes with
        | [ o ] ->
            let buf = Buffer.create 512 in
            Request.write_outcome_payload buf o;
            Wire.send fd ~kind:Wire.kind_outcome (Buffer.contents buf)
        | _ -> Wire.fail "single request evaluated to %d outcome(s)" (List.length outcomes));
        loop ()
    | Some (kind, _) ->
        Wire.fail "unexpected %s frame on a shard connection (client speaks batches)"
          (Wire.kind_name kind)
  in
  loop ()

let start ?(serve = Serve.default) ?(max_inflight = 256) ?read_timeout_s ?(write_timeout_s = 30.0)
    ~shard addr engine =
  if max_inflight <= 0 then Wire.fail "shard: max_inflight must be positive, got %d" max_inflight;
  let fingerprint = Engine.fingerprint engine in
  let pool, owns_pool =
    match serve.Serve.pool with
    | Some p -> (Some p, false)
    | None -> (Some (Pool.create ?jobs:serve.Serve.jobs ()), true)
  in
  let listen_fd = Wire.listen addr in
  let t =
    {
      addr;
      listen_fd;
      stopping = Atomic.make false;
      lock = Mutex.create ();
      conns = [];
      accept_domain = None;
      pool;
      owns_pool;
    }
  in
  let inflight = Atomic.make 0 in
  (* A handler deregisters itself before closing its fd, so the registry
     only ever holds live descriptors — no risk of stop() closing a
     recycled fd number that now belongs to someone else. *)
  let deregister fd =
    with_lock t.lock (fun () -> t.conns <- List.filter (fun (fd', _) -> fd' <> fd) t.conns)
  in
  let handle fd =
    Fun.protect
      ~finally:(fun () ->
        (* Normal churn: the handler owns its fd, deregisters, closes.
           During stop the fd stays registered and open — stop() shuts
           it down to wake us, joins, and closes it afterwards, so the
           descriptor has exactly one owner at every moment. *)
        if not (Atomic.get t.stopping) then begin
          deregister fd;
          close_quietly fd
        end)
      (fun () ->
        match
          serve_conn ~serve ~pool ~inflight ~max_inflight ~shard ~fingerprint engine fd
        with
        | () -> ()
        | exception Wire.Error msg ->
            if not (Atomic.get t.stopping) then log "shard %d: connection dropped: %s" shard msg
        | exception Unix.Unix_error (e, _, _) ->
            if not (Atomic.get t.stopping) then
              log "shard %d: connection error: %s" shard (Unix.error_message e))
  in
  let accept_loop () =
    let rec loop () =
      match Unix.accept t.listen_fd with
      | fd, _ ->
          Wire.set_timeouts ?read_s:read_timeout_s ~write_s:write_timeout_s fd;
          with_lock t.lock (fun () ->
              let d = Domain.spawn (fun () -> handle fd) in
              t.conns <- (fd, d) :: t.conns);
          loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          (* stop() closed the listening socket. *)
          ()
      | exception Unix.Unix_error (e, _, _) ->
          if not (Atomic.get t.stopping) then
            log "shard %d: accept failed: %s" shard (Unix.error_message e)
    in
    loop ()
  in
  t.accept_domain <- Some (Domain.spawn accept_loop);
  log "shard %d serving %s on %s (max_inflight %d)" shard
    (String.sub fingerprint 0 (min 12 (String.length fingerprint)))
    (Wire.addr_to_string addr) max_inflight;
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    shutdown_and_close t.listen_fd;
    (match t.accept_domain with Some d -> Domain.join d | None -> ());
    let conns = with_lock t.lock (fun () -> t.conns) in
    List.iter
      (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, d) -> Domain.join d) conns;
    (* Handlers that raced past the stopping flag deregistered and closed
       their own fd; everything still registered is ours to close. *)
    let rest =
      with_lock t.lock (fun () ->
          let c = t.conns in
          t.conns <- [];
          c)
    in
    List.iter (fun (fd, _) -> close_quietly fd) rest;
    if t.owns_pool then Option.iter Pool.shutdown t.pool;
    match t.addr with
    | Wire.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ()
  end

let wait t = match t.accept_domain with Some d -> Domain.join d | None -> ()
