(** Topologies and the topology registry.

    A topology (Definition 2) is an isomorphism class of labeled graphs; we
    represent the class by its canonical key and intern keys into dense
    {e TIDs}.  Each registered topology keeps one representative graph, its
    size, and its {e decomposition}: the set of path-equivalence-class keys
    (Definition 1) whose union first produced it.  The decomposition is what
    Fast-Top's pruned-topology checks evaluate at query time ("the simple
    path (or graph) condition" of Section 4.2.2). *)

type t = {
  tid : int;
  key : string;  (** canonical key of the class *)
  graph : Topo_graph.Lgraph.t;  (** one representative, node ids arbitrary *)
  n_nodes : int;
  n_edges : int;
  decomposition : string list;  (** sorted path-class keys of the first derivation *)
  decompositions : string list list Atomic.t;
      (** every distinct derivation observed (first one included): the same
          canonical graph can arise from pairs whose path-class sets differ
          (symmetric shapes place the query endpoints differently), and the
          pruned-topology condition must accept any of them.  Atomic because
          online re-registration (the SQL method) may extend the list while
          serving domains read it; [Atomic.get] always yields a
          fully-published list *)
}

type registry
(** Safe for concurrent readers: the state is an immutable snapshot behind
    an [Atomic.t], swapped under the registration lock — [find], [count],
    [all], [find_by_key] and the lock-free fast path of [register] never
    observe partially-built entries. *)

(** [create_registry ()] is empty; TIDs are assigned densely from 1. *)
val create_registry : unit -> registry

(** [generation registry] counts completed mutations — new topologies and
    new decompositions — and is bumped strictly {e after} the mutated state
    is published.  The serving tier's caches stamp entries with the
    generation observed before evaluating and treat any entry whose stamp
    differs from the current generation as a miss: a reader that observes
    generation [g] is guaranteed to see at least the state of mutation [g],
    so a matching stamp proves the cached value was computed against the
    current topology set.  Lock-free registrations that add nothing (the
    steady-state online path) do not bump it. *)
val generation : registry -> int

(** [register registry graph ~decomposition] interns the graph's class and
    returns its topology, allocating a fresh TID on first sight; later
    registrations with a new decomposition extend [decompositions]. *)
val register : registry -> Topo_graph.Lgraph.t -> decomposition:string list -> t

(** [absorb ~into src] merges a shard-local registry into [into]: every
    topology of [src] is re-registered in src-TID order, carrying all of its
    recorded decompositions, so the merge is deterministic (given the same
    [into] and [src] states) and idempotent.  Returns the src-TID ->
    merged-TID remap.
    @raise Not_found when the returned function is applied to a TID that was
    not in [src]. *)
val absorb : into:registry -> registry -> int -> int

(** [find registry tid].  @raise Not_found for unknown TIDs. *)
val find : registry -> int -> t

(** [find_by_key registry key]. *)
val find_by_key : registry -> string -> t option

(** [count registry] is the number of distinct registered topologies. *)
val count : registry -> int

(** [all registry] in TID order. *)
val all : registry -> t list

(** [is_single_path t] is true when the representative is a simple path
    (every node degree <= 2, exactly two degree-1 nodes, no cycle) — the
    shape of most frequent topologies (Figure 12). *)
val is_single_path : t -> bool

(** [describe interner t] renders the representative with type names
    resolved through the intern pool, e.g.
    ["Protein -uni_encodes- Unigene -uni_contains- DNA"] for paths and an
    edge list for complex shapes. *)
val describe : Topo_util.Interner.t -> t -> string
