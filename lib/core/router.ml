(* The scatter-gather router: the client side of sharded serving.

   A router owns one persistent connection per shard, dialed lazily and
   verified against the snapshot manifest: the shard's hello frame must
   carry the expected shard index and the per-shard engine fingerprint
   recorded at [build --shards] time, so a misconfigured deployment
   (sockets in the wrong order, stale slice) is refused before any
   query is misrouted.

   [exec] partitions the batch with the same pair-hash the snapshot
   writer used ([Snapshot.shard_of_pair]), scatters one batch frame per
   involved shard, then gathers replies and merges outcomes back into
   input order.  Scatter-then-gather means shards evaluate their
   sub-batches concurrently even though the router itself is a single
   domain.

   Degradation: if a shard cannot be reached — or dies mid-batch — its
   connection is redialed and the sub-batch retried once; if that also
   fails, that shard's requests yield [Failed (Request.Remote_failure
   ...)] outcomes while every other request in the batch completes
   normally.  Blocking reads are bounded by the socket timeout, so a
   hung shard degrades like a dead one instead of wedging the router. *)

type t = {
  manifest : Snapshot.manifest;
  addrs : Wire.addr array;
  timeout_s : float;
  retries : int;
  backoff_s : float;
  conns : Unix.file_descr option array;  (* lazily dialed, single-domain *)
}

let fail = Wire.fail

let create ~manifest ~addrs ?(timeout_s = 60.0) ?(retries = 3) ?(backoff_s = 0.05) () =
  let n = Array.length addrs in
  if n <> manifest.Snapshot.shards then
    fail "router: manifest names %d shard(s) but %d address(es) were given"
      manifest.Snapshot.shards n;
  { manifest; addrs; timeout_s; retries; backoff_s; conns = Array.make n None }

let close_conn t k =
  match t.conns.(k) with
  | None -> ()
  | Some fd ->
      t.conns.(k) <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t = Array.iteri (fun k _ -> close_conn t k) t.conns

(* Dial shard [k], read and verify its hello.  Connection refused is
   retried with exponential backoff — shards and router are typically
   started together, and the shard may still be binding. *)
let dial t k =
  let addr = t.addrs.(k) in
  (* Wire.connect folds every Unix failure into Wire.Error; any of them
     at dial time (refused, missing socket file, reset) means "shard not
     up yet" and is worth the bounded backoff. *)
  let rec attempt n backoff =
    match Wire.connect ~read_s:t.timeout_s ~write_s:t.timeout_s addr with
    | fd -> fd
    | exception Wire.Error _ when n < t.retries ->
        Unix.sleepf backoff;
        attempt (n + 1) (backoff *. 2.0)
  in
  let fd = attempt 0 t.backoff_s in
  match Wire.recv fd with
  | None ->
      Unix.close fd;
      fail "shard %d at %s closed the connection before its hello" k (Wire.addr_to_string addr)
  | Some (kind, payload) ->
      if kind <> Wire.kind_hello then begin
        Unix.close fd;
        fail "shard %d at %s sent a %s frame where a hello was expected" k
          (Wire.addr_to_string addr) (Wire.kind_name kind)
      end;
      let r = Wire.reader ~what:"hello payload" payload in
      let index = Wire.r_u32 r "shard index" in
      let fp = Wire.r_str r "engine fingerprint" in
      Wire.r_end r;
      if index <> k then begin
        Unix.close fd;
        fail "shard address %d (%s) answered as shard %d — sockets passed in the wrong order?"
          k (Wire.addr_to_string addr) index
      end;
      let expected = t.manifest.Snapshot.fingerprints.(k) in
      if fp <> expected then begin
        Unix.close fd;
        fail "shard %d at %s serves fingerprint %s but the manifest records %s — stale slice?"
          k (Wire.addr_to_string addr) fp expected
      end;
      fd

let conn t k =
  match t.conns.(k) with
  | Some fd -> fd
  | None ->
      let fd = dial t k in
      t.conns.(k) <- Some fd;
      fd

let encode_batch reqs =
  let buf = Buffer.create 4096 in
  Wire.w_u32 buf (List.length reqs);
  List.iter (fun req -> Request.write_payload buf req) reqs;
  Buffer.contents buf

let decode_batch ~expect payload =
  let r = Wire.reader ~what:"batch outcome payload" payload in
  let n = Wire.r_count r "batch size" in
  if n <> expect then
    fail "batch outcome carries %d outcome(s) for a %d-request batch" n expect;
  let outcomes = Wire.r_list r n "batch outcome" (fun () -> Request.read_outcome_payload r) in
  Wire.r_end r;
  outcomes

let send_batch t k payload =
  Wire.send (conn t k) ~kind:Wire.kind_batch_request payload

let recv_batch t k ~expect =
  match Wire.recv (conn t k) with
  | None -> fail "shard %d closed the connection mid-batch" k
  | Some (kind, payload) when kind = Wire.kind_batch_outcome -> decode_batch ~expect payload
  | Some (kind, _) ->
      fail "shard %d replied with a %s frame where a batch outcome was expected" k
        (Wire.kind_name kind)

let failed_outcome msg req =
  {
    Request.request = req;
    result = Request.Failed (Request.Remote_failure msg);
    counters = { Topo_sql.Iterator.Counters.tuples = 0; index_probes = 0; rows_scanned = 0 };
    served_by = -1;
    trace = None;
    cache = Request.Uncached;
  }

let shard_of t (req : Request.t) =
  Snapshot.shard_of_pair ~shards:t.manifest.Snapshot.shards
    ~t1:req.Request.query.Query.e1.Query.entity ~t2:req.Request.query.Query.e2.Query.entity

let exec t requests =
  let shards = t.manifest.Snapshot.shards in
  (* Partition, keeping each request's slot in the input order. *)
  let groups = Array.make shards [] in
  List.iteri
    (fun i req ->
      let k = shard_of t req in
      groups.(k) <- (i, req) :: groups.(k))
    requests;
  let groups = Array.map List.rev groups in
  let slots = Array.make (List.length requests) None in
  let degrade k msg =
    List.iter
      (fun (i, req) ->
        slots.(i) <- Some (failed_outcome (Printf.sprintf "shard %d unreachable: %s" k msg) req))
      groups.(k)
  in
  (* Scatter: send every involved shard its sub-batch before reading any
     reply, so shards evaluate concurrently.  A shard that cannot even be
     reached degrades immediately. *)
  let sent = Array.make shards false in
  for k = 0 to shards - 1 do
    if groups.(k) <> [] then
      match send_batch t k (encode_batch (List.map snd groups.(k))) with
      | () -> sent.(k) <- true
      | exception (Wire.Error msg) ->
          close_conn t k;
          degrade k msg
      | exception Unix.Unix_error (e, _, _) ->
          close_conn t k;
          degrade k (Unix.error_message e)
  done;
  (* Gather, retrying a failed shard once over a fresh connection — the
     replay is safe because shard evaluation is read-only over the
     slice.  A second failure degrades that shard's requests. *)
  for k = 0 to shards - 1 do
    if sent.(k) then begin
      let expect = List.length groups.(k) in
      let merge outcomes =
        List.iter2 (fun (i, _) o -> slots.(i) <- Some o) groups.(k) outcomes
      in
      match recv_batch t k ~expect with
      | outcomes -> merge outcomes
      | exception (Wire.Error _ | Unix.Unix_error _) -> (
          close_conn t k;
          let retry () =
            send_batch t k (encode_batch (List.map snd groups.(k)));
            recv_batch t k ~expect
          in
          match retry () with
          | outcomes -> merge outcomes
          | exception (Wire.Error msg) ->
              close_conn t k;
              degrade k msg
          | exception Unix.Unix_error (e, _, _) ->
              close_conn t k;
              degrade k (Unix.error_message e))
    end
  done;
  Array.to_list
    (Array.mapi
       (fun i slot ->
         match slot with
         | Some o -> o
         | None -> fail "router: request %d received no outcome (merge bug)" i)
       slots)
