(* Per-request evaluation budgets for deadline-aware serving.

   A [deadline] is the caller's bound on a request: either an absolute
   wall-clock instant ([Wall], the open-loop serving tier's currency) or
   a logical early-termination step count ([Ticks], the deterministic
   currency used by tests and the [Partial]-determinism contract — the
   same tick budget truncates the same evaluation at exactly the same
   point on every run, machine, and jobs value).

   A [t] is the in-flight form: one budget per evaluating request,
   created by [Engine.run_request] after admission and threaded into the
   early-termination loops of the top-k methods.  Each [tick] call asks
   "may I pull one more unit of work?"; once the answer is no, the
   budget is [tripped] for good and the evaluation surfaces a [Partial]
   outcome.  The mutable state is confined to the single domain
   evaluating the request — a budget never outlives or escapes its
   request. *)

type deadline =
  | Wall of float  (* absolute Unix epoch seconds, compared to gettimeofday *)
  | Ticks of int  (* logical budget: admits that many early-termination pulls *)

let deadline_to_string = function
  | Wall d -> Printf.sprintf "wall:%.6f" d
  | Ticks n -> Printf.sprintf "ticks:%d" n

(* Already expired before any work started?  The admission-time check:
   [Engine.run_request] short-circuits to [Rejected Expired] on [true],
   touching neither the cache nor the counters. *)
let expired_now ~now = function Wall d -> now >= d | Ticks n -> n <= 0

type t = { mutable ticks_left : int; wall : float option; mutable tripped : bool }

let start = function
  | Wall d -> { ticks_left = max_int; wall = Some d; tripped = false }
  | Ticks n -> { ticks_left = n; wall = None; tripped = false }

(* [tick b] consumes one unit and answers whether the budget is now
   exhausted.  [Ticks n] admits exactly [n] calls returning [false]; the
   (n+1)-th trips.  [Wall d] trips on the first call at or past the
   instant.  Tripping is sticky: a tripped budget answers [true]
   forever, so one deep check cannot un-expire a request. *)
let tick b =
  if b.tripped then true
  else begin
    let wall_hit = match b.wall with Some d -> Unix.gettimeofday () >= d | None -> false in
    let tick_hit = b.ticks_left <= 0 in
    if b.ticks_left > 0 then b.ticks_left <- b.ticks_left - 1;
    if wall_hit || tick_hit then begin
      b.tripped <- true;
      true
    end
    else false
  end

let tripped b = b.tripped
