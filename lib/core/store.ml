open Topo_sql

type t = {
  t1 : string;
  t2 : string;
  alltops : string;
  lefttops : string;
  excptops : string;
  topinfo : string;
  pruned : Topology.t list;
  frequencies : (int, int) Hashtbl.t;
  rows : Compute.pair_row list;
}

let table_names ~t1 ~t2 =
  let suffix = Printf.sprintf "_%s_%s" t1 t2 in
  ("AllTops" ^ suffix, "LeftTops" ^ suffix, "ExcpTops" ^ suffix, "TopInfo" ^ suffix)

let pair_schema =
  lazy
    (Schema.make
       [
         { Schema.name = "E1"; ty = Schema.TInt };
         { Schema.name = "E2"; ty = Schema.TInt };
         { Schema.name = "TID"; ty = Schema.TInt };
       ])

let topinfo_schema =
  lazy
    (Schema.make
       [
         { Schema.name = "TID"; ty = Schema.TInt };
         { Schema.name = "freq"; ty = Schema.TInt };
         { Schema.name = "nnodes"; ty = Schema.TInt };
         { Schema.name = "nedges"; ty = Schema.TInt };
         { Schema.name = "simple"; ty = Schema.TInt };
         { Schema.name = "score_freq"; ty = Schema.TFloat };
         { Schema.name = "score_rare"; ty = Schema.TFloat };
         { Schema.name = "score_domain"; ty = Schema.TFloat };
         { Schema.name = "detail"; ty = Schema.TStr };
       ])

let fresh_table catalog name schema ~primary_key =
  Catalog.remove catalog name;
  Catalog.create_table catalog ~name ~schema ?primary_key ()

let build catalog interner registry ~rows ~t1 ~t2 ~pruning_threshold =
  let alltops_n, lefttops_n, excptops_n, topinfo_n = table_names ~t1 ~t2 in
  (* Frequencies: number of pairs related by each topology. *)
  let frequencies = Hashtbl.create 256 in
  List.iter
    (fun (r : Compute.pair_row) ->
      List.iter
        (fun tid ->
          Hashtbl.replace frequencies tid (1 + Option.value ~default:0 (Hashtbl.find_opt frequencies tid)))
        r.Compute.tids)
    rows;
  let pruned =
    (* Only single-path topologies are pruned: the premise of Section 4.2.2
       is that pruned topologies "have a relatively simple structure" so
       their existence "can be checked easily during query processing".
       Pruning a complex topology would both make the online check a
       multi-way join and balloon ExcpTops (its condition is satisfied by
       many pairs). *)
    Hashtbl.fold
      (fun tid freq acc ->
        if freq > pruning_threshold && Topology.is_single_path (Topology.find registry tid) then
          (tid, freq) :: acc
        else acc)
      frequencies []
    |> List.sort (fun (_, fa) (_, fb) -> Int.compare fb fa)
    |> List.map (fun (tid, _) -> Topology.find registry tid)
  in
  (* Hash sets replace the List.mem scans of the hot loops below (TID
     lists and class-key lists are short, but rows x tids x pruned
     multiplies); insertion order — and so the resulting tables — is
     bit-identical to the naive scans. *)
  let pruned_tid_set = Hashtbl.create 16 in
  List.iter (fun (t : Topology.t) -> Hashtbl.replace pruned_tid_set t.Topology.tid ()) pruned;
  (* AllTops / LeftTops. *)
  let alltops = fresh_table catalog alltops_n (Lazy.force pair_schema) ~primary_key:None in
  let lefttops = fresh_table catalog lefttops_n (Lazy.force pair_schema) ~primary_key:None in
  List.iter
    (fun (r : Compute.pair_row) ->
      List.iter
        (fun tid ->
          let row = [ Value.Int r.Compute.a; Value.Int r.Compute.b; Value.Int tid ] in
          Table.insert_values alltops row;
          if not (Hashtbl.mem pruned_tid_set tid) then Table.insert_values lefttops row)
        r.Compute.tids)
    rows;
  (* ExcpTops: pairs satisfying a pruned topology's path condition whose
     actual topology set omits it.  Each row's class-key and TID sets are
     materialized once, outside the per-pruned-topology sweep. *)
  let excptops = fresh_table catalog excptops_n (Lazy.force pair_schema) ~primary_key:None in
  let row_sets =
    List.map
      (fun (r : Compute.pair_row) ->
        let keys = Hashtbl.create 8 in
        List.iter (fun key -> Hashtbl.replace keys key ()) r.Compute.class_keys;
        let tids = Hashtbl.create 8 in
        List.iter (fun tid -> Hashtbl.replace tids tid ()) r.Compute.tids;
        (r, keys, tids))
      rows
  in
  List.iter
    (fun (p : Topology.t) ->
      let decompositions = Atomic.get p.Topology.decompositions in
      List.iter
        (fun ((r : Compute.pair_row), keys, tids) ->
          let satisfies_condition =
            List.exists
              (fun decomposition -> List.for_all (fun key -> Hashtbl.mem keys key) decomposition)
              decompositions
          in
          if satisfies_condition && not (Hashtbl.mem tids p.Topology.tid) then
            Table.insert_values excptops
              [ Value.Int r.Compute.a; Value.Int r.Compute.b; Value.Int p.Topology.tid ])
        row_sets)
    pruned;
  (* TopInfo with all three ranking scores. *)
  let topinfo = fresh_table catalog topinfo_n (Lazy.force topinfo_schema) ~primary_key:(Some "TID") in
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) frequencies [] |> List.sort compare in
  List.iter
    (fun tid ->
      let info = Topology.find registry tid in
      let freq = Hashtbl.find frequencies tid in
      let score scheme = Ranking.score scheme interner info ~freq in
      Table.insert_values topinfo
        [
          Value.Int tid;
          Value.Int freq;
          Value.Int info.Topology.n_nodes;
          Value.Int info.Topology.n_edges;
          Value.Int (if Topology.is_single_path info then 1 else 0);
          Value.Float (score Ranking.Freq);
          Value.Float (score Ranking.Rare);
          Value.Float (score Ranking.Domain);
          Value.Str (Topology.describe interner info);
        ])
    tids;
  {
    t1;
    t2;
    alltops = alltops_n;
    lefttops = lefttops_n;
    excptops = excptops_n;
    topinfo = topinfo_n;
    pruned;
    frequencies;
    rows;
  }

let frequency store tid = Option.value ~default:0 (Hashtbl.find_opt store.frequencies tid)

let score_of store catalog scheme tid =
  let table = Catalog.find catalog store.topinfo in
  match Table.find_by_pk table (Value.Int tid) with
  | None -> raise Not_found
  | Some tuple ->
      let pos = Schema.index_of (Table.schema table) (Ranking.score_column scheme) in
      Value.as_float tuple.(pos)

let max_pruned_score store catalog scheme =
  List.fold_left
    (fun acc (p : Topology.t) -> Float.max acc (score_of store catalog scheme p.Topology.tid))
    neg_infinity store.pruned

let is_excepted store catalog ~a ~b ~tid =
  let table = Catalog.find catalog store.excptops in
  let idx = Table.ensure_index table ~kind:Index.Hash ~cols:[ "E1"; "E2"; "TID" ] in
  Index.probe_count idx [| Value.Int a; Value.Int b; Value.Int tid |] > 0

let space store catalog =
  let size name = Table.byte_size (Catalog.find catalog name) in
  (size store.alltops, size store.lefttops, size store.excptops)
