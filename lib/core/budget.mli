(** Per-request evaluation budgets for deadline-aware serving.

    A {!deadline} bounds one request; a {!t} is its in-flight form,
    created after admission and threaded into the top-k methods'
    early-termination loops.  The mutable budget state is confined to
    the single domain evaluating its request. *)

type deadline =
  | Wall of float
      (** absolute instant in Unix epoch seconds; compared against
          [Unix.gettimeofday ()] at admission and at every
          early-termination step *)
  | Ticks of int
      (** logical budget: admit exactly that many early-termination
          pulls, independent of the clock — the deterministic currency
          of the [Partial] fingerprint contract *)

val deadline_to_string : deadline -> string

(** [expired_now ~now d] is the admission-time check: [true] when the
    deadline has already passed ([Wall] at or before [now], [Ticks] with
    no budget at all), in which case the request is rejected before any
    evaluation, cache, or counter activity. *)
val expired_now : now:float -> deadline -> bool

type t

(** [start d] is a fresh in-flight budget for one admitted request. *)
val start : deadline -> t

(** [tick b] consumes one unit of budget and answers whether the budget
    is now exhausted — [true] means "stop pulling work".  [Ticks n]
    admits exactly [n] calls returning [false]; [Wall d] trips at the
    first call at or past the instant.  Tripping is sticky. *)
val tick : t -> bool

(** [tripped b]: did any {!tick} call answer [true]?  The evaluation
    surfaces a [Partial] outcome exactly when this holds afterwards. *)
val tripped : t -> bool
