(** The scatter-gather router: evaluates request batches over a fleet of
    {!Shard} servers and merges the outcomes back into input order.

    Routing uses the same orientation-normalized pair hash the snapshot
    writer used ({!Snapshot.shard_of_pair}), so every request lands on
    the one shard whose slice holds its pair's derived topology tables.
    Connections are persistent, dialed lazily, and verified against the
    manifest: a shard answering with the wrong index or a fingerprint
    other than the one recorded at [build --shards] time is refused.

    Failure semantics: a shard that is down, hangs past the socket
    timeout, or dies mid-batch is redialed and its sub-batch replayed
    once (safe — shard evaluation is read-only); if that also fails,
    its requests yield [Failed (Request.Remote_failure _)] outcomes
    while the rest of the batch completes with bytes identical to
    single-process serving. *)

type t

(** [create ~manifest ~addrs ?timeout_s ?retries ?backoff_s ()] — one
    address per shard, indexed by shard number.  [timeout_s] (default
    60) bounds every socket read and write — it must cover a whole
    sub-batch's evaluation, not one query; [retries] (default 3) and
    [backoff_s] (default 0.05, doubling) govern connect-time retry while
    a shard is still binding.  Connections are dialed on first use.

    @raise Wire.Error when [addrs] and the manifest disagree on the
    shard count. *)
val create :
  manifest:Snapshot.manifest ->
  addrs:Wire.addr array ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  unit ->
  t

(** [exec t requests] scatters the batch over the shards and returns
    outcomes in input order.  With every shard healthy, the outcome list
    satisfies [Serve.fingerprint] identity with a single-process
    [Serve.exec ~jobs:1] over the unsliced engine — the distributed
    tier's correctness gate.  Never raises for a down shard; see the
    failure semantics above.

    @raise Wire.Error only for router-side invariant violations (e.g. a
    shard replying with the wrong outcome count after a successful
    retry). *)
val exec : t -> Request.t list -> Request.outcome list

(** [close t] closes all live shard connections.  The router can be used
    again afterwards — connections redial on demand. *)
val close : t -> unit
