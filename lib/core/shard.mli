(** One shard of the distributed serving tier: a socket server that
    evaluates wire-protocol request batches against a (usually
    snapshot-sliced) engine.

    A shard server speaks the {!Wire} frame protocol over Unix-domain or
    TCP sockets.  On accept it sends a [hello] frame — the shard index
    and the engine's {!Engine.fingerprint} — so a router can refuse to
    scatter over the wrong slice.  It then answers [batch-request]
    frames with [batch-outcome] frames (and single [request] frames with
    [outcome] frames), evaluating through {!Serve.exec} on a shared pool
    so the reply bytes are the ones single-process serving would
    produce.

    Admission is shed-don't-buffer: a batch that would push the number
    of in-flight requests past [max_inflight] is answered immediately
    with [Rejected Overloaded] outcomes instead of queueing.  Each
    accepted connection is handled by its own domain; evaluation
    parallelism is bounded by the shared pool, not the connection
    count. *)

type t

(** [start ?serve ?max_inflight ?read_timeout_s ?write_timeout_s ~shard
    addr engine] binds [addr], spawns the accept-loop domain, and
    returns immediately.

    [serve] configures evaluation (jobs, cache, traces); its [mode] is
    forced to [Closed] — open-loop pacing belongs to the client side of
    the socket — and when it names no [pool] the server creates one it
    owns (shut down by {!stop}).  [max_inflight] (default 256) bounds
    concurrently evaluating requests across all connections.
    [read_timeout_s] defaults to none so idle persistent router
    connections stay up; [write_timeout_s] (default 30) bounds how long
    a stuck client can wedge a reply.

    @raise Wire.Error if [max_inflight <= 0].
    @raise Unix.Unix_error if the address cannot be bound. *)
val start :
  ?serve:Serve.config ->
  ?max_inflight:int ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  shard:int ->
  Wire.addr ->
  Engine.t ->
  t

(** [stop t] shuts the server down: closes the listening socket and
    every live connection (unblocking their domains), joins them all,
    shuts down an owned pool, and removes a Unix-domain socket file.
    Idempotent. *)
val stop : t -> unit

(** [wait t] blocks until the accept loop exits — i.e. until {!stop} is
    called from another domain or a signal handler.  The blocking body
    of the [toposearch shard] command. *)
val wait : t -> unit
