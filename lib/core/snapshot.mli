(** Versioned binary snapshots of the offline build output.

    The paper reports more than a day of l = 4 precomputation at Biozon
    scale; a serving fleet cannot re-run the generator and the offline
    sweep on every process start.  [save] persists everything
    {!Engine.build} produced — the intern pool, every catalog table
    (schemas, tuples, primary keys), index specs (indexes themselves are
    cheap to rebuild), catalog statistics, the topology registry with all
    decompositions, per-pair {!Store.t} metadata, and the build
    configuration — as one self-contained binary file.  [load]
    reconstructs a working {!Engine.t} from it in milliseconds, without
    touching the generator.

    Format (little-endian throughout): a fixed header — magic
    ["TOPOSNAP"], a format version, a flags word, the payload length, the
    engine's {!Engine.fingerprint} and a whole-payload checksum — followed
    by marker-introduced sections.  Table tuples are stored column-major: a tag byte per cell
    plus, for numeric columns, a fixed-width 8-byte payload array, so a
    later mmap/Bigarray path is a local change to the table codec.

    Failure modes are loud: a bad magic, an unsupported version, a
    truncated file, a flipped payload byte (the checksum covers every
    byte, including base-table data the engine fingerprint does not
    digest), any malformed section, and a fingerprint that the
    reconstructed engine fails to reproduce all raise {!Error} with a
    descriptive message.  A snapshot never loads silently wrong. *)

(** Raised by {!save} (unencodable state, I/O errors) and {!load}
    (unreadable, corrupt, version-mismatched, or fingerprint-mismatched
    snapshots).  The message says what was being read and where. *)
exception Error of string

(** The format version this build writes and reads.  Bumped on any layout
    change; [load] rejects every other version rather than guessing. *)
val version : int

(** [save engine ~path] writes the snapshot and returns the byte count.
    [class_pairs] (used by {!save_sharded}; empty by default) lists
    extra entity-set pairs whose schema paths {!load} must register as
    decomposition classes — a slice keeps the full topology registry,
    which can carry decompositions recorded during other pairs' sweeps.
    @raise Error on unencodable state (e.g. a string value in a numeric
    column) or I/O failure. *)
val save : ?class_pairs:(string * string) list -> Engine.t -> path:string -> int

(** [load path] reconstructs the engine: restores the intern pool, the
    catalog (tables, indexes, statistics), the topology registry (every
    topology re-registered in TID order, canonical keys verified), the
    per-pair stores, and the derived graphs (data graph and schema graph
    are rebuilt from the restored catalog — they are cheap relative to
    the sweep), then verifies that {!Engine.fingerprint} of the result
    matches the digest recorded at save time.
    @raise Error when the file is unreadable, corrupt, from another
    format version, or fails fingerprint verification. *)
val load : string -> Engine.t

(** {1 Sharded snapshots}

    The pair is the partition key: every query names an entity-set pair,
    so hashing the pair's canonical orientation-normalized key routes
    each query to exactly one shard.  [save_sharded] writes one ordinary
    snapshot per shard ([shard-K.snap], loadable with {!load} unchanged)
    holding the full intern pool, the full topology registry (global
    TIDs stay stable across shards) and all base tables, but only that
    shard's derived tables and stores — plus a JSON [manifest] recording
    the shard count, the partition derivation, the pair → shard map and
    per-shard fingerprints. *)

(** How pairs map to shards, recorded in the manifest so a router can
    detect a partition-scheme mismatch. *)
val partition_derivation : string

(** [shard_of_pair ~shards ~t1 ~t2] is the owning shard in
    [0 .. shards - 1].  Orientation-normalized: both (t1, t2) and
    (t2, t1) derive the same shard.
    @raise Error when [shards <= 0]. *)
val shard_of_pair : shards:int -> t1:string -> t2:string -> int

(** [shard_path ~dir k] is [dir/shard-K.snap]. *)
val shard_path : dir:string -> int -> string

(** [manifest_path dir] is [dir/manifest]. *)
val manifest_path : string -> string

type manifest = {
  shards : int;
  derivation : string;  (** must equal {!partition_derivation} to load *)
  pairs : (string * string * int) list;
      (** (t1, t2, shard) per built pair, in build orientation *)
  fingerprints : string array;  (** {!Engine.fingerprint} of each slice *)
}

(** [manifest_shard m ~t1 ~t2] is the shard owning the pair, in either
    orientation — [None] when the pair was never built. *)
val manifest_shard : manifest -> t1:string -> t2:string -> int option

(** [save_sharded engine ~dir ~shards] writes [shards] slices plus the
    manifest into [dir] (created if absent) and returns the manifest and
    the total byte count.
    @raise Error on unencodable state or I/O failure. *)
val save_sharded : Engine.t -> dir:string -> shards:int -> manifest * int

(** [load_manifest dir] reads and validates [dir/manifest]: version and
    partition derivation must match this build, every recorded pair must
    re-derive to its recorded shard, and the fingerprint list must have
    one entry per shard.
    @raise Error otherwise. *)
val load_manifest : string -> manifest
