(** Versioned binary snapshots of the offline build output.

    The paper reports more than a day of l = 4 precomputation at Biozon
    scale; a serving fleet cannot re-run the generator and the offline
    sweep on every process start.  [save] persists everything
    {!Engine.build} produced — the intern pool, every catalog table
    (schemas, tuples, primary keys), index specs (indexes themselves are
    cheap to rebuild), catalog statistics, the topology registry with all
    decompositions, per-pair {!Store.t} metadata, and the build
    configuration — as one self-contained binary file.  [load]
    reconstructs a working {!Engine.t} from it in milliseconds, without
    touching the generator.

    Format (little-endian throughout): a fixed header — magic
    ["TOPOSNAP"], a format version, a flags word, the payload length, the
    engine's {!Engine.fingerprint} and a whole-payload checksum — followed
    by marker-introduced sections.  Table tuples are stored column-major: a tag byte per cell
    plus, for numeric columns, a fixed-width 8-byte payload array, so a
    later mmap/Bigarray path is a local change to the table codec.

    Failure modes are loud: a bad magic, an unsupported version, a
    truncated file, a flipped payload byte (the checksum covers every
    byte, including base-table data the engine fingerprint does not
    digest), any malformed section, and a fingerprint that the
    reconstructed engine fails to reproduce all raise {!Error} with a
    descriptive message.  A snapshot never loads silently wrong. *)

(** Raised by {!save} (unencodable state, I/O errors) and {!load}
    (unreadable, corrupt, version-mismatched, or fingerprint-mismatched
    snapshots).  The message says what was being read and where. *)
exception Error of string

(** The format version this build writes and reads.  Bumped on any layout
    change; [load] rejects every other version rather than guessing. *)
val version : int

(** [save engine ~path] writes the snapshot and returns the byte count.
    @raise Error on unencodable state (e.g. a string value in a numeric
    column) or I/O failure. *)
val save : Engine.t -> path:string -> int

(** [load path] reconstructs the engine: restores the intern pool, the
    catalog (tables, indexes, statistics), the topology registry (every
    topology re-registered in TID order, canonical keys verified), the
    per-pair stores, and the derived graphs (data graph and schema graph
    are rebuilt from the restored catalog — they are cheap relative to
    the sweep), then verifies that {!Engine.fingerprint} of the result
    matches the digest recorded at save time.
    @raise Error when the file is unreadable, corrupt, from another
    format version, or fails fingerprint verification. *)
val load : string -> Engine.t
