(* The online serving tier: batch-evaluate topology queries concurrently
   across OCaml 5 domains, closed-loop or open-loop.

   Each query keeps its single-coordinator evaluation (the paper's online
   phase is inherently one plan per query); what parallelizes is the
   *batch* — one pool task per query, one query per domain at a time.
   Every domain works through a [handle]: the shared, read-only engine
   (catalog, stores, topology registry, interner, data graph — all frozen
   after the offline build) plus per-domain scratch state.  Evaluation
   itself is [Engine.run_request] — the canonical single-query entry
   point — which isolates each query in a fresh [Iterator.Counters]
   scope, attaches a private [Trace.t] on demand, consults the optional
   shared [Cache.t], and enforces the request's deadline (admission-time
   expiry, mid-evaluation [Partial] truncation).

   The cache is per engine and shared across the serving domains: lookups
   are lock-free snapshot reads, inserts serialize on the cache's own
   mutex, and entries are stamped with the topology-registry generation
   so online re-registration (the SQL method) can never cause a stale
   result to be served.  Because a hit replays the stored outcome of a
   deterministic evaluation — ranked list, strategy, counters — caching
   does not perturb the determinism contract:

   [run ~jobs:n] returns outcomes bit-identical to [run ~jobs:1] (and to
   a plain sequential [Engine.run] loop), in input order, whether the
   cache is cold, warm, or absent.  A query that raises yields [Failed]
   in its own slot and leaves the rest of the batch untouched; failures
   are never memoized.

   [run_open] is the open-loop mode ("millions of users"): requests
   arrive at externally-dictated instants, a bounded admission queue
   turns the excess away with a fast [Rejected Overloaded] outcome
   instead of letting the queue (and every queued request's latency)
   grow without bound, and per-request latency is measured from the
   *intended* arrival instant — the coordinated-omission correction: a
   request delayed in the queue is charged its waiting time, so a
   stalled server cannot hide behind requests it never got around to
   admitting. *)

module Pool = Topo_util.Pool
module Counters = Topo_sql.Iterator.Counters
module Trace = Topo_obs.Trace

(* Historical names, now aliases of the shared [Request] vocabulary. *)
type request = Request.t = {
  method_ : Engine.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
  deadline : Budget.deadline option;
}

type outcome = Request.outcome = {
  request : request;
  result : Request.outcome_result;
  counters : Counters.snapshot;
  served_by : int;
  trace : Trace.t option;
  cache : Request.cache_status;
}

let request = Request.make

type stats = {
  jobs : int;
  queries : int;
  errors : int;  (* Failed outcomes only *)
  rejected : int;  (* Rejected outcomes (expired deadlines in closed loop) *)
  partials : int;  (* Partial outcomes (deadline tripped mid-evaluation) *)
  elapsed_s : float;
  throughput_qps : float option;  (* None when elapsed is below clock resolution *)
  domains_used : int;
  cache : Cache.totals option;  (* this batch's cache activity, when caching *)
}

(* ------------------------------------------------------------------ *)
(* Per-domain engine handles                                           *)

type handle = {
  h_domain : int;
  mutable h_served : int;  (* queries evaluated through this handle *)
}

(* One handle per (domain, engine): lazily created the first time a domain
   picks up a query for a given engine, reused for the rest of the batch
   (and across batches when the caller keeps a pool alive).  The DLS slot
   holds a small assoc keyed by engine so a domain serving several engines
   keeps every handle's h_served intact — and the key is a weak pointer
   ([Topo_core]'s own [Weak] module shadows the stdlib one, hence
   [Stdlib.Weak]), so a retired engine is not pinned in domain-local
   storage forever: its entry is dropped the next time the slot is
   updated after collection. *)
let handle_slot : (Engine.t Stdlib.Weak.t * handle) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let handle_for engine =
  let entries = Domain.DLS.get handle_slot in
  let holds w = match Stdlib.Weak.get w 0 with Some e -> e == engine | None -> false in
  match List.find_opt (fun (w, _) -> holds w) entries with
  | Some (_, h) -> h
  | None ->
      let w = Stdlib.Weak.create 1 in
      Stdlib.Weak.set w 0 (Some engine);
      let h = { h_domain = (Domain.self () :> int); h_served = 0 } in
      let live = List.filter (fun (w', _) -> Stdlib.Weak.check w' 0) entries in
      Domain.DLS.set handle_slot ((w, h) :: live);
      h

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let evaluate ~traces ?cache engine handle req =
  handle.h_served <- handle.h_served + 1;
  Engine.run_request engine ?cache ~traces req

let classify outcomes =
  List.fold_left
    (fun (errors, rejected, partials) o ->
      match o.result with
      | Request.Failed _ -> (errors + 1, rejected, partials)
      | Request.Rejected _ -> (errors, rejected + 1, partials)
      | Request.Partial _ -> (errors, rejected, partials + 1)
      | Request.Done _ -> (errors, rejected, partials))
    (0, 0, 0) outcomes

let serve_on pool ~traces ?cache engine requests =
  let input = Array.of_list requests in
  let before = Option.map Cache.totals cache in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.parallel_map pool input ~f:(fun req -> evaluate ~traces ?cache engine (handle_for engine) req)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let outcomes = Array.to_list outcomes in
  let domains = List.sort_uniq compare (List.map (fun o -> o.served_by) outcomes) in
  let errors, rejected, partials = classify outcomes in
  let queries = List.length outcomes in
  let cache_delta =
    match (cache, before) with
    | Some c, Some b -> Some (Cache.diff ~before:b ~after:(Cache.totals c))
    | _ -> None
  in
  ( outcomes,
    {
      jobs = Pool.jobs pool;
      queries;
      errors;
      rejected;
      partials;
      elapsed_s;
      (* A sub-resolution batch (warm cache, coarse clock) has no
         measurable throughput; reporting 0.0 would read as a collapse. *)
      throughput_qps = (if elapsed_s > 0.0 then Some (float_of_int queries /. elapsed_s) else None);
      domains_used = List.length domains;
      cache = cache_delta;
    } )

let run ?pool ?jobs ?(traces = false) ?cache engine requests =
  match pool with
  | Some pool -> serve_on pool ~traces ?cache engine requests
  | None ->
      (* Never oversubscribe: domains beyond the hardware's recommended
         count only add cross-domain GC synchronization on a serving
         workload.  Results are jobs-invariant anyway; callers who really
         want more domains than cores (stress tests) can pass [?pool].
         This is the only cap — [Pool.default_jobs]'s additional clamp to 8
         applies just when [?jobs] is omitted entirely. *)
      let jobs = Option.map (fun j -> max 1 (min j (Domain.recommended_domain_count ()))) jobs in
      Pool.with_pool ?jobs (fun pool -> serve_on pool ~traces ?cache engine requests)

(* ------------------------------------------------------------------ *)
(* Open-loop serving                                                   *)

type arrival = { at : float; arrival_request : request }

type timed = {
  timed_outcome : outcome;
  intended_s : float;
  started_s : float;
  finished_s : float;
  latency_s : float;
}

type open_stats = {
  open_jobs : int;
  offered : int;
  admitted : int;
  rejected_overload : int;
  expired : int;
  completed : int;
  partial : int;
  failed : int;
  wall_s : float;
  offered_rate : float option;
  achieved_rate : float option;
}

let with_lock m f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* An outcome manufactured on the coordinator for a request the admission
   queue turned away: no evaluation, no counters, no cache traffic. *)
let overloaded_outcome req =
  {
    request = req;
    result = Request.Rejected Request.Overloaded;
    counters = { Counters.tuples = 0; index_probes = 0; rows_scanned = 0 };
    served_by = (Domain.self () :> int);
    trace = None;
    cache = Request.Uncached;
  }

let run_open ?jobs ?(max_queue = 64) ?deadline_s ?(traces = false) ?cache engine arrivals =
  let jobs =
    let recommended = Domain.recommended_domain_count () in
    max 1 (min (Option.value jobs ~default:recommended) recommended)
  in
  let arrivals =
    List.stable_sort (fun a b -> Float.compare a.at b.at) arrivals |> Array.of_list
  in
  let n = Array.length arrivals in
  let slots : timed option array = Array.make n None in
  let lock = Mutex.create () in
  let work = Condition.create () in
  let pending : (int * request) Queue.t = Queue.create () in
  let closed = ref false in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  (* Stamp the configured per-request deadline, measured from the
     request's intended arrival instant (not its admission instant): a
     request that waited in the queue has already spent part of its
     deadline waiting. *)
  let stamp at req =
    match (req.deadline, deadline_s) with
    | None, Some d -> { req with deadline = Some (Budget.Wall (t0 +. at +. d)) }
    | _ -> req
  in
  let record idx outcome ~started ~finished =
    let intended = arrivals.(idx).at in
    slots.(idx) <-
      Some
        {
          timed_outcome = outcome;
          intended_s = intended;
          started_s = started;
          finished_s = finished;
          (* Coordinated-omission correction: latency is charged from the
             intended arrival, so queueing delay (and rejection delay)
             counts against the server. *)
          latency_s = finished -. intended;
        }
  in
  let worker () =
    let rec loop () =
      let job =
        with_lock lock (fun () ->
            while Queue.is_empty pending && not !closed do
              Condition.wait work lock
            done;
            if Queue.is_empty pending then None else Some (Queue.pop pending))
      in
      match job with
      | None -> ()
      | Some (idx, req) ->
          let started = now () in
          let o = evaluate ~traces ?cache engine (handle_for engine) req in
          record idx o ~started ~finished:(now ());
          loop ()
    in
    loop ()
  in
  let workers = Array.init jobs (fun _ -> Domain.spawn worker) in
  (* The coordinator paces admissions at the arrival schedule.  Each slot
     is written exactly once — here for overload rejections, by exactly
     one worker otherwise — and Domain.join publishes the workers'
     writes before aggregation reads them. *)
  Array.iteri
    (fun idx a ->
      let wait = a.at -. now () in
      if wait > 0.0 then Unix.sleepf wait;
      let admitted =
        with_lock lock (fun () ->
            if Queue.length pending >= max_queue then false
            else begin
              Queue.add (idx, stamp a.at a.arrival_request) pending;
              Condition.signal work;
              true
            end)
      in
      if not admitted then begin
        let t = now () in
        record idx (overloaded_outcome a.arrival_request) ~started:t ~finished:t
      end)
    arrivals;
  with_lock lock (fun () ->
      closed := true;
      Condition.broadcast work);
  Array.iter Domain.join workers;
  let wall_s = now () in
  let timed =
    Array.to_list
      (Array.mapi
         (fun idx slot ->
           match slot with
           | Some t -> t
           | None ->
               (* Unreachable: every index is either rejected by the
                  coordinator or evaluated by a worker before join. *)
               failwith (Printf.sprintf "Serve.run_open: slot %d never served" idx))
         slots)
  in
  let count p = List.length (List.filter p timed) in
  let rejected_overload =
    count (fun t -> match t.timed_outcome.result with Request.Rejected Request.Overloaded -> true | _ -> false)
  in
  let expired =
    count (fun t -> match t.timed_outcome.result with Request.Rejected Request.Expired -> true | _ -> false)
  in
  let completed = count (fun t -> match t.timed_outcome.result with Request.Done _ -> true | _ -> false) in
  let partial = count (fun t -> match t.timed_outcome.result with Request.Partial _ -> true | _ -> false) in
  let failed = count (fun t -> match t.timed_outcome.result with Request.Failed _ -> true | _ -> false) in
  let rate c = if wall_s > 0.0 then Some (float_of_int c /. wall_s) else None in
  ( timed,
    {
      open_jobs = jobs;
      offered = n;
      admitted = n - rejected_overload;
      rejected_overload;
      expired;
      completed;
      partial;
      failed;
      wall_s;
      offered_rate = rate n;
      achieved_rate = rate (completed + partial);
    } )

(* ------------------------------------------------------------------ *)
(* The unified entry point

   [exec] subsumes the historical [run]/[run_open] pair: one [config]
   record names the execution resources (pool or jobs, traces, cache)
   and one [mode] picks closed- or open-loop.  The shard server and the
   router consume the same record, so "how a batch executes" is spelled
   the same way in-process, behind a socket, and in the benchmarks.
   [run]/[run_open] survive one release as deprecated wrappers (the
   deprecation lives on their mli signatures; this file may still call
   them). *)

type open_config = {
  max_queue : int;
  deadline_s : float option;
  schedule : int -> float;
}

let open_config ?(max_queue = 64) ?deadline_s ?(schedule = fun _ -> 0.0) () =
  { max_queue; deadline_s; schedule }

type mode = Closed | Open of open_config

type config = {
  pool : Pool.t option;
  jobs : int option;
  traces : bool;
  cache : Cache.t option;
  mode : mode;
}

let config ?pool ?jobs ?(traces = false) ?cache ?(mode = Closed) () =
  { pool; jobs; traces; cache; mode }

let default = config ()

type result = {
  outcomes : outcome list;
  stats : stats;
  timed : timed list option;
  open_stats : open_stats option;
}

let exec cfg engine requests =
  match cfg.mode with
  | Closed ->
      let outcomes, stats =
        run ?pool:cfg.pool ?jobs:cfg.jobs ~traces:cfg.traces ?cache:cfg.cache engine requests
      in
      { outcomes; stats; timed = None; open_stats = None }
  | Open oc ->
      let arrivals =
        List.mapi (fun i req -> { at = oc.schedule i; arrival_request = req }) requests
      in
      let before = Option.map Cache.totals cfg.cache in
      let timed, os =
        run_open ?jobs:cfg.jobs ~max_queue:oc.max_queue ?deadline_s:oc.deadline_s
          ~traces:cfg.traces ?cache:cfg.cache engine arrivals
      in
      let outcomes = List.map (fun t -> t.timed_outcome) timed in
      let domains = List.sort_uniq compare (List.map (fun (o : outcome) -> o.served_by) outcomes) in
      let cache_delta =
        match (cfg.cache, before) with
        | Some c, Some b -> Some (Cache.diff ~before:b ~after:(Cache.totals c))
        | _ -> None
      in
      let stats =
        {
          jobs = os.open_jobs;
          queries = os.offered;
          errors = os.failed;
          rejected = os.rejected_overload + os.expired;
          partials = os.partial;
          elapsed_s = os.wall_s;
          throughput_qps = os.achieved_rate;
          domains_used = List.length domains;
          cache = cache_delta;
        }
      in
      { outcomes; stats; timed = Some timed; open_stats = Some os }

(* ------------------------------------------------------------------ *)
(* Determinism fingerprint                                             *)

(* The full observable output of a batch as one string: per query, the
   ranked (TID, score) list (flagged when it is a deadline-truncated
   prefix), the optimizer's strategy choice, the isolated work counters,
   the rejection kind, or the raised exception.  Wall-clock fields are
   deliberately excluded — and so is the per-outcome cache status: which
   occurrence of a repeated query populates the cache depends on domain
   scheduling, but the *values* served do not.  [run ~jobs:n] must
   fingerprint identically for every n, cold or warm; a [Ticks]-deadline
   batch must fingerprint identically on every run. *)
let fingerprint outcomes =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i o ->
      Buffer.add_string buf
        (Printf.sprintf "Q%d %s %s k=%d: " i
           (Engine.method_name o.request.method_)
           (Ranking.name o.request.scheme) o.request.k);
      (match o.result with
      | Request.Done r | Request.Partial r ->
          List.iter
            (fun (tid, score) ->
              Buffer.add_string buf
                (match score with
                | Some s -> Printf.sprintf "%d=%.17g;" tid s
                | None -> Printf.sprintf "%d;" tid))
            r.Engine.ranked;
          Buffer.add_string buf
            (match r.Engine.strategy with
            | Some Topo_sql.Optimizer.Regular -> " regular"
            | Some Topo_sql.Optimizer.Early_termination -> " et"
            | None -> "");
          (match o.result with
          | Request.Partial _ -> Buffer.add_string buf " partial"
          | _ -> ())
      | Request.Rejected rj -> Buffer.add_string buf ("rejected " ^ Request.rejection_name rj)
      | Request.Failed e -> Buffer.add_string buf ("error " ^ Printexc.to_string e));
      Buffer.add_string buf
        (Printf.sprintf " [t=%d p=%d s=%d]\n" o.counters.Counters.tuples
           o.counters.Counters.index_probes o.counters.Counters.rows_scanned))
    outcomes;
  Buffer.contents buf
