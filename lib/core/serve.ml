(* The online serving tier: batch-evaluate topology queries concurrently
   across OCaml 5 domains.

   Each query keeps its single-coordinator evaluation (the paper's online
   phase is inherently one plan per query); what parallelizes is the
   *batch* — one pool task per query, one query per domain at a time.
   Every domain works through a [handle]: the shared, read-only engine
   (catalog, stores, topology registry, interner, data graph — all frozen
   after the offline build) plus per-domain scratch state.  Evaluation
   itself is [Engine.run_request] — the canonical single-query entry
   point — which isolates each query in a fresh [Iterator.Counters]
   scope, attaches a private [Trace.t] on demand, and consults the
   optional shared [Cache.t].

   The cache is per engine and shared across the serving domains: lookups
   are lock-free snapshot reads, inserts serialize on the cache's own
   mutex, and entries are stamped with the topology-registry generation
   so online re-registration (the SQL method) can never cause a stale
   result to be served.  Because a hit replays the stored outcome of a
   deterministic evaluation — ranked list, strategy, counters — caching
   does not perturb the determinism contract:

   [run ~jobs:n] returns outcomes bit-identical to [run ~jobs:1] (and to
   a plain sequential [Engine.run] loop), in input order, whether the
   cache is cold, warm, or absent.  A query that raises yields [Error] in
   its own slot and leaves the rest of the batch untouched; failures are
   never memoized. *)

module Pool = Topo_util.Pool
module Counters = Topo_sql.Iterator.Counters
module Trace = Topo_obs.Trace

(* Historical names, now aliases of the shared [Request] vocabulary. *)
type request = Request.t = {
  method_ : Engine.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
}

type outcome = Request.outcome = {
  request : request;
  result : (Engine.result, exn) Stdlib.result;
  counters : Counters.snapshot;
  served_by : int;
  trace : Trace.t option;
  cache : Request.cache_status;
}

let request = Request.make

type stats = {
  jobs : int;
  queries : int;
  errors : int;
  elapsed_s : float;
  throughput_qps : float option;  (* None when elapsed is below clock resolution *)
  domains_used : int;
  cache : Cache.totals option;  (* this batch's cache activity, when caching *)
}

(* ------------------------------------------------------------------ *)
(* Per-domain engine handles                                           *)

type handle = {
  h_domain : int;
  mutable h_served : int;  (* queries evaluated through this handle *)
}

(* One handle per (domain, engine): lazily created the first time a domain
   picks up a query for a given engine, reused for the rest of the batch
   (and across batches when the caller keeps a pool alive).  The DLS slot
   holds a small assoc keyed by engine so a domain serving several engines
   keeps every handle's h_served intact — and the key is a weak pointer
   ([Topo_core]'s own [Weak] module shadows the stdlib one, hence
   [Stdlib.Weak]), so a retired engine is not pinned in domain-local
   storage forever: its entry is dropped the next time the slot is
   updated after collection. *)
let handle_slot : (Engine.t Stdlib.Weak.t * handle) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let handle_for engine =
  let entries = Domain.DLS.get handle_slot in
  let holds w = match Stdlib.Weak.get w 0 with Some e -> e == engine | None -> false in
  match List.find_opt (fun (w, _) -> holds w) entries with
  | Some (_, h) -> h
  | None ->
      let w = Stdlib.Weak.create 1 in
      Stdlib.Weak.set w 0 (Some engine);
      let h = { h_domain = (Domain.self () :> int); h_served = 0 } in
      let live = List.filter (fun (w', _) -> Stdlib.Weak.check w' 0) entries in
      Domain.DLS.set handle_slot ((w, h) :: live);
      h

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let evaluate ~traces ?cache engine handle req =
  handle.h_served <- handle.h_served + 1;
  Engine.run_request engine ?cache ~traces req

let serve_on pool ~traces ?cache engine requests =
  let input = Array.of_list requests in
  let before = Option.map Cache.totals cache in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.parallel_map pool input ~f:(fun req -> evaluate ~traces ?cache engine (handle_for engine) req)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let outcomes = Array.to_list outcomes in
  let domains = List.sort_uniq compare (List.map (fun o -> o.served_by) outcomes) in
  let errors = List.length (List.filter (fun o -> Result.is_error o.result) outcomes) in
  let queries = List.length outcomes in
  let cache_delta =
    match (cache, before) with
    | Some c, Some b -> Some (Cache.diff ~before:b ~after:(Cache.totals c))
    | _ -> None
  in
  ( outcomes,
    {
      jobs = Pool.jobs pool;
      queries;
      errors;
      elapsed_s;
      (* A sub-resolution batch (warm cache, coarse clock) has no
         measurable throughput; reporting 0.0 would read as a collapse. *)
      throughput_qps = (if elapsed_s > 0.0 then Some (float_of_int queries /. elapsed_s) else None);
      domains_used = List.length domains;
      cache = cache_delta;
    } )

let run ?pool ?jobs ?(traces = false) ?cache engine requests =
  match pool with
  | Some pool -> serve_on pool ~traces ?cache engine requests
  | None ->
      (* Never oversubscribe: domains beyond the hardware's recommended
         count only add cross-domain GC synchronization on a serving
         workload.  Results are jobs-invariant anyway; callers who really
         want more domains than cores (stress tests) can pass [?pool].
         This is the only cap — [Pool.default_jobs]'s additional clamp to 8
         applies just when [?jobs] is omitted entirely. *)
      let jobs = Option.map (fun j -> max 1 (min j (Domain.recommended_domain_count ()))) jobs in
      Pool.with_pool ?jobs (fun pool -> serve_on pool ~traces ?cache engine requests)

(* ------------------------------------------------------------------ *)
(* Determinism fingerprint                                             *)

(* The full observable output of a batch as one string: per query, the
   ranked (TID, score) list, the optimizer's strategy choice, the isolated
   work counters, or the raised exception.  Wall-clock fields are
   deliberately excluded — and so is the per-outcome cache status: which
   occurrence of a repeated query populates the cache depends on domain
   scheduling, but the *values* served do not.  [run ~jobs:n] must
   fingerprint identically for every n, cold or warm. *)
let fingerprint outcomes =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i o ->
      Buffer.add_string buf
        (Printf.sprintf "Q%d %s %s k=%d: " i
           (Engine.method_name o.request.method_)
           (Ranking.name o.request.scheme) o.request.k);
      (match o.result with
      | Ok r ->
          List.iter
            (fun (tid, score) ->
              Buffer.add_string buf
                (match score with
                | Some s -> Printf.sprintf "%d=%.17g;" tid s
                | None -> Printf.sprintf "%d;" tid))
            r.Engine.ranked;
          Buffer.add_string buf
            (match r.Engine.strategy with
            | Some Topo_sql.Optimizer.Regular -> " regular"
            | Some Topo_sql.Optimizer.Early_termination -> " et"
            | None -> "")
      | Error e -> Buffer.add_string buf ("error " ^ Printexc.to_string e));
      Buffer.add_string buf
        (Printf.sprintf " [t=%d p=%d s=%d]\n" o.counters.Counters.tuples
           o.counters.Counters.index_probes o.counters.Counters.rows_scanned))
    outcomes;
  Buffer.contents buf
