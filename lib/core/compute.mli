(** The Topology Computation module (Section 4.1) and the per-pair
    semantics of Definitions 1-3.

    [pair_topologies] computes l-Top(a, b) for one entity pair — the
    building block behind the SQL method and tests of the formal
    definitions.  [alltops] runs the offline sweep for a whole entity-set
    pair: enumerate every schema path of length <= l, enumerate its
    instances (a join chain per path, as Section 4.1 describes), group by
    (first, last) entity, and union one representative per path equivalence
    class over the cartesian product of representatives.

    The sweep is staged so it can run on a {!Topo_util.Pool} of domains:
    {!enumerate_path} (one task per schema path) and {!unions_of_pair}
    (one task per entity pair) touch only the read-only data graph and
    private accumulators, while {!merge_shards} and {!commit} run on the
    coordinator.  TIDs are assigned only at {!commit}, walking pairs in
    (a, b) order, so a parallel sweep produces bit-identical rows and
    registry contents to a serial one.

    Caps bound the weak-relationship blowups the paper reports (up to 5000
    instances of one path class per pair, >1 day for l = 4): at most
    [max_reps_per_class] representatives per class enter the product and at
    most [max_combos_per_pair] unions are formed per pair (combinations are
    truncated deterministically).  Defaults are high enough that nothing is
    capped at the default generator scale; the benchmarks print the
    cap-hit counters. *)

type caps = {
  max_reps_per_class : int;  (** representatives kept per (pair, class) *)
  max_combos_per_pair : int;  (** unions formed per pair *)
  max_paths_per_class : int;  (** instance paths enumerated per schema path *)
}

val default_caps : caps

type stats = {
  schema_paths : int;  (** schema paths of length <= l between the types *)
  instance_paths : int;  (** instance paths enumerated *)
  pairs : int;  (** connected (a, b) pairs found *)
  unions : int;  (** union graphs canonicalized *)
  capped_pairs : int;  (** pairs where some cap truncated the product *)
}

(** Result row for one connected pair. *)
type pair_row = {
  a : int;
  b : int;
  tids : int list;  (** l-Top(a,b), ascending TIDs *)
  class_keys : string list;  (** l-PathEC(a,b), sorted — the satisfied path conditions *)
}

(** [pair_topologies dg schema registry ~t1 ~t2 ~a ~b ~l ~caps] computes
    l-Top(a,b) directly (anchored enumeration), registering any new
    topologies.  Returns the pair row ([tids] empty when unrelated). *)
val pair_topologies :
  Topo_graph.Data_graph.t ->
  Topo_graph.Schema_graph.t ->
  Topology.registry ->
  t1:string ->
  t2:string ->
  a:int ->
  b:int ->
  l:int ->
  caps:caps ->
  pair_row

(** [alltops dg schema registry ~t1 ~t2 ~l ~caps ?path_filter ?pool ()]
    runs the offline sweep for the whole entity-set pair, returning every
    connected pair's row and sweep statistics.  Rows are sorted by (a, b).
    [path_filter] drops schema paths before enumeration — the paper's
    proposed remedy for weak relationships ("use domain knowledge to prune
    such weak topologies", Section 6.2.3); pass
    [fun p -> not (Weak.is_weak_path p)] to exclude them.  [pool], when
    given, fans the enumeration and union phases out across its domains;
    the result is bit-identical to the serial sweep. *)
val alltops :
  Topo_graph.Data_graph.t ->
  Topo_graph.Schema_graph.t ->
  Topology.registry ->
  t1:string ->
  t2:string ->
  l:int ->
  caps:caps ->
  ?path_filter:(Topo_graph.Schema_graph.path -> bool) ->
  ?pool:Topo_util.Pool.t ->
  unit ->
  pair_row list * stats

(** [schema_paths_between schema ~t1 ~t2 ~l] lists the (deduplicated,
    deterministically ordered) schema paths the sweep enumerates. *)
val schema_paths_between :
  Topo_graph.Schema_graph.t -> t1:string -> t2:string -> l:int -> Topo_graph.Schema_graph.path list

(** {1 Staged sweep API}

    {!Engine.build} flattens several entity-set pairs' sweeps into shared
    task arrays over one pool; these are the stage functions it schedules.
    A caller must pre-intern every path's labels
    ({!Topo_graph.Data_graph.intern_path_labels}) before running
    {!enumerate_path} or {!unions_of_pair} off the coordinator domain. *)

(** Per-schema-path enumeration result: representatives bucketed by
    (first, last) entity pair. *)
type shard

(** [enumerate_path dg caps ~same_type p] enumerates [p]'s instance paths
    (read-only on [dg]).  [same_type] must be [t1 = t2] for the sweep's
    entity-set pair: it canonicalizes pair keys as (min, max). *)
val enumerate_path :
  Topo_graph.Data_graph.t -> caps -> same_type:bool -> Topo_graph.Schema_graph.path -> shard

(** [shard_instances sh] is the number of instance paths enumerated. *)
val shard_instances : shard -> int

(** One entity pair's merged representatives, ready for the union phase. *)
type pending

(** [merge_shards shards] combines per-path shards (pass them in schema
    path order) into one pending record per entity pair, sorted by
    (a, b).  Runs on the coordinator. *)
val merge_shards : shard list -> pending array

(** The union phase's output for one pair: canonical keys and
    representative graphs, no TIDs yet. *)
type proto

(** [unions_of_pair dg caps pd] runs the Definition 2 union/canonicalize/
    dedup product for one pair.  Pure apart from reads of [dg]. *)
val unions_of_pair : Topo_graph.Data_graph.t -> caps -> pending -> proto

val proto_combos : proto -> int

val proto_capped : proto -> bool

(** [commit registry protos] registers every topology, assigning TIDs in
    array order (sort protos by (a, b) first — {!merge_shards} already
    does), and returns the final rows.  Must run on the single domain that
    owns [registry]. *)
val commit : Topology.registry -> proto array -> pair_row list

(** [sweep_stats ~schema_paths ~shards ~protos ~rows] assembles the sweep
    statistics from the stage outputs. *)
val sweep_stats :
  schema_paths:int -> shards:shard list -> protos:proto array -> rows:pair_row list -> stats

(** [union_of_representatives dg reps] builds the instance subgraph that is
    the union of the given paths (each as (schema_path, node ids)); exposed
    for tests of Definition 2. *)
val union_of_representatives :
  Topo_graph.Data_graph.t -> (Topo_graph.Schema_graph.path * int array) list -> Topo_graph.Lgraph.t
