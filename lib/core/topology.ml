module Lgraph = Topo_graph.Lgraph
module Canon = Topo_graph.Canon
module Smap = Map.Make (String)

type t = {
  tid : int;
  key : string;
  graph : Lgraph.t;
  n_nodes : int;
  n_edges : int;
  decomposition : string list;
  decompositions : string list list Atomic.t;
}

(* The whole registry state lives in ONE immutable snapshot behind an
   [Atomic.t].  Readers — [find]/[find_by_key]/[count]/[all] and the
   lock-free fast path of [register] — do a single [Atomic.get] and then
   touch only immutable data, so they are safe against concurrent
   registration from serving domains (online, the SQL method re-derives
   pair topologies and re-registers them).  Writers serialize on
   [reg_lock], build a new snapshot, and publish it with [Atomic.set];
   the release/acquire pair means no reader can see a TID without its
   fully-initialized topology, or a map/array mid-rehash. *)
type snapshot = {
  by_key : t Smap.t;
  by_tid : t array;  (* index = tid - 1; never mutated once published *)
}

(* [gen] counts completed mutations (new topology or new decomposition) and
   is the epoch that the serving tier's caches stamp entries with.  The
   writer bumps it strictly AFTER publishing the mutated state: a reader
   that observes generation g is therefore guaranteed that every state read
   it performs afterwards sees at least the state published by mutation g.
   The converse window — an evaluation that read the NEW state but stamped
   the OLD generation — only discards a valid cache entry, which is safe. *)
type registry = { state : snapshot Atomic.t; reg_lock : Mutex.t; gen : int Atomic.t }

let create_registry () =
  {
    state = Atomic.make { by_key = Smap.empty; by_tid = [||] };
    reg_lock = Mutex.create ();
    gen = Atomic.make 0;
  }

let generation reg = Atomic.get reg.gen

let register reg graph ~decomposition =
  let key = Canon.key graph in
  let decomposition = List.sort_uniq compare decomposition in
  (* Double-checked: hit with a known decomposition -> no lock, no write.
     In steady state every (shape, decomposition) is already present, so
     this path is the common one online. *)
  match Smap.find_opt key (Atomic.get reg.state).by_key with
  | Some t when List.mem decomposition (Atomic.get t.decompositions) -> t
  | Some _ | None ->
      Mutex.lock reg.reg_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock reg.reg_lock)
        (fun () ->
          let snap = Atomic.get reg.state in
          match Smap.find_opt key snap.by_key with
          | Some t ->
              let ds = Atomic.get t.decompositions in
              if not (List.mem decomposition ds) then begin
                Atomic.set t.decompositions (ds @ [ decomposition ]);
                Atomic.incr reg.gen
              end;
              t
          | None ->
              let t =
                {
                  tid = Array.length snap.by_tid + 1;
                  key;
                  graph = Lgraph.copy graph;
                  n_nodes = Lgraph.node_count graph;
                  n_edges = Lgraph.edge_count graph;
                  decomposition;
                  decompositions = Atomic.make [ decomposition ];
                }
              in
              Atomic.set reg.state
                { by_key = Smap.add key t snap.by_key; by_tid = Array.append snap.by_tid [| t |] };
              Atomic.incr reg.gen;
              t)

(* Merge a shard-local registry into [into]: every topology of [src] is
   re-registered in TID order with each of its decompositions in recorded
   order, so the merge is deterministic and idempotent.  Returns the
   src-TID -> dst-TID remap. *)
let absorb ~into src =
  let remap = Hashtbl.create 64 in
  Array.iter
    (fun (t : t) ->
      let merged =
        List.fold_left
          (fun _ decomposition -> register into t.graph ~decomposition)
          (register into t.graph ~decomposition:t.decomposition)
          (Atomic.get t.decompositions)
      in
      Hashtbl.replace remap t.tid merged.tid)
    (Atomic.get src.state).by_tid;
  fun tid ->
    match Hashtbl.find_opt remap tid with
    | Some tid' -> tid'
    | None -> raise Not_found

let find reg tid =
  let { by_tid; _ } = Atomic.get reg.state in
  if tid < 1 || tid > Array.length by_tid then raise Not_found;
  by_tid.(tid - 1)

let find_by_key reg key = Smap.find_opt key (Atomic.get reg.state).by_key

let count reg = Array.length (Atomic.get reg.state).by_tid

let all reg = Array.to_list (Atomic.get reg.state).by_tid

let is_single_path t =
  let g = t.graph in
  let nodes = Lgraph.nodes g in
  let degree_ok = List.for_all (fun id -> Lgraph.degree g id <= 2) nodes in
  let endpoints = List.filter (fun id -> Lgraph.degree g id = 1) nodes in
  degree_ok
  && List.length endpoints = 2
  && Lgraph.edge_count g = Lgraph.node_count g - 1
  && Lgraph.connected g

let strip_prefix s =
  (* labels are interned as "n:Type" / "e:rel" *)
  match String.index_opt s ':' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let describe interner t =
  let g = t.graph in
  let name label = strip_prefix (Topo_util.Interner.name interner label) in
  if is_single_path t then begin
    (* Walk from one degree-1 endpoint, choosing the direction whose label
       reading is smaller so the description is deterministic. *)
    let ends = List.filter (fun id -> Lgraph.degree g id = 1) (Lgraph.nodes g) in
    let walk start =
      let buf = Buffer.create 64 in
      let rec go prev current =
        Buffer.add_string buf (name (Lgraph.node_label g current));
        match List.filter (fun (_, other) -> Some other <> prev) (Lgraph.neighbors g current) with
        | [] -> ()
        | (el, next) :: _ ->
            Buffer.add_string buf (Printf.sprintf " -%s- " (name el));
            go (Some current) next
      in
      go None start;
      Buffer.contents buf
    in
    match ends with
    | [ a; b ] ->
        let wa = walk a and wb = walk b in
        if wa <= wb then wa else wb
    | ends ->
        invalid_arg
          (Printf.sprintf
             "Topology.describe: TID %d (key %s) classified as a simple path but has %d degree-1 \
              endpoint(s) instead of 2"
             t.tid t.key (List.length ends))
  end
  else begin
    (* Complex shape: canonical node numbering + edge list. *)
    let order = Canon.canonical_order g in
    let position = Hashtbl.create 8 in
    List.iteri (fun i id -> Hashtbl.add position id i) order;
    let node_strs =
      List.mapi (fun i id -> Printf.sprintf "%d:%s" i (name (Lgraph.node_label g id))) order
    in
    let edge_strs =
      List.map
        (fun { Lgraph.u; v; label } ->
          let pu = Hashtbl.find position u and pv = Hashtbl.find position v in
          let lo = min pu pv and hi = max pu pv in
          Printf.sprintf "%d-%s-%d" lo (name label) hi)
        (Lgraph.edges g)
      |> List.sort compare
    in
    Printf.sprintf "{%s | %s}" (String.concat ", " node_strs) (String.concat ", " edge_strs)
  end
