module Lgraph = Topo_graph.Lgraph
module Canon = Topo_graph.Canon

type t = {
  tid : int;
  key : string;
  graph : Lgraph.t;
  n_nodes : int;
  n_edges : int;
  decomposition : string list;
  mutable decompositions : string list list;
}

type registry = {
  by_key : (string, t) Hashtbl.t;
  by_tid : t Topo_util.Dyn.t;
  reg_lock : Mutex.t;
      (* serializes registrations.  The offline build registers only on the
         coordinator; online, the SQL method re-derives pair topologies and
         re-registers them — in steady state every (shape, decomposition)
         is already present, so the fast path below is a lock-free read,
         and the lock only matters for the rare concurrent first-write. *)
}

let create_registry () =
  { by_key = Hashtbl.create 256; by_tid = Topo_util.Dyn.create (); reg_lock = Mutex.create () }

let register reg graph ~decomposition =
  let key = Canon.key graph in
  let decomposition = List.sort_uniq compare decomposition in
  (* Double-checked: hit with a known decomposition -> no lock, no write. *)
  match Hashtbl.find_opt reg.by_key key with
  | Some t when List.mem decomposition t.decompositions -> t
  | Some _ | None ->
      Mutex.lock reg.reg_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock reg.reg_lock)
        (fun () ->
          match Hashtbl.find_opt reg.by_key key with
          | Some t ->
              if not (List.mem decomposition t.decompositions) then
                t.decompositions <- t.decompositions @ [ decomposition ];
              t
          | None ->
              let t =
                {
                  tid = Topo_util.Dyn.length reg.by_tid + 1;
                  key;
                  graph = Lgraph.copy graph;
                  n_nodes = Lgraph.node_count graph;
                  n_edges = Lgraph.edge_count graph;
                  decomposition;
                  decompositions = [ decomposition ];
                }
              in
              Hashtbl.add reg.by_key key t;
              Topo_util.Dyn.push reg.by_tid t;
              t)

(* Merge a shard-local registry into [into]: every topology of [src] is
   re-registered in TID order with each of its decompositions in recorded
   order, so the merge is deterministic and idempotent.  Returns the
   src-TID -> dst-TID remap. *)
let absorb ~into src =
  let remap = Hashtbl.create 64 in
  Topo_util.Dyn.iter
    (fun (t : t) ->
      let merged =
        List.fold_left
          (fun _ decomposition -> register into t.graph ~decomposition)
          (register into t.graph ~decomposition:t.decomposition)
          t.decompositions
      in
      Hashtbl.replace remap t.tid merged.tid)
    src.by_tid;
  fun tid ->
    match Hashtbl.find_opt remap tid with
    | Some tid' -> tid'
    | None -> raise Not_found

let find reg tid =
  if tid < 1 || tid > Topo_util.Dyn.length reg.by_tid then raise Not_found;
  Topo_util.Dyn.get reg.by_tid (tid - 1)

let find_by_key reg key = Hashtbl.find_opt reg.by_key key

let count reg = Topo_util.Dyn.length reg.by_tid

let all reg = Topo_util.Dyn.to_list reg.by_tid

let is_single_path t =
  let g = t.graph in
  let nodes = Lgraph.nodes g in
  let degree_ok = List.for_all (fun id -> Lgraph.degree g id <= 2) nodes in
  let endpoints = List.filter (fun id -> Lgraph.degree g id = 1) nodes in
  degree_ok
  && List.length endpoints = 2
  && Lgraph.edge_count g = Lgraph.node_count g - 1
  && Lgraph.connected g

let strip_prefix s =
  (* labels are interned as "n:Type" / "e:rel" *)
  match String.index_opt s ':' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let describe interner t =
  let g = t.graph in
  let name label = strip_prefix (Topo_util.Interner.name interner label) in
  if is_single_path t then begin
    (* Walk from one degree-1 endpoint, choosing the direction whose label
       reading is smaller so the description is deterministic. *)
    let ends = List.filter (fun id -> Lgraph.degree g id = 1) (Lgraph.nodes g) in
    let walk start =
      let buf = Buffer.create 64 in
      let rec go prev current =
        Buffer.add_string buf (name (Lgraph.node_label g current));
        match List.filter (fun (_, other) -> Some other <> prev) (Lgraph.neighbors g current) with
        | [] -> ()
        | (el, next) :: _ ->
            Buffer.add_string buf (Printf.sprintf " -%s- " (name el));
            go (Some current) next
      in
      go None start;
      Buffer.contents buf
    in
    match ends with
    | [ a; b ] ->
        let wa = walk a and wb = walk b in
        if wa <= wb then wa else wb
    | ends ->
        invalid_arg
          (Printf.sprintf
             "Topology.describe: TID %d (key %s) classified as a simple path but has %d degree-1 \
              endpoint(s) instead of 2"
             t.tid t.key (List.length ends))
  end
  else begin
    (* Complex shape: canonical node numbering + edge list. *)
    let order = Canon.canonical_order g in
    let position = Hashtbl.create 8 in
    List.iteri (fun i id -> Hashtbl.add position id i) order;
    let node_strs =
      List.mapi (fun i id -> Printf.sprintf "%d:%s" i (name (Lgraph.node_label g id))) order
    in
    let edge_strs =
      List.map
        (fun { Lgraph.u; v; label } ->
          let pu = Hashtbl.find position u and pv = Hashtbl.find position v in
          let lo = min pu pv and hi = max pu pv in
          Printf.sprintf "%d-%s-%d" lo (name label) hi)
        (Lgraph.edges g)
      |> List.sort compare
    in
    Printf.sprintf "{%s | %s}" (String.concat ", " node_strs) (String.concat ", " edge_strs)
  end
