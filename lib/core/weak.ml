let weak_segments =
  [
    [ "Protein"; "DNA"; "Protein" ];
    [ "Protein"; "Unigene"; "Protein" ];
    [ "Protein"; "Family"; "Protein" ];
    [ "Family"; "Pathway"; "Family" ];
    [ "DNA"; "Unigene"; "DNA" ];
  ]

let contains_segment types segment =
  let n = Array.length types and m = List.length segment in
  let seg = Array.of_list segment in
  let rec at i j = j >= m || (types.(i + j) = seg.(j) && at i (j + 1)) in
  let rec scan i = i + m <= n && (at i 0 || scan (i + 1)) in
  scan 0

(* The segments are palindromic in type (P-D-P etc.), so checking the
   forward direction suffices. *)
let weak_types types = List.exists (fun seg -> contains_segment types seg) weak_segments

let is_weak_path (p : Topo_graph.Schema_graph.path) =
  Topo_graph.Schema_graph.path_length p >= 4 && weak_types p.Topo_graph.Schema_graph.types

(* A class key is "T0~r0~T1~r1~...~Tl" (Schema_graph.signature of the
   normalized orientation); split it back into the type sequence. *)
let key_types key =
  let parts = String.split_on_char '~' key in
  let types = List.filteri (fun i _ -> i mod 2 = 0) parts in
  Array.of_list types

let is_weak_class_key key =
  let types = key_types key in
  Array.length types >= 5 (* length >= 4 has >= 5 nodes *) && weak_types types

let contains_weak_class (t : Topology.t) =
  List.exists is_weak_class_key t.Topology.decomposition

let is_weak_topology (t : Topology.t) =
  let long =
    List.filter (fun k -> Array.length (key_types k) >= 5) t.Topology.decomposition
  in
  long <> [] && List.for_all is_weak_class_key long && List.exists is_weak_class_key t.Topology.decomposition

let table4 =
  [
    ("DUP", "related but weaker than DP");
    ("PFP", "related/remotely related (homologous proteins)");
    ("PUP", "related/remotely related");
    ("PFPD", "related/remotely related");
    ("FWF", "weak relation (pathway context)");
    ("DUPU", "remotely related or completely unrelated");
    ("PUPU", "remotely related or completely unrelated");
    ("PDP", "likely to be unrelated (functionally)");
    ("FWFP", "likely to be completely unrelated");
  ]

let relationship_reliability = function
  | "encodes" -> 0.95
  | "uni_encodes" -> 0.9
  | "interacts_p" | "interacts_d" -> 0.85
  | "manifest" -> 0.8
  | "uni_contains" -> 0.7
  | "belongs" -> 0.6
  | "pathway_member" -> 0.5
  | _ -> 0.5

let count_weak_segments types =
  List.fold_left
    (fun acc seg ->
      let n = Array.length types and m = List.length seg in
      let sega = Array.of_list seg in
      let hits = ref 0 in
      for i = 0 to n - m do
        let rec matches j = j >= m || (types.(i + j) = sega.(j) && matches (j + 1)) in
        if matches 0 then incr hits
      done;
      acc + !hits)
    0 weak_segments

let path_reliability (p : Topo_graph.Schema_graph.path) =
  let base =
    Array.fold_left
      (fun acc rel -> acc *. relationship_reliability rel)
      1.0 p.Topo_graph.Schema_graph.rels
  in
  base *. Float.pow 0.5 (float_of_int (count_weak_segments p.Topo_graph.Schema_graph.types))

let class_key_reliability key =
  (* "T0~r0~T1~r1~...~Tl": types at even positions, relationships at odd. *)
  let parts = Array.of_list (String.split_on_char '~' key) in
  let n = Array.length parts in
  let types = Array.init ((n + 1) / 2) (fun i -> parts.(2 * i)) in
  let base = ref 1.0 in
  for i = 0 to (n / 2) - 1 do
    base := !base *. relationship_reliability parts.((2 * i) + 1)
  done;
  !base *. Float.pow 0.5 (float_of_int (count_weak_segments types))

let topology_reliability (t : Topology.t) =
  List.fold_left
    (fun best decomposition ->
      let weakest =
        List.fold_left (fun acc key -> Float.min acc (class_key_reliability key)) 1.0 decomposition
      in
      Float.max best weakest)
    0.0
    (Atomic.get t.Topology.decompositions)

let reliability_filter ~threshold p = path_reliability p >= threshold
