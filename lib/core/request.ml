(* The shared request/outcome vocabulary of the query API.

   A [Request.t] is one unit of online work — (method, query, scheme, k)
   plus an optional deadline — and a [Request.outcome] is everything
   observable about evaluating it: how it ended (the four-way
   [outcome_result]), the isolated work counters, the domain that served
   it, its private trace, and whether the answer came from the cache.
   [Engine.run_request] is the canonical evaluator; the serving tier,
   the CLI and the benchmarks all speak this type.

   Outcome state machine (see DESIGN.md "Overload control"):

     submitted --admission queue full--------------> Rejected Overloaded
     submitted --deadline already passed-----------> Rejected Expired
     admitted  --evaluates, budget never trips-----> Done result
     admitted  --ET loop trips the budget----------> Partial result (ranked prefix)
     admitted  --evaluation raises-----------------> Failed exn

   Only [Done] results are ever memoized: a [Partial] is a
   deadline-shaped prefix, not the answer, and rejected requests
   short-circuit before the cache is even consulted.

   [key] renders the canonical cache key.  Canonicalization folds two
   sources of accidental variety:

   - endpoint orientation: for distinct entity sets the evaluation aligns
     the query to the stored pair's orientation, so {A, B} and {B, A}
     with the same predicates are the same query — the two endpoint
     renderings are sorted.  Same-entity pairs keep their order (there
     alignment is positional, so orientation is meaningful).
   - scheme and k: the three non-top-k methods ignore both, so their keys
     omit them.

   The deadline is deliberately NOT part of the key: it bounds how long
   evaluation may run, not what the full answer is, so a cached [Done]
   answer is valid for any deadline (a hit costs no evaluation time and
   trivially meets it). *)

type t = {
  method_ : Methods.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
  deadline : Budget.deadline option;
}

let make ?(scheme = Ranking.Freq) ?(k = 10) ?deadline method_ query =
  { method_; query; scheme; k; deadline }

type result = {
  ranked : (int * float option) list;
  elapsed_s : float;
  method_ : Methods.method_;
  strategy : Topo_sql.Optimizer.strategy option;
}

type rejection = Overloaded | Expired

let rejection_name = function Overloaded -> "overloaded" | Expired -> "expired"

type outcome_result =
  | Done of result
  | Partial of result
  | Rejected of rejection
  | Failed of exn

let outcome_result_name = function
  | Done _ -> "done"
  | Partial _ -> "partial"
  | Rejected r -> "rejected-" ^ rejection_name r
  | Failed _ -> "failed"

let answered = function Done r | Partial r -> Some r | Rejected _ | Failed _ -> None

let failure = function Failed e -> Some e | Done _ | Partial _ | Rejected _ -> None

type cache_status = Hit | Miss | Uncached

let cache_status_name = function Hit -> "hit" | Miss -> "miss" | Uncached -> "uncached"

type outcome = {
  request : t;
  result : outcome_result;
  counters : Topo_sql.Iterator.Counters.snapshot;
  served_by : int;
  trace : Topo_obs.Trace.t option;
  cache : cache_status;
}

let endpoint_key (e : Query.endpoint) =
  e.Query.entity ^ "["
  ^ (match e.Query.pred with None -> "" | Some p -> Topo_sql.Expr.to_string p)
  ^ "]"

let key r =
  let a = endpoint_key r.query.Query.e1 and b = endpoint_key r.query.Query.e2 in
  let a, b =
    if r.query.Query.e1.Query.entity <> r.query.Query.e2.Query.entity && a > b then (b, a)
    else (a, b)
  in
  let rank = if Methods.ranks r.method_ then Ranking.name r.scheme ^ "|" ^ string_of_int r.k else "-" in
  Printf.sprintf "%s|%s|%s|%s" (Methods.method_name r.method_) rank a b

let to_string (r : t) =
  Printf.sprintf "%s %s k=%d %s%s" (Methods.method_name r.method_) (Ranking.name r.scheme) r.k
    (Query.to_string r.query)
    (match r.deadline with
    | None -> ""
    | Some d -> " deadline=" ^ Budget.deadline_to_string d)

(* ------------------------------------------------------------------ *)
(* Wire codec.

   The payload layouts live here, next to [key], so the canonical key,
   the cache key and the wire form evolve at one site; [Wire] supplies
   only the frame envelope and the primitives.  Two deliberate
   asymmetries with the in-memory types:

   - the deadline IS encoded (a shard must enforce it) even though [key]
     excludes it — the key names the answer, the wire carries the work;
   - the trace is NOT encoded: span trees are per-process observability,
     so a decoded outcome always has [trace = None].  [Serve.fingerprint]
     ignores traces, which is what makes sharded ≡ single-process
     comparisons meaningful.

   A [Failed] outcome crosses the wire as the rendered exception message
   and decodes to [Remote_failure msg]; the registered printer returns
   the stored message verbatim, so the fingerprint of a decoded failure
   matches the fingerprint of the original exception. *)

exception Remote_failure of string

let () = Printexc.register_printer (function Remote_failure msg -> Some msg | _ -> None)

module E = Topo_sql.Expr
module V = Topo_sql.Value

let method_tag m =
  let rec idx i = function
    | [] -> Wire.fail "encode: method %s is not in Methods.all_methods" (Methods.method_name m)
    | m' :: tl -> if m' = m then i else idx (i + 1) tl
  in
  idx 0 Methods.all_methods

let method_of_tag tag =
  match List.nth_opt Methods.all_methods tag with
  | Some m -> m
  | None -> Wire.fail "corrupt request: unknown method tag %d" tag

let scheme_tag = function Ranking.Freq -> 0 | Ranking.Rare -> 1 | Ranking.Domain -> 2

let scheme_of_tag = function
  | 0 -> Ranking.Freq
  | 1 -> Ranking.Rare
  | 2 -> Ranking.Domain
  | t -> Wire.fail "corrupt request: unknown ranking scheme tag %d" t

let cmp_tag = function E.Eq -> 0 | E.Ne -> 1 | E.Lt -> 2 | E.Le -> 3 | E.Gt -> 4 | E.Ge -> 5

let cmp_of_tag = function
  | 0 -> E.Eq
  | 1 -> E.Ne
  | 2 -> E.Lt
  | 3 -> E.Le
  | 4 -> E.Gt
  | 5 -> E.Ge
  | t -> Wire.fail "corrupt predicate: unknown comparison tag %d" t

let w_value buf = function
  | V.Null -> Wire.w_u8 buf 0
  | V.Int i ->
      Wire.w_u8 buf 1;
      Wire.w_i64 buf i
  | V.Float f ->
      Wire.w_u8 buf 2;
      Wire.w_f64 buf f
  | V.Str s ->
      Wire.w_u8 buf 3;
      Wire.w_str buf s

let r_value r =
  match Wire.r_u8 r "value tag" with
  | 0 -> V.Null
  | 1 -> V.Int (Wire.r_i64 r "int value")
  | 2 -> V.Float (Wire.r_f64 r "float value")
  | 3 -> V.Str (Wire.r_str r "string value")
  | t -> Wire.fail "corrupt predicate: unknown value tag %d" t

let rec w_expr buf = function
  | E.Col i ->
      Wire.w_u8 buf 0;
      Wire.w_u32 buf i
  | E.Const v ->
      Wire.w_u8 buf 1;
      w_value buf v
  | E.Cmp (c, a, b) ->
      Wire.w_u8 buf 2;
      Wire.w_u8 buf (cmp_tag c);
      w_expr buf a;
      w_expr buf b
  | E.And es ->
      Wire.w_u8 buf 3;
      Wire.w_u32 buf (List.length es);
      List.iter (w_expr buf) es
  | E.Or es ->
      Wire.w_u8 buf 4;
      Wire.w_u32 buf (List.length es);
      List.iter (w_expr buf) es
  | E.Not e ->
      Wire.w_u8 buf 5;
      w_expr buf e
  | E.Contains (e, kw) ->
      Wire.w_u8 buf 6;
      w_expr buf e;
      Wire.w_str buf kw
  | E.IsNull e ->
      Wire.w_u8 buf 7;
      w_expr buf e

let rec r_expr r =
  match Wire.r_u8 r "predicate tag" with
  | 0 -> E.Col (Wire.r_u32 r "column position")
  | 1 -> E.Const (r_value r)
  | 2 ->
      let c = cmp_of_tag (Wire.r_u8 r "comparison tag") in
      let a = r_expr r in
      let b = r_expr r in
      E.Cmp (c, a, b)
  | 3 ->
      let n = Wire.r_count r "conjunct count" in
      E.And (Wire.r_list r n "conjunct" (fun () -> r_expr r))
  | 4 ->
      let n = Wire.r_count r "disjunct count" in
      E.Or (Wire.r_list r n "disjunct" (fun () -> r_expr r))
  | 5 -> E.Not (r_expr r)
  | 6 ->
      let e = r_expr r in
      E.Contains (e, Wire.r_str r "containment keyword")
  | 7 -> E.IsNull (r_expr r)
  | t -> Wire.fail "corrupt predicate: unknown expression tag %d" t

let w_opt buf w = function
  | None -> Wire.w_bool buf false
  | Some v ->
      Wire.w_bool buf true;
      w buf v

let r_opt r what f = if Wire.r_bool r what then Some (f r) else None

let w_endpoint buf (e : Query.endpoint) =
  Wire.w_str buf e.Query.entity;
  Wire.w_str buf e.Query.label;
  w_opt buf w_expr e.Query.pred

let r_endpoint r =
  let entity = Wire.r_str r "endpoint entity" in
  let label = Wire.r_str r "endpoint label" in
  let pred = r_opt r "endpoint predicate presence" r_expr in
  { Query.entity; pred; label }

let w_deadline buf = function
  | None -> Wire.w_u8 buf 0
  | Some (Budget.Wall t) ->
      Wire.w_u8 buf 1;
      Wire.w_f64 buf t
  | Some (Budget.Ticks n) ->
      Wire.w_u8 buf 2;
      Wire.w_i64 buf n

let r_deadline r =
  match Wire.r_u8 r "deadline tag" with
  | 0 -> None
  | 1 -> Some (Budget.Wall (Wire.r_f64 r "wall deadline"))
  | 2 -> Some (Budget.Ticks (Wire.r_i64 r "tick deadline"))
  | t -> Wire.fail "corrupt request: unknown deadline tag %d" t

let write_payload buf (req : t) =
  Wire.w_u8 buf (method_tag req.method_);
  Wire.w_u8 buf (scheme_tag req.scheme);
  Wire.w_u32 buf req.k;
  w_deadline buf req.deadline;
  w_endpoint buf req.query.Query.e1;
  w_endpoint buf req.query.Query.e2

let read_payload r =
  let method_ = method_of_tag (Wire.r_u8 r "method tag") in
  let scheme = scheme_of_tag (Wire.r_u8 r "ranking scheme tag") in
  let k = Wire.r_u32 r "k" in
  let deadline = r_deadline r in
  let e1 = r_endpoint r in
  let e2 = r_endpoint r in
  { method_; query = { Query.e1; e2 }; scheme; k; deadline }

let w_result buf (res : result) =
  Wire.w_u32 buf (List.length res.ranked);
  List.iter
    (fun (tid, score) ->
      Wire.w_i64 buf tid;
      w_opt buf Wire.w_f64 score)
    res.ranked;
  Wire.w_f64 buf res.elapsed_s;
  Wire.w_u8 buf (method_tag res.method_);
  Wire.w_u8 buf
    (match res.strategy with
    | None -> 0
    | Some Topo_sql.Optimizer.Regular -> 1
    | Some Topo_sql.Optimizer.Early_termination -> 2)

let r_result r =
  let n = Wire.r_count r "ranked length" in
  let ranked =
    Wire.r_list r n "ranked entry" (fun () ->
        let tid = Wire.r_i64 r "ranked tid" in
        let score = r_opt r "score presence" (fun r -> Wire.r_f64 r "score") in
        (tid, score))
  in
  let elapsed_s = Wire.r_f64 r "elapsed seconds" in
  let method_ = method_of_tag (Wire.r_u8 r "result method tag") in
  let strategy =
    match Wire.r_u8 r "strategy tag" with
    | 0 -> None
    | 1 -> Some Topo_sql.Optimizer.Regular
    | 2 -> Some Topo_sql.Optimizer.Early_termination
    | t -> Wire.fail "corrupt outcome: unknown strategy tag %d" t
  in
  { ranked; elapsed_s; method_; strategy }

let write_outcome_payload buf (o : outcome) =
  write_payload buf o.request;
  (match o.result with
  | Done res ->
      Wire.w_u8 buf 0;
      w_result buf res
  | Partial res ->
      Wire.w_u8 buf 1;
      w_result buf res
  | Rejected Overloaded -> Wire.w_u8 buf 2
  | Rejected Expired -> Wire.w_u8 buf 3
  | Failed e ->
      Wire.w_u8 buf 4;
      Wire.w_str buf (Printexc.to_string e));
  Wire.w_i64 buf o.counters.Topo_sql.Iterator.Counters.tuples;
  Wire.w_i64 buf o.counters.Topo_sql.Iterator.Counters.index_probes;
  Wire.w_i64 buf o.counters.Topo_sql.Iterator.Counters.rows_scanned;
  Wire.w_i64 buf o.served_by;
  Wire.w_u8 buf (match o.cache with Hit -> 0 | Miss -> 1 | Uncached -> 2)

let read_outcome_payload r =
  let request = read_payload r in
  let result =
    match Wire.r_u8 r "outcome tag" with
    | 0 -> Done (r_result r)
    | 1 -> Partial (r_result r)
    | 2 -> Rejected Overloaded
    | 3 -> Rejected Expired
    | 4 -> Failed (Remote_failure (Wire.r_str r "failure message"))
    | t -> Wire.fail "corrupt outcome: unknown outcome tag %d" t
  in
  let tuples = Wire.r_i64 r "tuples counter" in
  let index_probes = Wire.r_i64 r "index probes counter" in
  let rows_scanned = Wire.r_i64 r "rows scanned counter" in
  let counters = { Topo_sql.Iterator.Counters.tuples; index_probes; rows_scanned } in
  let served_by = Wire.r_i64 r "serving domain id" in
  let cache =
    match Wire.r_u8 r "cache status tag" with
    | 0 -> Hit
    | 1 -> Miss
    | 2 -> Uncached
    | t -> Wire.fail "corrupt outcome: unknown cache status tag %d" t
  in
  { request; result; counters; served_by; trace = None; cache }

let payload_of write v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let decode_as ~kind ~what read data =
  let k, payload = Wire.decode_frame data in
  if k <> kind then
    Wire.fail "expected a %s frame, got a %s frame" (Wire.kind_name kind) (Wire.kind_name k);
  let r = Wire.reader ~what payload in
  let v = read r in
  Wire.r_end r;
  v

let to_wire req = Wire.frame ~kind:Wire.kind_request (payload_of write_payload req)

let of_wire data = decode_as ~kind:Wire.kind_request ~what:"request payload" read_payload data

let outcome_to_wire o = Wire.frame ~kind:Wire.kind_outcome (payload_of write_outcome_payload o)

let outcome_of_wire data =
  decode_as ~kind:Wire.kind_outcome ~what:"outcome payload" read_outcome_payload data
