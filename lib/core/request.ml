(* The shared request/outcome vocabulary of the query API.

   A [Request.t] is one unit of online work — (method, query, scheme, k)
   plus an optional deadline — and a [Request.outcome] is everything
   observable about evaluating it: how it ended (the four-way
   [outcome_result]), the isolated work counters, the domain that served
   it, its private trace, and whether the answer came from the cache.
   [Engine.run_request] is the canonical evaluator; the serving tier,
   the CLI and the benchmarks all speak this type.

   Outcome state machine (see DESIGN.md "Overload control"):

     submitted --admission queue full--------------> Rejected Overloaded
     submitted --deadline already passed-----------> Rejected Expired
     admitted  --evaluates, budget never trips-----> Done result
     admitted  --ET loop trips the budget----------> Partial result (ranked prefix)
     admitted  --evaluation raises-----------------> Failed exn

   Only [Done] results are ever memoized: a [Partial] is a
   deadline-shaped prefix, not the answer, and rejected requests
   short-circuit before the cache is even consulted.

   [key] renders the canonical cache key.  Canonicalization folds two
   sources of accidental variety:

   - endpoint orientation: for distinct entity sets the evaluation aligns
     the query to the stored pair's orientation, so {A, B} and {B, A}
     with the same predicates are the same query — the two endpoint
     renderings are sorted.  Same-entity pairs keep their order (there
     alignment is positional, so orientation is meaningful).
   - scheme and k: the three non-top-k methods ignore both, so their keys
     omit them.

   The deadline is deliberately NOT part of the key: it bounds how long
   evaluation may run, not what the full answer is, so a cached [Done]
   answer is valid for any deadline (a hit costs no evaluation time and
   trivially meets it). *)

type t = {
  method_ : Methods.method_;
  query : Query.t;
  scheme : Ranking.scheme;
  k : int;
  deadline : Budget.deadline option;
}

let make ?(scheme = Ranking.Freq) ?(k = 10) ?deadline method_ query =
  { method_; query; scheme; k; deadline }

type result = {
  ranked : (int * float option) list;
  elapsed_s : float;
  method_ : Methods.method_;
  strategy : Topo_sql.Optimizer.strategy option;
}

type rejection = Overloaded | Expired

let rejection_name = function Overloaded -> "overloaded" | Expired -> "expired"

type outcome_result =
  | Done of result
  | Partial of result
  | Rejected of rejection
  | Failed of exn

let outcome_result_name = function
  | Done _ -> "done"
  | Partial _ -> "partial"
  | Rejected r -> "rejected-" ^ rejection_name r
  | Failed _ -> "failed"

let answered = function Done r | Partial r -> Some r | Rejected _ | Failed _ -> None

let failure = function Failed e -> Some e | Done _ | Partial _ | Rejected _ -> None

type cache_status = Hit | Miss | Uncached

let cache_status_name = function Hit -> "hit" | Miss -> "miss" | Uncached -> "uncached"

type outcome = {
  request : t;
  result : outcome_result;
  counters : Topo_sql.Iterator.Counters.snapshot;
  served_by : int;
  trace : Topo_obs.Trace.t option;
  cache : cache_status;
}

let endpoint_key (e : Query.endpoint) =
  e.Query.entity ^ "["
  ^ (match e.Query.pred with None -> "" | Some p -> Topo_sql.Expr.to_string p)
  ^ "]"

let key r =
  let a = endpoint_key r.query.Query.e1 and b = endpoint_key r.query.Query.e2 in
  let a, b =
    if r.query.Query.e1.Query.entity <> r.query.Query.e2.Query.entity && a > b then (b, a)
    else (a, b)
  in
  let rank = if Methods.ranks r.method_ then Ranking.name r.scheme ^ "|" ^ string_of_int r.k else "-" in
  Printf.sprintf "%s|%s|%s|%s" (Methods.method_name r.method_) rank a b

let to_string (r : t) =
  Printf.sprintf "%s %s k=%d %s%s" (Methods.method_name r.method_) (Ranking.name r.scheme) r.k
    (Query.to_string r.query)
    (match r.deadline with
    | None -> ""
    | Some d -> " deadline=" ^ Budget.deadline_to_string d)
