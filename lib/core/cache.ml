(* Domain-safe result + plan caching for the serving tier.

   Two tiers share one mechanism:

   - the RESULT tier memoizes (method, canonical query, scheme, k) ->
     the full observable outcome of a query: its ranked (TID, score)
     list, the optimizer's strategy choice, and the isolated work
     counters.  Replaying the stored counters on a hit is what keeps the
     serving tier's outcome fingerprint bit-identical between cold and
     warm passes — a hit is indistinguishable from a re-evaluation.
   - the PLAN tier memoizes optimizer output (the regular-plan dynamic
     program and the regular-vs-ET choice) keyed by the canonical
     aligned spec, so a repeated query whose result fell out of the
     result tier still skips pricing entirely.

   Both tiers follow the topology registry's snapshot-under-[Atomic.t]
   pattern: the entry map lives in ONE immutable snapshot behind an
   [Atomic.t]; readers do a single [Atomic.get] and touch only immutable
   data, writers serialize on a mutex, build a new snapshot and publish
   it with [Atomic.set].  LRU recency is kept per entry in an [Atomic.t]
   tick stamped from a global counter, so a hit never takes the lock —
   eviction (under the lock, on insert past capacity) removes the entry
   with the smallest tick.

   Invalidation is EPOCH-BASED, not entry-walking: every entry is
   stamped with [Topology.generation] as observed before its value was
   computed, and a lookup whose entry stamp differs from the current
   generation is a miss (the entry is dropped in passing).  The SQL
   method re-registers topologies online; when such a registration
   actually mutates the registry — a new topology or a new decomposition
   — the generation bump instantly invalidates every older entry without
   the writer having to know which cached queries depended on the
   mutated state.  Walking entries instead would require per-entry
   dependency tracking (which topologies a ranked list read) and a
   writer-side sweep under the lock; the generation check costs one
   atomic load per lookup and cannot serve a stale result, at the price
   of discarding still-valid entries after a mutation — the right trade
   for a registry that is frozen in steady state. *)

module Counters = Topo_sql.Iterator.Counters
module Optimizer = Topo_sql.Optimizer
module Smap = Map.Make (String)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  insertions : int;
  entries : int;
}

type totals = { results : stats; plans : stats }

(* ------------------------------------------------------------------ *)
(* One tier                                                            *)

type 'v entry = { value : 'v; stamp : int; last_used : int Atomic.t }

type 'v snap = { map : 'v entry Smap.t; count : int }

type 'v tier = {
  snap : 'v snap Atomic.t;
  lock : Mutex.t;
  capacity : int;
  tick : int Atomic.t;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_evictions : int Atomic.t;
  c_invalidations : int Atomic.t;
  c_insertions : int Atomic.t;
}

let tier_create capacity =
  {
    snap = Atomic.make { map = Smap.empty; count = 0 };
    lock = Mutex.create ();
    capacity = max 1 capacity;
    tick = Atomic.make 0;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_evictions = Atomic.make 0;
    c_invalidations = Atomic.make 0;
    c_insertions = Atomic.make 0;
  }

let locked tier f =
  Mutex.lock tier.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tier.lock) f

(* Drop [key] if it still holds an entry of a stale generation — the entry
   seen by the reader may have been replaced concurrently, so re-check
   under the lock before removing. *)
let tier_drop_stale tier ~gen key =
  locked tier (fun () ->
      let s = Atomic.get tier.snap in
      match Smap.find_opt key s.map with
      | Some e when e.stamp <> gen ->
          Atomic.set tier.snap { map = Smap.remove key s.map; count = s.count - 1 }
      | Some _ | None -> ())

let tier_find tier ~gen key =
  match Smap.find_opt key (Atomic.get tier.snap).map with
  | None ->
      Atomic.incr tier.c_misses;
      None
  | Some e when e.stamp <> gen ->
      (* stamped under an older topology-registry generation: the value may
         have been computed against a superseded topology set *)
      Atomic.incr tier.c_invalidations;
      Atomic.incr tier.c_misses;
      tier_drop_stale tier ~gen key;
      None
  | Some e ->
      Atomic.incr tier.c_hits;
      Atomic.set e.last_used (Atomic.fetch_and_add tier.tick 1);
      Some e.value

let evict_lru tier s =
  let victim =
    Smap.fold
      (fun key e acc ->
        let tick = Atomic.get e.last_used in
        match acc with Some (_, best) when best <= tick -> acc | _ -> Some (key, tick))
      s.map None
  in
  match victim with
  | None -> s
  | Some (key, _) ->
      Atomic.incr tier.c_evictions;
      { map = Smap.remove key s.map; count = s.count - 1 }

let tier_add tier ~stamp key value =
  locked tier (fun () ->
      let s = Atomic.get tier.snap in
      let s =
        match Smap.find_opt key s.map with
        | Some e when e.stamp = stamp ->
            (* another domain won the race with an equivalent value *)
            s
        | Some _ | None ->
            Atomic.incr tier.c_insertions;
            let e = { value; stamp; last_used = Atomic.make (Atomic.fetch_and_add tier.tick 1) } in
            let had = Smap.mem key s.map in
            { map = Smap.add key e s.map; count = (if had then s.count else s.count + 1) }
      in
      let rec shrink s = if s.count > tier.capacity then shrink (evict_lru tier s) else s in
      Atomic.set tier.snap (shrink s))

let tier_stats tier =
  {
    hits = Atomic.get tier.c_hits;
    misses = Atomic.get tier.c_misses;
    evictions = Atomic.get tier.c_evictions;
    invalidations = Atomic.get tier.c_invalidations;
    insertions = Atomic.get tier.c_insertions;
    entries = (Atomic.get tier.snap).count;
  }

(* ------------------------------------------------------------------ *)
(* The two concrete tiers                                              *)

type result_payload = {
  ranked : (int * float option) list;
  strategy : Optimizer.strategy option;
  counters : Counters.snapshot;
}

type plan = Regular_plan of Topo_sql.Physical.t * float | Choice of Optimizer.strategy

type t = {
  registry : Topology.registry;
  result_tier : result_payload tier;
  plan_tier : plan tier;
}

let create ?(results = 1024) ?(plans = 512) registry =
  { registry; result_tier = tier_create results; plan_tier = tier_create plans }

let stamp t = Topology.generation t.registry

let find_result t ~key = tier_find t.result_tier ~gen:(stamp t) key

let add_result t ~key ~stamp:s payload = tier_add t.result_tier ~stamp:s key payload

(* When [check] carries the catalog, a [Regular_plan] hit is re-verified
   before being served: verification mode must hold for memoized plans
   exactly as for freshly priced ones, and a corrupted entry should fail
   loudly ([Plan_check.Plan_error]) rather than execute.  [Choice] hits
   carry no plan to verify and pass through. *)
let find_plan ?check t ~key =
  let hit = tier_find t.plan_tier ~gen:(stamp t) key in
  (match (hit, check) with
  | Some (Regular_plan (plan, _)), Some catalog -> Topo_sql.Plan_check.check catalog plan
  | (Some (Choice _) | Some (Regular_plan _) | None), _ -> ());
  hit

let add_plan t ~key ~stamp:s plan = tier_add t.plan_tier ~stamp:s key plan

(* ------------------------------------------------------------------ *)
(* Plan keys                                                           *)

let pred_key = function None -> "" | Some p -> Topo_sql.Expr.to_string p

let plan_key ~tag (spec : Optimizer.spec) =
  let dim (d : Optimizer.dim) =
    Printf.sprintf "%s/%s/%s/%s[%s]" d.Optimizer.dim_table d.Optimizer.dim_alias
      d.Optimizer.dim_key d.Optimizer.fact_col (pred_key d.Optimizer.dim_pred)
  in
  Printf.sprintf "%s|%s.%s:%s[%s]|%s.%s|k=%d|%s" tag spec.Optimizer.group_table
    spec.Optimizer.group_key spec.Optimizer.score_col
    (pred_key spec.Optimizer.group_pred)
    spec.Optimizer.fact_table spec.Optimizer.fact_group_col spec.Optimizer.k
    (String.concat ";" (List.map dim spec.Optimizer.dims))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let result_stats t = tier_stats t.result_tier

let plan_stats t = tier_stats t.plan_tier

let totals t = { results = result_stats t; plans = plan_stats t }

let zero_stats = { hits = 0; misses = 0; evictions = 0; invalidations = 0; insertions = 0; entries = 0 }

let zero_totals = { results = zero_stats; plans = zero_stats }

(* Per-batch deltas: cumulative counters subtracted, live entry counts
   taken from [after]. *)
let diff_stats ~before ~after =
  {
    hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    invalidations = after.invalidations - before.invalidations;
    insertions = after.insertions - before.insertions;
    entries = after.entries;
  }

let diff ~before ~after =
  {
    results = diff_stats ~before:before.results ~after:after.results;
    plans = diff_stats ~before:before.plans ~after:after.plans;
  }

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked
