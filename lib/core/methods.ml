open Topo_sql
module Sg = Topo_graph.Schema_graph
module Dg = Topo_graph.Data_graph

(* The nine evaluation methods of the experimental study (Section 6.1).
   This module owns the enum; [Engine] re-exports it so existing callers
   keep writing [Engine.Fast_top_k_opt]. *)
type method_ =
  | Sql
  | Full_top
  | Fast_top
  | Full_top_k
  | Fast_top_k
  | Full_top_k_et
  | Fast_top_k_et
  | Full_top_k_opt
  | Fast_top_k_opt

let all_methods =
  [
    Sql;
    Full_top;
    Fast_top;
    Full_top_k;
    Fast_top_k;
    Full_top_k_et;
    Fast_top_k_et;
    Full_top_k_opt;
    Fast_top_k_opt;
  ]

let method_name = function
  | Sql -> "SQL"
  | Full_top -> "Full-Top"
  | Fast_top -> "Fast-Top"
  | Full_top_k -> "Full-Top-k"
  | Fast_top_k -> "Fast-Top-k"
  | Full_top_k_et -> "Full-Top-k-ET"
  | Fast_top_k_et -> "Fast-Top-k-ET"
  | Full_top_k_opt -> "Full-Top-k-Opt"
  | Fast_top_k_opt -> "Fast-Top-k-Opt"

(* Non-top-k methods ignore the ranking scheme and k entirely; the
   serving tier's cache key normalizes on this. *)
let ranks = function
  | Sql | Full_top | Fast_top -> false
  | Full_top_k | Fast_top_k | Full_top_k_et | Fast_top_k_et | Full_top_k_opt | Fast_top_k_opt ->
      true

type aligned = { store : Store.t; ea : Query.endpoint; eb : Query.endpoint }

let align (ctx : Context.t) (q : Query.t) =
  let store, straight =
    Context.store_for ctx ~t1:q.Query.e1.Query.entity ~t2:q.Query.e2.Query.entity
  in
  if straight then { store; ea = q.Query.e1; eb = q.Query.e2 }
  else { store; ea = q.Query.e2; eb = q.Query.e1 }

(* Span helper: a no-op when no trace is threaded through. *)
let sp ?trace ?tags name f =
  match trace with None -> f () | Some t -> Topo_obs.Trace.with_span ?tags t name f

(* ------------------------------------------------------------------ *)
(* Plan builders                                                       *)

let scan_endpoint (e : Query.endpoint) alias =
  Physical.Scan { table = e.Query.entity; alias = Some alias; pred = e.Query.pred }

(* sigma(A) |x| fact |x| sigma(B) -> distinct TID.  Fact tables are
   (E1, E2, TID). *)
let tids_plan ctx aligned ~fact =
  let a_arity = Schema.arity (Table.schema (Catalog.find ctx.Context.catalog aligned.ea.Query.entity)) in
  let join_a =
    Physical.HashJoin
      {
        left = Physical.Scan { table = fact; alias = Some "F"; pred = None };
        right = scan_endpoint aligned.ea "A";
        left_cols = [| 0 |];
        (* E1 *)
        right_cols = [| 0 |];
        (* ID *)
        residual = None;
      }
  in
  let join_b =
    Physical.HashJoin
      {
        left = join_a;
        right = scan_endpoint aligned.eb "B";
        left_cols = [| 1 |];
        (* E2 *)
        right_cols = [| 0 |];
        residual = None;
      }
  in
  ignore a_arity;
  Physical.Distinct (Physical.Project { input = join_b; cols = [ 2 ] })

let run_tids ?(check = false) ?trace ctx plan =
  if check then Plan_check.check ctx.Context.catalog plan;
  sp ?trace "execute" (fun () ->
      Physical.run ctx.Context.catalog plan
      |> List.map (fun tuple -> Value.as_int tuple.(0))
      |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Pruned-topology base-data checks                                    *)

exception Found_pair of int * int

(* Enumerate candidate partners of [a] through the class [key]
   (handling same-endpoint-type reversals), calling [f b]. *)
let iter_class_partners ctx key ~a ~f =
  let p = Context.class_path ctx key in
  let last (ids : int array) = ids.(Array.length ids - 1) in
  Dg.iter_instance_paths_from ctx.Context.dg p ~source:a ~f:(fun ids -> f (last ids));
  let rev = Sg.reverse p in
  if p.Sg.types.(0) = p.Sg.types.(Array.length p.Sg.types - 1) && rev <> p then
    Dg.iter_instance_paths_from ctx.Context.dg rev ~source:a ~f:(fun ids -> f (last ids))

(* The bottom sub-query of SQL1: does a qualifying pair satisfy the pruned
   topology's path condition (under any of its derivations) without being
   excepted? *)
let pruned_find_one (ctx : Context.t) aligned (p : Topology.t) decomposition =
  match decomposition with
  | [] -> None
  | first_class :: other_classes -> (
      let a_ids = Context.satisfying_ids ctx aligned.ea in
      let checked = Hashtbl.create 64 in
      try
        Array.iter
          (fun a ->
            iter_class_partners ctx first_class ~a ~f:(fun b ->
                if not (Hashtbl.mem checked (a, b)) then begin
                  Hashtbl.add checked (a, b) ();
                  if
                    Context.satisfies ctx aligned.eb b
                    && List.for_all (fun key -> Context.class_exists_between ctx key ~a ~b) other_classes
                    && not
                         (Store.is_excepted aligned.store ctx.Context.catalog ~a ~b ~tid:p.Topology.tid)
                  then raise (Found_pair (a, b))
                end))
          a_ids;
        None
      with Found_pair (a, b) -> Some (a, b))

let pruned_find ctx aligned (p : Topology.t) =
  List.find_map (fun d -> pruned_find_one ctx aligned p d) (Atomic.get p.Topology.decompositions)

let pruned_check ctx aligned p = Option.is_some (pruned_find ctx aligned p)

(* ------------------------------------------------------------------ *)
(* Non-top-k methods                                                   *)

let full_top ?check ?trace ctx aligned =
  let plan =
    sp ?trace "build_plan"
      ~tags:[ ("fact", aligned.store.Store.alltops) ]
      (fun () -> tids_plan ctx aligned ~fact:aligned.store.Store.alltops)
  in
  run_tids ?check ?trace ctx plan

let fast_top ?check ?trace ctx aligned =
  let plan =
    sp ?trace "build_plan"
      ~tags:[ ("fact", aligned.store.Store.lefttops) ]
      (fun () -> tids_plan ctx aligned ~fact:aligned.store.Store.lefttops)
  in
  let base = run_tids ?check ?trace ctx plan in
  let extra =
    sp ?trace "pruned_checks"
      ~tags:[ ("pruned", string_of_int (List.length aligned.store.Store.pruned)) ]
      (fun () ->
        List.filter_map
          (fun (p : Topology.t) -> if pruned_check ctx aligned p then Some p.Topology.tid else None)
          aligned.store.Store.pruned)
  in
  List.sort_uniq compare (base @ extra)

let sql_method ?(check = false) ?trace (ctx : Context.t) aligned =
  (* One existence probe per observed topology; every probe recomputes pair
     topologies from base data (no sharing between probes — the method's
     documented inefficiency).  [check] is accepted for signature
     uniformity: this method builds no physical plans to verify. *)
  ignore check;
  let topinfo = Catalog.find ctx.Context.catalog aligned.store.Store.topinfo in
  let observed = ref [] in
  Table.iter (fun _ tuple -> observed := Value.as_int tuple.(0) :: !observed) topinfo;
  let a_ids = Context.satisfying_ids ctx aligned.ea in
  let t1 = aligned.store.Store.t1 and t2 = aligned.store.Store.t2 in
  let check tid =
    let p = Topology.find ctx.Context.registry tid in
    let first_classes =
      List.sort_uniq compare
        (List.filter_map
           (function c :: _ -> Some c | [] -> None)
           (Atomic.get p.Topology.decompositions))
    in
    let checked = Hashtbl.create 64 in
    try
      List.iter
        (fun first_class ->
          Array.iter
            (fun a ->
              iter_class_partners ctx first_class ~a ~f:(fun b ->
                  if not (Hashtbl.mem checked (a, b)) then begin
                    Hashtbl.add checked (a, b) ();
                    if Context.satisfies ctx aligned.eb b then begin
                      let row =
                        Compute.pair_topologies ctx.Context.dg ctx.Context.schema ctx.Context.registry
                          ~t1 ~t2 ~a ~b ~l:ctx.Context.l ~caps:ctx.Context.caps
                      in
                      if List.mem tid row.Compute.tids then raise (Found_pair (a, b))
                    end
                  end))
            a_ids)
        first_classes;
      false
    with Found_pair _ -> true
  in
  sp ?trace "existence_probes"
    ~tags:[ ("observed", string_of_int (List.length !observed)) ]
    (fun () -> List.filter check (List.sort compare !observed))

(* ------------------------------------------------------------------ *)
(* Top-k machinery                                                     *)

let optimizer_spec ctx aligned ~fact ~scheme ~k =
  ignore ctx;
  {
    Optimizer.group_table = aligned.store.Store.topinfo;
    group_key = "TID";
    score_col = Ranking.score_column scheme;
    group_pred = None;
    fact_table = fact;
    fact_group_col = "TID";
    dims =
      [
        {
          Optimizer.dim_table = aligned.ea.Query.entity;
          dim_alias = "A";
          dim_key = "ID";
          fact_col = "E1";
          dim_pred = aligned.ea.Query.pred;
        };
        {
          Optimizer.dim_table = aligned.eb.Query.entity;
          dim_alias = "B";
          dim_key = "ID";
          fact_col = "E2";
          dim_pred = aligned.eb.Query.pred;
        };
      ];
    k;
  }

let sort_desc results =
  List.sort
    (fun (ta, sa) (tb, sb) ->
      let c = Float.compare sb sa in
      if c <> 0 then c else Int.compare ta tb)
    results

(* One budget tick per early-termination step; no budget = never stop.
   Checked before pulling more work, so a budget that trips marks the
   evaluation [Partial] only when it actually cut the loop short. *)
let budget_stop = function Some b -> Budget.tick b | None -> false

(* Merge the stream of found topologies (descending score) with checks of
   pruned topologies, keeping global descending-score order, stopping at
   k results (or when the deadline budget trips — the results so far are
   the deterministic prefix of the full answer's merge order). *)
let merge_with_pruned ?budget ctx aligned ~scheme ~k ~next_witness =
  let pruned =
    List.map
      (fun (p : Topology.t) ->
        (p, Store.score_of aligned.store ctx.Context.catalog scheme p.Topology.tid))
      aligned.store.Store.pruned
    |> List.sort (fun (_, sa) (_, sb) -> Float.compare sb sa)
  in
  let results = ref [] in
  let count = ref 0 in
  let add tid score =
    results := (tid, score) :: !results;
    incr count
  in
  let rec loop pending pruned_left =
    if !count >= k then ()
    else if budget_stop budget then ()
    else begin
      let pending = match pending with Some _ -> pending | None -> next_witness () in
      match (pending, pruned_left) with
      | None, [] -> ()
      | Some (tid, score), ((p : Topology.t), pscore) :: rest when pscore > score ->
          if pruned_check ctx aligned p then add p.Topology.tid pscore;
          loop (Some (tid, score)) rest
      | Some (tid, score), _ ->
          add tid score;
          loop None pruned_left
      | None, (p, pscore) :: rest ->
          if pruned_check ctx aligned p then add p.Topology.tid pscore;
          loop None rest
    end
  in
  loop None pruned;
  sort_desc (List.rev !results)

(* Pull-based driver over a DGJ stack: yields one (tid, score) per group
   that produces a witness, in group (score) order. *)
let et_witness_stream ?(check = false) ?trace ctx aligned ~fact ~scheme ~impls =
  let spec = optimizer_spec ctx aligned ~fact ~scheme ~k:max_int in
  let plan =
    sp ?trace "build_et_plan" ~tags:[ ("fact", fact) ] (fun () ->
        Optimizer.et_plan ctx.Context.catalog spec ~impls ~dim_order:[ 0; 1 ])
  in
  if check then Plan_check.check ctx.Context.catalog plan;
  let it =
    (if check then Physical.lower_checked else Physical.lower) ctx.Context.catalog plan
  in
  it.Iterator.open_ ();
  let topinfo_schema = Table.schema (Catalog.find ctx.Context.catalog aligned.store.Store.topinfo) in
  let tid_pos = Schema.index_of topinfo_schema "TID" in
  let score_pos = Schema.index_of topinfo_schema (Ranking.score_column scheme) in
  let finished = ref false in
  fun () ->
    if !finished then None
    else
      match it.Iterator.next () with
      | None ->
          finished := true;
          it.Iterator.close ();
          None
      | Some tuple ->
          (* One witness per group suffices; skip the rest. *)
          it.Iterator.advance_group ();
          Some (Value.as_int tuple.(tid_pos), Value.as_float tuple.(score_pos))

let default_impls = [ `I; `I; `I ]

let full_top_k_et ?check ?trace ?budget ctx aligned ~scheme ~k ?(impls = default_impls) () =
  let next =
    et_witness_stream ?check ?trace ctx aligned ~fact:aligned.store.Store.alltops ~scheme ~impls
  in
  sp ?trace "stream_witnesses" (fun () ->
      let results = ref [] in
      let rec take n =
        if n > 0 && not (budget_stop budget) then
          match next () with None -> () | Some r -> results := r :: !results; take (n - 1)
      in
      take k;
      sort_desc (List.rev !results))

let fast_top_k_et ?check ?trace ?budget ctx aligned ~scheme ~k ?(impls = default_impls) () =
  let next =
    et_witness_stream ?check ?trace ctx aligned ~fact:aligned.store.Store.lefttops ~scheme ~impls
  in
  sp ?trace "merge_with_pruned" (fun () ->
      merge_with_pruned ?budget ctx aligned ~scheme ~k ~next_witness:next)

(* Plan-tier memoization of the optimizer's pricing searches.  The tier
   stays active under [~check:true]: a [Regular_plan] hit is re-run
   through Plan_check against the live catalog before it is served (see
   Cache.find_plan), so verification covers memoized plans too and a
   corrupted entry fails loudly instead of silently executing. *)
let regular_plan_cached ?cache ~check ctx spec =
  match cache with
  | Some c -> (
      let key = Cache.plan_key ~tag:"regular" spec in
      let chk = if check then Some ctx.Context.catalog else None in
      match Cache.find_plan ?check:chk c ~key with
      | Some (Cache.Regular_plan (plan, cost)) -> (plan, cost)
      | Some (Cache.Choice _) | None ->
          let stamp = Cache.stamp c in
          let plan, cost = Optimizer.regular_plan ~check ctx.Context.catalog spec in
          Cache.add_plan c ~key ~stamp (Cache.Regular_plan (plan, cost));
          (plan, cost))
  | None -> Optimizer.regular_plan ~check ctx.Context.catalog spec

(* A [Choice] entry records only the regular-vs-ET pick — there is no
   plan to re-verify — so checked runs bypass the tier and re-price,
   re-verifying every candidate the pricer visits. *)
let choose_cached ?cache ~check ctx spec =
  match cache with
  | Some c when not check -> (
      let key = Cache.plan_key ~tag:"choose" spec in
      match Cache.find_plan c ~key with
      | Some (Cache.Choice strategy) -> strategy
      | Some (Cache.Regular_plan _) | None ->
          let stamp = Cache.stamp c in
          let strategy = (Optimizer.choose ~check ctx.Context.catalog spec).Optimizer.strategy in
          Cache.add_plan c ~key ~stamp (Cache.Choice strategy);
          strategy)
  | Some _ | None -> (Optimizer.choose ~check ctx.Context.catalog spec).Optimizer.strategy

let regular_topk ?(check = false) ?trace ?cache ctx aligned ~fact ~scheme ~k =
  let spec = optimizer_spec ctx aligned ~fact ~scheme ~k in
  let plan, _cost =
    sp ?trace "optimize" ~tags:[ ("fact", fact) ] (fun () ->
        regular_plan_cached ?cache ~check ctx spec)
  in
  sp ?trace "execute" (fun () ->
      Physical.run ctx.Context.catalog plan
      |> List.map (fun tuple -> (Value.as_int tuple.(0), Value.as_float tuple.(1))))

let full_top_k ?check ?trace ?cache ctx aligned ~scheme ~k =
  regular_topk ?check ?trace ?cache ctx aligned ~fact:aligned.store.Store.alltops ~scheme ~k

let fast_top_k ?check ?trace ?cache ctx aligned ~scheme ~k =
  (* SQL4: top-k over LeftTops first; SQL5 checks for pruned topologies
     whose score could enter the result. *)
  let base =
    regular_topk ?check ?trace ?cache ctx aligned ~fact:aligned.store.Store.lefttops ~scheme ~k
  in
  let kth_score =
    if List.length base >= k then List.fold_left (fun acc (_, s) -> Float.min acc s) infinity base
    else neg_infinity
  in
  let candidates =
    List.filter_map
      (fun (p : Topology.t) ->
        let s = Store.score_of aligned.store ctx.Context.catalog scheme p.Topology.tid in
        if s > kth_score then Some (p, s) else None)
      aligned.store.Store.pruned
  in
  let extra =
    sp ?trace "pruned_checks"
      ~tags:[ ("candidates", string_of_int (List.length candidates)) ]
      (fun () ->
        List.filter_map
          (fun (p, s) -> if pruned_check ctx aligned p then Some (p.Topology.tid, s) else None)
          candidates)
  in
  let merged = sort_desc (base @ extra) in
  List.filteri (fun i _ -> i < k) merged

let strategy_name = function
  | Optimizer.Regular -> "regular"
  | Optimizer.Early_termination -> "early-termination"

let choose_strategy ~check ?trace ?cache ctx spec =
  match trace with
  | None -> choose_cached ?cache ~check ctx spec
  | Some t ->
      let span = Topo_obs.Trace.start t "choose" in
      let strategy =
        Fun.protect
          ~finally:(fun () -> Topo_obs.Trace.finish t span)
          (fun () -> choose_cached ?cache ~check ctx spec)
      in
      Topo_obs.Trace.add_tag span "strategy" (strategy_name strategy);
      strategy

let full_top_k_opt ?(check = false) ?trace ?cache ?budget ctx aligned ~scheme ~k =
  let spec = optimizer_spec ctx aligned ~fact:aligned.store.Store.alltops ~scheme ~k in
  match choose_strategy ~check ?trace ?cache ctx spec with
  | Optimizer.Regular -> (full_top_k ~check ?trace ?cache ctx aligned ~scheme ~k, Optimizer.Regular)
  | Optimizer.Early_termination ->
      (full_top_k_et ~check ?trace ?budget ctx aligned ~scheme ~k (), Optimizer.Early_termination)

let fast_top_k_opt ?(check = false) ?trace ?cache ?budget ctx aligned ~scheme ~k =
  let spec = optimizer_spec ctx aligned ~fact:aligned.store.Store.lefttops ~scheme ~k in
  match choose_strategy ~check ?trace ?cache ctx spec with
  | Optimizer.Regular -> (fast_top_k ~check ?trace ?cache ctx aligned ~scheme ~k, Optimizer.Regular)
  | Optimizer.Early_termination ->
      (fast_top_k_et ~check ?trace ?budget ctx aligned ~scheme ~k (), Optimizer.Early_termination)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

(* The single entry point over the nine-method enum: scores are lifted to
   a uniform [(tid, score option)] shape and the -Opt methods report
   their strategy choice.  [Engine], the serving tier and the benchmarks
   all route through this instead of hand-written nine-way matches.
   [impls] only reaches the -ET methods; [cache] (the plan tier) only the
   methods that price plans; [budget] (the deadline) only the
   early-termination loops — the other methods run to completion, which
   keeps every complete answer bit-identical with and without a
   deadline. *)
let dispatch method_ ?(check = false) ?trace ?impls ?cache ?budget ctx aligned ~scheme ~k =
  let with_scores l = List.map (fun (tid, s) -> (tid, Some s)) l in
  let plain l = List.map (fun tid -> (tid, None)) l in
  match method_ with
  | Sql -> (plain (sql_method ~check ?trace ctx aligned), None)
  | Full_top -> (plain (full_top ~check ?trace ctx aligned), None)
  | Fast_top -> (plain (fast_top ~check ?trace ctx aligned), None)
  | Full_top_k -> (with_scores (full_top_k ~check ?trace ?cache ctx aligned ~scheme ~k), None)
  | Fast_top_k -> (with_scores (fast_top_k ~check ?trace ?cache ctx aligned ~scheme ~k), None)
  | Full_top_k_et ->
      (with_scores (full_top_k_et ~check ?trace ?budget ctx aligned ~scheme ~k ?impls ()), None)
  | Fast_top_k_et ->
      (with_scores (fast_top_k_et ~check ?trace ?budget ctx aligned ~scheme ~k ?impls ()), None)
  | Full_top_k_opt ->
      let results, strategy = full_top_k_opt ~check ?trace ?cache ?budget ctx aligned ~scheme ~k in
      (with_scores results, Some strategy)
  | Fast_top_k_opt ->
      let results, strategy = fast_top_k_opt ~check ?trace ?cache ?budget ctx aligned ~scheme ~k in
      (with_scores results, Some strategy)
