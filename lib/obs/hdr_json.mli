(** JSON export for {!Topo_util.Hdr} histograms.

    Lives here (not in [topo_util]) because the library stack's
    dependency arrow points from observability down to util, never up. *)

(** [summary_ms h] is the percentile summary object consumed by
    BENCH_LATENCY.json and [check_regress]: [count], then [p50_ms],
    [p95_ms], [p99_ms], [p999_ms], [min_ms], [max_ms], [mean_ms]
    (nanosecond observations scaled to milliseconds).  An empty
    histogram exports null percentiles — "unmeasured", never "zero". *)
val summary_ms : Topo_util.Hdr.t -> Json.t

(** [buckets h] dumps every non-empty bucket as
    [{low_ns, high_ns, count}], ascending. *)
val buckets : Topo_util.Hdr.t -> Json.t
