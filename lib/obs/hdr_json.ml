(* JSON export for Topo_util.Hdr histograms.

   Lives on the observability side because the dependency arrow points
   this way: topo_util is the bottom of the library stack and cannot see
   Json, while every consumer of the export (bench snapshots, the CLI)
   already links topo_obs. *)

module Hdr = Topo_util.Hdr

let ms_of_ns ns = float_of_int ns /. 1.0e6

let quantiles = [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99); ("p999", 0.999) ]

(* Percentile summary in milliseconds — the shape BENCH_LATENCY.json and
   check_regress speak.  Null percentiles mean "empty histogram", never
   "zero latency". *)
let summary_ms h =
  Json.Obj
    (("count", Json.int (Hdr.count h))
    ::
    (if Hdr.count h = 0 then
       List.map (fun (name, _) -> (name ^ "_ms", Json.Null)) quantiles
       @ [ ("min_ms", Json.Null); ("max_ms", Json.Null); ("mean_ms", Json.Null) ]
     else
       List.map (fun (name, q) -> (name ^ "_ms", Json.Num (ms_of_ns (Hdr.quantile h q)))) quantiles
       @ [
           ("min_ms", Json.Num (ms_of_ns (Hdr.min_value h)));
           ("max_ms", Json.Num (ms_of_ns (Hdr.max_value h)));
           ("mean_ms", Json.Num (Hdr.mean h /. 1.0e6));
         ]))

(* Full bucket dump, for offline analysis of a recorded distribution. *)
let buckets h =
  Json.Arr
    (List.map
       (fun (low, high, count) ->
         Json.Obj
           [ ("low_ns", Json.int low); ("high_ns", Json.int high); ("count", Json.int count) ])
       (Hdr.buckets h))
