type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- rendering -------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> escape_into buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_into buf key;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) value)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Bad of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub text !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub text !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (match Uchar.of_int code with
                   | u -> Buffer.add_utf_8_uchar buf u
                   | exception Invalid_argument _ -> fail "bad \\u code point")
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      while !pos < n && (match text.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- utilities -------------------------------------------------------- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
