(** Lightweight hierarchical trace spans.

    A trace is a forest of named spans timed with the OS monotonic clock
    (via bechamel's [clock_gettime(CLOCK_MONOTONIC)] stub, so wall-clock
    adjustments never produce negative durations).  Spans nest: starting a
    span while another is open makes it a child, like the phase structure
    of a query (align → optimize → execute).  Tags attach string key/value
    pairs to a span (method name, row counts, costs).

    Exporters render the forest as an indented text tree or as JSON
    (consumed by the CLI's [--json-out] and the bench snapshots); the JSON
    round-trips through {!Json.parse}. *)

type span

type t

(** [create ()] is an empty trace; its clock epoch is the creation time. *)
val create : unit -> t

(** [start t ?tags name] opens a span as a child of the innermost open
    span (or as a root) and returns it. *)
val start : t -> ?tags:(string * string) list -> string -> span

(** [finish t span] stops the span's clock and re-opens its parent.
    Finishing a span whose children are still open finishes them too. *)
val finish : t -> span -> unit

(** [with_span t ?tags name f] brackets [f ()] in a span; exception-safe. *)
val with_span : t -> ?tags:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [add_tag span key value] appends a tag (last write wins on export). *)
val add_tag : span -> string -> string -> unit

(** [name span]. *)
val name : span -> string

(** [duration_s span] is the elapsed seconds, up to now for an open span. *)
val duration_s : span -> float

(** [roots t] are the top-level spans in start order. *)
val roots : t -> span list

(** [span_count t] is the total number of spans (open or finished) in the
    trace.  Traces are single-domain objects — the serving tier attaches a
    private trace to each in-flight query — and this count lets tests
    assert that per-query isolation. *)
val span_count : t -> int

(** [children span] in start order. *)
val children : span -> span list

(** [tags span] in insertion order. *)
val tags : span -> (string * string) list

(** [to_text t] is an indented tree, one span per line with duration and
    tags. *)
val to_text : t -> string

(** [to_json t] is [{"spans": [...]}]; each span carries [name],
    [start_ns] (relative to the trace epoch), [dur_ns], [tags] and
    [children]. *)
val to_json : t -> Json.t
