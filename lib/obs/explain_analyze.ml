open Topo_sql

type node = {
  label : string;
  est_rows : float;
  est_cost : float;
  actual_rows : int;
  opens : int;
  nexts : int;
  advances : int;
  time_s : float;
  self_s : float;
  misestimate : bool;
  children : node list;
}

type report = { root : node; total_s : float; row_count : int }

let flag_ratio = 10.0

let off_by_10x ~est ~actual =
  let a = float_of_int actual in
  if a < 0.5 then est >= flag_ratio
  else if est <= 0.0 then a >= flag_ratio
  else est /. a > flag_ratio || a /. est > flag_ratio

let rec zip (e : Estimate.node) (s : Op_stats.annotated) =
  let children = List.map2 zip e.Estimate.children s.Op_stats.children in
  let st = s.Op_stats.stats in
  let child_time = List.fold_left (fun acc c -> acc +. c.time_s) 0.0 children in
  {
    label = st.Op_stats.label;
    est_rows = e.Estimate.est.Estimate.rows;
    est_cost = e.Estimate.est.Estimate.cost;
    actual_rows = st.Op_stats.rows;
    opens = st.Op_stats.opens;
    nexts = st.Op_stats.nexts;
    advances = st.Op_stats.advances;
    time_s = st.Op_stats.time_s;
    self_s = Float.max 0.0 (st.Op_stats.time_s -. child_time);
    misestimate = off_by_10x ~est:e.Estimate.est.Estimate.rows ~actual:st.Op_stats.rows;
    children;
  }

let run catalog plan =
  let estimates = Estimate.annotate catalog plan in
  let it, stats = Physical.lower_instrumented catalog plan in
  let t0 = Unix.gettimeofday () in
  let rows = Iterator.to_list it in
  let total_s = Unix.gettimeofday () -. t0 in
  ({ root = zip estimates stats; total_s; row_count = List.length rows }, rows)

let of_sql ?check catalog text = run catalog (Sql.to_plan ?check catalog text)

let misestimated report =
  let rec go acc n =
    let acc = if n.misestimate then n :: acc else acc in
    List.fold_left go acc n.children
  in
  List.rev (go [] report.root)

let ratio_str ~est ~actual =
  let a = float_of_int actual in
  if a < 0.5 && est < 0.5 then "1.0x"
  else if a < 0.5 then Printf.sprintf ">%.0fx" est
  else if est <= 0.0 then Printf.sprintf ">%.0fx" a
  else
    let r = if est >= a then est /. a else a /. est in
    Printf.sprintf "%.1fx" r

let est_str f = if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.0f" f else Printf.sprintf "%.3g" f

let to_text report =
  let buf = Buffer.create 512 in
  let rec go depth n =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s  rows=%d est=%s (%s) nexts=%d%s time=%.3fms self=%.3fms cost=%s\n"
         (String.make (2 * depth) ' ')
         (if n.misestimate then "!" else " ")
         n.label n.actual_rows (est_str n.est_rows)
         (ratio_str ~est:n.est_rows ~actual:n.actual_rows)
         n.nexts
         (if n.advances > 0 then Printf.sprintf " advances=%d" n.advances else "")
         (n.time_s *. 1000.0) (n.self_s *. 1000.0) (est_str n.est_cost));
    List.iter (go (depth + 1)) n.children
  in
  Buffer.add_string buf
    (Printf.sprintf "%d row(s) in %.3fms; %d operator(s) misestimated >%.0fx\n" report.row_count
       (report.total_s *. 1000.0)
       (List.length (misestimated report))
       flag_ratio);
  go 0 report.root;
  Buffer.contents buf

let to_json report =
  let rec node_json n =
    Json.Obj
      [
        ("operator", Json.Str n.label);
        ("actual_rows", Json.int n.actual_rows);
        ("est_rows", Json.Num n.est_rows);
        ("est_cost", Json.Num n.est_cost);
        ("opens", Json.int n.opens);
        ("nexts", Json.int n.nexts);
        ("advances", Json.int n.advances);
        ("time_ms", Json.Num (n.time_s *. 1000.0));
        ("self_ms", Json.Num (n.self_s *. 1000.0));
        ("misestimate", Json.Bool n.misestimate);
        ("children", Json.Arr (List.map node_json n.children));
      ]
  in
  Json.Obj
    [
      ("row_count", Json.int report.row_count);
      ("total_ms", Json.Num (report.total_s *. 1000.0));
      ("plan", node_json report.root);
    ]
