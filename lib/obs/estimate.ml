open Topo_sql

type est = { rows : float; cost : float }

type node = { label : string; est : est; children : node list }

(* Abstract cost units, kept in lockstep with Optimizer's constants (one
   hash-index probe = 1.0). *)
let c_scan = 0.25

let c_hash = 0.6

let c_sort = 0.8

let c_probe = 1.0

let base_rows catalog table = float_of_int (Table.row_count (Catalog.find catalog table))

let base_sel catalog table pred =
  match pred with
  | None -> 1.0
  | Some p ->
      Table_stats.predicate_selectivity (Catalog.stats catalog table)
        (Table.schema (Catalog.find catalog table))
        p

let distinct_of catalog table col_pos =
  max 1 (Table_stats.distinct (Catalog.stats catalog table) col_pos)

(* Textbook default selectivities for predicates whose columns cannot be
   traced to a base table (join residuals, filters over computed values). *)
let rec default_sel (e : Expr.t) =
  match e with
  | Expr.Cmp (Expr.Eq, _, _) -> 0.1
  | Expr.Cmp (Expr.Ne, _, _) -> 0.9
  | Expr.Cmp (_, _, _) -> 0.33
  | Expr.Contains (_, _) -> 0.05
  | Expr.IsNull _ -> 0.05
  | Expr.Not e -> 1.0 -. default_sel e
  | Expr.And l -> List.fold_left (fun acc e -> acc *. default_sel e) 1.0 l
  | Expr.Or l -> 1.0 -. List.fold_left (fun acc e -> acc *. (1.0 -. default_sel e)) 1.0 l
  | Expr.Col _ | Expr.Const _ -> 1.0

let rec resolve_col catalog (plan : Physical.t) pos =
  let arity p = Schema.arity (Physical.schema catalog p) in
  match plan with
  | Physical.Scan { table; _ } | Physical.OrderedScan { table; _ } | Physical.IndexProbe { table; _ }
    ->
      if pos >= 0 && pos < Schema.arity (Table.schema (Catalog.find catalog table)) then
        Some (table, pos)
      else None
  | Physical.Filter { input; _ } | Physical.Sort { input; _ } -> resolve_col catalog input pos
  | Physical.Distinct input | Physical.Limit (_, input) -> resolve_col catalog input pos
  | Physical.Project { input; cols } -> (
      match List.nth_opt cols pos with Some p -> resolve_col catalog input p | None -> None)
  | Physical.HashJoin { left; right; _ }
  | Physical.MergeJoin { left; right; _ }
  | Physical.NLJoin { left; right; _ } ->
      let la = arity left in
      if pos < la then resolve_col catalog left pos else resolve_col catalog right (pos - la)
  | Physical.AntiJoin { left; _ } | Physical.SemiJoin { left; _ } -> resolve_col catalog left pos
  | Physical.IndexNL { left; table; _ } | Physical.Idgj { left; table; _ } | Physical.Hdgj { left; table; _ }
    ->
      let la = arity left in
      if pos < la then resolve_col catalog left pos
      else
        let p = pos - la in
        if p < Schema.arity (Table.schema (Catalog.find catalog table)) then Some (table, p)
        else None
  | Physical.Union (a, _) -> resolve_col catalog a pos
  | Physical.Compute _ | Physical.Aggregate _ -> None

(* System-R equi-join selectivity 1/max(d_left, d_right), with whichever
   side resolves to a base column; 0.1 when neither does. *)
let join_sel catalog ~left_plan ~left_pos ~right_plan ~right_pos =
  let d plan pos =
    Option.map (fun (t, p) -> distinct_of catalog t p) (resolve_col catalog plan pos)
  in
  match (d left_plan left_pos, d right_plan right_pos) with
  | Some dl, Some dr -> 1.0 /. float_of_int (max dl dr)
  | Some d, None | None, Some d -> 1.0 /. float_of_int d
  | None, None -> 0.1

let residual_sel = function None -> 1.0 | Some p -> default_sel p

let rec map_cols f (e : Expr.t) : Expr.t option =
  let open Expr in
  let all l = let l' = List.filter_map (map_cols f) l in if List.length l' = List.length l then Some l' else None in
  match e with
  | Col c -> Option.map (fun p -> Col p) (f c)
  | Const v -> Some (Const v)
  | Cmp (op, a, b) -> (
      match (map_cols f a, map_cols f b) with Some a, Some b -> Some (Cmp (op, a, b)) | _ -> None)
  | And l -> Option.map (fun l -> And l) (all l)
  | Or l -> Option.map (fun l -> Or l) (all l)
  | Not e -> Option.map (fun e -> Not e) (map_cols f e)
  | Contains (e, kw) -> Option.map (fun e -> Contains (e, kw)) (map_cols f e)
  | IsNull e -> Option.map (fun e -> IsNull e) (map_cols f e)

(* Selectivity of a predicate over a derived input: when every column
   traces to the same base table, remap the positions and use that table's
   histograms; otherwise fall back to the defaults. *)
let derived_sel catalog input pred =
  let cols = Expr.columns pred in
  let resolutions = List.map (fun c -> resolve_col catalog input c) cols in
  let same_table =
    match resolutions with
    | Some (t0, _) :: rest when List.for_all (function Some (t, _) -> t = t0 | None -> false) rest ->
        Some t0
    | _ -> None
  in
  match same_table with
  | Some t -> (
      let mapping = List.combine cols resolutions in
      let remap c = match List.assoc_opt c mapping with Some (Some (_, p)) -> Some p | _ -> None in
      match map_cols remap pred with
      | Some pred' -> base_sel catalog t (Some pred')
      | None -> default_sel pred)
  | None -> default_sel pred

let annotate catalog plan =
  let rec go (plan : Physical.t) =
    let label = Physical.node_label plan in
    let mk rows cost children = { label; est = { rows = Float.max 0.0 rows; cost }; children } in
    match plan with
    | Physical.Scan { table; pred; _ } ->
        let n = base_rows catalog table in
        mk (n *. base_sel catalog table pred) (n *. c_scan) []
    | Physical.OrderedScan { table; pred; _ } ->
        let n = base_rows catalog table in
        mk (n *. base_sel catalog table pred) (n *. c_scan *. 1.5) []
    | Physical.IndexProbe { table; cols; pred; _ } ->
        let n = base_rows catalog table in
        let t = Catalog.find catalog table in
        let d =
          List.fold_left
            (fun acc col -> acc * distinct_of catalog table (Schema.index_of (Table.schema t) col))
            1 cols
        in
        let matches = n /. float_of_int (max 1 d) *. base_sel catalog table pred in
        mk matches (c_probe +. (0.1 *. matches)) []
    | Physical.Filter { input; pred } ->
        let child = go input in
        let sel = derived_sel catalog input pred in
        mk (child.est.rows *. sel) (child.est.cost +. (0.05 *. child.est.rows)) [ child ]
    | Physical.Project { input; _ } ->
        let child = go input in
        mk child.est.rows (child.est.cost +. (0.01 *. child.est.rows)) [ child ]
    | Physical.HashJoin { left; right; left_cols; right_cols; residual } ->
        let l = go left and r = go right in
        let s =
          join_sel catalog ~left_plan:left ~left_pos:left_cols.(0) ~right_plan:right
            ~right_pos:right_cols.(0)
        in
        let out = l.est.rows *. r.est.rows *. s *. residual_sel residual in
        mk out
          (l.est.cost +. r.est.cost +. (c_hash *. (l.est.rows +. r.est.rows)) +. (0.1 *. out))
          [ l; r ]
    | Physical.MergeJoin { left; right; left_cols; right_cols; residual } ->
        let l = go left and r = go right in
        let s =
          join_sel catalog ~left_plan:left ~left_pos:left_cols.(0) ~right_plan:right
            ~right_pos:right_cols.(0)
        in
        let out = l.est.rows *. r.est.rows *. s *. residual_sel residual in
        mk out
          (l.est.cost +. r.est.cost +. (0.3 *. (l.est.rows +. r.est.rows)) +. (0.1 *. out))
          [ l; r ]
    | Physical.NLJoin { left; right; residual } ->
        let l = go left and r = go right in
        let out = l.est.rows *. r.est.rows *. residual_sel residual in
        mk out (l.est.cost +. r.est.cost +. (0.1 *. l.est.rows *. Float.max 1.0 r.est.rows)) [ l; r ]
    | Physical.IndexNL { left; table; table_cols; left_cols; pred; residual; _ }
    | Physical.Idgj { left; table; table_cols; left_cols; pred; residual; _ }
    | Physical.Hdgj { left; table; table_cols; left_cols; pred; residual; _ } ->
        let l = go left in
        let n = base_rows catalog table in
        let key_pos = Schema.index_of (Table.schema (Catalog.find catalog table)) (List.hd table_cols) in
        let s =
          match resolve_col catalog left left_cols.(0) with
          | Some (lt, lp) ->
              Table_stats.join_selectivity ~left:(Catalog.stats catalog lt) ~left_col:lp
                ~right:(Catalog.stats catalog table) ~right_col:key_pos
          | None -> 1.0 /. float_of_int (distinct_of catalog table key_pos)
        in
        let psel = base_sel catalog table pred in
        let out = l.est.rows *. n *. s *. psel *. residual_sel residual in
        let per_probe =
          match plan with
          | Physical.Hdgj _ ->
              (* HDGJ re-scans the inner relation per group. *)
              n *. c_scan
          | _ -> c_probe +. (0.1 *. n *. s)
        in
        mk out (l.est.cost +. (l.est.rows *. per_probe) +. (0.1 *. out)) [ l ]
    | Physical.Sort { input; _ } ->
        let child = go input in
        let n = Float.max 1.0 child.est.rows in
        mk child.est.rows (child.est.cost +. (c_sort *. n *. Float.log2 (n +. 2.0))) [ child ]
    | Physical.Distinct input ->
        let child = go input in
        (* Upper bound: without multi-column distinct statistics the
           duplicate factor is unknown. *)
        mk child.est.rows (child.est.cost +. (c_hash *. child.est.rows)) [ child ]
    | Physical.Union (a, b) ->
        let l = go a and r = go b in
        mk (l.est.rows +. r.est.rows) (l.est.cost +. r.est.cost) [ l; r ]
    | Physical.AntiJoin { left; right; _ } | Physical.SemiJoin { left; right; _ } ->
        let l = go left and r = go right in
        mk (l.est.rows *. 0.5)
          (l.est.cost +. r.est.cost +. (c_hash *. (l.est.rows +. r.est.rows)))
          [ l; r ]
    | Physical.Limit (k, input) ->
        let child = go input in
        mk (Float.min (float_of_int k) child.est.rows) child.est.cost [ child ]
    | Physical.Compute { input; _ } ->
        let child = go input in
        mk child.est.rows (child.est.cost +. (0.05 *. child.est.rows)) [ child ]
    | Physical.Aggregate { input; keys; _ } ->
        let child = go input in
        let out = if keys = [] then 1.0 else Float.max 1.0 (child.est.rows /. 10.0) in
        mk out (child.est.cost +. (c_hash *. child.est.rows)) [ child ]
  in
  go plan
