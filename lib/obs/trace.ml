type span = {
  span_name : string;
  start_ns : int64;
  mutable stop_ns : int64 option;
  mutable span_tags : (string * string) list;  (* reversed *)
  mutable subs : span list;  (* reversed *)
}

type t = {
  epoch_ns : int64;
  mutable root_spans : span list;  (* reversed *)
  mutable stack : span list;  (* innermost open span first *)
}

let now_ns () = Monotonic_clock.now ()

let create () = { epoch_ns = now_ns (); root_spans = []; stack = [] }

let start t ?(tags = []) name =
  let span =
    { span_name = name; start_ns = now_ns (); stop_ns = None; span_tags = List.rev tags; subs = [] }
  in
  (match t.stack with
  | parent :: _ -> parent.subs <- span :: parent.subs
  | [] -> t.root_spans <- span :: t.root_spans);
  t.stack <- span :: t.stack;
  span

let finish t span =
  let stop = now_ns () in
  let close s = if s.stop_ns = None then s.stop_ns <- Some stop in
  (* Pop the stack down to (and including) [span]; any deeper span still
     open is closed with it.  Finishing a span that is not on the stack
     (already finished, or from another trace) only stamps its stop time. *)
  if List.memq span t.stack then begin
    let rec pop = function
      | s :: rest ->
          close s;
          if s == span then t.stack <- rest else pop rest
      | [] -> t.stack <- []
    in
    pop t.stack
  end
  else close span

let with_span t ?tags name f =
  let span = start t ?tags name in
  Fun.protect ~finally:(fun () -> finish t span) f

let add_tag span key value = span.span_tags <- (key, value) :: span.span_tags

let name span = span.span_name

let duration_s span =
  let stop = match span.stop_ns with Some s -> s | None -> now_ns () in
  Int64.to_float (Int64.sub stop span.start_ns) /. 1e9

let roots t = List.rev t.root_spans

(* Traces are single-domain objects: the serving tier creates one trace
   per in-flight query and only the domain evaluating that query writes
   to it, so no synchronization is needed here.  [span_count] lets tests
   assert that isolation (a query's trace holds exactly its own spans). *)
let span_count t =
  let rec count span = 1 + List.fold_left (fun acc s -> acc + count s) 0 span.subs in
  List.fold_left (fun acc s -> acc + count s) 0 t.root_spans

let children span = List.rev span.subs

let tags span =
  (* Insertion order, keeping only the last write per key. *)
  let all = List.rev span.span_tags in
  List.filteri
    (fun i (k, _) -> not (List.exists (fun (k', _) -> k' = k) (List.filteri (fun j _ -> j > i) all)))
    all

let to_text t =
  let buf = Buffer.create 256 in
  let rec go depth span =
    let tag_str =
      match tags span with
      | [] -> ""
      | l -> "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "]"
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  %.3fms%s%s\n"
         (String.make (2 * depth) ' ')
         span.span_name
         (duration_s span *. 1000.0)
         (if span.stop_ns = None then " (open)" else "")
         tag_str);
    List.iter (go (depth + 1)) (children span)
  in
  List.iter (go 0) (roots t);
  Buffer.contents buf

let to_json t =
  let rec span_json span =
    let stop = match span.stop_ns with Some s -> s | None -> now_ns () in
    Json.Obj
      [
        ("name", Json.Str span.span_name);
        ("start_ns", Json.Num (Int64.to_float (Int64.sub span.start_ns t.epoch_ns)));
        ("dur_ns", Json.Num (Int64.to_float (Int64.sub stop span.start_ns)));
        ("tags", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (tags span)));
        ("children", Json.Arr (List.map span_json (children span)));
      ]
  in
  Json.Obj [ ("spans", Json.Arr (List.map span_json (roots t))) ]
