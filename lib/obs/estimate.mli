(** Per-node cardinality and cost estimates for a physical plan.

    This is the optimizer's pricing made inspectable: the same catalog
    statistics ({!Topo_sql.Table_stats} histograms, distinct counts, the
    System-R join-selectivity formula) and the same abstract cost units as
    {!Topo_sql.Optimizer} (one hash-index probe = 1.0), evaluated bottom-up
    over an arbitrary {!Topo_sql.Physical.t} so EXPLAIN ANALYZE can print
    the estimate next to each operator's measured numbers.

    Estimates over derived inputs are best-effort: join columns are traced
    back to base tables through position-preserving operators
    ({!resolve_col}); predicates that cannot be resolved fall back to
    textbook default selectivities.  [Distinct] keeps its input estimate
    (an upper bound) — exactly the kind of node the estimate-vs-actual
    report is designed to flag. *)

type est = { rows : float;  (** estimated output cardinality *) cost : float  (** cumulative abstract cost, subtree included *) }

(** Estimate tree mirroring the plan in {!Topo_sql.Physical.children}
    order. *)
type node = { label : string; est : est; children : node list }

(** [annotate catalog plan] estimates every node bottom-up. *)
val annotate : Topo_sql.Catalog.t -> Topo_sql.Physical.t -> node

(** [resolve_col catalog plan pos] traces output column [pos] of [plan]
    back to [(base_table, column_position)] when the plan only renames,
    reorders, filters or concatenates base columns on the way; [None] for
    computed or aggregated columns. *)
val resolve_col : Topo_sql.Catalog.t -> Topo_sql.Physical.t -> int -> (string * int) option
