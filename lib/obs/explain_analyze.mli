(** EXPLAIN ANALYZE: execute a plan instrumented and report, per operator,
    the measured rows / next() calls / wall time next to the optimizer's
    estimated cardinality and cost, flagging nodes whose estimate is off by
    more than 10x (the validation the paper's Figures 12-16 perform by
    hand).

    Backs [toposearch explain --analyze] and the bench's per-operator JSON
    snapshots. *)

type node = {
  label : string;
  est_rows : float;  (** {!Estimate} cardinality *)
  est_cost : float;  (** cumulative abstract cost *)
  actual_rows : int;
  opens : int;
  nexts : int;
  advances : int;
  time_s : float;  (** inclusive wall time *)
  self_s : float;  (** [time_s] minus the children's [time_s] *)
  misestimate : bool;  (** estimate and actual differ by more than 10x *)
  children : node list;
}

type report = {
  root : node;
  total_s : float;  (** wall time of the full open/drain/close *)
  row_count : int;  (** result cardinality *)
}

(** [run catalog plan] lowers instrumented, drains, and zips the stats with
    the estimates. *)
val run : Topo_sql.Catalog.t -> Topo_sql.Physical.t -> report * Topo_sql.Tuple.t list

(** [of_sql catalog text] parses, plans ([?check] as {!Topo_sql.Sql.to_plan},
    default true) and {!run}s.
    @raise Topo_sql.Sql_parser.Parse_error (etc.) on bad input. *)
val of_sql : ?check:bool -> Topo_sql.Catalog.t -> string -> report * Topo_sql.Tuple.t list

(** [misestimated report] collects the flagged nodes, preorder. *)
val misestimated : report -> node list

(** [to_text report] is the indented per-operator tree, one line per node:

    {v HashJoin  rows=12 est=30 (2.5x) nexts=13 time=0.12ms self=0.04ms v}

    Flagged nodes get a [!] marker. *)
val to_text : report -> string

(** [to_json report] is the machine-readable form used by the CLI's
    [--json-out] and the bench snapshots. *)
val to_json : report -> Json.t
