(** A minimal JSON value kit for the observability exporters.

    The repository has no external JSON dependency, so traces and
    explain-analyze reports are rendered and (for round-trip tests and the
    CLI smoke test) re-parsed with this module.  Numbers are modelled as
    floats; [to_string] prints integral values without a decimal point and
    non-integral values with enough digits ([%.17g]) that
    [parse (to_string v)] reproduces [v] exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [int n] is [Num (float_of_int n)]. *)
val int : int -> t

(** [to_string ?pretty v] renders compact JSON, or indented when [pretty]
    (default false).  Non-finite numbers render as [null]. *)
val to_string : ?pretty:bool -> t -> string

(** [parse text] parses one JSON value (surrounding whitespace allowed).
    Returns [Error msg] with a position on malformed input. *)
val parse : string -> (t, string) result

(** [equal a b] is structural equality; object fields compare in order,
    numbers with {!Float.equal}. *)
val equal : t -> t -> bool

(** [member key v] looks a field up in an [Obj]; [None] otherwise. *)
val member : string -> t -> t option
