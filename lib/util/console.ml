(* stdout presentation for the bench and CLI executables.  Split out of
   Pretty so the hot-path modules (Sql uses Pretty.render for EXPLAIN
   text) never link stdout printing — topolint's hot-path rule checks
   exactly that. *)

let print ~header ?aligns rows = print_string (Pretty.render ~header ?aligns rows)

let section title =
  let rule = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" rule title rule

let kv pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "%-*s: %s\n" width k v) pairs
