(** HDR-style log-bucketed latency histogram.

    Records non-negative integers (by convention, nanoseconds) into
    log-scaled buckets: values below 64 are exact, and each further
    power of two is split into 64 sub-buckets, bounding the relative
    quantization error of {!quantile} by 1/64 (~1.6%) at every scale.
    {!count}, {!min_value}, {!max_value} and {!mean} are exact.

    Single-writer contract (like {!Dyn}): one domain records into its
    own histogram; finished histograms are combined with {!merge} on one
    domain.  A histogram must not be shared live across domains. *)

type t

val create : unit -> t

(** [record t v] adds one observation.  Negative values clamp to 0. *)
val record : t -> int -> unit

(** Exact number of recorded observations. *)
val count : t -> int

(** Exact smallest recorded value (0 when empty). *)
val min_value : t -> int

(** Exact largest recorded value (0 when empty). *)
val max_value : t -> int

(** Exact arithmetic mean (0.0 when empty). *)
val mean : t -> float

(** [quantile t q] for [q] in [0, 1]: the midpoint of the bucket holding
    the rank-[ceil (q * count)] observation, clamped into the exact
    observed [min, max] — so [quantile t 0.0 = min_value t] and
    [quantile t 1.0 = max_value t], and values below 64 are returned
    exactly.  0 when empty. *)
val quantile : t -> float -> int

(** [merge ~into src] adds every bucket, the count, and the sum of [src]
    into [into]; min/max combine exactly.  [src] is unchanged. *)
val merge : into:t -> t -> unit

(** Non-empty buckets as [(low, high, count)] triples, inclusive value
    ranges, ascending.  The counts sum to {!count}. *)
val buckets : t -> (int * int * int) list
