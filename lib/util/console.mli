(** stdout rendering for the bench and CLI executables.

    These wrappers live apart from {!Pretty} (which is pure and linked
    into the query engine for EXPLAIN rendering) so that no module on
    the engine's hot path prints to stdout. *)

(** [print ~header ?aligns rows] renders a {!Pretty} table and writes it
    to stdout with a trailing newline. *)
val print : header:string list -> ?aligns:Pretty.align list -> string list list -> unit

(** [section title] prints a banner used to separate experiments in the
    bench output. *)
val section : string -> unit

(** [kv pairs] prints aligned ["key: value"] lines. *)
val kv : (string * string) list -> unit
