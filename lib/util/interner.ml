type t = { ids : (string, int) Hashtbl.t; names : string Dyn.t; write_lock : Mutex.t }

let create () = { ids = Hashtbl.create 64; names = Dyn.create (); write_lock = Mutex.create () }

(* Writes are serialized by [write_lock]; the fast path (already interned)
   is a lock-free read.  Lookups are not synchronized against a concurrent
   first-time intern, so parallel phases must pre-intern every string they
   will look up (see Data_graph.intern_path_labels) — after that the pool
   is effectively frozen and concurrent reads are safe. *)
let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      Mutex.lock t.write_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.write_lock)
        (fun () ->
          match Hashtbl.find_opt t.ids s with
          | Some id -> id
          | None ->
              let id = Dyn.length t.names in
              Hashtbl.add t.ids s id;
              Dyn.push t.names s;
              id)

let find_opt t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= Dyn.length t.names then invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  Dyn.get t.names id

let count t = Dyn.length t.names

let iter f t = Dyn.iteri f t.names
