(* Growable array.  Elements live in [slot]s so that unused capacity and
   popped cells hold [Empty] rather than an unsafely-typed filler: the
   representation costs one indirection per element but keeps the module
   free of [Obj.magic], and [Empty] slots drop element references for
   the GC the moment they leave the live prefix. *)

type 'a slot = Empty | Elem of 'a

type 'a t = { mutable data : 'a slot array; mutable len : int }

let create () = { data = [||]; len = 0 }

let with_capacity n = { data = (if n <= 0 then [||] else Array.make n Empty); len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Dyn.%s: index %d out of bounds [0,%d)" name i t.len)

(* Only reachable on [data]/[len] corruption: every caller checks bounds
   first, and slots below [len] are always [Elem]. *)
let unslot name = function
  | Elem v -> v
  | Empty -> failwith (Printf.sprintf "Dyn.%s: empty slot inside the live prefix" name)

let get t i =
  check t i "get";
  unslot "get" t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- Elem v

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap Empty in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- Elem v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dyn.pop: empty";
  t.len <- t.len - 1;
  let v = unslot "pop" t.data.(t.len) in
  t.data.(t.len) <- Empty;
  v

let last t =
  if t.len = 0 then invalid_arg "Dyn.last: empty";
  unslot "last" t.data.(t.len - 1)

let clear t =
  (* Drop references so the GC can reclaim elements. *)
  Array.fill t.data 0 t.len Empty;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (unslot "iter" t.data.(i))
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unslot "iteri" t.data.(i))
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (unslot "fold" t.data.(i))
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p (unslot "exists" t.data.(i)) || loop (i + 1)) in
  loop 0

let find_opt p t =
  let rec loop i =
    if i >= t.len then None
    else
      let v = unslot "find_opt" t.data.(i) in
      if p v then Some v else loop (i + 1)
  in
  loop 0

let to_array t = Array.init t.len (fun i -> unslot "to_array" t.data.(i))

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (unslot "to_list" t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_array a = { data = Array.map (fun v -> Elem v) a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let map f t =
  let out = with_capacity t.len in
  iter (fun v -> push out (f v)) t;
  out

let filter p t =
  let out = create () in
  iter (fun v -> if p v then push out v) t;
  out

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  for i = 0 to t.len - 1 do
    t.data.(i) <- Elem a.(i)
  done
