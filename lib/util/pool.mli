(** A dependency-free domain pool (stdlib [Domain] + [Mutex]/[Condition])
    for the parallel offline build and the online serving tier.

    The pool owns [jobs - 1] spawned worker domains; the calling domain
    participates in every batch, so [jobs] domains compute in total and a
    [jobs = 1] pool spawns nothing and runs inline.  Results merge in input
    order, making [jobs = n] output identical to [jobs = 1] output.

    Concurrency contract: one batch runs at a time per pool, but
    submissions may come from any number of coordinator domains — a
    submission that finds a batch in flight blocks until the pool is idle
    and then runs, so batches queue rather than fail.  Submitting from
    inside a task (nesting) runs the nested batch inline and sequentially
    — never a deadlock.  Tasks must not write shared mutable state unless
    it is [Atomic] or locked; the intended pattern is tasks that return
    private results merged by the coordinator. *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] capped at 8. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults to
    {!default_jobs}; values < 1 are clamped to 1). *)
val create : ?jobs:int -> unit -> t

(** [jobs pool] is the parallelism degree (spawned workers + caller). *)
val jobs : t -> int

(** [shutdown pool] stops and joins the workers.  Idempotent. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] over a fresh pool and always shuts it
    down, even when [f] raises. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [parallel_map ?chunk pool input ~f] applies [f] to every element,
    returning results in input order.  Tasks are claimed in contiguous
    runs of [chunk] (default 1) — raise it when per-element work is tiny.
    If any task raises, the whole batch still drains and the exception of
    the {e smallest} failing index is re-raised (deterministic).  On a
    1-job pool, from inside another task, or on inputs of length <= 1 it
    degrades to a plain sequential [Array.map].  When another domain's
    batch is in flight, the call blocks until that batch drains, then
    runs. *)
val parallel_map : ?chunk:int -> t -> 'a array -> f:('a -> 'b) -> 'b array

(** [parallel_fold ?chunk pool input ~f ~init ~merge] maps in parallel and
    folds [merge] over the results {e in input order} — the merge order is
    deterministic regardless of execution interleaving. *)
val parallel_fold :
  ?chunk:int -> t -> 'a array -> f:('a -> 'b) -> init:'c -> merge:('c -> 'b -> 'c) -> 'c
