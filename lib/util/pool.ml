(* A dependency-free domain pool for the offline build and the online
   serving tier.

   One batch runs at a time.  [parallel_map] installs the batch, wakes the
   workers, and the calling domain participates in draining it, so a pool
   with [jobs = n] keeps exactly [n] domains busy ([n - 1] spawned workers
   plus the caller).  A submission arriving while another batch is in
   flight (a second coordinator domain sharing the pool) waits on the
   [idle] condition and installs its batch when the pool frees up —
   batches queue instead of failing, so "a batch is already running" is
   not an observable state.  Tasks are claimed from a shared cursor under
   the pool mutex in contiguous chunks; results land in a preallocated
   slot per task, so the merged output is always in input order regardless
   of which domain ran what — [jobs = n] output is identical to
   [jobs = 1].

   Exceptions raised by tasks are caught and recorded; after the batch
   drains, the failure with the smallest task index is re-raised with its
   backtrace (deterministic even when several tasks fail).

   Calling [parallel_map] from inside a task (any nesting, on any pool)
   runs the nested batch inline and sequentially on the current domain:
   the pool never deadlocks on recursive submission and nested results are
   identical to flat ones. *)

type batch = {
  total : int;
  chunk : int;
  run : int -> unit;
  mutable next : int;  (* next unclaimed task index *)
  mutable completed : int;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a batch was installed, or shutdown was requested *)
  finished : Condition.t;  (* batch fully drained *)
  idle : Condition.t;  (* the pool has no installed batch; submitters may proceed *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
}

(* True while the current domain is executing a pool task (worker domains
   set it once and forever; the coordinator sets it around its own
   participation).  Nested submissions check it to fall back to the inline
   sequential path. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs_cap = 8

let default_jobs () = max 1 (min default_jobs_cap (Domain.recommended_domain_count ()))

let record_failure b i e bt =
  match b.failure with
  | Some (j, _, _) when j <= i -> ()
  | Some _ | None -> b.failure <- Some (i, e, bt)

(* Claim and run chunks of [b] until no unclaimed task remains.  Expects
   the pool lock held; returns with it held. *)
let drain pool b =
  while b.next < b.total do
    let lo = b.next in
    let hi = min b.total (lo + b.chunk) in
    b.next <- hi;
    Mutex.unlock pool.lock;
    for i = lo to hi - 1 do
      try b.run i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock pool.lock;
        record_failure b i e bt;
        Mutex.unlock pool.lock
    done;
    Mutex.lock pool.lock;
    b.completed <- b.completed + (hi - lo);
    if b.completed = b.total then Condition.broadcast pool.finished
  done

let worker_loop pool =
  Domain.DLS.set in_task true;
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.lock
    else
      match pool.batch with
      | Some b when b.next < b.total ->
          drain pool b;
          loop ()
      | Some _ | None ->
          Condition.wait pool.work pool.lock;
          loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      idle = Condition.create ();
      batch = None;
      stop = false;
      workers = [||];
      jobs;
    }
  in
  pool.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  let already = pool.stop in
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  if not already then Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let parallel_map ?(chunk = 1) pool input ~f =
  let total = Array.length input in
  if total = 0 then [||]
  else if pool.jobs <= 1 || total = 1 || Domain.DLS.get in_task then Array.map f input
  else begin
    let chunk = max 1 chunk in
    let results = Array.make total None in
    let run i = results.(i) <- Some (f input.(i)) in
    let b = { total; chunk; run; next = 0; completed = 0; failure = None } in
    Mutex.lock pool.lock;
    (* Another coordinator domain may have a batch in flight (e.g. two
       serving tiers sharing one pool): queue behind it rather than fail.
       Nested submissions never reach this point — the [in_task] check
       above routes them to the inline sequential path — so waiting here
       cannot deadlock on ourselves. *)
    while pool.batch <> None do
      Condition.wait pool.idle pool.lock
    done;
    pool.batch <- Some b;
    Condition.broadcast pool.work;
    Domain.DLS.set in_task true;
    drain pool b;
    Domain.DLS.set in_task false;
    while b.completed < b.total do
      Condition.wait pool.finished pool.lock
    done;
    pool.batch <- None;
    Condition.broadcast pool.idle;
    Mutex.unlock pool.lock;
    (match b.failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Pool.parallel_map: task result missing after batch completion")
      results
  end

let parallel_fold ?chunk pool input ~f ~init ~merge =
  Array.fold_left merge init (parallel_map ?chunk pool input ~f)
