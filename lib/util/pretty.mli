(** Plain-text table rendering for the benchmark harness.

    The bench executable reproduces the paper's tables as aligned text; this
    module renders a header and rows with column auto-sizing, matching the
    look of the tables in Section 6. *)

type align = Left | Right

(** [render ~header ?aligns rows] lays the table out with one space of
    padding and a separator rule under the header.  Rows shorter than the
    header are padded with empty cells; longer rows are truncated.  Default
    alignment is [Left] for every column. *)
val render : header:string list -> ?aligns:align list -> string list list -> string




(** [float_cell ?decimals f] formats a float for a table cell (default 3
    decimals). *)
val float_cell : ?decimals:int -> float -> string

(** [bytes_cell n] formats a byte count with a binary-ish unit suffix the way
    the paper reports table sizes (e.g. ["30MB"], ["3.36GB"]). *)
val bytes_cell : int -> string
