type t = { n : int; cdf : float array; pmf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  let prev = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      (* Clamp against the previous entry and 1.0 so float drift for large
         [n] can never make the CDF non-monotone (the binary search in
         [sample] assumes monotonicity). *)
      let v = Float.min 1.0 (Float.max !acc !prev) in
      cdf.(i) <- v;
      prev := v)
    pmf;
  cdf.(n - 1) <- 1.0;
  { n; cdf; pmf }

let sample t prng =
  let u = Prng.float prng in
  (* Smallest index whose cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let pmf t r =
  if r < 1 || r > t.n then 0.0 else t.pmf.(r - 1)

let support t = t.n

let expected_frequencies t ~total =
  Array.map (fun p -> p *. float_of_int total) t.pmf
