(* HDR-style log-bucketed latency histogram.

   Records non-negative integer values (the serving tier feeds it
   nanoseconds) into buckets whose width tracks magnitude: values below
   [sub_count] land in exact unit buckets, and each further power of two
   is split into [sub_count] sub-buckets, so the relative quantization
   error is bounded by [1 / sub_count] (about 1.6% here) at every scale
   from nanoseconds to hours.  Count, min, max and sum are exact
   regardless of bucketing.

   Like [Dyn] and [Int_table], a histogram is an unsynchronized
   single-writer primitive: one domain records into its own histogram
   (the open-loop load generator keeps one per worker or one per rate
   point on the coordinator) and [merge] combines finished histograms on
   one domain afterwards.  Sharing a live histogram across domains is
   the caller's bug, not this module's contract. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits (* 64 exact unit buckets, 64 sub-buckets per octave *)

(* Position of the most significant set bit of [v > 0]. *)
let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* Values in [0, sub_count) get exact unit buckets [0, sub_count).
   A value with msb position m >= sub_bits keeps its top [sub_bits + 1]
   bits: shift = m - sub_bits, top = v lsr shift in
   [sub_count, 2 * sub_count), index = (shift + 1) * sub_count
   + (top - sub_count).  The two ranges are contiguous (shift = 0
   continues the unit range seamlessly). *)
let index_of v =
  if v < sub_count then v
  else begin
    let shift = msb v - sub_bits in
    let top = v lsr shift in
    ((shift + 1) * sub_count) + (top - sub_count)
  end

(* Inclusive value range covered by bucket [i]. *)
let range_of i =
  if i < sub_count then (i, i)
  else begin
    let shift = (i / sub_count) - 1 in
    let low = ((i mod sub_count) + sub_count) lsl shift in
    (low, low + (1 lsl shift) - 1)
  end

(* Every representable non-negative int fits. *)
let size = index_of max_int + 1

type t = {
  counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : int;
}

let create () = { counts = Array.make size 0; total = 0; min_v = max_int; max_v = 0; sum = 0 }

let record t v =
  let v = max 0 v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.sum <- t.sum + v

let count t = t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

(* Midpoint of the bucket holding the requested rank, clamped into the
   exact [min, max] observed — so q = 0 and q = 1 are exact, and no
   quantile ever reads outside the recorded range. *)
let quantile t q =
  if t.total = 0 then 0
  else begin
    let rank = max 1 (min t.total (int_of_float (ceil (q *. float_of_int t.total)))) in
    let seen = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to size - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           let low, high = range_of i in
           result := (low + high) / 2;
           raise Exit
         end
       done
     with Exit -> ());
    max t.min_v (min t.max_v !result)
  end

let merge ~into src =
  Array.iteri (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  if src.total > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end;
  into.sum <- into.sum + src.sum

let buckets t =
  let acc = ref [] in
  for i = size - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let low, high = range_of i in
      acc := (low, high, t.counts.(i)) :: !acc
    end
  done;
  !acc
