(** Wall-clock timing helpers for the experiment harness. *)

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_ms f] like {!time} but milliseconds. *)
val time_ms : (unit -> 'a) -> 'a * float

(** [repeat_median ~runs f] runs [f] [runs] times and returns the last result
    together with the median elapsed seconds (the mean of the two middle
    samples when [runs] is even); used where the paper reports "the average
    of multiple runs" on a warm cache. *)
val repeat_median : runs:int -> (unit -> 'a) -> 'a * float
