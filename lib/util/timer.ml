let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let t1 = Unix.gettimeofday () in
  (v, t1 -. t0)

let time_ms f =
  let v, s = time f in
  (v, s *. 1000.0)

let repeat_median ~runs f =
  if runs <= 0 then invalid_arg "Timer.repeat_median: runs must be positive";
  let times = Array.make runs 0.0 in
  let result = ref None in
  for i = 0 to runs - 1 do
    let v, s = time f in
    times.(i) <- s;
    result := Some v
  done;
  Array.sort compare times;
  let median =
    (* For even [runs] the median is the mean of the two middle samples;
       taking only the upper one biases benchmark medians upward. *)
    if runs mod 2 = 1 then times.(runs / 2)
    else (times.((runs / 2) - 1) +. times.(runs / 2)) /. 2.0
  in
  match !result with
  | Some v -> (v, median)
  | None -> failwith "Timer.repeat_median: no run recorded despite positive run count"
