type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let normalize ncols row =
  let len = List.length row in
  if len = ncols then row
  else if len < ncols then row @ List.init (ncols - len) (fun _ -> "")
  else List.filteri (fun i _ -> i < ncols) row

let render ~header ?aligns rows =
  let ncols = List.length header in
  let rows = List.map (normalize ncols) rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun _ -> Left)
  in
  let widths = Array.of_list (List.map String.length header) in
  let note_row row = List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row in
  List.iter note_row rows;
  let buf = Buffer.create 1024 in
  let rstrip s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let emit_row row =
    let line = Buffer.create 80 in
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string line "  ";
        Buffer.add_string line (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_string buf (rstrip (Buffer.contents line));
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let float_cell ?(decimals = 3) f = Printf.sprintf "%.*f" decimals f

let bytes_cell n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2fGB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1fMB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fKB" (f /. 1e3)
  else Printf.sprintf "%dB" n
