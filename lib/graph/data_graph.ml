module Dyn = Topo_util.Dyn

type t = {
  pool : Topo_util.Interner.t;
  node_type : (int, int) Hashtbl.t;  (* id -> interned "n:<ty>" *)
  by_type : (string, int Dyn.t) Hashtbl.t;
  adj : (int, (int * int) Dyn.t) Hashtbl.t;  (* id -> (interned "e:<rel>", other) *)
  edge_seen : (int * int * int, unit) Hashtbl.t;
}

let create pool =
  {
    pool;
    node_type = Hashtbl.create 4096;
    by_type = Hashtbl.create 16;
    adj = Hashtbl.create 4096;
    edge_seen = Hashtbl.create 4096;
  }

let node_label_of t ty = Topo_util.Interner.intern t.pool ("n:" ^ ty)

let edge_label_of t rel = Topo_util.Interner.intern t.pool ("e:" ^ rel)

let add_entity t ~ty ~id =
  let label = node_label_of t ty in
  match Hashtbl.find_opt t.node_type id with
  | Some existing ->
      if existing <> label then
        invalid_arg (Printf.sprintf "Data_graph.add_entity: id %d already has another type" id)
  | None ->
      Hashtbl.add t.node_type id label;
      let bucket =
        match Hashtbl.find_opt t.by_type ty with
        | Some b -> b
        | None ->
            let b = Dyn.create () in
            Hashtbl.add t.by_type ty b;
            b
      in
      Dyn.push bucket id;
      Hashtbl.add t.adj id (Dyn.create ())

let add_relationship t ~rel ~a ~b =
  if not (Hashtbl.mem t.node_type a) then
    invalid_arg (Printf.sprintf "Data_graph.add_relationship: unknown entity %d" a);
  if not (Hashtbl.mem t.node_type b) then
    invalid_arg (Printf.sprintf "Data_graph.add_relationship: unknown entity %d" b);
  let label = edge_label_of t rel in
  let key = if a < b then (a, b, label) else (b, a, label) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.add t.edge_seen key ();
    Dyn.push (Hashtbl.find t.adj a) (label, b);
    Dyn.push (Hashtbl.find t.adj b) (label, a)
  end

let node_count t = Hashtbl.length t.node_type

let edge_count t = Hashtbl.length t.edge_seen

let entities_of_type t ty =
  match Hashtbl.find_opt t.by_type ty with
  | None -> [||]
  | Some bucket ->
      let arr = Dyn.to_array bucket in
      Array.sort compare arr;
      arr

let node_type_label t id =
  match Hashtbl.find_opt t.node_type id with
  | Some l -> l
  | None -> raise Not_found

let interner t = t.pool

let intern_path_labels t (p : Schema_graph.path) =
  Array.iter (fun ty -> ignore (node_label_of t ty)) p.Schema_graph.types;
  Array.iter (fun rel -> ignore (edge_label_of t rel)) p.Schema_graph.rels

let is_palindromic (p : Schema_graph.path) = p = Schema_graph.reverse p

(* Walk the schema path from [source], position by position, keeping the
   visited set for simplicity.  [target] optionally pins the final node. *)
let iter_from t (p : Schema_graph.path) ~source ?target ~f () =
  let l = Schema_graph.path_length p in
  let type_labels = Array.map (fun ty -> node_label_of t ty) p.Schema_graph.types in
  let rel_labels = Array.map (fun rel -> edge_label_of t rel) p.Schema_graph.rels in
  match Hashtbl.find_opt t.node_type source with
  | Some label when label = type_labels.(0) ->
      let current = Array.make (l + 1) 0 in
      current.(0) <- source;
      let visited = Hashtbl.create 16 in
      Hashtbl.add visited source ();
      let rec step pos =
        if pos = l then begin
          match target with
          | Some tgt when current.(l) <> tgt -> ()
          | Some _ | None -> f (Array.copy current)
        end
        else begin
          let want_rel = rel_labels.(pos) and want_ty = type_labels.(pos + 1) in
          let nbrs = Hashtbl.find t.adj current.(pos) in
          Dyn.iter
            (fun (rel, other) ->
              if
                rel = want_rel
                && (not (Hashtbl.mem visited other))
                && Hashtbl.find t.node_type other = want_ty
              then begin
                Hashtbl.add visited other ();
                current.(pos + 1) <- other;
                step (pos + 1);
                Hashtbl.remove visited other
              end)
            nbrs
        end
      in
      step 0
  | Some _ | None -> ()

let iter_instance_paths t p ~f =
  let palindromic = is_palindromic p in
  let sources = entities_of_type t p.Schema_graph.types.(0) in
  let l = Schema_graph.path_length p in
  Array.iter
    (fun source ->
      iter_from t p ~source
        ~f:(fun ids ->
          (* A palindromic path is discovered from both endpoints; keep the
             traversal from the smaller id. *)
          if (not palindromic) || ids.(0) < ids.(l) then f ids)
        ())
    sources

let iter_instance_paths_between t p ~a ~b ~f = iter_from t p ~source:a ~target:b ~f ()

let iter_instance_paths_from t p ~source ~f = iter_from t p ~source ~f ()

let path_subgraph t (p : Schema_graph.path) ~ids =
  let g = Lgraph.empty () in
  Array.iter (fun id -> Lgraph.add_node g ~id ~label:(Hashtbl.find t.node_type id)) ids;
  Array.iteri
    (fun i rel -> Lgraph.add_edge g ~u:ids.(i) ~v:ids.(i + 1) ~label:(edge_label_of t rel))
    p.Schema_graph.rels;
  g

let neighbors_by t ~id ~rel ~ty =
  match Hashtbl.find_opt t.adj id with
  | None -> []
  | Some nbrs ->
      let want_rel = edge_label_of t rel and want_ty = node_label_of t ty in
      Dyn.fold
        (fun acc (r, other) ->
          if r = want_rel && Hashtbl.find t.node_type other = want_ty then other :: acc else acc)
        [] nbrs
      |> List.sort compare
