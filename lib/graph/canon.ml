(* Canonical labeling by refinement + individualization.

   Nodes are first mapped to dense indices 0..n-1.  A "coloring" is an array
   of integers; refinement replaces each node's color with a rank of
   (color, sorted list of (edge label, neighbor color)) until stable.  If
   the coloring is discrete (all colors distinct) it induces a canonical
   order directly.  Otherwise we branch: take the first non-singleton color
   class (in color order), individualize each member in turn, refine and
   recurse; the smallest resulting serialization wins. *)

type dense = {
  n : int;
  ids : int array;  (* dense index -> original id *)
  labels : int array;
  adj : (int * int) list array;  (* dense: (edge label, dense neighbor) *)
}

let densify g =
  let ids = Array.of_list (Lgraph.nodes g) in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.add index id i) ids;
  let labels = Array.map (fun id -> Lgraph.node_label g id) ids in
  let adj =
    Array.map
      (fun id -> List.map (fun (el, other) -> (el, Hashtbl.find index other)) (Lgraph.neighbors g id))
      ids
  in
  { n; ids; labels; adj }

(* Rank distinct keys to small ints, preserving key order so refinement is
   deterministic. *)
let rank_colors keys =
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  let tbl = Hashtbl.create (Array.length keys) in
  let next = ref 0 in
  Array.iter
    (fun k ->
      if not (Hashtbl.mem tbl k) then begin
        Hashtbl.add tbl k !next;
        incr next
      end)
    sorted;
  (Array.map (fun k -> Hashtbl.find tbl k) keys, !next)

let refine dense colors =
  let colors = ref colors in
  let ncolors = ref 0 in
  let stable = ref false in
  while not !stable do
    let keys =
      Array.init dense.n (fun i ->
          let sig_ = List.sort compare (List.map (fun (el, j) -> (el, !colors.(j))) dense.adj.(i)) in
          (!colors.(i), sig_))
    in
    let next, count = rank_colors keys in
    if count = !ncolors && next = !colors then stable := true
    else begin
      colors := next;
      ncolors := count
    end
  done;
  !colors

let initial_colors dense =
  let keys = Array.init dense.n (fun i -> (dense.labels.(i), List.length dense.adj.(i))) in
  fst (rank_colors keys)

let is_discrete colors =
  let n = Array.length colors in
  let seen = Array.make n false in
  Array.for_all
    (fun c ->
      if c >= n || seen.(c) then false
      else begin
        seen.(c) <- true;
        true
      end)
    colors

(* Serialize the graph under the order induced by a discrete coloring. *)
let serialize dense colors =
  let n = dense.n in
  let position = Array.make n 0 in
  (* colors are 0..n-1 distinct: color = canonical position. *)
  Array.iteri (fun i c -> position.(i) <- c) colors;
  let buf = Buffer.create 64 in
  let by_pos = Array.make n 0 in
  Array.iteri (fun i c -> by_pos.(c) <- i) colors;
  Array.iter (fun i -> Buffer.add_string buf (Printf.sprintf "n%d;" dense.labels.(i))) by_pos;
  let edges = ref [] in
  Array.iteri
    (fun i nbrs ->
      List.iter
        (fun (el, j) ->
          if position.(i) < position.(j) then edges := (position.(i), position.(j), el) :: !edges)
        nbrs)
    dense.adj;
  let edges = List.sort compare !edges in
  List.iter (fun (a, b, el) -> Buffer.add_string buf (Printf.sprintf "e%d,%d,%d;" a b el)) edges;
  Buffer.contents buf

let rec canonical_serialization dense colors =
  let colors = refine dense colors in
  if is_discrete colors then (serialize dense colors, colors)
  else begin
    (* First non-singleton color class in color order. *)
    let n = dense.n in
    let count = Array.make n 0 in
    Array.iter (fun c -> count.(c) <- count.(c) + 1) colors;
    let target =
      let rec find c = if count.(c) >= 2 then c else find (c + 1) in
      find 0
    in
    let best = ref None in
    Array.iteri
      (fun i c ->
        if c = target then begin
          (* Individualize node i: give it a color just below its class. *)
          let branched =
            Array.mapi (fun j cj -> if j = i then cj * 2 else (cj * 2) + 1) colors
          in
          let ranked, _ = rank_colors branched in
          let ser, final = canonical_serialization dense ranked in
          match !best with
          | Some (bs, _) when bs <= ser -> ()
          | Some _ | None -> best := Some (ser, final)
        end)
      colors;
    match !best with
    | Some result -> result
    | None -> failwith "Canon.canonical_serialization: target color class vanished during refinement"
  end

let key_and_order g =
  let dense = densify g in
  if dense.n = 0 then ("", [])
  else begin
    let ser, colors = canonical_serialization dense (initial_colors dense) in
    let by_pos = Array.make dense.n 0 in
    Array.iteri (fun i c -> by_pos.(c) <- i) colors;
    (ser, Array.to_list (Array.map (fun i -> dense.ids.(i)) by_pos))
  end

let key g = fst (key_and_order g)

let canonical_order g = snd (key_and_order g)

let iso a b = key a = key b
