(** The instance graph: the database's entities and relationships as one
    labeled graph (Section 2.1, Figure 6), with schema-path-directed
    enumeration of simple instance paths.

    Node ids are the entities' globally unique object ids ("the IDs of
    different biological objects are not overlapping", Section 4.3).  Type
    labels are interned as ["n:<entity>"] and edge labels as ["e:<rel>"],
    the same convention {!Schema_graph.path_to_lgraph} uses, so instance
    subgraphs and schema-level graphs canonicalize into the same key
    space. *)

type t

(** [create interner] is an empty instance graph using the shared intern
    pool. *)
val create : Topo_util.Interner.t -> t

(** [add_entity t ~ty ~id] registers entity [id] of entity type [ty].
    @raise Invalid_argument if [id] is already present with another type. *)
val add_entity : t -> ty:string -> id:int -> unit

(** [add_relationship t ~rel ~a ~b] links two registered entities.
    Duplicate (a, b, rel) triples collapse. *)
val add_relationship : t -> rel:string -> a:int -> b:int -> unit

(** [node_count t] / [edge_count t]. *)
val node_count : t -> int

val edge_count : t -> int

(** [entities_of_type t ty] is the ascending id array of a type (empty for
    unknown types). *)
val entities_of_type : t -> string -> int array

(** [node_type_label t id] is the interned ["n:<ty>"] label.
    @raise Not_found for unregistered ids. *)
val node_type_label : t -> int -> int

(** [interner t]. *)
val interner : t -> Topo_util.Interner.t

(** [intern_path_labels t path] interns every ["n:<ty>"] / ["e:<rel>"]
    label the path mentions.  Call it before fanning path enumeration out
    to other domains: afterwards enumeration over [path] only {e reads}
    the shared intern pool, so concurrent traversals are safe. *)
val intern_path_labels : t -> Schema_graph.path -> unit

(** [iter_instance_paths t path ~f] calls [f] with the node-id array of
    every simple instance path realizing the schema [path] (oriented as
    given), each instance exactly once: for a palindromic label sequence
    the traversal from the higher-id endpoint is suppressed.  [f] may raise
    to stop early. *)
val iter_instance_paths : t -> Schema_graph.path -> f:(int array -> unit) -> unit

(** [iter_instance_paths_between t path ~a ~b ~f] like
    {!iter_instance_paths} but anchored: only paths starting at [a] and
    ending at [b] (in the path's orientation). *)
val iter_instance_paths_between : t -> Schema_graph.path -> a:int -> b:int -> f:(int array -> unit) -> unit

(** [iter_instance_paths_from t path ~source ~f] anchored at the start
    only: every instance path of [path] beginning at [source]. *)
val iter_instance_paths_from : t -> Schema_graph.path -> source:int -> f:(int array -> unit) -> unit

(** [path_subgraph t path ~ids] is the instance path as a labeled graph
    (node labels looked up from the registry, edge labels from the schema
    path). *)
val path_subgraph : t -> Schema_graph.path -> ids:int array -> Lgraph.t

(** [neighbors_by t ~id ~rel ~ty] is the neighbor ids of [id] along edges
    labeled [rel] whose endpoint has type [ty]; ascending. *)
val neighbors_by : t -> id:int -> rel:string -> ty:string -> int list
