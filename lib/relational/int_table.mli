(** Int-keyed open-addressing multimap and flat int vector — the building
    blocks of the columnar execution kernels ({!Op_kernel}).

    The multimap stores (int key, int payload) pairs; pairs sharing a key
    form a chain enumerated in {e insertion order}.  That order is a hard
    contract: the kernels must emit join matches exactly as the generic
    hash join's buckets would, so {!Engine.fingerprint} equivalence holds
    bit-for-bit.  Probing allocates nothing — [first]/[next_entry] walk
    entry indices, no closures, no lists.

    Not thread-safe (like [Topo_util.Dyn]): built privately inside an
    operator's [open_], read-only afterwards. *)

(** Growable flat int vector: selection vectors and scratch row lists.
    [Topo_util.Dyn] boxes every element; this does not. *)
module Vec : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  (** @raise Invalid_argument when out of bounds. *)
  val get : t -> int -> int

  val push : t -> int -> unit

  val iter : (int -> unit) -> t -> unit

  val to_list : t -> int list
end

type t

(** [create ?capacity ()] sizes the table for [capacity] expected entries
    (it still grows past that). *)
val create : ?capacity:int -> unit -> t

(** Total entries added. *)
val length : t -> int

(** [add t key payload] appends to [key]'s chain. *)
val add : t -> int -> int -> unit

(** [first t key] is the first entry index of [key]'s chain, or [-1] when
    the key is absent.  Allocation-free. *)
val first : t -> int -> int

(** [count t key] is the chain length of [key] (0 when absent), without
    walking the chain. *)
val count : t -> int -> int

(** [next_entry t e] is the next entry in the same chain, or [-1]. *)
val next_entry : t -> int -> int

(** [payload t e] of a valid entry index. *)
val payload : t -> int -> int

(** [key_at t e] of a valid entry index. *)
val key_at : t -> int -> int

(** [iter_entries f t] applies [f key payload] over {e all} entries in
    global insertion order — the kernels' exact-equivalence fallback for
    pathological probe keys (huge integral floats) where int conversion
    would not be injective. *)
val iter_entries : (int -> int -> unit) -> t -> unit
