(** Int-specialized execution kernels.

    Drop-in replacements for the generic hash join, index nested-loop join
    and DGJ bucket probe, used when the equi-join key is a single column of
    int values (checked statically by {!Physical.kernel_site} against
    declared types, then dynamically against the table's actual lane).
    Probing an {!Int_table} allocates nothing; the fused-scan probe variant
    reads keys straight off a {!Column.Ints} lane and boxes an outer row
    only when it matches.

    Equivalence is bit-exact, counters included: match order follows the
    generic bucket (insertion) order, counters are credited at the same
    points, and key conversion is exact or abandoned — integral floats
    below 2^53 convert, huge integral floats fall back to a per-probe
    linear scan with [Value.equal] semantics, and any non-int build-side
    key drops the whole build to the generic [Op_join.KeyTbl] mode. *)

(** {1 Ambient toggle}

    One switch for the whole process — the bench harness and equivalence
    tests run the same workload with kernels on and off and compare
    fingerprints.  Queries running concurrently with a toggle may observe
    either setting (plans are lowered once, at query start). *)

val kernels_on : unit -> bool

val set_enabled : bool -> unit

(** [with_kernels b f] runs [f ()] with the toggle forced to [b], restoring
    the previous setting afterwards. *)
val with_kernels : bool -> (unit -> 'a) -> 'a

(** {1 Selection vectors} *)

(** [select rows pred] is the vector of row numbers satisfying [pred], in
    row order — a predicated build side hashes only these. *)
val select : Tuple.t array -> Expr.t -> Int_table.Vec.t

(** {1 Hash join} *)

type probe_side =
  | Probe_lane of { table : Table.t; lane : Column.ints }
      (** fused predicate-free scan: keys stream off the lane, non-matching
          rows are never boxed *)
  | Probe_iter of Iterator.t

type build_side =
  | Build_table of { table : Table.t; col : int; pred : Expr.t option }
      (** scan build: the table's cached {!Table.int_index} when [pred] is
          [None], else a selection vector over the row snapshot *)
  | Build_iter of { it : Iterator.t; col : int; hint : int }
      (** arbitrary subplan build; [hint] pre-sizes the table *)

(** [hash_join ~schema ~probe ~probe_col ~build ?residual ()] — [schema]
    must be the concatenation the generic lowering would produce
    (probe schema ++ build schema).  [probe_col] indexes the probe tuple;
    it is unused for [Probe_lane] (the lane {e is} the key column). *)
val hash_join :
  schema:Schema.t ->
  probe:probe_side ->
  probe_col:int ->
  build:build_side ->
  ?residual:Expr.t ->
  unit ->
  Iterator.t

(** {1 Index nested-loop join} *)

(** [index_nl_join_int ~schema ~left ~table ~itbl ~left_col ?pred ?residual ()]
    probes [itbl] (the table's {!Table.int_index} on the join column,
    resolved by the lowering) per outer tuple.  Counter contract: one
    [add_probes] per outer tuple, like the generic operator. *)
val index_nl_join_int :
  schema:Schema.t ->
  left:Iterator.t ->
  table:Table.t ->
  itbl:Int_table.t ->
  left_col:int ->
  ?pred:Expr.t ->
  ?residual:Expr.t ->
  unit ->
  Iterator.t

(** {1 DGJ bucket prober} *)

(** [int_bucket_prober itbl key] is [(count, get)] over [key]'s chain —
    the shape of [Index.probe_bucket], same row order.  [get] is O(1) for
    the IDGJ's sequential access pattern. *)
val int_bucket_prober : Int_table.t -> Value.t -> int * (int -> int)
