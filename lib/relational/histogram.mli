(** Equi-depth histograms over a single column.

    The optimizer's selectivity estimates (Section 5.4.3 statistics items
    1-6) are derived from these histograms plus distinct counts.  Values are
    bucketed by their total order; strings participate via their order. *)

type t

(** [build ?buckets values] sorts a copy of [values] and cuts it into at
    most [buckets] equal-depth buckets (default 32).  Null values are
    counted separately and excluded from buckets. *)
val build : ?buckets:int -> Value.t array -> t

(** [buckets t] is the equi-depth buckets as [(lo, hi, count, distinct)]
    quadruples, in value order — the histogram's full serializable state
    (together with {!mcv} and the scalar counts). *)
val buckets : t -> (Value.t * Value.t * int * int) array

(** [mcv t] is the exact (value, frequency) pairs tracked for the most
    common values. *)
val mcv : t -> (Value.t * int) array

(** [restore ~total ~nulls ~distinct ~buckets ~mcv] rebuilds a histogram
    from previously extracted state ({!buckets}/{!mcv} plus the counts) —
    the snapshot codec's inverse of {!build}. *)
val restore :
  total:int ->
  nulls:int ->
  distinct:int ->
  buckets:(Value.t * Value.t * int * int) array ->
  mcv:(Value.t * int) array ->
  t

(** [total t] is the number of non-null values summarized. *)
val total : t -> int

(** [null_count t]. *)
val null_count : t -> int

(** [distinct t] is the exact number of distinct non-null values. *)
val distinct : t -> int

(** [selectivity_eq t v] estimates the fraction of rows with value [v],
    using per-bucket distinct counts (exact for values tracked as
    most-common). *)
val selectivity_eq : t -> Value.t -> float

(** [selectivity_range t ?lo ?hi ()] estimates the fraction of rows with
    [lo <= value <= hi] (missing bounds are open). *)
val selectivity_range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> float

(** [min_value t] / [max_value t] of the non-null population, if any. *)
val min_value : t -> Value.t option

val max_value : t -> Value.t option
