exception Protocol_error of string

type state = Fresh | Open | Closed

let wrap ?(name = "iterator") (it : Iterator.t) =
  let state = ref Fresh in
  let max_group = ref min_int in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Protocol_error (name ^ ": " ^ msg))) fmt in
  let require_open what =
    match !state with
    | Open -> ()
    | Fresh -> fail "%s before open" what
    | Closed -> fail "%s after close" what
  in
  {
    Iterator.schema = it.Iterator.schema;
    open_ =
      (fun () ->
        (match !state with
        | Open -> fail "open while already open"
        | Fresh | Closed -> ());
        state := Open;
        max_group := min_int;
        it.Iterator.open_ ());
    next =
      (fun () ->
        require_open "next";
        match it.Iterator.next () with
        | None -> None
        | Some tuple ->
            let g = it.Iterator.last_group () in
            if g < !max_group then
              fail "last_group went backwards (%d after %d)" g !max_group;
            max_group := g;
            Some tuple);
    close =
      (fun () ->
        (* Double close is legal: Sort closes its input at materialize time
           and again on its own close. *)
        state := Closed;
        it.Iterator.close ());
    advance_group =
      (fun () ->
        require_open "advance_group";
        it.Iterator.advance_group ());
    last_group = it.Iterator.last_group;
  }
