(** Per-operator runtime statistics for EXPLAIN ANALYZE.

    [wrap] is a stats-collecting sibling of {!Iterator_check.wrap}: it
    interposes on the open/next/close/advance_group protocol of one
    operator, recording call counts, rows produced and cumulative wall
    time.  {!Physical.lower_instrumented} wraps every node of a plan and
    returns the per-node records as a tree mirroring the plan, which the
    observability layer ([Topo_obs.Explain_analyze]) renders next to the
    optimizer's estimates.

    Recorded wall time is {e inclusive}: an operator's clock runs while its
    children execute inside its [next], exactly like the "actual time" of a
    DBMS EXPLAIN ANALYZE.  Exclusive (self) time is derived at reporting
    time by subtracting the children's totals. *)

type t = {
  label : string;  (** operator label, e.g. ["HashJoin"] or ["SeqScan Protein"] *)
  mutable opens : int;  (** [open_] calls *)
  mutable nexts : int;  (** [next] calls, including the final [None] *)
  mutable closes : int;  (** [close] calls *)
  mutable advances : int;  (** [advance_group] calls *)
  mutable rows : int;  (** tuples produced ([Some _] results of [next]) *)
  mutable time_s : float;  (** cumulative inclusive wall time, seconds *)
}

(** Stats tree mirroring a physical plan: one node per operator, children
    in {!Physical.children} order. *)
type annotated = { stats : t; children : annotated list }

(** [create ~label] is a zeroed record. *)
val create : label:string -> t

(** [wrap stats it] forwards every protocol call to [it], accounting it in
    [stats].  Exceptions propagate (their elapsed time is dropped). *)
val wrap : t -> Iterator.t -> Iterator.t

(** [total_rows a] is the root operator's row count. *)
val total_rows : annotated -> int

(** [iter f a] applies [f] to every node, preorder. *)
val iter : (t -> unit) -> annotated -> unit
