type bucket = { lo : Value.t; hi : Value.t; count : int; distinct : int }

type t = {
  total : int;
  nulls : int;
  distinct : int;
  buckets : bucket array;
  (* Exact frequencies for the most common values: repairs the usual
     equi-depth underestimate on heavy hitters. *)
  mcv : (Value.t * int) array;
}

let mcv_slots = 8

let build ?(buckets = 32) values =
  let non_null = Array.of_list (List.filter (fun v -> not (Value.is_null v)) (Array.to_list values)) in
  let nulls = Array.length values - Array.length non_null in
  Array.sort Value.compare non_null;
  let n = Array.length non_null in
  if n = 0 then { total = 0; nulls; distinct = 0; buckets = [||]; mcv = [||] }
  else begin
    (* Count distinct values and collect value frequencies in one sorted
       pass. *)
    let freqs = Topo_util.Dyn.create () in
    let run_start = ref 0 in
    for i = 1 to n do
      if i = n || Value.compare non_null.(i) non_null.(!run_start) <> 0 then begin
        Topo_util.Dyn.push freqs (non_null.(!run_start), i - !run_start);
        run_start := i
      end
    done;
    let distinct = Topo_util.Dyn.length freqs in
    let freq_arr = Topo_util.Dyn.to_array freqs in
    let by_count = Array.copy freq_arr in
    Array.sort (fun (_, a) (_, b) -> Int.compare b a) by_count;
    let mcv = Array.sub by_count 0 (min mcv_slots (Array.length by_count)) in
    let nbuckets = min buckets (max 1 distinct) in
    let depth = max 1 (n / nbuckets) in
    let bucket_list = Topo_util.Dyn.create () in
    let i = ref 0 in
    while !i < n do
      let hi_idx = min (n - 1) (!i + depth - 1) in
      (* Extend the bucket so equal values never straddle a boundary. *)
      let hi_idx = ref hi_idx in
      while !hi_idx + 1 < n && Value.compare non_null.(!hi_idx + 1) non_null.(!hi_idx) = 0 do
        incr hi_idx
      done;
      let lo_v = non_null.(!i) and hi_v = non_null.(!hi_idx) in
      let d = ref 1 in
      for j = !i + 1 to !hi_idx do
        if Value.compare non_null.(j) non_null.(j - 1) <> 0 then incr d
      done;
      Topo_util.Dyn.push bucket_list { lo = lo_v; hi = hi_v; count = !hi_idx - !i + 1; distinct = !d };
      i := !hi_idx + 1
    done;
    { total = n; nulls; distinct; buckets = Topo_util.Dyn.to_array bucket_list; mcv }
  end

let buckets t = Array.map (fun b -> (b.lo, b.hi, b.count, b.distinct)) t.buckets

let mcv t = Array.copy t.mcv

let restore ~total ~nulls ~distinct ~buckets ~mcv =
  {
    total;
    nulls;
    distinct;
    buckets = Array.map (fun (lo, hi, count, d) -> { lo; hi; count; distinct = d }) buckets;
    mcv;
  }

let total t = t.total

let null_count t = t.nulls

let distinct t = t.distinct

let selectivity_eq t v =
  if t.total = 0 || Value.is_null v then 0.0
  else
    match Array.find_opt (fun (mv, _) -> Value.equal mv v) t.mcv with
    | Some (_, count) -> float_of_int count /. float_of_int t.total
    | None -> (
        match
          Array.find_opt (fun b -> Value.compare v b.lo >= 0 && Value.compare v b.hi <= 0) t.buckets
        with
        | Some b -> float_of_int b.count /. float_of_int b.distinct /. float_of_int t.total
        | None -> 0.0)

let selectivity_range t ?lo ?hi () =
  if t.total = 0 then 0.0
  else begin
    let within b =
      (* Fraction of bucket [b] inside [lo, hi]: all, none, or an
         interpolated share for numeric bounds. *)
      let after_lo =
        match lo with
        | None -> 1.0
        | Some l ->
            if Value.compare b.hi l < 0 then 0.0
            else if Value.compare b.lo l >= 0 then 1.0
            else (
              match (b.lo, b.hi, l) with
              | Value.Int blo, Value.Int bhi, Value.Int li when bhi > blo ->
                  float_of_int (bhi - li + 1) /. float_of_int (bhi - blo + 1)
              | _ -> 0.5)
      and before_hi =
        match hi with
        | None -> 1.0
        | Some h ->
            if Value.compare b.lo h > 0 then 0.0
            else if Value.compare b.hi h <= 0 then 1.0
            else (
              match (b.lo, b.hi, h) with
              | Value.Int blo, Value.Int bhi, Value.Int hv when bhi > blo ->
                  float_of_int (hv - blo + 1) /. float_of_int (bhi - blo + 1)
              | _ -> 0.5)
      in
      Float.max 0.0 (after_lo +. before_hi -. 1.0)
    in
    let rows =
      Array.fold_left (fun acc b -> acc +. (within b *. float_of_int b.count)) 0.0 t.buckets
    in
    rows /. float_of_int t.total
  end

let min_value t = if Array.length t.buckets = 0 then None else Some t.buckets.(0).lo

let max_value t =
  if Array.length t.buckets = 0 then None else Some t.buckets.(Array.length t.buckets - 1).hi
