(** Tuples: immutable-by-convention value arrays aligned with a schema. *)

type t = Value.t array

(** [get t i]. *)
val get : t -> int -> Value.t

(** [concat a b] is the join of two tuples. *)
val concat : t -> t -> t

(** [project t indices] keeps the listed positions in order.  Positions are
    an array so per-tuple projection on the hot path allocates no list
    nodes; operators precompute it once at open time. *)
val project : t -> int array -> t

(** [key t indices] extracts the listed positions as a comparable key. *)
val key : t -> int array -> Value.t array

(** [compare_at indices a b] lexicographic comparison on positions. *)
val compare_at : int array -> t -> t -> int

(** [equal a b] full-width structural equality. *)
val equal : t -> t -> bool

(** [hash t] consistent with {!equal}. *)
val hash : t -> int

(** [width t] estimated bytes, for space accounting. *)
val width : t -> int

(** [to_string t] like ["(78, enzyme, mRNA)"]. *)
val to_string : t -> string
