type t = Value.t array

let get t i = t.(i)

let concat = Array.append

let project t indices = Array.map (fun i -> t.(i)) indices

let key t indices = Array.map (fun i -> t.(i)) indices

let compare_at indices a b =
  let rec loop i =
    if i >= Array.length indices then 0
    else
      let c = Value.compare a.(indices.(i)) b.(indices.(i)) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let width t = Array.fold_left (fun acc v -> acc + Value.width v) 0 t

let to_string t =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ")"
