(** SQL facade: parse, plan and run queries against a catalog.

    All entry points verify the bound plan with {!Plan_check} before use
    ([?check] defaults to [true]; pass [~check:false] to skip), so a binder
    bug surfaces as a structured {!Plan_check.Plan_error} rather than a
    wrong answer. *)

(** [query catalog text] parses, plans and executes; returns the output
    schema and result rows.
    @raise Sql_parser.Parse_error, Sql_lexer.Lex_error or
    Sql_binder.Bind_error on bad input, Plan_check.Plan_error when the
    bound plan fails verification. *)
val query : ?check:bool -> Catalog.t -> string -> Schema.t * Tuple.t list

(** [explain catalog text] is the physical plan chosen for the query,
    rendered as text. *)
val explain : ?check:bool -> Catalog.t -> string -> string

(** [query_instrumented catalog text] is {!query} through
    {!Physical.lower_instrumented}: every operator is wrapped in
    {!Op_stats.wrap} and the filled per-operator stats tree is returned
    alongside the results.  [Topo_obs.Explain_analyze] builds the full
    estimate-vs-actual report on top of this. *)
val query_instrumented :
  ?check:bool -> Catalog.t -> string -> Schema.t * Tuple.t list * Op_stats.annotated

(** [to_plan catalog text] parses and plans without executing. *)
val to_plan : ?check:bool -> Catalog.t -> string -> Physical.t

(** [render catalog text] runs the query and pretty-prints the result table
    (header = output column names). *)
val render : ?check:bool -> Catalog.t -> string -> string

(** [lint catalog text] parses, plans and returns every verifier violation
    without executing; the empty list means the plan is clean.  Backs the
    [toposearch check] subcommand. *)
val lint : Catalog.t -> string -> Plan_check.violation list
