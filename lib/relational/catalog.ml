type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
  stats_cache : (string, int * Table_stats.t) Hashtbl.t;  (* row count at compute time *)
  stats_lock : Mutex.t;  (* the stats cache fills lazily, possibly off-coordinator *)
}

let create () =
  {
    tables = Hashtbl.create 32;
    order = [];
    stats_cache = Hashtbl.create 32;
    stats_lock = Mutex.create ();
  }

let add t table =
  let n = Table.name table in
  if Hashtbl.mem t.tables n then invalid_arg ("Catalog.add: duplicate table " ^ n);
  Hashtbl.add t.tables n table;
  t.order <- n :: t.order

let create_table t ~name ~schema ?primary_key () =
  let table = Table.create ~name ~schema ?primary_key () in
  add t table;
  table

let find t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t.tables name

let mem t name = Hashtbl.mem t.tables name

let remove t name =
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    Mutex.lock t.stats_lock;
    Hashtbl.remove t.stats_cache name;
    Mutex.unlock t.stats_lock;
    t.order <- List.filter (fun n -> n <> name) t.order
  end

let tables t = List.rev_map (fun n -> Hashtbl.find t.tables n) t.order

(* Coarse lock: lookup, compute and fill happen inside it, so concurrent
   callers never race the cache table (the recompute is idempotent and
   tables are frozen while stats are consulted). *)
let stats t name =
  let table = find t name in
  let current = Table.row_count table in
  Mutex.lock t.stats_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stats_lock)
    (fun () ->
      match Hashtbl.find_opt t.stats_cache name with
      | Some (count, st) when count = current -> st
      | Some _ | None ->
          let st = Table_stats.compute table in
          Hashtbl.replace t.stats_cache name (current, st);
          st)

let restore_stats t entries =
  Mutex.lock t.stats_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stats_lock)
    (fun () ->
      List.iter
        (fun (name, st) ->
          match Hashtbl.find_opt t.tables name with
          | Some table -> Hashtbl.replace t.stats_cache name (Table.row_count table, st)
          | None -> ())
        entries)
