module Key = struct
  type t = Value.t array

  let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 19 k
end

module KeyTbl = Hashtbl.Make (Key)

let drain_into_hash ?(hint = 1024) (it : Iterator.t) cols =
  (* [hint] is the build side's estimated cardinality (the planner passes
     table row counts through); a right-sized table skips the rehash
     cascade a fixed 1024 pays on large builds. *)
  let tbl = KeyTbl.create (max 16 hint) in
  Iterator.iter
    (fun tuple _ ->
      let key = Tuple.key tuple cols in
      match KeyTbl.find_opt tbl key with
      | Some bucket -> Topo_util.Dyn.push bucket tuple
      | None ->
          let bucket = Topo_util.Dyn.create () in
          Topo_util.Dyn.push bucket tuple;
          KeyTbl.add tbl key bucket)
    it;
  tbl

let hash_join ~left ~right ~left_cols ~right_cols ?residual ?build_hint () =
  let schema = Schema.concat left.Iterator.schema right.Iterator.schema in
  let table = ref (KeyTbl.create 0) in
  (* Cursor over the current outer tuple's bucket: matches are pulled one
     at a time straight off the Dyn, instead of materializing a reversed
     list per probe. *)
  let cur_outer = ref None in
  let bucket = ref None in
  let bucket_pos = ref 0 in
  let rec next () =
    match (!cur_outer, !bucket) with
    | Some outer, Some b when !bucket_pos < Topo_util.Dyn.length b ->
        let inner = Topo_util.Dyn.get b !bucket_pos in
        incr bucket_pos;
        let joined = Tuple.concat outer inner in
        (match residual with
        | Some p when not (Expr.truthy p joined) -> next ()
        | Some _ | None -> Some joined)
    | _ -> (
        cur_outer := None;
        bucket := None;
        match left.Iterator.next () with
        | None -> None
        | Some outer ->
            (match KeyTbl.find_opt !table (Tuple.key outer left_cols) with
            | None -> ()
            | Some b ->
                cur_outer := Some outer;
                bucket := Some b;
                bucket_pos := 0);
            next ())
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      table := drain_into_hash ?hint:build_hint right right_cols;
      cur_outer := None;
      bucket := None;
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())

let index_nl_join ~left ~table ~table_cols ~left_cols ?pred ?residual () =
  let schema = Schema.concat left.Iterator.schema (Table.schema table) in
  let idx = ref None in
  (* Same cursor discipline as [hash_join]: walk the probed bucket lazily
     via [Index.probe_bucket] instead of filtering a materialized match
     list per outer row. *)
  let cur_outer = ref None in
  let bucket_n = ref 0 in
  let bucket_get = ref (fun (_ : int) -> 0) in
  let bucket_pos = ref 0 in
  let rec next () =
    match !cur_outer with
    | Some outer when !bucket_pos < !bucket_n ->
        let rowno = !bucket_get !bucket_pos in
        incr bucket_pos;
        let inner = Table.get table rowno in
        (match pred with
        | Some p when not (Expr.truthy p inner) -> next ()
        | Some _ | None -> (
            let joined = Tuple.concat outer inner in
            match residual with
            | Some r when not (Expr.truthy r joined) -> next ()
            | Some _ | None -> Some joined))
    | Some _ | None -> (
        cur_outer := None;
        match left.Iterator.next () with
        | None -> None
        | Some outer ->
            let index =
              match !idx with
              | Some i -> i
              | None ->
                  let i = Table.ensure_index table ~kind:Index.Hash ~cols:table_cols in
                  idx := Some i;
                  i
            in
            Iterator.Counters.add_probes 1;
            let n, get = Index.probe_bucket index (Tuple.key outer left_cols) in
            cur_outer := Some outer;
            bucket_n := n;
            bucket_get := get;
            bucket_pos := 0;
            next ())
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      cur_outer := None;
      bucket_n := 0;
      bucket_pos := 0;
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())

let nl_join ~left ~right ?residual () =
  let schema = Schema.concat left.Iterator.schema right.Iterator.schema in
  let inner = ref [||] in
  let outer_tuple = ref None in
  let inner_pos = ref 0 in
  let rec next () =
    match !outer_tuple with
    | None -> (
        match left.Iterator.next () with
        | None -> None
        | Some t ->
            outer_tuple := Some t;
            inner_pos := 0;
            next ())
    | Some outer ->
        if !inner_pos >= Array.length !inner then begin
          outer_tuple := None;
          next ()
        end
        else begin
          let joined = Tuple.concat outer !inner.(!inner_pos) in
          incr inner_pos;
          match residual with
          | Some p when not (Expr.truthy p joined) -> next ()
          | Some _ | None -> Some joined
        end
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      let _, tuples = Op_basic.materialize right in
      inner := tuples;
      outer_tuple := None;
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())

let membership_pass ~keep_matching ~left ~right ~left_cols ~right_cols () =
  let keys = ref (KeyTbl.create 0) in
  let rec next () =
    match left.Iterator.next () with
    | None -> None
    | Some tuple ->
        let key = Tuple.key tuple left_cols in
        let found = KeyTbl.mem !keys key in
        if found = keep_matching then Some tuple else next ()
  in
  Iterator.ungrouped ~schema:left.Iterator.schema
    ~open_:(fun () ->
      let tbl = KeyTbl.create 1024 in
      Iterator.iter (fun tuple _ -> KeyTbl.replace tbl (Tuple.key tuple right_cols) ()) right;
      keys := tbl;
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())

let anti_join ~left ~right ~left_cols ~right_cols () =
  membership_pass ~keep_matching:false ~left ~right ~left_cols ~right_cols ()

let semi_join ~left ~right ~left_cols ~right_cols () =
  membership_pass ~keep_matching:true ~left ~right ~left_cols ~right_cols ()

let merge_join ~left ~right ~left_cols ~right_cols ?residual () =
  let schema = Schema.concat left.Iterator.schema right.Iterator.schema in
  (* The right input is materialized (bounded by the inner relation size);
     the left streams.  For each left tuple we binary-search the right
     group and emit its matches. *)
  let right_rows = ref [||] in
  let pending = ref [] in
  let right_lo = ref 0 in
  let compare_keys (ltuple : Tuple.t) (rtuple : Tuple.t) =
    let rec loop i =
      if i >= Array.length left_cols then 0
      else
        let c = Value.compare ltuple.(left_cols.(i)) rtuple.(right_cols.(i)) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  in
  let rec next () =
    match !pending with
    | tuple :: rest ->
        pending := rest;
        Some tuple
    | [] -> (
        match left.Iterator.next () with
        | None -> None
        | Some outer ->
            (* Advance the right frontier past smaller keys (both inputs
               ascending). *)
            let n = Array.length !right_rows in
            while !right_lo < n && compare_keys outer !right_rows.(!right_lo) > 0 do
              incr right_lo
            done;
            let matches = ref [] in
            let i = ref !right_lo in
            while !i < n && compare_keys outer !right_rows.(!i) = 0 do
              let joined = Tuple.concat outer !right_rows.(!i) in
              (match residual with
              | Some p when not (Expr.truthy p joined) -> ()
              | Some _ | None -> matches := joined :: !matches);
              incr i
            done;
            pending := List.rev !matches;
            next ())
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      let _, rows = Op_basic.materialize right in
      (* Defensive: sort the materialized inner on its key columns so the
         operator works even when the input order is unknown. *)
      Array.sort (fun a b -> Tuple.compare_at right_cols a b) rows;
      right_rows := rows;
      right_lo := 0;
      pending := [];
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())
