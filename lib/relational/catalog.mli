(** The database catalog: the named tables of one database instance.

    Both the synthetic Biozon instance and the topology engine's derived
    tables (AllTops, LeftTops, ExcpTops, TopInfo) live in a catalog, so the
    SQL front end and the operators can address all of them uniformly. *)

type t

(** [create ()] is an empty catalog. *)
val create : unit -> t

(** [add t table] registers a table.
    @raise Invalid_argument if the name is taken. *)
val add : t -> Table.t -> unit

(** [create_table t ~name ~schema ?primary_key ()] creates, registers and
    returns a table. *)
val create_table : t -> name:string -> schema:Schema.t -> ?primary_key:string -> unit -> Table.t

(** [find t name].  @raise Not_found when absent. *)
val find : t -> string -> Table.t

(** [find_opt t name]. *)
val find_opt : t -> string -> Table.t option

(** [mem t name]. *)
val mem : t -> string -> bool

(** [remove t name] drops a table if present (used when re-running pruning
    with a different threshold). *)
val remove : t -> string -> unit

(** [tables t] in registration order. *)
val tables : t -> Table.t list

(** [stats t table_name] is the cached statistics for a table, computed on
    first request and invalidated when row counts change. *)
val stats : t -> string -> Table_stats.t

(** [restore_stats t entries] seeds the statistics cache with precomputed
    [(table_name, stats)] pairs — the snapshot load path's replacement for
    recomputing every histogram.  Entries are stamped with the table's
    current row count (so later inserts still invalidate them); entries
    naming absent tables are ignored. *)
val restore_stats : t -> (string * Table_stats.t) list -> unit
