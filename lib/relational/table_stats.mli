(** Table statistics for cost-based optimization.

    These are the "regular database statistics" of Section 5.4.3: relation
    cardinalities (N_i), index probe costs (I_i), local-predicate
    selectivities (rho_i) and join selectivities (s_i).  Keyword-containment
    selectivity has no closed form, so it is estimated on a bounded sample of
    the column, like commercial systems estimate LIKE patterns. *)

type t

(** [compute table] scans the table once and builds histograms for every
    column. *)
val compute : Table.t -> t

(** [columns t] is the number of columns summarized (the table's arity at
    compute time). *)
val columns : t -> int

(** [sample t col] is the bounded per-column sample used for [Contains]
    estimation.  @raise Invalid_argument when out of range. *)
val sample : t -> int -> Value.t array

(** [restore ~row_count ~histograms ~samples ~avg_width] rebuilds a stats
    record from previously extracted state — the snapshot codec's inverse
    of {!compute}. *)
val restore :
  row_count:int ->
  histograms:Histogram.t array ->
  samples:Value.t array array ->
  avg_width:float ->
  t

(** [row_count t]. *)
val row_count : t -> int

(** [histogram t col] for the column position.
    @raise Invalid_argument when out of range. *)
val histogram : t -> int -> Histogram.t

(** [distinct t col] distinct non-null values in a column. *)
val distinct : t -> int -> int

(** [predicate_selectivity t schema expr] estimates the fraction of rows
    satisfying [expr]: comparisons via histograms, [Contains] via the stored
    sample, boolean combinations under independence. *)
val predicate_selectivity : t -> Schema.t -> Expr.t -> float

(** [join_selectivity ~left ~left_col ~right ~right_col] estimates the
    selectivity of an equi-join as [1 / max(d_left, d_right)], the classic
    System-R formula. *)
val join_selectivity : left:t -> left_col:int -> right:t -> right_col:int -> float

(** [avg_row_width t] in bytes. *)
val avg_row_width : t -> float
