let transparent (it : Iterator.t) ~schema ~next =
  {
    Iterator.schema;
    open_ = it.Iterator.open_;
    next;
    close = it.Iterator.close;
    advance_group = it.Iterator.advance_group;
    last_group = it.Iterator.last_group;
  }

let filter pred (it : Iterator.t) =
  let rec next () =
    match it.Iterator.next () with
    | None -> None
    | Some tuple -> if Expr.truthy pred tuple then Some tuple else next ()
  in
  transparent it ~schema:it.Iterator.schema ~next

let project (it : Iterator.t) ~cols =
  let schema = Schema.project it.Iterator.schema cols in
  (* Positions as a flat array, fixed here once: the per-tuple hot path
     below never walks (or allocates) list nodes. *)
  let positions = Array.of_list cols in
  let next () =
    match it.Iterator.next () with
    | None -> None
    | Some tuple -> Some (Tuple.project tuple positions)
  in
  transparent it ~schema ~next

let limit n (it : Iterator.t) =
  let seen = ref 0 in
  let it' =
    transparent it ~schema:it.Iterator.schema ~next:(fun () ->
        if !seen >= n then None
        else
          match it.Iterator.next () with
          | None -> None
          | Some tuple ->
              incr seen;
              Some tuple)
  in
  { it' with Iterator.open_ = (fun () -> seen := 0; it.Iterator.open_ ()) }

let materialize (it : Iterator.t) =
  let out = Topo_util.Dyn.create () in
  Iterator.iter (fun tuple _ -> Topo_util.Dyn.push out tuple) it;
  (it.Iterator.schema, Topo_util.Dyn.to_array out)

let sort (it : Iterator.t) ~by =
  let buffer = ref [||] in
  let pos = ref 0 in
  let compare_tuples a b =
    let rec loop = function
      | [] -> 0
      | (col, desc) :: rest ->
          let c = Value.compare a.(col) b.(col) in
          if c <> 0 then if desc then -c else c else loop rest
    in
    loop by
  in
  Iterator.ungrouped ~schema:it.Iterator.schema
    ~open_:(fun () ->
      let _, tuples = materialize it in
      (* Stable sort keeps input order among score ties, as the paper's
         ORDER BY does in DB2. *)
      let indexed = Array.mapi (fun i t -> (i, t)) tuples in
      Array.sort
        (fun (ia, a) (ib, b) ->
          let c = compare_tuples a b in
          if c <> 0 then c else Int.compare ia ib)
        indexed;
      buffer := Array.map snd indexed;
      pos := 0)
    ~next:(fun () ->
      if !pos >= Array.length !buffer then None
      else begin
        let tuple = !buffer.(!pos) in
        incr pos;
        Some tuple
      end)
    ~close:it.Iterator.close

module TupleTbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

let distinct (it : Iterator.t) =
  let seen = TupleTbl.create 256 in
  let rec next () =
    match it.Iterator.next () with
    | None -> None
    | Some tuple ->
        if TupleTbl.mem seen tuple then next ()
        else begin
          TupleTbl.add seen tuple ();
          Some tuple
        end
  in
  Iterator.ungrouped ~schema:it.Iterator.schema
    ~open_:(fun () ->
      TupleTbl.reset seen;
      it.Iterator.open_ ())
    ~next ~close:it.Iterator.close

let union (a : Iterator.t) (b : Iterator.t) =
  if Schema.arity a.Iterator.schema <> Schema.arity b.Iterator.schema then
    invalid_arg "Op_basic.union: arity mismatch";
  let seen = TupleTbl.create 256 in
  let on_a = ref true in
  let rec next () =
    let src = if !on_a then a else b in
    match src.Iterator.next () with
    | Some tuple ->
        if TupleTbl.mem seen tuple then next ()
        else begin
          TupleTbl.add seen tuple ();
          Some tuple
        end
    | None ->
        if !on_a then begin
          on_a := false;
          next ()
        end
        else None
  in
  Iterator.ungrouped ~schema:a.Iterator.schema
    ~open_:(fun () ->
      TupleTbl.reset seen;
      on_a := true;
      a.Iterator.open_ ();
      b.Iterator.open_ ())
    ~next
    ~close:(fun () ->
      a.Iterator.close ();
      b.Iterator.close ())

let compute (it : Iterator.t) ~schema ~exprs =
  let exprs = Array.of_list exprs in
  let next () =
    match it.Iterator.next () with
    | None -> None
    | Some tuple -> Some (Array.map (fun e -> Expr.eval e tuple) exprs)
  in
  transparent it ~schema ~next

type agg_op = ACount_star | ACount | ASum | AMin | AMax | AAvg

type acc = {
  mutable count : int;
  mutable sum : float;
  mutable sum_is_int : bool;
  mutable minv : Value.t;
  mutable maxv : Value.t;
  mutable non_null : int;
}

let fresh_acc () =
  { count = 0; sum = 0.0; sum_is_int = true; minv = Value.Null; maxv = Value.Null; non_null = 0 }

let acc_add acc value =
  acc.count <- acc.count + 1;
  match value with
  | None -> ()
  | Some v ->
      if not (Value.is_null v) then begin
        acc.non_null <- acc.non_null + 1;
        (match v with
        | Value.Int n -> acc.sum <- acc.sum +. float_of_int n
        | Value.Float f ->
            acc.sum <- acc.sum +. f;
            acc.sum_is_int <- false
        | Value.Str _ | Value.Null -> ());
        if Value.is_null acc.minv || Value.compare v acc.minv < 0 then acc.minv <- v;
        if Value.is_null acc.maxv || Value.compare v acc.maxv > 0 then acc.maxv <- v
      end

let acc_result op acc =
  match op with
  | ACount_star -> Value.Int acc.count
  | ACount -> Value.Int acc.non_null
  | ASum ->
      if acc.non_null = 0 then Value.Null
      else if acc.sum_is_int then Value.Int (int_of_float acc.sum)
      else Value.Float acc.sum
  | AMin -> acc.minv
  | AMax -> acc.maxv
  | AAvg -> if acc.non_null = 0 then Value.Null else Value.Float (acc.sum /. float_of_int acc.non_null)

let hash_aggregate (it : Iterator.t) ~schema ~keys ~aggs =
  let keys = Array.of_list keys in
  let aggs = Array.of_list aggs in
  let buffer = ref [||] in
  let pos = ref 0 in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      let groups : (Value.t array, acc array) Hashtbl.t = Hashtbl.create 64 in
      let order = Topo_util.Dyn.create () in
      Iterator.iter
        (fun tuple _ ->
          let key = Array.map (fun e -> Expr.eval e tuple) keys in
          let accs =
            match Hashtbl.find_opt groups key with
            | Some a -> a
            | None ->
                let a = Array.map (fun _ -> fresh_acc ()) aggs in
                Hashtbl.add groups key a;
                Topo_util.Dyn.push order key;
                a
          in
          Array.iteri
            (fun i (_, arg) -> acc_add accs.(i) (Option.map (fun e -> Expr.eval e tuple) arg))
            aggs)
        it;
      (* SQL semantics: an ungrouped aggregate over no rows yields one row
         of neutral values. *)
      if Array.length keys = 0 && Hashtbl.length groups = 0 then begin
        Hashtbl.add groups [||] (Array.map (fun _ -> fresh_acc ()) aggs);
        Topo_util.Dyn.push order [||]
      end;
      let rows = Topo_util.Dyn.create () in
      Topo_util.Dyn.iter
        (fun key ->
          let accs = Hashtbl.find groups key in
          let agg_values = Array.mapi (fun i (op, _) -> acc_result op accs.(i)) aggs in
          Topo_util.Dyn.push rows (Array.append key agg_values))
        order;
      buffer := Topo_util.Dyn.to_array rows;
      pos := 0)
    ~next:(fun () ->
      if !pos >= Array.length !buffer then None
      else begin
        let row = !buffer.(!pos) in
        incr pos;
        Some row
      end)
    ~close:(fun () -> ())
