(** Cost-based optimization for distinct top-k group queries (Section 5.4).

    The optimizer handles the SQL6 query class: a {e group relation} whose
    tuples are the groups (TopInfo, one row per topology, carrying a score),
    a {e fact relation} expanding each group into member tuples (LeftTops),
    and {e dimension relations} joined to fact columns with local predicates
    (the selected Proteins / DNAs / Interactions), producing the distinct
    top-k groups by score.

    Two plan families are enumerated, as in the paper:

    - {b regular}: a System-R style dynamic program over left-deep hash /
      index-nested-loop join orders, followed by project, distinct, sort by
      score and limit (the Figure 14 shape);
    - {b early-termination}: an ordered grouped scan of the group relation
      feeding a stack of DGJ operators (the Figure 15 shape), enumerated
      over dimension orders and per-level IDGJ/HDGJ implementations, and
      priced with the {!Dgj_cost} model.

    [choose] returns the cheaper plan along with both estimates so callers
    (and Table 2) can report the optimizer's decision. *)

type dim = {
  dim_table : string;
  dim_alias : string;
  dim_key : string;  (** join column on the dimension side, e.g. ["ID"] *)
  fact_col : string;  (** join column on the fact side, e.g. ["E1"] *)
  dim_pred : Expr.t option;  (** local predicate over the dimension's base schema *)
}

type spec = {
  group_table : string;  (** e.g. TopInfo *)
  group_key : string;  (** e.g. TID *)
  score_col : string;  (** ordering column, scanned descending *)
  group_pred : Expr.t option;
  fact_table : string;  (** e.g. LeftTops *)
  fact_group_col : string;  (** fact column joining to [group_key] *)
  dims : dim list;
  k : int;
}

type strategy = Regular | Early_termination

type decision = {
  plan : Physical.t;
  strategy : strategy;
  regular_cost : float;
  et_cost : float;
  explain : string;
}

(** [et_plan catalog spec ~impls ~dim_order] builds the DGJ-stack physical
    plan explicitly: [dim_order] permutes [spec.dims] and [impls] chooses
    IDGJ ([`I]) or HDGJ ([`H]) per level ([impls] also covers the fact
    expansion level at its head).  Exposed so benchmarks can time specific
    plan shapes (the paper's "best and worst plans"). *)
val et_plan : Catalog.t -> spec -> impls:[ `I | `H ] list -> dim_order:int list -> Physical.t

(** [regular_plan catalog spec] is the best regular plan found by the
    join-order dynamic program, with its estimated cost.  With [~check:true]
    every candidate the DP prices, and the returned plan, must pass
    {!Plan_check.check} (raises {!Plan_check.Plan_error} otherwise); tests
    run with it on. *)
val regular_plan : ?check:bool -> Catalog.t -> spec -> Physical.t * float

(** [best_et_plan catalog spec] enumerates dimension orders and per-level
    implementations, pricing each with {!Dgj_cost}; returns the cheapest
    with its cost.  Returns [None] when the fact or group relation is
    empty.  [~check:true] verifies every enumerated candidate and the
    winner. *)
val best_et_plan : ?check:bool -> Catalog.t -> spec -> (Physical.t * float) option

(** [choose catalog spec] runs both searches and picks the cheaper plan.
    [~check] is forwarded to both searches. *)
val choose : ?check:bool -> Catalog.t -> spec -> decision

(** [run_topk catalog spec decision] executes the decision and returns the
    top-k [(group_key_value, score)] pairs in descending score order.  For
    an [Early_termination] plan this drives the DGJ stack with
    [first_match_per_group]; for a [Regular] plan it drains the plan. *)
val run_topk : Catalog.t -> spec -> decision -> (Value.t * float) list
