open Sql_lexer

exception Parse_error of string

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)

let peek2 st = if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else EOF

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (at token %d: %s)" msg st.pos (token_to_string (peek st))))

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let expect_kw st kw = expect st (KW kw) (Printf.sprintf "expected %s" kw)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (KW kw)

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* --- expressions ------------------------------------------------------ *)

let rec parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Sql_ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "AND" then Sql_ast.And (left, parse_and st) else left

and parse_not st =
  if accept_kw st "NOT" then
    if accept_kw st "EXISTS" then begin
      expect st LPAREN "expected ( after NOT EXISTS";
      let sub = parse_select st in
      expect st RPAREN "expected ) closing subquery";
      Sql_ast.Not_exists sub
    end
    else Sql_ast.Not (parse_not st)
  else parse_comparison st

and parse_comparison st =
  if accept_kw st "EXISTS" then begin
    expect st LPAREN "expected ( after EXISTS";
    let sub = parse_select st in
    expect st RPAREN "expected ) closing subquery";
    Sql_ast.Exists sub
  end
  else begin
    let left = parse_primary st in
    match peek st with
    | EQ -> advance st; Sql_ast.Cmp (Expr.Eq, left, parse_primary st)
    | NE -> advance st; Sql_ast.Cmp (Expr.Ne, left, parse_primary st)
    | LT -> advance st; Sql_ast.Cmp (Expr.Lt, left, parse_primary st)
    | LE -> advance st; Sql_ast.Cmp (Expr.Le, left, parse_primary st)
    | GT -> advance st; Sql_ast.Cmp (Expr.Gt, left, parse_primary st)
    | GE -> advance st; Sql_ast.Cmp (Expr.Ge, left, parse_primary st)
    | IDENT _ | INT _ | FLOAT _ | STRING _ | KW _ | LPAREN | RPAREN | COMMA | DOT | STAR | EOF -> left
  end

and parse_primary st =
  match peek st with
  | INT n -> advance st; Sql_ast.Int_lit n
  | FLOAT f -> advance st; Sql_ast.Float_lit f
  | STRING s -> advance st; Sql_ast.String_lit s
  | LPAREN ->
      advance st;
      let e = parse_or st in
      expect st RPAREN "expected )";
      e
  | IDENT name
    when List.mem (String.uppercase_ascii name) [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]
         && peek2 st = LPAREN ->
      let kind_name = String.uppercase_ascii name in
      advance st;
      advance st;
      let kind, arg =
        if peek st = STAR then begin
          advance st;
          if kind_name <> "COUNT" then fail st "only COUNT accepts *";
          (Sql_ast.Count_star, None)
        end
        else begin
          let e = parse_primary st in
          let kind =
            match kind_name with
            | "COUNT" -> Sql_ast.Count
            | "SUM" -> Sql_ast.Sum
            | "MIN" -> Sql_ast.Min
            | "MAX" -> Sql_ast.Max
            | "AVG" -> Sql_ast.Avg
            | other -> fail st (Printf.sprintf "unknown aggregate function %s" other)
          in
          (kind, Some e)
        end
      in
      expect st RPAREN "expected ) closing aggregate";
      Sql_ast.Agg (kind, arg)
  | IDENT _ ->
      let rec segments acc =
        let seg = ident st in
        if peek st = DOT then begin
          advance st;
          (* [col.ct('kw')] — the paper's keyword-containment syntax. *)
          match (peek st, peek2 st) with
          | IDENT "ct", LPAREN ->
              advance st;
              advance st;
              let kw =
                match peek st with
                | STRING s -> advance st; s
                | _ -> fail st "expected string literal inside ct()"
              in
              expect st RPAREN "expected ) closing ct(";
              `Contains (List.rev (seg :: acc), kw)
          | _ -> segments (seg :: acc)
        end
        else `Column (List.rev (seg :: acc))
      in
      (match segments [] with
      | `Column segs -> Sql_ast.Column segs
      | `Contains (segs, kw) -> Sql_ast.Contains (Sql_ast.Column segs, kw))
  | _ -> fail st "expected expression"

(* --- select ----------------------------------------------------------- *)

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec items acc =
    let e = parse_primary st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | IDENT _ when peek2 st <> DOT -> (
            (* bare alias, as in "Top.score SCORE" *)
            match peek st with
            | IDENT s ->
                advance st;
                Some s
            | _ -> None)
        | _ -> None
    in
    let acc = (e, alias) :: acc in
    if accept st COMMA then items acc else List.rev acc
  in
  let items = items [] in
  expect_kw st "FROM";
  let parse_table_ref () =
    let name = ident st in
    let alias =
      if accept_kw st "AS" then ident st
      else
        match peek st with
        | IDENT s ->
            advance st;
            s
        | _ -> name
    in
    (name, alias)
  in
  let rec from_list from joins =
    let base_name, base_alias = parse_table_ref () in
    let rec join_chain prev_alias joins =
      if accept_kw st "JOIN" then begin
        let name, alias = parse_table_ref () in
        if accept_kw st "ON" then begin
          let cond = parse_or st in
          join_chain alias ((prev_alias, name, alias, Some cond) :: joins)
        end
        else
          (* The paper writes "A JOIN B as AB" meaning a natural join on the
             shared column; the binder resolves it. *)
          join_chain alias ((prev_alias, name, alias, None) :: joins)
      end
      else joins
    in
    let joins = join_chain base_alias joins in
    let from = (base_name, base_alias) :: from in
    if accept st COMMA then from_list from joins else (List.rev from, List.rev joins)
  in
  let from, joins = from_list [] [] in
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec keys acc =
        let e = parse_primary st in
        let acc = e :: acc in
        if accept st COMMA then keys acc else List.rev acc
      in
      keys []
    end
    else []
  in
  { Sql_ast.distinct; items; from; joins; where; group_by }

let parse_query st =
  let rec selects acc =
    let s = parse_select st in
    if accept_kw st "UNION" then selects (s :: acc) else List.rev (s :: acc)
  in
  let selects = selects [] in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec keys acc =
        let e = parse_primary st in
        (* Directions are identifiers (DESC cannot be a keyword because
           "desc" is a column name in the Biozon schema). *)
        let desc =
          match peek st with
          | IDENT s when String.lowercase_ascii s = "desc" ->
              advance st;
              true
          | IDENT s when String.lowercase_ascii s = "asc" ->
              advance st;
              false
          | _ -> false
        in
        let acc = (e, desc) :: acc in
        if accept st COMMA then keys acc else List.rev acc
      in
      keys []
    end
    else []
  in
  let fetch =
    if accept_kw st "FETCH" then begin
      ignore (accept_kw st "FIRST");
      (* "FETCH TOP n": TOP is an identifier (it collides with the paper's
         TopInfo alias), accepted here by spelling. *)
      (match peek st with
      | IDENT s when String.uppercase_ascii s = "TOP" -> advance st
      | _ -> ());
      let n =
        match peek st with
        | INT n ->
            advance st;
            n
        | _ -> fail st "expected row count after FETCH FIRST"
      in
      ignore (accept_kw st "ROWS");
      ignore (accept_kw st "ROW");
      ignore (accept_kw st "ONLY");
      Some n
    end
    else None
  in
  { Sql_ast.selects; order_by; fetch }

let parse input =
  let st = { tokens = Sql_lexer.tokenize input; pos = 0 } in
  let q = parse_query st in
  if peek st <> EOF then fail st "trailing input after query";
  q
