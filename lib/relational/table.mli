(** In-memory tables.

    A table owns its rows, an optional primary-key hash index, and any
    number of named secondary indexes.  Insertion freezes no state: indexes
    built before later insertions are invalidated and rebuilt lazily, which
    matches the paper's bulk-load-then-query lifecycle ("updates are only
    done in bulk every few weeks").

    Storage comes in two flavors.  Row-built tables ({!create} + {!insert})
    keep a [Tuple.t] dynamic array, as before.  Columnar-backed tables
    ({!of_columns}) are created straight from typed {!Column} lanes — the
    snapshot load path — and box rows only on demand: primary-key hashes,
    row snapshots and secondary indexes all fill lazily.  Either flavor
    exposes the same API, and either can serve the columnar views
    ({!lane}, {!int_lane}, {!int_index}) the execution kernels probe;
    row-built tables derive their lanes lazily from the row snapshot.  An
    insert into a columnar-backed table demotes it to row storage first. *)

type t

(** [create ~name ~schema ?primary_key ()] makes an empty table.
    [primary_key] names a column; inserts enforce uniqueness on it. *)
val create : name:string -> schema:Schema.t -> ?primary_key:string -> unit -> t

(** [of_columns ~name ~schema ?primary_key columns] makes a table whose
    storage {e is} [columns] — no per-cell boxing.  Primary-key uniqueness
    is checked on the first probe, not here.
    @raise Invalid_argument on arity mismatch or unknown primary key. *)
val of_columns : name:string -> schema:Schema.t -> ?primary_key:string -> Column.t -> t

(** [name t]. *)
val name : t -> string

(** [schema t]. *)
val schema : t -> Schema.t

(** [insert t tuple] appends a row.
    @raise Invalid_argument on arity mismatch or duplicate primary key. *)
val insert : t -> Tuple.t -> unit

(** [insert_values t values] convenience for literal rows. *)
val insert_values : t -> Value.t list -> unit

(** [row_count t]. *)
val row_count : t -> int

(** [get t rowno] fetches by physical row number. *)
val get : t -> int -> Tuple.t

(** [rows t] is a snapshot array of all rows (shared tuples).  The array is
    cached and returned again by later calls until the next insert or
    truncate, so repeated index builds and scans over a frozen table — the
    bulk-load-then-query lifecycle — copy nothing.  Treat it as read-only:
    mutating it corrupts every other holder of the snapshot. *)
val rows : t -> Tuple.t array

(** [iter f t] applies [f rowno tuple] in physical order. *)
val iter : (int -> Tuple.t -> unit) -> t -> unit

(** [iter_row_strings f t] applies [f] to each row rendered as
    [Tuple.to_string] would, in physical order — but without boxing rows
    when the table is columnar-backed and unmaterialized.  This keeps
    [Engine.fingerprint] zero-copy on a freshly loaded engine. *)
val iter_row_strings : (string -> unit) -> t -> unit

(** [find_by_pk t key] fetches the unique row whose primary-key column
    equals [key], using the primary-key hash index (filled lazily on
    columnar-backed tables).
    @raise Invalid_argument if the table has no primary key, or on the
    first probe of a columnar backing containing duplicate keys. *)
val find_by_pk : t -> Value.t -> Tuple.t option

(** [primary_key t] is the primary-key column name, if any. *)
val primary_key : t -> string option

(** [ensure_index t ~kind ~cols] returns the index on the named columns,
    building (or rebuilding after inserts) as needed.  Indexes are cached
    per (kind, column list); cold-cache fills are serialized under the
    table's cache lock, so concurrent readers (the serving tier) may call
    this freely on a frozen table. *)
val ensure_index : t -> kind:Index.kind -> cols:string list -> Index.t

(** [declare_index t ~kind ~cols] records an index spec without building
    its payload — the snapshot load path's lazy replacement for an eager
    {!ensure_index}.  The spec appears in {!index_specs} immediately; the
    payload fills on the first {!ensure_index} probe.
    @raise Invalid_argument on an unknown column name. *)
val declare_index : t -> kind:Index.kind -> cols:string list -> unit

(** [index_specs t] is the [(kind, column names)] of every index declared
    or built, oldest first — enough to rebuild the indexes cheaply via
    {!ensure_index}.  Snapshots persist these specs instead of index
    payloads. *)
val index_specs : t -> (Index.kind * string list) list

(** [lane t ci] is the typed columnar lane of column [ci]: the backing lane
    of a columnar table, or one derived (and cached) from the row snapshot.
    Never [None] in practice; the option mirrors the other columnar
    views. *)
val lane : t -> int -> Column.lane option

(** [int_lane t ci] is column [ci]'s lane when every cell is [Value.Int] —
    the precondition for the int-specialized kernels. *)
val int_lane : t -> int -> Column.ints option

(** [int_index t ci] is a cached int-keyed hash multimap from column [ci]'s
    values to row numbers (chains in row order), or [None] when the lane is
    not all-int.  The kernels' allocation-free replacement for a
    [Index.Hash] index on one int column. *)
val int_index : t -> int -> Int_table.t option

(** [byte_size t] is the estimated storage size: sum of row widths.  This is
    the quantity reported in Table 1. *)
val byte_size : t -> int

(** [truncate t] removes all rows and indexes. *)
val truncate : t -> unit
