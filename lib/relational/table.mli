(** In-memory tables.

    A table owns its rows, an optional primary-key hash index, and any
    number of named secondary indexes.  Insertion freezes no state: indexes
    built before later insertions are invalidated and rebuilt lazily, which
    matches the paper's bulk-load-then-query lifecycle ("updates are only
    done in bulk every few weeks"). *)

type t

(** [create ~name ~schema ?primary_key ()] makes an empty table.
    [primary_key] names a column; inserts enforce uniqueness on it. *)
val create : name:string -> schema:Schema.t -> ?primary_key:string -> unit -> t

(** [name t]. *)
val name : t -> string

(** [schema t]. *)
val schema : t -> Schema.t

(** [insert t tuple] appends a row.
    @raise Invalid_argument on arity mismatch or duplicate primary key. *)
val insert : t -> Tuple.t -> unit

(** [insert_values t values] convenience for literal rows. *)
val insert_values : t -> Value.t list -> unit

(** [row_count t]. *)
val row_count : t -> int

(** [get t rowno] fetches by physical row number. *)
val get : t -> int -> Tuple.t

(** [rows t] is a snapshot array of all rows (shared tuples).  The array is
    cached and returned again by later calls until the next insert or
    truncate, so repeated index builds and scans over a frozen table — the
    bulk-load-then-query lifecycle — copy nothing.  Treat it as read-only:
    mutating it corrupts every other holder of the snapshot. *)
val rows : t -> Tuple.t array

(** [iter f t] applies [f rowno tuple] in physical order. *)
val iter : (int -> Tuple.t -> unit) -> t -> unit

(** [find_by_pk t key] fetches the unique row whose primary-key column
    equals [key], using the primary-key hash index.
    @raise Invalid_argument if the table has no primary key. *)
val find_by_pk : t -> Value.t -> Tuple.t option

(** [primary_key t] is the primary-key column name, if any. *)
val primary_key : t -> string option

(** [ensure_index t ~kind ~cols] returns the index on the named columns,
    building (or rebuilding after inserts) as needed.  Indexes are cached
    per (kind, column list); cold-cache fills are serialized under the
    table's cache lock, so concurrent readers (the serving tier) may call
    this freely on a frozen table. *)
val ensure_index : t -> kind:Index.kind -> cols:string list -> Index.t

(** [index_specs t] is the [(kind, column names)] of every index currently
    cached, oldest first — enough to rebuild the indexes cheaply via
    {!ensure_index}.  Snapshots persist these specs instead of index
    payloads. *)
val index_specs : t -> (Index.kind * string list) list

(** [byte_size t] is the estimated storage size: sum of row widths.  This is
    the quantity reported in Table 1. *)
val byte_size : t -> int

(** [truncate t] removes all rows and indexes. *)
val truncate : t -> unit
