module A1 = Bigarray.Array1

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t
type i64s = (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

type lane =
  | Ints of ints
  | Floats of floats
  | Nums of { tags : Bytes.t; bits : i64s }
  | Strs of { ids : int array; pool : string array }
  | Boxed of Value.t array

type t = { n_rows : int; lanes : lane array }

let null_tag = '\000'
let int_tag = '\001'
let float_tag = '\002'

let lane_length = function
  | Ints a -> A1.dim a
  | Floats a -> A1.dim a
  | Nums { bits; _ } -> A1.dim bits
  | Strs { ids; _ } -> Array.length ids
  | Boxed a -> Array.length a

let make ~rows lanes =
  Array.iteri
    (fun i lane ->
      if lane_length lane <> rows then
        invalid_arg
          (Printf.sprintf "Column.make: lane %d has %d rows, expected %d" i (lane_length lane) rows))
    lanes;
  { n_rows = rows; lanes }

let rows t = t.n_rows

let arity t = Array.length t.lanes

let lane t ci = t.lanes.(ci)

let ints = function Ints a -> Some a | Floats _ | Nums _ | Strs _ | Boxed _ -> None

let lane_value lane r =
  match lane with
  | Ints a -> Value.Int (A1.get a r)
  | Floats a -> Value.Float (A1.get a r)
  | Nums { tags; bits } ->
      let tag = Bytes.get tags r in
      if tag = null_tag then Value.Null
      else if tag = int_tag then Value.Int (Int64.to_int (A1.get bits r))
      else Value.Float (Int64.float_of_bits (A1.get bits r))
  | Strs { ids; pool } ->
      let id = ids.(r) in
      if id < 0 then Value.Null else Value.Str pool.(id)
  | Boxed a -> a.(r)

let value t ci r = lane_value t.lanes.(ci) r

let tuple t r = Array.init (arity t) (fun ci -> lane_value t.lanes.(ci) r)

let to_rows t = Array.init t.n_rows (tuple t)

(* Renders exactly like [Value.to_string] so the columnar and row paths of
   [Engine.fingerprint] digest identical bytes. *)
let add_cell_string buf lane r =
  match lane with
  | Ints a -> Buffer.add_string buf (string_of_int (A1.get a r))
  | Floats a -> Buffer.add_string buf (Printf.sprintf "%g" (A1.get a r))
  | Strs { ids; pool } ->
      let id = ids.(r) in
      Buffer.add_string buf (if id < 0 then "NULL" else pool.(id))
  | Nums _ | Boxed _ -> Buffer.add_string buf (Value.to_string (lane_value lane r))

(* Renders exactly like [Tuple.to_string]. *)
let add_row_string buf t r =
  Buffer.add_char buf '(';
  let k = arity t in
  for ci = 0 to k - 1 do
    if ci > 0 then Buffer.add_string buf ", ";
    add_cell_string buf t.lanes.(ci) r
  done;
  Buffer.add_char buf ')'

(* Per-cell widths as in [Value.width], summed without boxing, so a
   columnar-backed table reports the same [Table.byte_size] a row-built
   one would. *)
let byte_size t =
  let total = ref 0 in
  Array.iter
    (fun lane ->
      match lane with
      | Ints a -> total := !total + (8 * A1.dim a)
      | Floats a -> total := !total + (8 * A1.dim a)
      | Nums { tags; _ } ->
          Bytes.iter (fun tag -> total := !total + if tag = null_tag then 1 else 8) tags
      | Strs { ids; pool } ->
          Array.iter
            (fun id -> total := !total + if id < 0 then 1 else String.length pool.(id) + 8)
            ids
      | Boxed a -> Array.iter (fun v -> total := !total + Value.width v) a)
    t.lanes;
  !total

(* Classify one column of boxed cells into the tightest lane the data
   admits.  Declared type narrows the candidates; actual cells decide
   (tables do not enforce column types, so a declared-Int column holding a
   string still round-trips via [Boxed]). *)
let of_values (ty : Schema.ty) (cells : Value.t array) : lane =
  let n = Array.length cells in
  let all p = Array.for_all p cells in
  (* Each branch below re-matches cells a classifying [all] pass already
     vetted; reaching the impossible arm means the array mutated under us. *)
  let unreachable_cell () =
    invalid_arg "Column.of_values: cell changed shape during classification"
  in
  match ty with
  | Schema.TInt | Schema.TFloat ->
      if all (function Value.Int _ -> true | _ -> false) then begin
        let a = A1.create Bigarray.int Bigarray.c_layout n in
        for r = 0 to n - 1 do
          A1.set a r (match cells.(r) with Value.Int x -> x | _ -> unreachable_cell ())
        done;
        Ints a
      end
      else if all (function Value.Float _ -> true | _ -> false) then begin
        let a = A1.create Bigarray.float64 Bigarray.c_layout n in
        for r = 0 to n - 1 do
          A1.set a r (match cells.(r) with Value.Float f -> f | _ -> unreachable_cell ())
        done;
        Floats a
      end
      else if all (function Value.Str _ -> false | _ -> true) then begin
        let tags = Bytes.make n null_tag in
        let bits = A1.create Bigarray.int64 Bigarray.c_layout n in
        for r = 0 to n - 1 do
          match cells.(r) with
          | Value.Null -> A1.set bits r 0L
          | Value.Int x ->
              Bytes.set tags r int_tag;
              A1.set bits r (Int64.of_int x)
          | Value.Float f ->
              Bytes.set tags r float_tag;
              A1.set bits r (Int64.bits_of_float f)
          | Value.Str _ -> unreachable_cell ()
        done;
        Nums { tags; bits }
      end
      else Boxed (Array.copy cells)
  | Schema.TStr ->
      if all (function Value.Null | Value.Str _ -> true | _ -> false) then begin
        let pool_ids = Hashtbl.create 64 in
        let pool = Topo_util.Dyn.create () in
        let ids =
          Array.map
            (function
              | Value.Null -> -1
              | Value.Str s -> (
                  match Hashtbl.find_opt pool_ids s with
                  | Some id -> id
                  | None ->
                      let id = Topo_util.Dyn.length pool in
                      Topo_util.Dyn.push pool s;
                      Hashtbl.add pool_ids s id;
                      id)
              | _ -> unreachable_cell ())
            cells
        in
        Strs { ids; pool = Topo_util.Dyn.to_array pool }
      end
      else Boxed (Array.copy cells)
