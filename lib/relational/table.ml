module Dyn = Topo_util.Dyn

(* Freshness and entries travel together in one immutable record behind an
   [Atomic.t], so a reader can never pair a new row count with a stale
   entry list (or vice versa) the way two separate fields would allow. *)
type index_cache = {
  upto : int;  (* row count when [entries] were built *)
  entries : ((Index.kind * string list) * Index.t) list;
  specs : (Index.kind * string list) list;
      (* every index ever declared or built, oldest first; survives
         staleness resets so snapshots round-trip the spec list *)
}

(* Lazily built columnar views: per-column typed lanes and int-keyed hash
   indexes over [Ints] lanes, keyed by column position.  Same freshness
   discipline as [index_cache]. *)
type col_cache = {
  c_upto : int;
  lanes : (int * Column.lane) list;
  int_idx : (int * Int_table.t) list;
}

type t = {
  name : string;
  schema : Schema.t;
  pk_col : int option;
  rows : Tuple.t Dyn.t;
  backing : Column.t option;
      (* columnar payload the table was created from (snapshot load);
         authoritative until [demoted] *)
  mutable demoted : bool;
      (* an insert into a columnar-backed table first copies the backing
         into [rows] and flips this; coordinator-only, like insert itself *)
  pk_index : (Value.t, int) Hashtbl.t;
  pk_ready : bool Atomic.t;  (* false only for columnar tables until first pk probe *)
  index_cache : index_cache Atomic.t;
  col_cache : col_cache Atomic.t;
  mutable byte_size : int;
  snapshot : Tuple.t array option Atomic.t;  (* cache for [rows], dropped on insert *)
  cache_lock : Mutex.t;
      (* serializes the lazy snapshot/index/lane fills, which happen on
         read — possibly from several serving domains at once.  The cached
         state itself is published through [Atomic.set] so the unlocked
         fast paths get release/acquire ordering: a domain that sees the
         new value sees everything built before it.  Mutation proper
         (insert/truncate) stays a coordinator-only affair: tables are
         frozen while concurrent queries run. *)
}

let empty_indexes = { upto = 0; entries = []; specs = [] }

let empty_cols = { c_upto = 0; lanes = []; int_idx = [] }

let resolve_pk ~name ~schema primary_key =
  match primary_key with
  | None -> None
  | Some col -> (
      match Schema.index_opt schema col with
      | Some i -> Some i
      | None -> invalid_arg (Printf.sprintf "Table.create: unknown primary key %s.%s" name col))

let create ~name ~schema ?primary_key () =
  {
    name;
    schema;
    pk_col = resolve_pk ~name ~schema primary_key;
    rows = Dyn.create ();
    backing = None;
    demoted = false;
    pk_index = Hashtbl.create 1024;
    pk_ready = Atomic.make true;
    index_cache = Atomic.make empty_indexes;
    col_cache = Atomic.make empty_cols;
    byte_size = 0;
    snapshot = Atomic.make None;
    cache_lock = Mutex.create ();
  }

let of_columns ~name ~schema ?primary_key columns =
  if Column.arity columns <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Table.of_columns(%s): %d lanes, schema arity %d" name
         (Column.arity columns) (Schema.arity schema));
  let pk_col = resolve_pk ~name ~schema primary_key in
  {
    name;
    schema;
    pk_col;
    rows = Dyn.create ();
    backing = Some columns;
    demoted = false;
    pk_index = Hashtbl.create (max 16 (Column.rows columns));
    pk_ready = Atomic.make (pk_col = None);
    index_cache = Atomic.make empty_indexes;
    col_cache = Atomic.make empty_cols;
    byte_size = Column.byte_size columns;
    snapshot = Atomic.make None;
    cache_lock = Mutex.create ();
  }

let name t = t.name

let schema t = t.schema

(* The columnar view, when it is still authoritative.  [backing] is
   immutable and [demoted] only ever flips during coordinator-only
   mutation, so this read is as safe as the existing [byte_size] field. *)
let columnar t = match t.backing with Some c when not t.demoted -> Some c | _ -> None

let row_count t = match columnar t with Some c -> Column.rows c | None -> Dyn.length t.rows

(* Double-checked: the fast path is a single lock-free field read; a miss
   takes the lock, re-checks, and fills — so two serving domains hitting a
   cold cache build the snapshot once and both observe the same array. *)
let rows t =
  match Atomic.get t.snapshot with
  | Some a -> a
  | None ->
      Mutex.lock t.cache_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.cache_lock)
        (fun () ->
          match Atomic.get t.snapshot with
          | Some a -> a
          | None ->
              let a =
                match columnar t with Some c -> Column.to_rows c | None -> Dyn.to_array t.rows
              in
              Atomic.set t.snapshot (Some a);
              a)

let get t rowno = match columnar t with None -> Dyn.get t.rows rowno | Some _ -> (rows t).(rowno)

let iter f t =
  match columnar t with None -> Dyn.iteri f t.rows | Some _ -> Array.iteri f (rows t)

let iter_row_strings f t =
  match (columnar t, Atomic.get t.snapshot) with
  | Some c, None ->
      (* Zero-copy path: format straight from the lanes; nothing here is
         worth materializing the rows for. *)
      let buf = Buffer.create 64 in
      for r = 0 to Column.rows c - 1 do
        Buffer.clear buf;
        Column.add_row_string buf c r;
        f (Buffer.contents buf)
      done
  | _ -> iter (fun _ tuple -> f (Tuple.to_string tuple)) t

(* Fills the primary-key hash lazily for columnar-backed tables (row-built
   tables maintain it insert by insert).  Double-checked like [rows]. *)
let ensure_pk t =
  if not (Atomic.get t.pk_ready) then begin
    let data = rows t in
    (* [rows t] takes [cache_lock] itself; materialize before locking (the
       lock is not reentrant). *)
    Mutex.lock t.cache_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.cache_lock)
      (fun () ->
        if not (Atomic.get t.pk_ready) then begin
          (match t.pk_col with
          | None -> ()
          | Some i ->
              Array.iteri
                (fun rowno row ->
                  let key = row.(i) in
                  if Hashtbl.mem t.pk_index key then
                    invalid_arg
                      (Printf.sprintf "Table(%s): duplicate primary key %s" t.name
                         (Value.to_string key));
                  Hashtbl.add t.pk_index key rowno)
                data);
          Atomic.set t.pk_ready true
        end)
  end

(* Coordinator-only: copy the columnar backing into the row store so the
   table mutates like any other from here on. *)
let demote t =
  match columnar t with
  | None -> ()
  | Some _ ->
      let a = rows t in
      ensure_pk t;
      Array.iter (Dyn.push t.rows) a;
      t.demoted <- true

let insert t tuple =
  demote t;
  if Array.length tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, expected %d" t.name (Array.length tuple)
         (Schema.arity t.schema));
  (match t.pk_col with
  | None -> ()
  | Some i ->
      let key = tuple.(i) in
      if Hashtbl.mem t.pk_index key then
        invalid_arg (Printf.sprintf "Table.insert(%s): duplicate primary key %s" t.name (Value.to_string key));
      Hashtbl.add t.pk_index key (Dyn.length t.rows));
  Dyn.push t.rows tuple;
  Atomic.set t.snapshot None;
  t.byte_size <- t.byte_size + Tuple.width tuple

let insert_values t values = insert t (Array.of_list values)

let primary_key t =
  Option.map (fun i -> (Schema.column t.schema i).Schema.name) t.pk_col

let find_by_pk t key =
  match t.pk_col with
  | None -> invalid_arg (Printf.sprintf "Table.find_by_pk(%s): no primary key" t.name)
  | Some _ -> (
      ensure_pk t;
      match Hashtbl.find_opt t.pk_index key with
      | Some rowno -> Some (get t rowno)
      | None -> None)

let rec ensure_index t ~kind ~cols =
  let key = (kind, cols) in
  (* Double-checked: when the cache is warm and fresh this is one lock-free
     [Atomic.get] of an immutable record.  A miss — or a stale cache after
     appends — takes the lock, re-checks, and (re)builds once, so serving
     domains probing the same cold index race nothing. *)
  let cache = Atomic.get t.index_cache in
  if cache.upto = row_count t then
    match List.assoc_opt key cache.entries with
    | Some idx -> idx
    | None -> ensure_index_slow t ~kind ~cols ~key
  else ensure_index_slow t ~kind ~cols ~key

and ensure_index_slow t ~kind ~cols ~key =
  (* [rows t] takes [cache_lock] itself; fill the snapshot before locking
     (the lock is not reentrant). *)
  let data = rows t in
  Mutex.lock t.cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cache_lock)
    (fun () ->
      let len = row_count t in
      let cache = Atomic.get t.index_cache in
      (* Rows appended since the last build make every cached index stale:
         restart from an empty entry list rather than mixing generations.
         The declared-spec list is about intent, not payloads — it survives. *)
      let cache = if cache.upto = len then cache else { cache with upto = len; entries = [] } in
      match List.assoc_opt key cache.entries with
      | Some idx -> idx
      | None ->
          let positions = Array.of_list (List.map (Schema.index_of t.schema) cols) in
          let idx = Index.build ~kind ~cols:positions data in
          let specs = if List.mem key cache.specs then cache.specs else cache.specs @ [ key ] in
          Atomic.set t.index_cache { upto = len; entries = (key, idx) :: cache.entries; specs };
          idx)

let declare_index t ~kind ~cols =
  List.iter
    (fun c ->
      if not (Schema.mem t.schema c) then
        invalid_arg (Printf.sprintf "Table.declare_index(%s): unknown column %s" t.name c))
    cols;
  let key = (kind, cols) in
  let cache = Atomic.get t.index_cache in
  if not (List.mem key cache.specs) then
    Atomic.set t.index_cache { cache with specs = cache.specs @ [ key ] }

let index_specs t = (Atomic.get t.index_cache).specs

(* --- columnar views ---------------------------------------------------- *)

(* Build (or fetch) cached entries under the same double-checked regime as
   [ensure_index].  For a columnar-backed table the lane is just the
   backing's; only the int indexes need the cache then. *)
let rec lane t ci =
  match columnar t with
  | Some c -> Some (Column.lane c ci)
  | None -> (
      let cache = Atomic.get t.col_cache in
      if cache.c_upto = row_count t then
        match List.assoc_opt ci cache.lanes with
        | Some l -> Some l
        | None -> Some (lane_slow t ci)
      else Some (lane_slow t ci))

and lane_slow t ci =
  let data = rows t in
  Mutex.lock t.cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cache_lock)
    (fun () -> lane_locked t ci data)

and lane_locked t ci data =
  let len = row_count t in
  let cache = Atomic.get t.col_cache in
  let cache = if cache.c_upto = len then cache else { empty_cols with c_upto = len } in
  match List.assoc_opt ci cache.lanes with
  | Some l -> l
  | None ->
      let ty = (Schema.column t.schema ci).Schema.ty in
      let l = Column.of_values ty (Array.map (fun row -> row.(ci)) data) in
      Atomic.set t.col_cache { cache with c_upto = len; lanes = (ci, l) :: cache.lanes };
      l

let int_lane t ci = match lane t ci with Some l -> Column.ints l | None -> None

let int_index t ci =
  let build_from ints_lane =
    let n = Bigarray.Array1.dim ints_lane in
    let tbl = Int_table.create ~capacity:(max 16 n) () in
    for r = 0 to n - 1 do
      Int_table.add tbl (Bigarray.Array1.get ints_lane r) r
    done;
    tbl
  in
  let fresh_hit () =
    let cache = Atomic.get t.col_cache in
    if cache.c_upto = row_count t then List.assoc_opt ci cache.int_idx else None
  in
  match fresh_hit () with
  | Some tbl -> Some tbl
  | None -> (
      match int_lane t ci with
      | None -> None
      | Some _ ->
          let data = rows t in
          Mutex.lock t.cache_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.cache_lock)
            (fun () ->
              let len = row_count t in
              let cache = Atomic.get t.col_cache in
              let cache = if cache.c_upto = len then cache else { empty_cols with c_upto = len } in
              match List.assoc_opt ci cache.int_idx with
              | Some tbl -> Some tbl
              | None ->
                  (* The lane lookup above may predate a concurrent cache
                     reset; re-resolve under the lock so lane and index
                     agree on the same generation. *)
                  let l =
                    match columnar t with
                    | Some c -> Column.lane c ci
                    | None -> lane_locked t ci data
                  in
                  (match Column.ints l with
                  | None -> None
                  | Some il ->
                      let tbl = build_from il in
                      Atomic.set t.col_cache
                        { cache with c_upto = len; int_idx = (ci, tbl) :: cache.int_idx };
                      Some tbl)))

let byte_size t = t.byte_size

let truncate t =
  (* No need to demote first: flipping [demoted] retires the backing, and
     the empty row store is authoritative from here on. *)
  t.demoted <- true;
  Dyn.clear t.rows;
  Hashtbl.reset t.pk_index;
  Atomic.set t.pk_ready true;
  Atomic.set t.index_cache empty_indexes;
  Atomic.set t.col_cache empty_cols;
  t.byte_size <- 0;
  Atomic.set t.snapshot None
