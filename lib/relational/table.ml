module Dyn = Topo_util.Dyn

(* Freshness and entries travel together in one immutable record behind an
   [Atomic.t], so a reader can never pair a new row count with a stale
   entry list (or vice versa) the way two separate fields would allow. *)
type index_cache = {
  upto : int;  (* row count when [entries] were built *)
  entries : ((Index.kind * string list) * Index.t) list;
}

type t = {
  name : string;
  schema : Schema.t;
  pk_col : int option;
  rows : Tuple.t Dyn.t;
  pk_index : (Value.t, int) Hashtbl.t;
  index_cache : index_cache Atomic.t;
  mutable byte_size : int;
  snapshot : Tuple.t array option Atomic.t;  (* cache for [rows], dropped on insert *)
  cache_lock : Mutex.t;
      (* serializes the lazy snapshot/index fills, which happen on read —
         possibly from several serving domains at once.  The cached state
         itself is published through [Atomic.set] so the unlocked fast
         paths get release/acquire ordering: a domain that sees the new
         value sees everything built before it.  Mutation proper
         (insert/truncate) stays a coordinator-only affair: tables are
         frozen while concurrent queries run. *)
}

let create ~name ~schema ?primary_key () =
  let pk_col =
    match primary_key with
    | None -> None
    | Some col -> (
        match Schema.index_opt schema col with
        | Some i -> Some i
        | None -> invalid_arg (Printf.sprintf "Table.create: unknown primary key %s.%s" name col))
  in
  {
    name;
    schema;
    pk_col;
    rows = Dyn.create ();
    pk_index = Hashtbl.create 1024;
    index_cache = Atomic.make { upto = 0; entries = [] };
    byte_size = 0;
    snapshot = Atomic.make None;
    cache_lock = Mutex.create ();
  }

let name t = t.name

let schema t = t.schema

let insert t tuple =
  if Array.length tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, expected %d" t.name (Array.length tuple)
         (Schema.arity t.schema));
  (match t.pk_col with
  | None -> ()
  | Some i ->
      let key = tuple.(i) in
      if Hashtbl.mem t.pk_index key then
        invalid_arg (Printf.sprintf "Table.insert(%s): duplicate primary key %s" t.name (Value.to_string key));
      Hashtbl.add t.pk_index key (Dyn.length t.rows));
  Dyn.push t.rows tuple;
  Atomic.set t.snapshot None;
  t.byte_size <- t.byte_size + Tuple.width tuple

let insert_values t values = insert t (Array.of_list values)

let row_count t = Dyn.length t.rows

let get t rowno = Dyn.get t.rows rowno

(* Double-checked: the fast path is a single lock-free field read; a miss
   takes the lock, re-checks, and fills — so two serving domains hitting a
   cold cache build the snapshot once and both observe the same array. *)
let rows t =
  match Atomic.get t.snapshot with
  | Some a -> a
  | None ->
      Mutex.lock t.cache_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.cache_lock)
        (fun () ->
          match Atomic.get t.snapshot with
          | Some a -> a
          | None ->
              let a = Dyn.to_array t.rows in
              Atomic.set t.snapshot (Some a);
              a)

let iter f t = Dyn.iteri f t.rows

let primary_key t =
  Option.map (fun i -> (Schema.column t.schema i).Schema.name) t.pk_col

let find_by_pk t key =
  match t.pk_col with
  | None -> invalid_arg (Printf.sprintf "Table.find_by_pk(%s): no primary key" t.name)
  | Some _ -> (
      match Hashtbl.find_opt t.pk_index key with
      | Some rowno -> Some (Dyn.get t.rows rowno)
      | None -> None)

let rec ensure_index t ~kind ~cols =
  let key = (kind, cols) in
  (* Double-checked: when the cache is warm and fresh this is one lock-free
     [Atomic.get] of an immutable record.  A miss — or a stale cache after
     appends — takes the lock, re-checks, and (re)builds once, so serving
     domains probing the same cold index race nothing. *)
  let cache = Atomic.get t.index_cache in
  if cache.upto = Dyn.length t.rows then
    match List.assoc_opt key cache.entries with
    | Some idx -> idx
    | None -> ensure_index_slow t ~kind ~cols ~key
  else ensure_index_slow t ~kind ~cols ~key

and ensure_index_slow t ~kind ~cols ~key =
  (* [rows t] takes [cache_lock] itself; fill the snapshot before locking
     (the lock is not reentrant). *)
  let data = rows t in
  Mutex.lock t.cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cache_lock)
    (fun () ->
      let len = Dyn.length t.rows in
      let cache = Atomic.get t.index_cache in
      (* Rows appended since the last build make every cached index stale:
         restart from an empty entry list rather than mixing generations. *)
      let cache = if cache.upto = len then cache else { upto = len; entries = [] } in
      match List.assoc_opt key cache.entries with
      | Some idx -> idx
      | None ->
          let positions = Array.of_list (List.map (Schema.index_of t.schema) cols) in
          let idx = Index.build ~kind ~cols:positions data in
          Atomic.set t.index_cache { upto = len; entries = (key, idx) :: cache.entries };
          idx)

(* Entries accumulate newest-first; reverse so callers replay builds in
   the order they originally happened. *)
let index_specs t = List.rev_map fst (Atomic.get t.index_cache).entries

let byte_size t = t.byte_size

let truncate t =
  Dyn.clear t.rows;
  Hashtbl.reset t.pk_index;
  Atomic.set t.index_cache { upto = 0; entries = [] };
  t.byte_size <- 0;
  Atomic.set t.snapshot None
