type t = {
  label : string;
  mutable opens : int;
  mutable nexts : int;
  mutable closes : int;
  mutable advances : int;
  mutable rows : int;
  mutable time_s : float;
}

type annotated = { stats : t; children : annotated list }

let create ~label = { label; opens = 0; nexts = 0; closes = 0; advances = 0; rows = 0; time_s = 0.0 }

let wrap stats (it : Iterator.t) =
  {
    Iterator.schema = it.Iterator.schema;
    open_ =
      (fun () ->
        stats.opens <- stats.opens + 1;
        let t0 = Unix.gettimeofday () in
        it.Iterator.open_ ();
        stats.time_s <- stats.time_s +. (Unix.gettimeofday () -. t0));
    next =
      (fun () ->
        stats.nexts <- stats.nexts + 1;
        let t0 = Unix.gettimeofday () in
        let r = it.Iterator.next () in
        stats.time_s <- stats.time_s +. (Unix.gettimeofday () -. t0);
        (match r with Some _ -> stats.rows <- stats.rows + 1 | None -> ());
        r);
    close =
      (fun () ->
        stats.closes <- stats.closes + 1;
        let t0 = Unix.gettimeofday () in
        it.Iterator.close ();
        stats.time_s <- stats.time_s +. (Unix.gettimeofday () -. t0));
    advance_group =
      (fun () ->
        stats.advances <- stats.advances + 1;
        let t0 = Unix.gettimeofday () in
        it.Iterator.advance_group ();
        stats.time_s <- stats.time_s +. (Unix.gettimeofday () -. t0));
    last_group = it.Iterator.last_group;
  }

let total_rows a = a.stats.rows

let rec iter f a =
  f a.stats;
  List.iter (iter f) a.children
