(** Typed column lanes: the columnar counterpart of a table's row store.

    A {!t} holds one lane per schema column.  Numeric lanes are Bigarrays —
    flat, unscanned by the GC, and buildable straight from the snapshot
    codec's fixed-width 8-byte sections without boxing a single
    [Value.t] — which is exactly the layout PR 7's codec chose "to keep a
    future mmap/Bigarray path local to the codec".  The lane constructors
    are exposed (not abstract) so {!Snapshot} can decode directly into
    them; treat the payload arrays as read-only once published.

    Lane selection is by declared type {e and} observed cells (tables do
    not enforce declared types):

    - [Ints]: every cell is [Value.Int] — the kernels' fast lane
      ([Bigarray.int]: 63-bit like OCaml ints, so reads never box, unlike
      an [int64] element kind);
    - [Floats]: every cell is [Value.Float];
    - [Nums]: nullable/mixed numerics — a tag byte per row plus the cell's
      8-byte pattern ([Int64.bits_of_float] for floats, so NaN payloads
      survive exactly);
    - [Strs]: nullable strings, interned into a pool with per-row ids;
    - [Boxed]: anything irregular (e.g. numeric cells in a declared-Str
      column) — plain [Value.t array] fallback. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type i64s = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type lane =
  | Ints of ints
  | Floats of floats
  | Nums of { tags : Bytes.t; bits : i64s }
      (** [tags]: 0 = null, 1 = int ([bits] holds the value), 2 = float
          ([bits] holds [Int64.bits_of_float]) — the snapshot codec's cell
          tags. *)
  | Strs of { ids : int array; pool : string array }  (** id [-1] = null *)
  | Boxed of Value.t array

type t

(** [make ~rows lanes]. @raise Invalid_argument on a lane length
    mismatch. *)
val make : rows:int -> lane array -> t

val rows : t -> int

val arity : t -> int

(** [lane t ci]. *)
val lane : t -> int -> lane

(** [ints lane] when the lane is the all-int fast kind. *)
val ints : lane -> ints option

(** [lane_value lane r] boxes one cell. *)
val lane_value : lane -> int -> Value.t

(** [value t ci r] boxes one cell. *)
val value : t -> int -> int -> Value.t

(** [tuple t r] boxes one row. *)
val tuple : t -> int -> Tuple.t

(** [to_rows t] boxes everything — the demotion path back to row storage. *)
val to_rows : t -> Tuple.t array

(** [add_row_string buf t r] renders row [r] byte-identically to
    [Tuple.to_string] of the boxed row, without boxing it —
    [Engine.fingerprint] over a freshly loaded engine stays zero-copy. *)
val add_row_string : Buffer.t -> t -> int -> unit

(** [byte_size t] equals the sum of [Tuple.width] over the boxed rows. *)
val byte_size : t -> int

(** [of_values ty cells] classifies one column of boxed cells into the
    tightest lane (see the type's documentation for the rules). *)
val of_values : Schema.ty -> Value.t array -> lane
