type t =
  | Scan of { table : string; alias : string option; pred : Expr.t option }
  | OrderedScan of {
      table : string;
      alias : string option;
      order_cols : string list;
      desc : bool;
      pred : Expr.t option;
      grouped : bool;
    }
  | IndexProbe of { table : string; alias : string option; cols : string list; key : Value.t array; pred : Expr.t option }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; cols : int list }
  | HashJoin of { left : t; right : t; left_cols : int array; right_cols : int array; residual : Expr.t option }
  | MergeJoin of { left : t; right : t; left_cols : int array; right_cols : int array; residual : Expr.t option }
  | NLJoin of { left : t; right : t; residual : Expr.t option }
  | IndexNL of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Idgj of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Hdgj of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Sort of { input : t; by : (int * bool) list }
  | Distinct of t
  | Union of t * t
  | AntiJoin of { left : t; right : t; left_cols : int array; right_cols : int array }
  | SemiJoin of { left : t; right : t; left_cols : int array; right_cols : int array }
  | Limit of int * t
  | Compute of { input : t; items : (Expr.t * string * Schema.ty) list }
  | Aggregate of {
      input : t;
      keys : (Expr.t * string * Schema.ty) list;
      aggs : (agg_kind * Expr.t option * string * Schema.ty) list;
    }

and agg_kind = Count_star | Count | Sum | Min | Max | Avg

let table_schema catalog name alias =
  let s = Table.schema (Catalog.find catalog name) in
  match alias with None -> s | Some a -> Schema.qualify a s

let rec schema catalog = function
  | Scan { table; alias; _ } | IndexProbe { table; alias; _ } -> table_schema catalog table alias
  | OrderedScan { table; alias; _ } -> table_schema catalog table alias
  | Filter { input; _ } -> schema catalog input
  | Project { input; cols } -> Schema.project (schema catalog input) cols
  | HashJoin { left; right; _ } | MergeJoin { left; right; _ } | NLJoin { left; right; _ } ->
      Schema.concat (schema catalog left) (schema catalog right)
  | IndexNL { left; table; alias; _ } | Idgj { left; table; alias; _ } | Hdgj { left; table; alias; _ } ->
      Schema.concat (schema catalog left) (table_schema catalog table alias)
  | Sort { input; _ } -> schema catalog input
  | Distinct input -> schema catalog input
  | Union (a, _) -> schema catalog a
  | AntiJoin { left; _ } | SemiJoin { left; _ } -> schema catalog left
  | Limit (_, input) -> schema catalog input
  | Compute { items; _ } ->
      Schema.make (List.map (fun (_, name, ty) -> { Schema.name; ty }) items)
  | Aggregate { keys; aggs; _ } ->
      Schema.make
        (List.map (fun (_, name, ty) -> { Schema.name; ty }) keys
        @ List.map (fun (_, _, name, ty) -> { Schema.name; ty }) aggs)

(* Scans expose qualified names but the underlying table stores unqualified
   columns, so predicates pushed into scans use positions; positions are
   alias-independent. *)

let node_label = function
  | Scan { table; _ } -> "SeqScan " ^ table
  | OrderedScan { table; _ } -> "OrderedScan " ^ table
  | IndexProbe { table; _ } -> "IndexProbe " ^ table
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | HashJoin _ -> "HashJoin"
  | MergeJoin _ -> "MergeJoin"
  | NLJoin _ -> "NLJoin"
  | IndexNL { table; _ } -> "IndexNLJoin " ^ table
  | Idgj { table; _ } -> "IDGJ " ^ table
  | Hdgj { table; _ } -> "HDGJ " ^ table
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Union _ -> "Union"
  | AntiJoin _ -> "AntiJoin"
  | SemiJoin _ -> "SemiJoin"
  | Limit _ -> "Limit"
  | Compute _ -> "Compute"
  | Aggregate _ -> "Aggregate"

let children = function
  | Scan _ | OrderedScan _ | IndexProbe _ -> []
  | Filter { input; _ } | Project { input; _ } | Sort { input; _ } | Compute { input; _ }
  | Aggregate { input; _ } ->
      [ input ]
  | Distinct input | Limit (_, input) -> [ input ]
  | HashJoin { left; right; _ } | MergeJoin { left; right; _ } | NLJoin { left; right; _ }
  | AntiJoin { left; right; _ } | SemiJoin { left; right; _ } ->
      [ left; right ]
  | Union (a, b) -> [ a; b ]
  | IndexNL { left; _ } | Idgj { left; _ } | Hdgj { left; _ } -> [ left ]

(* ------------------------------------------------------------------ *)
(* Columnar kernel applicability                                       *)

type kernel = Kernel_scan_hash_join | Kernel_hash_join | Kernel_index_nl | Kernel_idgj

let kernel_name = function
  | Kernel_scan_hash_join -> "scan+hash-join"
  | Kernel_hash_join -> "hash-join"
  | Kernel_index_nl -> "index-nl-join"
  | Kernel_idgj -> "idgj"

(* Static eligibility: single-column equi-keys whose declared type is int on
   both sides.  Declared types are a promise tables do not enforce, so the
   lowering re-checks the actual lanes at runtime and falls back to the
   generic operator when a cell broke the promise — [kernel_site] only
   decides where a kernel is {e worth attempting}. *)
let kernel_site catalog plan =
  let int_col node i =
    match (Schema.column (schema catalog node) i).Schema.ty with
    | Schema.TInt -> true
    | Schema.TFloat | Schema.TStr -> false
  in
  let int_table_col table tc =
    let ts = Table.schema (Catalog.find catalog table) in
    match (Schema.column ts (Schema.index_of ts tc)).Schema.ty with
    | Schema.TInt -> true
    | Schema.TFloat | Schema.TStr -> false
  in
  try
    match plan with
    | HashJoin { left; right; left_cols = [| lc |]; right_cols = [| rc |]; _ } ->
        if int_col left lc && int_col right rc then
          Some
            (match left with
            | Scan { pred = None; _ } -> Kernel_scan_hash_join
            | _ -> Kernel_hash_join)
        else None
    | IndexNL { left; table; table_cols = [ tc ]; left_cols = [| lc |]; _ } ->
        if int_col left lc && int_table_col table tc then Some Kernel_index_nl else None
    | Idgj { left; table; table_cols = [ tc ]; left_cols = [| lc |]; _ } ->
        if int_col left lc && int_table_col table tc then Some Kernel_idgj else None
    | _ -> None
  with Not_found | Invalid_argument _ -> None

(* Build-side cardinality estimate for pre-sizing hash tables.  Conservative
   and purely structural: only shapes whose output count is knowable without
   statistics. *)
let rec estimate_rows catalog = function
  | Scan { table; _ } | OrderedScan { table; _ } ->
      Option.map Table.row_count (Catalog.find_opt catalog table)
  | Filter { input; _ } | Sort { input; _ } -> estimate_rows catalog input
  | Project { input; _ } | Compute { input; _ } -> estimate_rows catalog input
  | Distinct input -> estimate_rows catalog input
  | Limit (n, input) -> (
      match estimate_rows catalog input with Some m -> Some (min n m) | None -> Some n)
  | _ -> None

let rec lower_with ?(fuse = true) ~wrap catalog plan =
  let lower catalog plan = lower_with ~fuse ~wrap catalog plan in
  wrap plan
  @@
  match plan with
  | Scan { table; alias; pred } ->
      let it = Op_scan.seq ?pred (Catalog.find catalog table) in
      relabel catalog plan it alias table
  | OrderedScan { table; alias; order_cols; desc; pred; grouped } ->
      let it = Op_scan.ordered ?pred ~desc (Catalog.find catalog table) ~cols:order_cols in
      let it = if grouped then Op_scan.grouped_by_tuple it else it in
      relabel catalog plan it alias table
  | IndexProbe { table; alias; cols; key; pred } ->
      let it = Op_scan.index_probe ?pred (Catalog.find catalog table) ~cols ~key in
      relabel catalog plan it alias table
  | Filter { input; pred } -> Op_basic.filter pred (lower catalog input)
  | Project { input; cols } -> Op_basic.project (lower catalog input) ~cols
  | HashJoin { left; right; left_cols; right_cols; residual } -> (
      let generic () =
        Op_join.hash_join ~left:(lower catalog left) ~right:(lower catalog right) ~left_cols
          ~right_cols ?residual
          ?build_hint:(estimate_rows catalog right) ()
      in
      if not (Op_kernel.kernels_on ()) then generic ()
      else
        match kernel_site catalog plan with
        | Some (Kernel_scan_hash_join | Kernel_hash_join) ->
            let probe_col = left_cols.(0) and build_col = right_cols.(0) in
            let probe =
              (* Fusing elides the probe-side Scan node entirely, which the
                 wrapping lowerings (checked/instrumented) cannot observe —
                 they need every node's own iterator, so they get the
                 unfused probe (same results, same counters). *)
              match left with
              | Scan { table; pred = None; alias = _ } when fuse -> (
                  let tb = Catalog.find catalog table in
                  match Table.int_lane tb probe_col with
                  | Some lane -> Op_kernel.Probe_lane { table = tb; lane }
                  | None -> Op_kernel.Probe_iter (lower catalog left))
              | _ -> Op_kernel.Probe_iter (lower catalog left)
            in
            let build =
              match right with
              | Scan { table; pred; alias = _ } when fuse ->
                  Op_kernel.Build_table { table = Catalog.find catalog table; col = build_col; pred }
              | _ ->
                  Op_kernel.Build_iter
                    {
                      it = lower catalog right;
                      col = build_col;
                      hint = Option.value ~default:1024 (estimate_rows catalog right);
                    }
            in
            Op_kernel.hash_join ~schema:(schema catalog plan) ~probe ~probe_col ~build ?residual ()
        | Some (Kernel_index_nl | Kernel_idgj) | None -> generic ())
  | MergeJoin { left; right; left_cols; right_cols; residual } ->
      Op_join.merge_join ~left:(lower catalog left) ~right:(lower catalog right) ~left_cols ~right_cols
        ?residual ()
  | NLJoin { left; right; residual } ->
      Op_join.nl_join ~left:(lower catalog left) ~right:(lower catalog right) ?residual ()
  | IndexNL { left; table; alias = _; table_cols; left_cols; pred; residual } -> (
      let tb = Catalog.find catalog table in
      let generic () =
        Op_join.index_nl_join ~left:(lower catalog left) ~table:tb ~table_cols ~left_cols ?pred
          ?residual ()
      in
      if not (Op_kernel.kernels_on ()) then generic ()
      else
        match kernel_site catalog plan with
        | Some Kernel_index_nl -> (
            let ti = Schema.index_of (Table.schema tb) (List.hd table_cols) in
            match Table.int_index tb ti with
            | Some itbl ->
                let lit = lower catalog left in
                Op_kernel.index_nl_join_int
                  ~schema:(Schema.concat lit.Iterator.schema (Table.schema tb))
                  ~left:lit ~table:tb ~itbl ~left_col:left_cols.(0) ?pred ?residual ()
            | None -> generic ())
        | _ -> generic ())
  | Idgj { left; table; alias = _; table_cols; left_cols; pred; residual } ->
      let tb = Catalog.find catalog table in
      let int_probe =
        if Op_kernel.kernels_on () && kernel_site catalog plan = Some Kernel_idgj then
          Table.int_index tb (Schema.index_of (Table.schema tb) (List.hd table_cols))
        else None
      in
      Op_dgj.idgj ~outer:(lower catalog left) ~table:tb ~table_cols ~outer_cols:left_cols
        ?pred ?residual ?int_probe ()
  | Hdgj { left; table; alias = _; table_cols; left_cols; pred; residual } ->
      Op_dgj.hdgj ~outer:(lower catalog left) ~table:(Catalog.find catalog table) ~table_cols ~outer_cols:left_cols
        ?pred ?residual ()
  | Sort { input; by } -> Op_basic.sort (lower catalog input) ~by
  | Distinct input -> Op_basic.distinct (lower catalog input)
  | Union (a, b) -> Op_basic.union (lower catalog a) (lower catalog b)
  | AntiJoin { left; right; left_cols; right_cols } ->
      Op_join.anti_join ~left:(lower catalog left) ~right:(lower catalog right) ~left_cols ~right_cols ()
  | SemiJoin { left; right; left_cols; right_cols } ->
      Op_join.semi_join ~left:(lower catalog left) ~right:(lower catalog right) ~left_cols ~right_cols ()
  | Limit (n, input) -> Op_basic.limit n (lower catalog input)
  | Compute { input; items } as node ->
      let out_schema = schema catalog node in
      let exprs = List.map (fun (e, _, _) -> e) items in
      Op_basic.compute (lower catalog input) ~schema:out_schema ~exprs
  | Aggregate { input; keys; aggs } as node ->
      let out_schema = schema catalog node in
      let key_exprs = List.map (fun (e, _, _) -> e) keys in
      let agg_specs =
        List.map
          (fun (kind, arg, _, _) ->
            let op =
              match kind with
              | Count_star -> Op_basic.ACount_star
              | Count -> Op_basic.ACount
              | Sum -> Op_basic.ASum
              | Min -> Op_basic.AMin
              | Max -> Op_basic.AMax
              | Avg -> Op_basic.AAvg
            in
            (op, arg))
          aggs
      in
      Op_basic.hash_aggregate (lower catalog input) ~schema:out_schema ~keys:key_exprs ~aggs:agg_specs

and relabel catalog plan it alias table =
  (* The scan operator reports the table's raw schema; substitute the
     qualified one so positions stay identical but names are qualified. *)
  ignore table;
  match alias with
  | None -> it
  | Some _ -> { it with Iterator.schema = schema catalog plan }

let lower catalog plan = lower_with ~wrap:(fun _ it -> it) catalog plan

let lower_checked catalog plan =
  lower_with ~fuse:false
    ~wrap:(fun node it -> Iterator_check.wrap ~name:(node_label node) it)
    catalog plan

let lower_instrumented catalog plan =
  (* [lower_with] invokes [wrap] once per plan node with that node's own
     subtree value, so physical identity links each stats record back to
     its node; the annotated tree is then rebuilt in [children] order. *)
  let collected = ref [] in
  let wrap node it =
    let stats = Op_stats.create ~label:(node_label node) in
    collected := (node, stats) :: !collected;
    Op_stats.wrap stats it
  in
  let it = lower_with ~fuse:false ~wrap catalog plan in
  let stats_of node =
    match List.find_opt (fun (n, _) -> n == node) !collected with
    | Some (_, s) -> s
    | None -> Op_stats.create ~label:(node_label node)
  in
  let rec build node =
    { Op_stats.stats = stats_of node; children = List.map build (children node) }
  in
  (it, build plan)

let run catalog plan = Iterator.to_list (lower catalog plan)

let pred_str = function None -> "" | Some p -> " pred=" ^ Expr.to_string p

let cols_str cols = "[" ^ String.concat "," (List.map string_of_int (Array.to_list cols)) ^ "]"

let explain plan =
  let buf = Buffer.create 256 in
  let rec go indent plan =
    let pad = String.make (indent * 2) ' ' in
    let line s = Buffer.add_string buf (pad ^ s ^ "\n") in
    match plan with
    | Scan { table; pred; _ } -> line (Printf.sprintf "SeqScan %s%s" table (pred_str pred))
    | OrderedScan { table; order_cols; desc; grouped; pred; _ } ->
        line
          (Printf.sprintf "OrderedScan %s by %s%s%s%s" table (String.concat "," order_cols)
             (if desc then " desc" else "")
             (if grouped then " (grouped)" else "")
             (pred_str pred))
    | IndexProbe { table; cols; pred; _ } ->
        line (Printf.sprintf "IndexProbe %s on %s%s" table (String.concat "," cols) (pred_str pred))
    | Filter { input; pred } ->
        line ("Filter " ^ Expr.to_string pred);
        go (indent + 1) input
    | Project { input; cols } ->
        line ("Project [" ^ String.concat "," (List.map string_of_int cols) ^ "]");
        go (indent + 1) input
    | HashJoin { left; right; left_cols; right_cols; _ } ->
        line (Printf.sprintf "HashJoin %s=%s" (cols_str left_cols) (cols_str right_cols));
        go (indent + 1) left;
        go (indent + 1) right
    | MergeJoin { left; right; left_cols; right_cols; _ } ->
        line (Printf.sprintf "MergeJoin %s=%s" (cols_str left_cols) (cols_str right_cols));
        go (indent + 1) left;
        go (indent + 1) right
    | NLJoin { left; right; _ } ->
        line "NLJoin";
        go (indent + 1) left;
        go (indent + 1) right
    | IndexNL { left; table; table_cols; left_cols; _ } ->
        line
          (Printf.sprintf "IndexNLJoin %s on %s=%s" table (cols_str left_cols)
             (String.concat "," table_cols));
        go (indent + 1) left
    | Idgj { left; table; table_cols; left_cols; _ } ->
        line (Printf.sprintf "IDGJ %s on %s=%s" table (cols_str left_cols) (String.concat "," table_cols));
        go (indent + 1) left
    | Hdgj { left; table; table_cols; left_cols; _ } ->
        line (Printf.sprintf "HDGJ %s on %s=%s" table (cols_str left_cols) (String.concat "," table_cols));
        go (indent + 1) left
    | Sort { input; by } ->
        line
          ("Sort "
          ^ String.concat ","
              (List.map (fun (c, d) -> string_of_int c ^ if d then " desc" else " asc") by));
        go (indent + 1) input
    | Distinct input ->
        line "Distinct";
        go (indent + 1) input
    | Union (a, b) ->
        line "Union";
        go (indent + 1) a;
        go (indent + 1) b
    | AntiJoin { left; right; left_cols; right_cols } ->
        line (Printf.sprintf "AntiJoin %s=%s" (cols_str left_cols) (cols_str right_cols));
        go (indent + 1) left;
        go (indent + 1) right
    | SemiJoin { left; right; left_cols; right_cols } ->
        line (Printf.sprintf "SemiJoin %s=%s" (cols_str left_cols) (cols_str right_cols));
        go (indent + 1) left;
        go (indent + 1) right
    | Compute { input; items } ->
        line ("Compute [" ^ String.concat ", " (List.map (fun (e, n, _) -> n ^ "=" ^ Expr.to_string e) items) ^ "]");
        go (indent + 1) input
    | Aggregate { input; keys; aggs } ->
        let agg_name = function
          | Count_star -> "count(*)"
          | Count -> "count"
          | Sum -> "sum"
          | Min -> "min"
          | Max -> "max"
          | Avg -> "avg"
        in
        line
          (Printf.sprintf "Aggregate keys=[%s] aggs=[%s]"
             (String.concat ", " (List.map (fun (e, _, _) -> Expr.to_string e) keys))
             (String.concat ", " (List.map (fun (k, _, n, _) -> n ^ "=" ^ agg_name k) aggs)));
        go (indent + 1) input
    | Limit (n, input) ->
        line (Printf.sprintf "Limit %d" n);
        go (indent + 1) input
  in
  go 0 plan;
  Buffer.contents buf
