(** Regular join operators: hash join, (index) nested-loop join, and the
    hash anti-join used for the paper's NOT EXISTS subqueries against
    ExcpTops.

    All equi-join keys are given as column positions: [left_cols] index the
    outer tuple, [right_cols] the inner tuple.  Output tuples are
    [outer ++ inner]; an optional residual predicate runs over the
    concatenated tuple.  These operators do not preserve groups (their
    output is ungrouped) — the group-preserving variants live in
    {!Op_dgj}. *)

(** Equi-join keys as comparable value arrays; exposed for the columnar
    kernels' generic fallback mode ({!Op_kernel}). *)
module Key : sig
  type t = Value.t array

  val equal : t -> t -> bool

  val hash : t -> int
end

module KeyTbl : Hashtbl.S with type key = Key.t

(** [drain_into_hash ?hint it cols] drains [it] into buckets keyed on the
    positions [cols]; bucket order is input order.  [hint] pre-sizes the
    table (estimated build cardinality). *)
val drain_into_hash :
  ?hint:int -> Iterator.t -> int array -> Tuple.t Topo_util.Dyn.t KeyTbl.t

(** [hash_join ~left ~right ~left_cols ~right_cols ?residual ?build_hint ()]
    builds a hash table on [right] (fully drained at open, pre-sized to
    [build_hint] when given) and probes with [left] tuples. *)
val hash_join :
  left:Iterator.t ->
  right:Iterator.t ->
  left_cols:int array ->
  right_cols:int array ->
  ?residual:Expr.t ->
  ?build_hint:int ->
  unit ->
  Iterator.t

(** [index_nl_join ~left ~table ~table_cols ~left_cols ?pred ?residual ()]
    probes a hash index on [table]'s named columns for each [left] tuple;
    [pred] filters inner rows before the join, [residual] filters the
    concatenated output. *)
val index_nl_join :
  left:Iterator.t ->
  table:Table.t ->
  table_cols:string list ->
  left_cols:int array ->
  ?pred:Expr.t ->
  ?residual:Expr.t ->
  unit ->
  Iterator.t

(** [nl_join ~left ~right ?residual ()] plain nested loops; [right] is
    materialized at open.  Used as a last resort for non-equi joins. *)
val nl_join : left:Iterator.t -> right:Iterator.t -> ?residual:Expr.t -> unit -> Iterator.t

(** [anti_join ~left ~right ~left_cols ~right_cols ()] passes through the
    [left] tuples having no key match in [right] — evaluates
    [NOT EXISTS (SELECT 1 FROM right WHERE right.key = left.key)]. *)
val anti_join :
  left:Iterator.t -> right:Iterator.t -> left_cols:int array -> right_cols:int array -> unit -> Iterator.t

(** [semi_join ~left ~right ~left_cols ~right_cols ()] dual of
    {!anti_join}: passes left tuples that do have a match. *)
val semi_join :
  left:Iterator.t -> right:Iterator.t -> left_cols:int array -> right_cols:int array -> unit -> Iterator.t

(** [merge_join ~left ~right ~left_cols ~right_cols ?residual ()] sort-merge
    join: both inputs must already be sorted ascending on their key columns
    (the caller's responsibility — the optimizer only plans this over
    sorted scans or sorts).  Produces the full equality cross product per
    key group; output follows the left input's order. *)
val merge_join :
  left:Iterator.t ->
  right:Iterator.t ->
  left_cols:int array ->
  right_cols:int array ->
  ?residual:Expr.t ->
  unit ->
  Iterator.t
