type t = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
  advance_group : unit -> unit;
  last_group : unit -> int;
}

module Counters = struct
  (* Atomic so operators running on worker domains (e.g. a future parallel
     online phase) never lose increments.  [reset]/[with_reset] are
     coordinator-only: see below. *)
  let tuples_c = Atomic.make 0

  let probes_c = Atomic.make 0

  let scanned_c = Atomic.make 0

  let reset () =
    Atomic.set tuples_c 0;
    Atomic.set probes_c 0;
    Atomic.set scanned_c 0

  let tuples () = Atomic.get tuples_c

  let index_probes () = Atomic.get probes_c

  let rows_scanned () = Atomic.get scanned_c

  let add_tuples n = ignore (Atomic.fetch_and_add tuples_c n)

  let add_probes n = ignore (Atomic.fetch_and_add probes_c n)

  let add_scanned n = ignore (Atomic.fetch_and_add scanned_c n)

  type snapshot = { tuples : int; index_probes : int; rows_scanned : int }

  let current () =
    { tuples = Atomic.get tuples_c; index_probes = Atomic.get probes_c; rows_scanned = Atomic.get scanned_c }

  (* Single-coordinator assumption: the save/zero/restore sequence is not
     atomic, so exactly one domain may scope counters at a time — queries
     are evaluated on the coordinator domain only.  Increments from other
     domains are individually safe (Atomic) but land in whichever scope is
     open.  Overlapping [with_reset] calls must nest, never interleave. *)
  let with_reset f =
    let saved = current () in
    reset ();
    let scoped = ref { tuples = 0; index_probes = 0; rows_scanned = 0 } in
    let restore () =
      let did = current () in
      Atomic.set tuples_c (saved.tuples + did.tuples);
      Atomic.set probes_c (saved.index_probes + did.index_probes);
      Atomic.set scanned_c (saved.rows_scanned + did.rows_scanned);
      scoped := did
    in
    let result = Fun.protect ~finally:restore f in
    (result, !scoped)
end

let ungrouped ~schema ~open_ ~next ~close =
  {
    schema;
    open_;
    next =
      (fun () ->
        match next () with
        | Some tuple ->
            Counters.add_tuples 1;
            Some tuple
        | None -> None);
    close;
    advance_group = (fun () -> ());
    last_group = (fun () -> 0);
  }

let of_tuples schema tuples =
  let pos = ref 0 in
  ungrouped ~schema
    ~open_:(fun () -> pos := 0)
    ~next:(fun () ->
      if !pos >= Array.length tuples then None
      else begin
        let tuple = tuples.(!pos) in
        incr pos;
        Some tuple
      end)
    ~close:(fun () -> ())

let iter f it =
  it.open_ ();
  let rec loop () =
    match it.next () with
    | Some tuple ->
        f tuple (it.last_group ());
        loop ()
    | None -> ()
  in
  Fun.protect ~finally:it.close loop

let to_list it =
  let acc = ref [] in
  iter (fun tuple _ -> acc := tuple :: !acc) it;
  List.rev !acc

let count it =
  let n = ref 0 in
  iter (fun _ _ -> incr n) it;
  !n
