type t = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
  advance_group : unit -> unit;
  last_group : unit -> int;
}

module Counters = struct
  let tuples_c = ref 0

  let probes_c = ref 0

  let scanned_c = ref 0

  let reset () =
    tuples_c := 0;
    probes_c := 0;
    scanned_c := 0

  let tuples () = !tuples_c

  let index_probes () = !probes_c

  let rows_scanned () = !scanned_c

  let add_tuples n = tuples_c := !tuples_c + n

  let add_probes n = probes_c := !probes_c + n

  let add_scanned n = scanned_c := !scanned_c + n

  type snapshot = { tuples : int; index_probes : int; rows_scanned : int }

  let with_reset f =
    let saved = { tuples = !tuples_c; index_probes = !probes_c; rows_scanned = !scanned_c } in
    reset ();
    let restore () =
      let did = { tuples = !tuples_c; index_probes = !probes_c; rows_scanned = !scanned_c } in
      tuples_c := saved.tuples + did.tuples;
      probes_c := saved.index_probes + did.index_probes;
      scanned_c := saved.rows_scanned + did.rows_scanned;
      did
    in
    match f () with
    | result -> (result, restore ())
    | exception e ->
        ignore (restore ());
        raise e
end

let ungrouped ~schema ~open_ ~next ~close =
  {
    schema;
    open_;
    next =
      (fun () ->
        match next () with
        | Some tuple ->
            Counters.add_tuples 1;
            Some tuple
        | None -> None);
    close;
    advance_group = (fun () -> ());
    last_group = (fun () -> 0);
  }

let of_tuples schema tuples =
  let pos = ref 0 in
  ungrouped ~schema
    ~open_:(fun () -> pos := 0)
    ~next:(fun () ->
      if !pos >= Array.length tuples then None
      else begin
        let tuple = tuples.(!pos) in
        incr pos;
        Some tuple
      end)
    ~close:(fun () -> ())

let iter f it =
  it.open_ ();
  let rec loop () =
    match it.next () with
    | Some tuple ->
        f tuple (it.last_group ());
        loop ()
    | None -> ()
  in
  Fun.protect ~finally:it.close loop

let to_list it =
  let acc = ref [] in
  iter (fun tuple _ -> acc := tuple :: !acc) it;
  List.rev !acc

let count it =
  let n = ref 0 in
  iter (fun _ _ -> incr n) it;
  !n
