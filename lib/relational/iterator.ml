type t = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
  advance_group : unit -> unit;
  last_group : unit -> int;
}

module Counters = struct
  (* Counter cells are resolved through a domain-local scope: by default
     every domain shares one global cell set (so counts survive concurrent
     bumps from worker domains, as the offline build relies on), but a
     domain can install a private cell set with [with_scope] — the serving
     tier gives each in-flight query its own, so concurrent queries never
     see each other's work.  Increments within a cell set are [Atomic]. *)
  type cells = { tuples_c : int Atomic.t; probes_c : int Atomic.t; scanned_c : int Atomic.t }

  let make_cells () = { tuples_c = Atomic.make 0; probes_c = Atomic.make 0; scanned_c = Atomic.make 0 }

  let global_cells = make_cells ()

  let scope : cells Domain.DLS.key = Domain.DLS.new_key (fun () -> global_cells)

  let cells () = Domain.DLS.get scope

  let reset () =
    let c = cells () in
    Atomic.set c.tuples_c 0;
    Atomic.set c.probes_c 0;
    Atomic.set c.scanned_c 0

  let tuples () = Atomic.get (cells ()).tuples_c

  let index_probes () = Atomic.get (cells ()).probes_c

  let rows_scanned () = Atomic.get (cells ()).scanned_c

  let add_tuples n = ignore (Atomic.fetch_and_add (cells ()).tuples_c n)

  let add_probes n = ignore (Atomic.fetch_and_add (cells ()).probes_c n)

  let add_scanned n = ignore (Atomic.fetch_and_add (cells ()).scanned_c n)

  type snapshot = { tuples : int; index_probes : int; rows_scanned : int }

  let current () =
    let c = cells () in
    {
      tuples = Atomic.get c.tuples_c;
      index_probes = Atomic.get c.probes_c;
      rows_scanned = Atomic.get c.scanned_c;
    }

  (* Isolated scope: install a fresh cell set on the current domain for the
     duration of [f], returning [f]'s result and the work it performed.
     Nothing leaks either way — the surrounding scope's counts are
     untouched by [f]'s work, and [f] starts from zero.  The previous
     scope is restored even when [f] raises, but the snapshot is only
     produced on normal return. *)
  let with_scope f =
    let prev = Domain.DLS.get scope in
    Domain.DLS.set scope (make_cells ());
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set scope prev)
      (fun () ->
        let result = f () in
        (result, current ()))

  (* Additive scope within the current domain's cell set: the save/zero/
     restore sequence is not atomic across domains, so exactly one domain
     may [with_reset] a given cell set at a time.  Under the default
     shared scope that is the classic single-coordinator assumption;
     increments from other domains sharing the cells land in whichever
     scope is open.  Overlapping calls must nest, never interleave. *)
  let with_reset f =
    let c = cells () in
    let saved = current () in
    reset ();
    let scoped = ref { tuples = 0; index_probes = 0; rows_scanned = 0 } in
    let restore () =
      let did = current () in
      Atomic.set c.tuples_c (saved.tuples + did.tuples);
      Atomic.set c.probes_c (saved.index_probes + did.index_probes);
      Atomic.set c.scanned_c (saved.rows_scanned + did.rows_scanned);
      scoped := did
    in
    let result = Fun.protect ~finally:restore f in
    (result, !scoped)
end

let ungrouped ~schema ~open_ ~next ~close =
  {
    schema;
    open_;
    next =
      (fun () ->
        match next () with
        | Some tuple ->
            Counters.add_tuples 1;
            Some tuple
        | None -> None);
    close;
    advance_group = (fun () -> ());
    last_group = (fun () -> 0);
  }

let of_tuples schema tuples =
  let pos = ref 0 in
  ungrouped ~schema
    ~open_:(fun () -> pos := 0)
    ~next:(fun () ->
      if !pos >= Array.length tuples then None
      else begin
        let tuple = tuples.(!pos) in
        incr pos;
        Some tuple
      end)
    ~close:(fun () -> ())

let iter f it =
  it.open_ ();
  let rec loop () =
    match it.next () with
    | Some tuple ->
        f tuple (it.last_group ());
        loop ()
    | None -> ()
  in
  Fun.protect ~finally:it.close loop

let to_list it =
  let acc = ref [] in
  iter (fun tuple _ -> acc := tuple :: !acc) it;
  List.rev !acc

let count it =
  let n = ref 0 in
  iter (fun _ _ -> incr n) it;
  !n
