(* Int-specialized supporting structures for the columnar kernels:

   - [Vec], a growable int vector (selection vectors, scratch row lists).
     [Topo_util.Dyn] would box every element (its slots are a variant), so
     kernels get a flat [int array] variant instead.
   - [t], an open-addressing multimap from int keys to int payloads
     (row numbers, bucket positions).  Entries with the same key form a
     chain in *insertion order* — the kernels must emit join matches in
     exactly the order the generic hash join's buckets would, so insertion
     order is part of the contract, not an accident.

   Like [Dyn], neither structure is thread-safe: a kernel builds its table
   privately inside [open_] and only reads it afterwards. *)

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; n = 0 }

  let length v = v.n

  let get v i =
    if i < 0 || i >= v.n then invalid_arg (Printf.sprintf "Int_table.Vec.get %d (length %d)" i v.n);
    Array.unsafe_get v.a i

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    Array.unsafe_set v.a v.n x;
    v.n <- v.n + 1

  let iter f v =
    for i = 0 to v.n - 1 do
      f (Array.unsafe_get v.a i)
    done

  let to_list v = List.init v.n (fun i -> v.a.(i))
end

type t = {
  mutable slots : int array;  (* chain-head entry index per slot, -1 = empty *)
  mutable tails : int array;  (* chain-tail entry index, valid where slots.(i) >= 0 *)
  mutable counts : int array;  (* chain length per slot *)
  mutable mask : int;  (* slot count - 1 (power of two) *)
  mutable used : int;  (* occupied slots = distinct keys *)
  (* Parallel per-entry arrays, in insertion order across all keys. *)
  mutable keys : int array;
  mutable payloads : int array;
  mutable next : int array;  (* next entry in this key's chain, -1 = end *)
  mutable n : int;  (* entry count *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 16) () =
  let cap = max 16 capacity in
  (* Slots sized so [capacity] distinct keys stay under the load factor. *)
  let slot_cap = pow2_at_least (cap + (cap / 2)) 16 in
  {
    slots = Array.make slot_cap (-1);
    tails = Array.make slot_cap (-1);
    counts = Array.make slot_cap 0;
    mask = slot_cap - 1;
    used = 0;
    keys = Array.make cap 0;
    payloads = Array.make cap 0;
    next = Array.make cap (-1);
    n = 0;
  }

let length t = t.n

(* Fibonacci-style multiplicative hash: sequential object ids (the common
   key distribution here) spread over the whole slot range. *)
let hash key mask =
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land mask

(* Index of the slot holding [key]'s chain, or of the empty slot where it
   would start.  The table always keeps at least one empty slot (load
   factor < 1), so the linear probe terminates. *)
let find_slot t key =
  let rec probe i =
    let head = Array.unsafe_get t.slots i in
    if head < 0 || Array.unsafe_get t.keys head = key then i else probe ((i + 1) land t.mask)
  in
  probe (hash key t.mask)

let rehash t =
  let slot_cap = (t.mask + 1) * 2 in
  t.slots <- Array.make slot_cap (-1);
  t.tails <- Array.make slot_cap (-1);
  t.counts <- Array.make slot_cap 0;
  t.mask <- slot_cap - 1;
  (* Re-link every entry in insertion order: per-key chain order is part of
     the contract and must survive growth. *)
  for e = 0 to t.n - 1 do
    t.next.(e) <- -1;
    let i = find_slot t t.keys.(e) in
    if t.slots.(i) < 0 then t.slots.(i) <- e else t.next.(t.tails.(i)) <- e;
    t.tails.(i) <- e;
    t.counts.(i) <- t.counts.(i) + 1
  done;
  t.used <- 0;
  Array.iter (fun head -> if head >= 0 then t.used <- t.used + 1) t.slots

let add t key payload =
  if t.n = Array.length t.keys then begin
    let cap = 2 * t.n in
    let grow a = let b = Array.make cap 0 in Array.blit a 0 b 0 t.n; b in
    t.keys <- grow t.keys;
    t.payloads <- grow t.payloads;
    t.next <- grow t.next
  end;
  let e = t.n in
  t.keys.(e) <- key;
  t.payloads.(e) <- payload;
  t.next.(e) <- -1;
  t.n <- e + 1;
  let i = find_slot t key in
  if t.slots.(i) < 0 then begin
    (* New distinct key: keep the slot array under 3/4 full. *)
    if 4 * (t.used + 1) > 3 * (t.mask + 1) then begin
      rehash t;
      let i = find_slot t key in
      t.slots.(i) <- e;
      t.tails.(i) <- e;
      t.counts.(i) <- 1;
      t.used <- t.used + 1
    end
    else begin
      t.slots.(i) <- e;
      t.tails.(i) <- e;
      t.counts.(i) <- 1;
      t.used <- t.used + 1
    end
  end
  else begin
    t.next.(t.tails.(i)) <- e;
    t.tails.(i) <- e;
    t.counts.(i) <- t.counts.(i) + 1
  end

let first t key =
  let i = find_slot t key in
  Array.unsafe_get t.slots i

let count t key =
  let i = find_slot t key in
  if t.slots.(i) < 0 then 0 else t.counts.(i)

let next_entry t e = Array.unsafe_get t.next e

let payload t e = Array.unsafe_get t.payloads e

let key_at t e = Array.unsafe_get t.keys e

let iter_entries f t =
  for e = 0 to t.n - 1 do
    f t.keys.(e) t.payloads.(e)
  done
