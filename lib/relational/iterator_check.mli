(** Runtime iterator-protocol checker.

    [wrap it] returns an iterator with identical behaviour that enforces the
    Volcano protocol from {!Iterator}:

    - [next]/[advance_group] may only be called between [open_] and [close];
    - [open_] may not be called on an already-open iterator;
    - [last_group] must be non-decreasing across the tuples of one open
      cycle (the Section 5.3 group-order property).

    [close] on a closed (or never-opened) iterator and re-[open_] after
    [close] are {e allowed}: materializing operators such as [Sort] close
    their input early, and [Distinct]/[Union] reopen inputs, so both occur
    in well-formed plans.

    Violations raise {!Protocol_error} naming the operator; intended for
    debug builds and tests via {!Physical.lower_checked}. *)

exception Protocol_error of string

(** [wrap ?name it]; [name] labels the iterator in error messages. *)
val wrap : ?name:string -> Iterator.t -> Iterator.t
