let idgj ~outer ~table ~table_cols ~outer_cols ?pred ?residual ?int_probe () =
  let schema = Schema.concat outer.Iterator.schema (Table.schema table) in
  let idx = ref None in
  (* Lazy probe state: matches of the current outer tuple are pulled one at
     a time, so advance_group abandons the untouched tail of a large bucket
     without ever materializing it. *)
  let current_outer = ref None in
  let bucket_n = ref 0 in
  let bucket_get = ref (fun (_ : int) -> 0) in
  let bucket_pos = ref 0 in
  let group = ref (-1) in
  let get_index () =
    match !idx with
    | Some i -> i
    | None ->
        let i = Table.ensure_index table ~kind:Index.Hash ~cols:table_cols in
        idx := Some i;
        i
  in
  let rec next () =
    match !current_outer with
    | Some out_tuple when !bucket_pos < !bucket_n ->
        let rowno = !bucket_get !bucket_pos in
        incr bucket_pos;
        let inner = Table.get table rowno in
        (match pred with
        | Some p when not (Expr.truthy p inner) -> next ()
        | Some _ | None -> (
            let joined = Tuple.concat out_tuple inner in
            match residual with
            | Some r when not (Expr.truthy r joined) -> next ()
            | Some _ | None ->
                Iterator.Counters.add_tuples 1;
                Some joined))
    | Some _ | None -> (
        match outer.Iterator.next () with
        | None ->
            current_outer := None;
            None
        | Some out_tuple ->
            group := outer.Iterator.last_group ();
            Iterator.Counters.add_probes 1;
            let n, get =
              (* Same (count, get) bucket shape either way; the int prober
                 walks an [Int_table] chain allocation-free. *)
              match int_probe with
              | Some itbl -> Op_kernel.int_bucket_prober itbl out_tuple.(outer_cols.(0))
              | None -> Index.probe_bucket (get_index ()) (Tuple.key out_tuple outer_cols)
            in
            current_outer := Some out_tuple;
            bucket_n := n;
            bucket_get := get;
            bucket_pos := 0;
            next ())
  in
  {
    Iterator.schema;
    open_ =
      (fun () ->
        current_outer := None;
        bucket_n := 0;
        bucket_pos := 0;
        group := -1;
        outer.Iterator.open_ ());
    next;
    close = outer.Iterator.close;
    advance_group =
      (fun () ->
        (* Property (b): discontinue the current loop and skip the rest of
           the group in the outer input. *)
        current_outer := None;
        bucket_n := 0;
        bucket_pos := 0;
        outer.Iterator.advance_group ());
    last_group = (fun () -> !group);
  }

let hdgj ~outer ~table ~table_cols ~outer_cols ?pred ?residual () =
  let schema = Schema.concat outer.Iterator.schema (Table.schema table) in
  let key_cols = Array.of_list (List.map (Schema.index_of (Table.schema table)) table_cols) in
  (* One-tuple lookahead on the outer so a whole group can be collected. *)
  let lookahead : (Tuple.t * int) option ref = ref None in
  let exhausted = ref false in
  let group = ref (-1) in
  let inner_pos = ref 0 in
  let inner_count = ref 0 in
  let pending = ref [] in
  let group_hash : (Value.t array, Tuple.t list) Hashtbl.t = Hashtbl.create 64 in
  let in_group = ref false in
  let fetch_outer () =
    match !lookahead with
    | Some (tuple, g) ->
        lookahead := None;
        Some (tuple, g)
    | None ->
        if !exhausted then None
        else (
          match outer.Iterator.next () with
          | Some tuple -> Some (tuple, outer.Iterator.last_group ())
          | None ->
              exhausted := true;
              None)
  in
  let start_group () =
    (* Collect every outer tuple of the next group into the hash table. *)
    Hashtbl.reset group_hash;
    match fetch_outer () with
    | None -> false
    | Some (first, g) ->
        group := g;
        let add tuple =
          let key = Tuple.key tuple outer_cols in
          let existing = Option.value ~default:[] (Hashtbl.find_opt group_hash key) in
          Hashtbl.replace group_hash key (tuple :: existing)
        in
        add first;
        let rec collect () =
          match fetch_outer () with
          | None -> ()
          | Some (tuple, g') ->
              if g' = g then begin
                add tuple;
                collect ()
              end
              else lookahead := Some (tuple, g')
        in
        collect ();
        inner_pos := 0;
        inner_count := Table.row_count table;
        in_group := true;
        true
  in
  let rec next () =
    match !pending with
    | tuple :: rest ->
        pending := rest;
        Iterator.Counters.add_tuples 1;
        Some tuple
    | [] ->
        if not !in_group then if start_group () then next () else None
        else if !inner_pos >= !inner_count then begin
          in_group := false;
          next ()
        end
        else begin
          (* Re-scan of the inner relation for this group. *)
          let inner = Table.get table !inner_pos in
          incr inner_pos;
          Iterator.Counters.add_scanned 1;
          match pred with
          | Some p when not (Expr.truthy p inner) -> next ()
          | Some _ | None -> (
              match Hashtbl.find_opt group_hash (Tuple.key inner key_cols) with
              | None -> next ()
              | Some outers ->
                  let joined =
                    List.filter_map
                      (fun out_tuple ->
                        let j = Tuple.concat out_tuple inner in
                        match residual with
                        | Some r when not (Expr.truthy r j) -> None
                        | Some _ | None -> Some j)
                      (List.rev outers)
                  in
                  pending := joined;
                  next ())
        end
  in
  {
    Iterator.schema;
    open_ =
      (fun () ->
        lookahead := None;
        exhausted := false;
        group := -1;
        pending := [];
        in_group := false;
        Hashtbl.reset group_hash;
        outer.Iterator.open_ ());
    next;
    close = outer.Iterator.close;
    advance_group =
      (fun () ->
        pending := [];
        if !in_group then in_group := false
        else outer.Iterator.advance_group ());
    last_group = (fun () -> !group);
  }

let first_match_per_group (it : Iterator.t) ~k =
  it.Iterator.open_ ();
  let results = ref [] in
  let found = ref 0 in
  let rec loop () =
    if !found >= k then ()
    else
      match it.Iterator.next () with
      | None -> ()
      | Some tuple ->
          let g = it.Iterator.last_group () in
          results := (g, tuple) :: !results;
          incr found;
          (* One witness suffices to infer the topology exists: skip the
             rest of the group. *)
          it.Iterator.advance_group ();
          loop ()
  in
  Fun.protect ~finally:it.Iterator.close loop;
  List.rev !results
