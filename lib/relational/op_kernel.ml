(* Int-specialized execution kernels over columnar lanes.

   The paper's join-bound methods probe hash tables keyed on single int
   object-id columns; the generic operators pay a [Value.t array] key
   allocation and a polymorphic hash per probe, plus a boxed tuple per
   scanned row.  These kernels run the same plans over {!Column.Ints}
   lanes and {!Int_table} multimaps: probing allocates nothing, and the
   fused scan variant never boxes a non-matching outer row.

   Equivalence contract: with kernels on or off, every query must produce
   bit-identical results *and* bit-identical work counters (the serve
   fingerprint digests both).  Three rules make that hold:

   - match emission follows the generic bucket order (insertion order —
     {!Int_table}'s chain contract);
   - counters are credited exactly where the generic operators credit
     them: per pulled outer row for the probe side (so [Limit]'s early
     stop sees identical totals), in bulk at open for the build side
     (the generic hash join drains its build fully inside [open_] too);
   - key conversion is exact or abandoned.  Int keys convert trivially;
     integral floats below 2^53 convert exactly in both directions;
     anything else either cannot match an all-int build ([Null], strings,
     fractional floats) or falls back — per probe to a linear scan with
     generic [Value.equal] semantics (huge integral floats, where
     float/int equality is not injective), per build to full generic
     hashing (any non-int build key). *)

module A1 = Bigarray.Array1
module Dyn = Topo_util.Dyn
module Counters = Iterator.Counters
module Vec = Int_table.Vec

(* ------------------------------------------------------------------ *)
(* Ambient toggle                                                      *)

let enabled = Atomic.make true

let kernels_on () = Atomic.get enabled

let set_enabled b = Atomic.set enabled b

let with_kernels b f =
  let prev = Atomic.exchange enabled b in
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

(* ------------------------------------------------------------------ *)
(* Key classification                                                  *)

type key_class = K_int of int | K_none | K_slow

(* 2^53: the last float magnitude where float/int equality is injective.
   At or above it, distinct ints share a float image, so converting the
   float to one int would lose matches the generic path finds. *)
let max_exact_float = 9007199254740992.0

let classify = function
  | Value.Int x -> K_int x
  | Value.Float f ->
      if Float.is_integer f then
        if Float.abs f < max_exact_float then K_int (int_of_float f) else K_slow
      else K_none
  | Value.Null | Value.Str _ -> K_none

(* ------------------------------------------------------------------ *)
(* Selection vectors                                                   *)

let select rows pred =
  let sv = Vec.create ~capacity:(max 16 ((Array.length rows / 4) + 1)) () in
  Array.iteri (fun r row -> if Expr.truthy pred row then Vec.push sv r) rows;
  sv

(* ------------------------------------------------------------------ *)
(* Hash join                                                           *)

type probe_side =
  | Probe_lane of { table : Table.t; lane : Column.ints }
      (* fused SeqScan (no predicate): stream int keys straight off the
         lane, box the outer row only on a match *)
  | Probe_iter of Iterator.t

type build_side =
  | Build_table of { table : Table.t; col : int; pred : Expr.t option }
      (* SeqScan build: the cached per-table int index (no predicate), or
         a selection vector over the row snapshot (predicate) *)
  | Build_iter of { it : Iterator.t; col : int; hint : int }

type build_state =
  | B_int of { tbl : Int_table.t; fetch : int -> Tuple.t }
  | B_gen of Tuple.t Dyn.t Op_join.KeyTbl.t
  | B_empty

let gen_add tbl cols tuple =
  let key = Tuple.key tuple cols in
  match Op_join.KeyTbl.find_opt tbl key with
  | Some bucket -> Dyn.push bucket tuple
  | None ->
      let bucket = Dyn.create () in
      Dyn.push bucket tuple;
      Op_join.KeyTbl.add tbl key bucket

let build_hash build =
  match build with
  | Build_table { table; col; pred } -> (
      let nrows = Table.row_count table in
      Counters.add_scanned nrows;
      match pred with
      | None -> (
          Counters.add_tuples nrows;
          match Table.int_index table col with
          | Some tbl -> B_int { tbl; fetch = Table.get table }
          | None ->
              (* Lane turned out not to be all-int: hash generically. *)
              let g = Op_join.KeyTbl.create (max 16 nrows) in
              Array.iter (gen_add g [| col |]) (Table.rows table);
              B_gen g)
      | Some p -> (
          let rows = Table.rows table in
          let sv = select rows p in
          Counters.add_tuples (Vec.length sv);
          match Table.int_lane table col with
          | Some lane ->
              let tbl = Int_table.create ~capacity:(max 16 (Vec.length sv)) () in
              Vec.iter (fun r -> Int_table.add tbl (A1.get lane r) r) sv;
              B_int { tbl; fetch = Table.get table }
          | None ->
              let g = Op_join.KeyTbl.create (max 16 (Vec.length sv)) in
              Vec.iter (fun r -> gen_add g [| col |] rows.(r)) sv;
              B_gen g))
  | Build_iter { it; col; hint } ->
      let tuples = Dyn.create () in
      let keys = Vec.create ~capacity:(max 16 hint) () in
      let regular = ref true in
      (* Draining through [Iterator.iter] drives the child exactly like the
         generic [drain_into_hash], so build-side counters need no special
         crediting here. *)
      Iterator.iter
        (fun tuple _ ->
          Dyn.push tuples tuple;
          if !regular then
            match classify tuple.(col) with
            | K_int k -> Vec.push keys k
            | K_none | K_slow -> regular := false)
        it;
      let n = Dyn.length tuples in
      if !regular then begin
        let tbl = Int_table.create ~capacity:(max 16 n) () in
        for i = 0 to n - 1 do
          Int_table.add tbl (Vec.get keys i) i
        done;
        B_int { tbl; fetch = Dyn.get tuples }
      end
      else begin
        (* A null, string or out-of-range float key on the build side:
           only generic hashing preserves its match semantics. *)
        let g = Op_join.KeyTbl.create (max 16 n) in
        Dyn.iter (gen_add g [| col |]) tuples;
        B_gen g
      end

let hash_join ~schema ~probe ~probe_col ~build ?residual () =
  let probe_cols = [| probe_col |] in
  let bstate = ref B_empty in
  let pos = ref 0 in
  let n = ref 0 in
  let cur_outer = ref [||] in
  let chain = ref (-1) in
  (* Linear-scan cursor for pathological probe keys (huge integral
     floats): next build entry index to inspect, or -1 when inactive. *)
  let lin = ref (-1) in
  let lin_key = ref Value.Null in
  let gbucket : Tuple.t Dyn.t option ref = ref None in
  let gpos = ref 0 in
  let residual_ok joined =
    match residual with Some p -> Expr.truthy p joined | None -> true
  in
  let fetch_outer () =
    match probe with
    | Probe_iter it -> it.Iterator.next ()
    | Probe_lane { table; _ } ->
        if !pos >= !n then None
        else begin
          let r = !pos in
          incr pos;
          Counters.add_scanned 1;
          Counters.add_tuples 1;
          Some (Table.get table r)
        end
  in
  let rec next () =
    match !bstate with
    | B_empty -> None
    | B_int { tbl; fetch } ->
        if !chain >= 0 then begin
          let e = !chain in
          chain := Int_table.next_entry tbl e;
          let joined = Tuple.concat !cur_outer (fetch (Int_table.payload tbl e)) in
          if residual_ok joined then Some joined else next ()
        end
        else if !lin >= 0 then begin
          let ne = Int_table.length tbl in
          let e = ref !lin in
          while
            !e < ne && not (Value.equal (Value.Int (Int_table.key_at tbl !e)) !lin_key)
          do
            incr e
          done;
          if !e >= ne then begin
            lin := -1;
            next ()
          end
          else begin
            lin := !e + 1;
            let joined = Tuple.concat !cur_outer (fetch (Int_table.payload tbl !e)) in
            if residual_ok joined then Some joined else next ()
          end
        end
        else advance_int tbl
    | B_gen g -> (
        match !gbucket with
        | Some b when !gpos < Dyn.length b ->
            let inner = Dyn.get b !gpos in
            incr gpos;
            let joined = Tuple.concat !cur_outer inner in
            if residual_ok joined then Some joined else next ()
        | _ -> (
            gbucket := None;
            match fetch_outer () with
            | None -> None
            | Some outer ->
                cur_outer := outer;
                (match Op_join.KeyTbl.find_opt g (Tuple.key outer probe_cols) with
                | Some b ->
                    gbucket := Some b;
                    gpos := 0
                | None -> ());
                next ()))
  and advance_int tbl =
    match probe with
    | Probe_lane { table; lane } ->
        (* The fused fast path: never boxes a non-matching row. *)
        let rec scan () =
          if !pos >= !n then None
          else begin
            let r = !pos in
            incr pos;
            Counters.add_scanned 1;
            Counters.add_tuples 1;
            let e = Int_table.first tbl (A1.unsafe_get lane r) in
            if e >= 0 then begin
              cur_outer := Table.get table r;
              chain := e;
              next ()
            end
            else scan ()
          end
        in
        scan ()
    | Probe_iter it -> (
        match it.Iterator.next () with
        | None -> None
        | Some outer -> (
            cur_outer := outer;
            match classify outer.(probe_col) with
            | K_int k ->
                let e = Int_table.first tbl k in
                if e >= 0 then begin
                  chain := e;
                  next ()
                end
                else advance_int tbl
            | K_none -> advance_int tbl
            | K_slow ->
                lin := 0;
                lin_key := outer.(probe_col);
                next ()))
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      chain := -1;
      lin := -1;
      gbucket := None;
      gpos := 0;
      pos := 0;
      (* Build first, then open the probe side — the generic hash join's
         order. *)
      bstate := build_hash build;
      match probe with
      | Probe_lane { lane; _ } -> n := A1.dim lane
      | Probe_iter it -> it.Iterator.open_ ())
    ~next
    ~close:(fun () ->
      match probe with Probe_iter it -> it.Iterator.close () | Probe_lane _ -> ())

(* ------------------------------------------------------------------ *)
(* Index nested-loop join                                              *)

let index_nl_join_int ~schema ~left ~table ~itbl ~left_col ?pred ?residual () =
  let cur_outer = ref [||] in
  let chain = ref (-1) in
  let lin = ref (-1) in
  let lin_key = ref Value.Null in
  let rec next () =
    if !chain >= 0 then begin
      let e = !chain in
      chain := Int_table.next_entry itbl e;
      step (Int_table.payload itbl e)
    end
    else if !lin >= 0 then begin
      let ne = Int_table.length itbl in
      let e = ref !lin in
      while !e < ne && not (Value.equal (Value.Int (Int_table.key_at itbl !e)) !lin_key) do
        incr e
      done;
      if !e >= ne then begin
        lin := -1;
        next ()
      end
      else begin
        lin := !e + 1;
        step (Int_table.payload itbl !e)
      end
    end
    else
      match left.Iterator.next () with
      | None -> None
      | Some outer ->
          Counters.add_probes 1;
          cur_outer := outer;
          (match classify outer.(left_col) with
          | K_int k -> chain := Int_table.first itbl k
          | K_none -> ()
          | K_slow ->
              lin := 0;
              lin_key := outer.(left_col));
          next ()
  and step rowno =
    let inner = Table.get table rowno in
    match pred with
    | Some p when not (Expr.truthy p inner) -> next ()
    | Some _ | None -> (
        let joined = Tuple.concat !cur_outer inner in
        match residual with
        | Some r when not (Expr.truthy r joined) -> next ()
        | Some _ | None -> Some joined)
  in
  Iterator.ungrouped ~schema
    ~open_:(fun () ->
      chain := -1;
      lin := -1;
      left.Iterator.open_ ())
    ~next
    ~close:(fun () -> left.Iterator.close ())

(* ------------------------------------------------------------------ *)
(* DGJ bucket prober                                                   *)

(* Drop-in for [Index.probe_bucket] over an int index: same [(count, get)]
   shape, same row order.  [get] keeps a chain cursor, so the IDGJ's
   strictly sequential access is O(1) per step (random access restarts the
   walk — correct, just slower, and nothing uses it). *)
let int_bucket_prober itbl v =
  match classify v with
  | K_int k ->
      let cnt = Int_table.count itbl k in
      if cnt = 0 then (0, fun _ -> 0)
      else begin
        let cur = ref (Int_table.first itbl k) in
        let curi = ref 0 in
        ( cnt,
          fun i ->
            if i < !curi then begin
              cur := Int_table.first itbl k;
              curi := 0
            end;
            while !curi < i do
              cur := Int_table.next_entry itbl !cur;
              incr curi
            done;
            Int_table.payload itbl !cur )
      end
  | K_none -> (0, fun _ -> 0)
  | K_slow ->
      let sv = Vec.create () in
      Int_table.iter_entries (fun k p -> if Value.equal (Value.Int k) v then Vec.push sv p) itbl;
      (Vec.length sv, Vec.get sv)
