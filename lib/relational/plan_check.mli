(** Static well-formedness and invariant checker for physical plans.

    The top-k machinery of Section 5.3 rests on operator invariants that the
    plan constructors cannot express: merge-join inputs must arrive sorted
    on their key columns, DGJ operators must be fed by a {e grouped} source,
    and every positional column reference must be in bounds for the schema
    flowing up from below.  A bad rewrite in {!Optimizer} or {!Sql_binder}
    that breaks one of these silently yields wrong answers; [verify] turns
    such mistakes into structured, located errors instead.

    [verify] walks a {!Physical.t} bottom-up and checks four layers:

    - {b binding}: referenced tables exist in the catalog, index key columns
      ([order_cols], [cols], [table_cols]) are columns of their table, and
      every positional reference ([Project] cols, join [left_cols] /
      [right_cols], [Sort] keys, expression columns) is within the input
      arity;
    - {b typing}: predicates and projection items are type-checked against
      the node's input schema ([ct()] needs a string operand, comparisons
      and join keys may not mix strings with numerics, [Sum]/[Avg] need
      numeric arguments);
    - {b ordering}: an ordering property — the lexicographic sort key, as
      [(position, descending)] pairs — is propagated through the tree so
      that [MergeJoin] sortedness is {e proven} from an [OrderedScan] or
      [Sort] below, never assumed;
    - {b grouping}: a grouped-source property is propagated the same way so
      each [Idgj]/[Hdgj] provably sits on a grouped stream (the Figure 15
      invariant).

    Violations carry a path locator (child-edge labels from the root) and
    pretty-print via {!report}. *)

type side = Left | Right

type kind =
  | Unknown_table of string  (** table not registered in the catalog *)
  | Unknown_index_column of { table : string; column : string }
      (** a named index/order/probe column the table does not have *)
  | Column_out_of_bounds of { what : string; pos : int; arity : int }
      (** positional reference beyond the input schema *)
  | Key_arity_mismatch of { left : int; right : int }
      (** join key arrays of different lengths *)
  | Empty_join_key  (** equi-join with no key columns *)
  | Probe_key_arity_mismatch of { cols : int; key : int }
      (** [IndexProbe] key literal does not cover the indexed columns *)
  | Not_sorted of { side : side; cols : int array }
      (** [MergeJoin] input whose sortedness on [cols] cannot be proven *)
  | Not_grouped  (** DGJ outer input is not a grouped stream *)
  | Type_mismatch of { context : string; detail : string }
      (** expression or join-key typing error *)
  | Union_arity_mismatch of { left : int; right : int }
  | Negative_limit of int
  | Duplicate_columns of string  (** output schema has colliding names *)
  | Kernel_disagreement of { checker : string option; lowering : string option }
      (** the checker's independent kernel-eligibility inference and the
          lowering's {!Physical.kernel_site} disagree — one of the two
          layers drifted ([None] rendered as ["(none)"]) *)

type violation = {
  path : string list;
      (** child-edge labels from the root to the offending node, e.g.
          [["left"; "input"]]; [[]] is the root *)
  node : string;  (** operator name of the offending node *)
  kind : kind;
}

exception Plan_error of violation list

(** The ordering/grouping property lattice value inferred for a node:
    [ordering] is the proven lexicographic sort key of the output (empty
    when nothing is proven), [grouped] whether the output is a grouped
    stream in the DGJ sense. *)
type props = { ordering : (int * bool) list; grouped : bool }

(** [verify catalog plan] is every violation found, in tree order (root
    first along each path).  Never raises. *)
val verify : Catalog.t -> Physical.t -> violation list

(** [check catalog plan] raises {!Plan_error} when [verify] finds
    anything. *)
val check : Catalog.t -> Physical.t -> unit

(** [properties catalog plan] is the inferred property-lattice value of the
    plan root (violations are ignored; unknown tables yield the bottom
    element [{ ordering = []; grouped = false }]).  Exposed for tests and
    for explain-style tooling. *)
val properties : Catalog.t -> Physical.t -> props

(** [kernel_sites catalog plan] lists every node eligible for an
    int-specialized kernel, as (path from the root, kernel name) pairs in
    tree order — the EXPLAIN-side view of what {!Physical.lower} will
    specialize. *)
val kernel_sites : Catalog.t -> Physical.t -> (string list * string) list

(** [kind_to_string kind]. *)
val kind_to_string : kind -> string

(** [violation_to_string v] is a one-line rendering like
    ["MergeJoin at /left: left input not proven sorted on [0]"]. *)
val violation_to_string : violation -> string

(** [report vs] is a newline-joined rendering of all violations (the empty
    string when [vs] is empty). *)
val report : violation list -> string
