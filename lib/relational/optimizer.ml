type dim = {
  dim_table : string;
  dim_alias : string;
  dim_key : string;
  fact_col : string;
  dim_pred : Expr.t option;
}

type spec = {
  group_table : string;
  group_key : string;
  score_col : string;
  group_pred : Expr.t option;
  fact_table : string;
  fact_group_col : string;
  dims : dim list;
  k : int;
}

type strategy = Regular | Early_termination

type decision = {
  plan : Physical.t;
  strategy : strategy;
  regular_cost : float;
  et_cost : float;
  explain : string;
}

(* Abstract cost units: one hash-index probe = 1.0.  Sequential access is
   cheaper per row; hashing and sorting pay per-tuple CPU. *)
let c_scan = 0.25

let c_hash = 0.6

let c_sort = 0.8

let c_probe = 1.0

(* ------------------------------------------------------------------ *)
(* Catalog-derived statistics                                          *)

type rel_info = {
  table : string;
  alias : string;
  pred : Expr.t option;
  base_rows : int;
  sel : float;
  out_rows : float;  (* after local predicate *)
  arity : int;
}

let rel_info catalog ~table ~alias ~pred =
  let t = Catalog.find catalog table in
  let stats = Catalog.stats catalog table in
  let sel =
    match pred with
    | None -> 1.0
    | Some p -> Table_stats.predicate_selectivity stats (Table.schema t) p
  in
  let base_rows = Table.row_count t in
  {
    table;
    alias;
    pred;
    base_rows;
    sel;
    out_rows = float_of_int base_rows *. sel;
    arity = Schema.arity (Table.schema t);
  }

let col_pos catalog table col = Schema.index_of (Table.schema (Catalog.find catalog table)) col

let join_sel catalog ~ltable ~lcol ~rtable ~rcol =
  let ls = Catalog.stats catalog ltable and rs = Catalog.stats catalog rtable in
  Table_stats.join_selectivity ~left:ls ~left_col:(col_pos catalog ltable lcol) ~right:rs
    ~right_col:(col_pos catalog rtable rcol)

(* ------------------------------------------------------------------ *)
(* Regular plans: System-R dynamic program over left-deep join orders  *)

(* Relations are numbered 0 = group, 1 = fact, 2.. = dims; the join graph
   is a star around the fact relation plus the group-fact edge. *)

type dp_state = {
  cost : float;
  card : float;
  plan : Physical.t;
  order : int list;  (* rel ids, leftmost first *)
  score_ordered : bool;
      (* interesting order: tuples flow in the group relation's descending
         score order (System-R keeps the best plan per interesting order,
         Section 5.4.1) *)
}

let regular_plan ?(check = false) catalog spec =
  let dims = Array.of_list spec.dims in
  let nrels = 2 + Array.length dims in
  let infos =
    Array.init nrels (fun i ->
        if i = 0 then rel_info catalog ~table:spec.group_table ~alias:"G" ~pred:spec.group_pred
        else if i = 1 then rel_info catalog ~table:spec.fact_table ~alias:"F" ~pred:None
        else
          let d = dims.(i - 2) in
          rel_info catalog ~table:d.dim_table ~alias:d.dim_alias ~pred:d.dim_pred)
  in
  (* Join edge between rel a and rel b, as (col-in-a, col-in-b), if any. *)
  let edge a b =
    let named a b =
      if a = 0 && b = 1 then Some (spec.group_key, spec.fact_group_col)
      else if a = 1 && b >= 2 then Some (dims.(b - 2).fact_col, dims.(b - 2).dim_key)
      else None
    in
    match named a b with
    | Some e -> Some e
    | None -> ( match named b a with Some (x, y) -> Some (y, x) | None -> None)
  in
  let sel_between a b =
    match edge a b with
    | None -> 1.0
    | Some (ca, cb) ->
        join_sel catalog ~ltable:infos.(a).table ~lcol:ca ~rtable:infos.(b).table ~rcol:cb
  in
  let scan i =
    let info = infos.(i) in
    let plan = Physical.Scan { table = info.table; alias = Some info.alias; pred = info.pred } in
    { cost = float_of_int info.base_rows *. c_scan; card = info.out_rows; plan; order = [ i ]; score_ordered = false }
  in
  (* Accessing the group relation through its score index yields the
     interesting order for free modulo a costlier ordered scan. *)
  let ordered_scan_g =
    let info = infos.(0) in
    {
      cost = float_of_int info.base_rows *. c_scan *. 1.5;
      card = info.out_rows;
      plan =
        Physical.OrderedScan
          {
            table = info.table;
            alias = Some info.alias;
            order_cols = [ spec.score_col ];
            desc = true;
            pred = info.pred;
            grouped = false;
          };
      order = [ 0 ];
      score_ordered = true;
    }
  in
  (* Offset of rel [r] inside the concatenated schema of [order]. *)
  let offset_of order r =
    let rec go acc = function
      | [] -> invalid_arg "offset_of"
      | x :: rest -> if x = r then acc else go (acc + infos.(x).arity) rest
    in
    go 0 order
  in
  let extend state r =
    (* Find a join edge from r to some rel already in the prefix. *)
    let connected = List.filter_map (fun p -> match edge p r with Some e -> Some (p, e) | None -> None) state.order in
    match connected with
    | [] -> []
    | (p, (pcol, rcol)) :: _ ->
        let info = infos.(r) in
        let left_pos = offset_of state.order p + col_pos catalog infos.(p).table pcol in
        let rcol_pos = col_pos catalog info.table rcol in
        let s = sel_between p r in
        let out = state.card *. info.out_rows *. s in
        let order = state.order @ [ r ] in
        (* Streaming-probe hash join and index-NL join both preserve the
           outer (prefix) order, so the interesting order survives. *)
        let hash =
          {
            cost =
              state.cost
              +. (float_of_int info.base_rows *. c_scan)
              +. (c_hash *. (state.card +. info.out_rows))
              +. (0.1 *. out);
            card = out;
            plan =
              Physical.HashJoin
                {
                  left = state.plan;
                  right = Physical.Scan { table = info.table; alias = Some info.alias; pred = info.pred };
                  left_cols = [| left_pos |];
                  right_cols = [| rcol_pos |];
                  residual = None;
                };
            order;
            score_ordered = state.score_ordered;
          }
        in
        let matches_per_probe = s *. float_of_int info.base_rows in
        let inl =
          {
            cost =
              state.cost
              +. (state.card *. (c_probe +. (matches_per_probe *. 0.1)))
              +. (0.1 *. out);
            card = out;
            plan =
              Physical.IndexNL
                {
                  left = state.plan;
                  table = info.table;
                  alias = Some info.alias;
                  table_cols = [ rcol ];
                  left_cols = [| left_pos |];
                  pred = info.pred;
                  residual = None;
                };
            order;
            score_ordered = state.score_ordered;
          }
        in
        (* Sort-merge join: sort both sides on the join key (destroying the
           score order), then a cheap linear merge. *)
        let nl = Float.max 1.0 state.card and nr = Float.max 1.0 info.out_rows in
        let merge =
          {
            cost =
              state.cost
              +. (float_of_int info.base_rows *. c_scan)
              +. (c_sort *. nl *. Float.log2 (nl +. 2.0))
              +. (c_sort *. nr *. Float.log2 (nr +. 2.0))
              +. (0.3 *. (nl +. nr))
              +. (0.1 *. out);
            card = out;
            plan =
              Physical.MergeJoin
                {
                  left = Physical.Sort { input = state.plan; by = [ (left_pos, false) ] };
                  right =
                    Physical.Sort
                      {
                        input = Physical.Scan { table = info.table; alias = Some info.alias; pred = info.pred };
                        by = [ (rcol_pos, false) ];
                      };
                  left_cols = [| left_pos |];
                  right_cols = [| rcol_pos |];
                  residual = None;
                };
            order;
            score_ordered = false;
          }
        in
        [ hash; inl; merge ]
  in
  (* Subset DP keyed by (bitmask, interesting order); keep the cheapest
     state per key — the System-R rule of retaining the least-cost plan for
     each interesting order. *)
  let best : (int * bool, dp_state) Hashtbl.t = Hashtbl.create 64 in
  let consider mask state =
    (* With [check] on, every candidate the DP prices must verify — a bad
       join-key offset computed by [extend] is a bug here, not downstream. *)
    if check then Plan_check.check catalog state.plan;
    let key = (mask, state.score_ordered) in
    match Hashtbl.find_opt best key with
    | Some s when s.cost <= state.cost -> ()
    | Some _ | None -> Hashtbl.replace best key state
  in
  for i = 0 to nrels - 1 do
    consider (1 lsl i) (scan i)
  done;
  consider 1 ordered_scan_g;
  let full = (1 lsl nrels) - 1 in
  for mask = 1 to full do
    List.iter
      (fun ordered ->
        match Hashtbl.find_opt best (mask, ordered) with
        | None -> ()
        | Some state ->
            for r = 0 to nrels - 1 do
              if mask land (1 lsl r) = 0 then
                List.iter (fun st -> consider (mask lor (1 lsl r)) st) (extend state r)
            done)
      [ false; true ]
  done;
  (* Finish either final state: project (group key, score), distinct, then
     a sort only when the interesting order was not preserved. *)
  let finish (final : dp_state) =
    let g_off = offset_of final.order 0 in
    let key_pos = g_off + col_pos catalog spec.group_table spec.group_key in
    let score_pos = g_off + col_pos catalog spec.group_table spec.score_col in
    let projected =
      Physical.Distinct (Physical.Project { input = final.plan; cols = [ key_pos; score_pos ] })
    in
    let n = Float.max 1.0 final.card in
    if final.score_ordered then
      (* Distinct preserves arrival order, so the top-k prefix is already
         correct: no sort. *)
      (Physical.Limit (spec.k, projected), final.cost +. n)
    else
      ( Physical.Limit (spec.k, Physical.Sort { input = projected; by = [ (1, true) ] }),
        final.cost +. n +. (c_sort *. n *. Float.log2 (n +. 2.0)) )
  in
  let candidates =
    List.filter_map (fun ordered -> Hashtbl.find_opt best (full, ordered)) [ false; true ]
  in
  match candidates with
  | [] -> invalid_arg "Optimizer.regular_plan: join graph is disconnected"
  | first :: rest ->
      let best_final =
        List.fold_left
          (fun acc state ->
            let _, cost = finish state in
            let _, acc_cost = finish acc in
            if cost < acc_cost then state else acc)
          first rest
      in
      let plan, cost = finish best_final in
      if check then Plan_check.check catalog plan;
      (plan, cost)

(* ------------------------------------------------------------------ *)
(* Early-termination plans: grouped scan + DGJ stack                   *)

let group_cards catalog spec =
  (* Card_i per group, in descending score order, after the group
     predicate. *)
  let gt = Catalog.find catalog spec.group_table in
  let ft = Catalog.find catalog spec.fact_table in
  let sorted = Table.ensure_index gt ~kind:Index.Sorted ~cols:[ spec.score_col ] in
  let fact_idx = Table.ensure_index ft ~kind:Index.Hash ~cols:[ spec.fact_group_col ] in
  let key_pos = col_pos catalog spec.group_table spec.group_key in
  let rows = Index.ordered_rows ~desc:true sorted in
  let cards = Topo_util.Dyn.create () in
  Array.iter
    (fun rowno ->
      let tuple = Table.get gt rowno in
      let keep = match spec.group_pred with None -> true | Some p -> Expr.truthy p tuple in
      if keep then Topo_util.Dyn.push cards (Index.probe_count fact_idx [| tuple.(key_pos) |]))
    rows;
  Topo_util.Dyn.to_array cards

let et_cost_of catalog spec ~cards =
  (* Dimension statistics are independent of the order/implementation
     being costed; compute them once and close over them. *)
  let dims = Array.of_list spec.dims in
  let dim_stats =
    Array.map
      (fun d ->
        let info = rel_info catalog ~table:d.dim_table ~alias:d.dim_alias ~pred:d.dim_pred in
        let s =
          join_sel catalog ~ltable:spec.fact_table ~lcol:d.fact_col ~rtable:d.dim_table ~rcol:d.dim_key
        in
        (info, s))
      dims
  in
  let avg_card =
    let n = Array.length cards in
    if n = 0 then 1.0
    else Float.max 1.0 (float_of_int (Array.fold_left ( + ) 0 cards) /. float_of_int n)
  in
  let fact_rows = Table.row_count (Catalog.find catalog spec.fact_table) in
  fun ~impls ~dim_order ->
    let fact_impl, dim_impls =
      match impls with f :: rest -> (f, Array.of_list rest) | [] -> invalid_arg "et_cost_of"
    in
    let levels =
      Array.of_list
        (List.mapi
           (fun level idx ->
             let info, s = dim_stats.(idx) in
             let probe_cost =
               match dim_impls.(level) with
               | `I -> c_probe
               | `H ->
                   (* HDGJ re-scans the inner per group; amortize the scan over
                      the group's tuples so the per-tuple model still applies. *)
                   float_of_int info.base_rows *. c_scan /. avg_card
             in
             { Dgj_cost.n_inner = info.base_rows; probe_cost; pred_sel = info.sel; join_sel = s })
           dim_order)
    in
    let per_group_overhead =
      match fact_impl with
      | `I -> c_probe
      | `H -> float_of_int fact_rows *. c_scan
    in
    let input = { Dgj_cost.cards; levels; k = spec.k; per_group_overhead } in
    Dgj_cost.expected_cost input

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let rec impl_choices n = if n = 0 then [ [] ] else
    List.concat_map (fun c -> [ `I :: c; `H :: c ]) (impl_choices (n - 1))

let et_plan catalog spec ~impls ~dim_order =
  let dims = Array.of_list spec.dims in
  let base =
    Physical.OrderedScan
      {
        table = spec.group_table;
        alias = Some "G";
        order_cols = [ spec.score_col ];
        desc = true;
        pred = spec.group_pred;
        grouped = true;
      }
  in
  let fact_impl, dim_impls =
    match impls with
    | f :: rest -> (f, Array.of_list rest)
    | [] -> invalid_arg "Optimizer.et_plan: impls must cover the fact level"
  in
  let mk_dgj impl ~left ~table ~alias ~table_cols ~left_cols ~pred =
    match impl with
    | `I -> Physical.Idgj { left; table; alias; table_cols; left_cols; pred; residual = None }
    | `H -> Physical.Hdgj { left; table; alias; table_cols; left_cols; pred; residual = None }
  in
  let g_arity = Schema.arity (Table.schema (Catalog.find catalog spec.group_table)) in
  let key_pos = col_pos catalog spec.group_table spec.group_key in
  let fact_plan =
    mk_dgj fact_impl ~left:base ~table:spec.fact_table ~alias:(Some "F")
      ~table_cols:[ spec.fact_group_col ] ~left_cols:[| key_pos |] ~pred:None
  in
  let plan = ref fact_plan in
  List.iteri
    (fun level idx ->
      let d = dims.(idx) in
      let impl = dim_impls.(level) in
      let fact_col_pos = g_arity + col_pos catalog spec.fact_table d.fact_col in
      plan :=
        mk_dgj impl ~left:!plan ~table:d.dim_table ~alias:(Some d.dim_alias) ~table_cols:[ d.dim_key ]
          ~left_cols:[| fact_col_pos |] ~pred:d.dim_pred)
    dim_order;
  !plan

let best_et_plan ?(check = false) catalog spec =
  let n = List.length spec.dims in
  let orders = permutations (List.init n Fun.id) in
  let choices = impl_choices (n + 1) in
  let cards = group_cards catalog spec in
  let cost_of = et_cost_of catalog spec ~cards in
  let best = ref None in
  List.iter
    (fun dim_order ->
      List.iter
        (fun impls ->
          if check then Plan_check.check catalog (et_plan catalog spec ~impls ~dim_order);
          let cost = cost_of ~impls ~dim_order in
          match !best with
          | Some (_, c) when c <= cost -> ()
          | Some _ | None -> best := Some ((impls, dim_order), cost))
        choices)
    orders;
  match !best with
  | None -> None
  | Some ((impls, dim_order), cost) ->
      let plan = et_plan catalog spec ~impls ~dim_order in
      if check then Plan_check.check catalog plan;
      Some (plan, cost)

let choose ?(check = false) catalog spec =
  let reg_plan, reg_cost = regular_plan ~check catalog spec in
  match best_et_plan ~check catalog spec with
  | None ->
      {
        plan = reg_plan;
        strategy = Regular;
        regular_cost = reg_cost;
        et_cost = infinity;
        explain = Physical.explain reg_plan;
      }
  | Some (et, et_cost) ->
      if et_cost < reg_cost then
        { plan = et; strategy = Early_termination; regular_cost = reg_cost; et_cost; explain = Physical.explain et }
      else
        { plan = reg_plan; strategy = Regular; regular_cost = reg_cost; et_cost; explain = Physical.explain reg_plan }

let run_topk catalog spec decision =
  match decision.strategy with
  | Regular ->
      List.map
        (fun tuple -> (Tuple.get tuple 0, Value.as_float (Tuple.get tuple 1)))
        (Physical.run catalog decision.plan)
  | Early_termination ->
      let it = Physical.lower catalog decision.plan in
      let witnesses = Op_dgj.first_match_per_group it ~k:spec.k in
      let key_pos = col_pos catalog spec.group_table spec.group_key in
      let score_pos = col_pos catalog spec.group_table spec.score_col in
      List.map
        (fun (_, tuple) -> (Tuple.get tuple key_pos, Value.as_float (Tuple.get tuple score_pos)))
        witnesses
