type t = {
  row_count : int;
  histograms : Histogram.t array;
  samples : Value.t array array;  (* bounded per-column sample for Contains *)
  avg_width : float;
}

let sample_size = 512

let compute table =
  let rows = Table.rows table in
  let n = Array.length rows in
  let arity = Schema.arity (Table.schema table) in
  (* Column-major view over the row snapshot: every derived array is
     local to this call, so stats building needs no shared mutation. *)
  let columns = Array.init arity (fun c -> Array.map (fun tuple -> tuple.(c)) rows) in
  let width_sum = Array.fold_left (fun acc tuple -> acc + Tuple.width tuple) 0 rows in
  let histograms = Array.map Histogram.build columns in
  let samples =
    Array.map
      (fun all ->
        if Array.length all <= sample_size then Array.copy all
        else
          (* Deterministic systematic sample: every (n/size)-th row. *)
          let step = Array.length all / sample_size in
          Array.init sample_size (fun i -> all.(i * step)))
      columns
  in
  {
    row_count = n;
    histograms;
    samples;
    avg_width = (if n = 0 then 0.0 else float_of_int width_sum /. float_of_int n);
  }

let columns t = Array.length t.histograms

let sample t col =
  if col < 0 || col >= Array.length t.samples then
    invalid_arg (Printf.sprintf "Table_stats.sample: column %d" col);
  Array.copy t.samples.(col)

let restore ~row_count ~histograms ~samples ~avg_width = { row_count; histograms; samples; avg_width }

let row_count t = t.row_count

let histogram t col =
  if col < 0 || col >= Array.length t.histograms then
    invalid_arg (Printf.sprintf "Table_stats.histogram: column %d" col);
  t.histograms.(col)

let distinct t col = Histogram.distinct (histogram t col)

let contains_selectivity t col keyword =
  let sample = t.samples.(col) in
  if Array.length sample = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter
      (fun v ->
        match v with
        | Value.Str s -> if Expr.keyword_matches ~keyword ~text:s then incr hits
        | Value.Null | Value.Int _ | Value.Float _ -> ())
      sample;
    float_of_int !hits /. float_of_int (Array.length sample)
  end

let clamp01 f = Float.max 0.0 (Float.min 1.0 f)

let rec selectivity t expr =
  match expr with
  | Expr.Const v -> if Value.is_null v || Value.equal v (Value.Int 0) then 0.0 else 1.0
  | Expr.Col _ -> 0.5
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) | Expr.Cmp (op, Expr.Const v, Expr.Col c)
    when c < Array.length t.histograms -> (
      let h = t.histograms.(c) in
      (* Flip the operator when the constant is on the left. *)
      let op =
        match expr with
        | Expr.Cmp (_, Expr.Const _, Expr.Col _) -> (
            match op with
            | Expr.Lt -> Expr.Gt
            | Expr.Le -> Expr.Ge
            | Expr.Gt -> Expr.Lt
            | Expr.Ge -> Expr.Le
            | Expr.Eq | Expr.Ne -> op)
        | _ -> op
      in
      match op with
      | Expr.Eq -> Histogram.selectivity_eq h v
      | Expr.Ne -> clamp01 (1.0 -. Histogram.selectivity_eq h v)
      | Expr.Lt | Expr.Le -> Histogram.selectivity_range h ~hi:v ()
      | Expr.Gt | Expr.Ge -> Histogram.selectivity_range h ~lo:v ())
  | Expr.Cmp (Expr.Eq, _, _) -> 0.1
  | Expr.Cmp ((Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.33
  | Expr.And es -> List.fold_left (fun acc e -> acc *. selectivity t e) 1.0 es
  | Expr.Or es ->
      (* Inclusion under independence: 1 - prod (1 - s_i). *)
      1.0 -. List.fold_left (fun acc e -> acc *. (1.0 -. selectivity t e)) 1.0 es
  | Expr.Not e -> clamp01 (1.0 -. selectivity t e)
  | Expr.Contains (Expr.Col c, kw) when c < Array.length t.samples -> contains_selectivity t c kw
  | Expr.Contains (_, _) -> 0.1
  | Expr.IsNull (Expr.Col c) when c < Array.length t.histograms ->
      let h = t.histograms.(c) in
      let tot = Histogram.total h + Histogram.null_count h in
      if tot = 0 then 0.0 else float_of_int (Histogram.null_count h) /. float_of_int tot
  | Expr.IsNull _ -> 0.01

let predicate_selectivity t _schema expr = clamp01 (selectivity t expr)

let join_selectivity ~left ~left_col ~right ~right_col =
  let dl = max 1 (distinct left left_col) and dr = max 1 (distinct right right_col) in
  1.0 /. float_of_int (max dl dr)

let avg_row_width t = t.avg_width
