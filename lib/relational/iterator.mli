(** Volcano-style physical operators, extended for Distinct Group Joins.

    Every operator implements the classic open/next/close protocol [17].
    Section 5.3 of the paper adds two properties for DGJ operators: they
    understand {e groups} of tuples (preserving group order from input to
    output) and they can skip the rest of the current group
    ([advanceToNextGroup]).  We bake both into the iterator signature:

    - [last_group ()] is the group id of the most recently returned tuple.
      Ungrouped operators report group [0] for every tuple; grouped sources
      assign increasing ids.
    - [advance_group ()] abandons any remaining tuples of the current group
      so the next [next ()] starts the following group.  On ungrouped
      operators it is a no-op.

    Operators also bump the global {!Counters} so tests and benchmarks can
    observe how much work early termination saves. *)

type t = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
  advance_group : unit -> unit;
  last_group : unit -> int;
}

(** Work counters, reset per query by the harness.  Counter cells resolve
    through a {e domain-local scope}: every domain shares one global cell
    set by default (increments are atomic, so operators running on worker
    domains never lose counts), but a domain can install a private cell
    set with [with_scope] — the serving tier gives each in-flight query
    its own, isolating concurrent queries' counts from one another.
    [reset]/[with_reset] act on the current domain's cell set and assume a
    {e single scoper} per cell set: [with_reset] calls nest but must never
    interleave across domains sharing cells. *)
module Counters : sig
  val reset : unit -> unit

  (** A reading of all counters (each read individually atomic). *)
  type snapshot = { tuples : int; index_probes : int; rows_scanned : int }

  (** [with_scope f] runs [f] against a {e fresh, private} cell set
      installed on the calling domain, returning [f]'s result and the work
      it performed.  Unlike {!with_reset}, nothing is added back to the
      surrounding scope — the two are fully isolated, which is what the
      concurrent serving tier needs for per-query counters.  The previous
      scope is restored even when [f] raises. *)
  val with_scope : (unit -> 'a) -> 'a * snapshot

  (** [with_reset f] runs [f] against zeroed counters and returns its result
      together with the work it performed.  The counts accumulated before
      the call are restored afterwards — with [f]'s work added on top, so an
      enclosing [with_reset] still observes everything.  Exception-safe
      ([Fun.protect]): prior values are restored even when [f] raises. *)
  val with_reset : (unit -> 'a) -> 'a * snapshot

  (** Tuples returned by any operator's [next]. *)
  val tuples : unit -> int

  (** Index probes performed. *)
  val index_probes : unit -> int

  (** Rows visited by sequential scans. *)
  val rows_scanned : unit -> int

  (**/**)

  val add_tuples : int -> unit

  val add_probes : int -> unit

  val add_scanned : int -> unit
end

(** [of_tuples schema tuples] is an ungrouped iterator over an array;
    convenient in tests. *)
val of_tuples : Schema.t -> Tuple.t array -> t

(** [to_list it] opens, drains and closes [it]. *)
val to_list : t -> Tuple.t list

(** [iter f it] opens, applies [f tuple group] to every tuple, closes. *)
val iter : (Tuple.t -> int -> unit) -> t -> unit

(** [count it] drains and counts. *)
val count : t -> int

(** [ungrouped ~schema ~open_ ~next ~close] fills in no-op group methods. *)
val ungrouped :
  schema:Schema.t -> open_:(unit -> unit) -> next:(unit -> Tuple.t option) -> close:(unit -> unit) -> t
