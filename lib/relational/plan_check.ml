type side = Left | Right

type kind =
  | Unknown_table of string
  | Unknown_index_column of { table : string; column : string }
  | Column_out_of_bounds of { what : string; pos : int; arity : int }
  | Key_arity_mismatch of { left : int; right : int }
  | Empty_join_key
  | Probe_key_arity_mismatch of { cols : int; key : int }
  | Not_sorted of { side : side; cols : int array }
  | Not_grouped
  | Type_mismatch of { context : string; detail : string }
  | Union_arity_mismatch of { left : int; right : int }
  | Negative_limit of int
  | Duplicate_columns of string
  | Kernel_disagreement of { checker : string option; lowering : string option }

type violation = { path : string list; node : string; kind : kind }

exception Plan_error of violation list

type props = { ordering : (int * bool) list; grouped : bool }

let bottom = { ordering = []; grouped = false }

let node_name : Physical.t -> string = function
  | Physical.Scan _ -> "Scan"
  | Physical.OrderedScan _ -> "OrderedScan"
  | Physical.IndexProbe _ -> "IndexProbe"
  | Physical.Filter _ -> "Filter"
  | Physical.Project _ -> "Project"
  | Physical.HashJoin _ -> "HashJoin"
  | Physical.MergeJoin _ -> "MergeJoin"
  | Physical.NLJoin _ -> "NLJoin"
  | Physical.IndexNL _ -> "IndexNL"
  | Physical.Idgj _ -> "IDGJ"
  | Physical.Hdgj _ -> "HDGJ"
  | Physical.Sort _ -> "Sort"
  | Physical.Distinct _ -> "Distinct"
  | Physical.Union _ -> "Union"
  | Physical.AntiJoin _ -> "AntiJoin"
  | Physical.SemiJoin _ -> "SemiJoin"
  | Physical.Limit _ -> "Limit"
  | Physical.Compute _ -> "Compute"
  | Physical.Aggregate _ -> "Aggregate"

let cols_str cols =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list cols)) ^ "]"

let kind_to_string = function
  | Unknown_table t -> Printf.sprintf "unknown table %s" t
  | Unknown_index_column { table; column } ->
      Printf.sprintf "table %s has no column %s (index key)" table column
  | Column_out_of_bounds { what; pos; arity } ->
      Printf.sprintf "%s references column %d but the input arity is %d" what pos arity
  | Key_arity_mismatch { left; right } ->
      Printf.sprintf "join key arity mismatch: %d left vs %d right columns" left right
  | Empty_join_key -> "equi-join has no key columns"
  | Probe_key_arity_mismatch { cols; key } ->
      Printf.sprintf "index probe supplies %d key values for %d indexed columns" key cols
  | Not_sorted { side; cols } ->
      Printf.sprintf "%s input not proven sorted ascending on %s"
        (match side with Left -> "left" | Right -> "right")
        (cols_str cols)
  | Not_grouped -> "DGJ outer input is not a grouped stream"
  | Type_mismatch { context; detail } -> Printf.sprintf "%s: %s" context detail
  | Union_arity_mismatch { left; right } ->
      Printf.sprintf "UNION of arity %d with arity %d" left right
  | Negative_limit n -> Printf.sprintf "negative LIMIT %d" n
  | Duplicate_columns msg -> "duplicate output columns: " ^ msg
  | Kernel_disagreement { checker; lowering } ->
      let opt = function Some k -> k | None -> "(none)" in
      Printf.sprintf "kernel eligibility drift: checker infers %s, lowering infers %s"
        (opt checker) (opt lowering)

let violation_to_string v =
  Printf.sprintf "%s at /%s: %s" v.node (String.concat "/" v.path) (kind_to_string v.kind)

let report vs = String.concat "\n" (List.map violation_to_string vs)

(* ------------------------------------------------------------------ *)

(* [Some ty] when the expression's type is known, [None] for Null literals
   and unresolvable references. *)
let expr_type emit schema ~what expr =
  let rec infer e =
    match e with
    | Expr.Col i ->
        let arity = Schema.arity schema in
        if i < 0 || i >= arity then begin
          emit (Column_out_of_bounds { what; pos = i; arity });
          None
        end
        else Some (Schema.column schema i).Schema.ty
    | Expr.Const Value.Null -> None
    | Expr.Const (Value.Int _) -> Some Schema.TInt
    | Expr.Const (Value.Float _) -> Some Schema.TFloat
    | Expr.Const (Value.Str _) -> Some Schema.TStr
    | Expr.Cmp (_, a, b) ->
        (match (infer a, infer b) with
        | Some Schema.TStr, Some (Schema.TInt | Schema.TFloat)
        | Some (Schema.TInt | Schema.TFloat), Some Schema.TStr ->
            emit
              (Type_mismatch
                 {
                   context = Printf.sprintf "%s %s" what (Expr.to_string e);
                   detail = "comparison mixes string and numeric operands";
                 })
        | _ -> ());
        Some Schema.TInt
    | Expr.And es | Expr.Or es ->
        List.iter (fun e -> ignore (infer e)) es;
        Some Schema.TInt
    | Expr.Not e | Expr.IsNull e ->
        ignore (infer e);
        Some Schema.TInt
    | Expr.Contains (operand, _) ->
        (match infer operand with
        | Some (Schema.TInt | Schema.TFloat) ->
            emit
              (Type_mismatch
                 {
                   context = Printf.sprintf "%s %s" what (Expr.to_string e);
                   detail = "ct() requires a string operand";
                 })
        | Some Schema.TStr | None -> ());
        Some Schema.TInt
  in
  infer expr

let numeric = function Schema.TInt | Schema.TFloat -> true | Schema.TStr -> false

let compatible a b = numeric a = numeric b

(* Is [cols] (ascending) a prefix of the proven [ordering]? *)
let sorted_on ordering cols =
  let rec prefix need have =
    match (need, have) with
    | [], _ -> true
    | n :: ns, h :: hs -> n = h && prefix ns hs
    | _ :: _, [] -> false
  in
  prefix (Array.to_list (Array.map (fun c -> (c, false)) cols)) ordering

(* Remap an ordering through a position substitution, truncating at the
   first column the substitution drops (anything past it is no longer a
   lexicographic prefix). *)
let remap_ordering ordering subst =
  let rec go = function
    | [] -> []
    | (c, d) :: rest -> ( match subst c with Some c' -> (c', d) :: go rest | None -> [])
  in
  go ordering

let scan_schema t alias =
  let s = Table.schema t in
  match alias with None -> s | Some a -> Schema.qualify a s

let verify catalog plan =
  let out = ref [] in
  let record rpath node kind = out := { path = List.rev rpath; node; kind } :: !out in
  let find_table rpath node name =
    match Catalog.find_opt catalog name with
    | Some t -> Some t
    | None ->
        record rpath node (Unknown_table name);
        None
  in
  (* Resolve named index/order columns against the table's base schema. *)
  let index_positions rpath node table cols =
    let schema = Table.schema table in
    let ok = ref true in
    let positions =
      List.map
        (fun c ->
          match Schema.index_opt schema c with
          | Some p -> p
          | None ->
              ok := false;
              record rpath node (Unknown_index_column { table = Table.name table; column = c });
              -1)
        cols
    in
    if !ok then Some positions else None
  in
  let check_expr rpath node ~what schema expr =
    ignore (expr_type (record rpath node) schema ~what expr)
  in
  let check_opt_expr rpath node ~what schema expr =
    match (schema, expr) with
    | Some schema, Some e -> check_expr rpath node ~what schema e
    | _ -> ()
  in
  (* Positional key array against a schema; returns the key column types
     (None entries where unknown). *)
  let key_types rpath node ~what schema cols =
    match schema with
    | None -> Array.map (fun _ -> None) cols
    | Some schema ->
        let arity = Schema.arity schema in
        Array.map
          (fun pos ->
            if pos < 0 || pos >= arity then begin
              record rpath node (Column_out_of_bounds { what; pos; arity });
              None
            end
            else Some (Schema.column schema pos).Schema.ty)
          cols
  in
  let check_key_pair rpath node ~lschema ~rschema ~left_cols ~right_cols =
    if Array.length left_cols <> Array.length right_cols then
      record rpath node
        (Key_arity_mismatch { left = Array.length left_cols; right = Array.length right_cols })
    else if Array.length left_cols = 0 then record rpath node Empty_join_key
    else begin
      let lt = key_types rpath node ~what:"left join key" lschema left_cols in
      let rt = key_types rpath node ~what:"right join key" rschema right_cols in
      Array.iteri
        (fun i t ->
          match (t, rt.(i)) with
          | Some a, Some b when not (compatible a b) ->
              record rpath node
                (Type_mismatch
                   {
                     context =
                       Printf.sprintf "join key #%d = #%d" left_cols.(i) right_cols.(i);
                     detail =
                       Printf.sprintf "%s column joined with %s column" (Schema.ty_to_string a)
                         (Schema.ty_to_string b);
                   })
          | _ -> ())
        lt
    end
  in
  let guarded_schema f = match f () with s -> Some s | exception Invalid_argument _ -> None in
  (* Independent re-derivation of kernel eligibility, compared against the
     lowering's {!Physical.kernel_site}.  The two must always agree; a
     mismatch means one of them drifted and the kernels could silently run
     (or not run) where the other layer believes otherwise. *)
  let check_kernel rpath node checker plan =
    let lowering = Physical.kernel_site catalog plan in
    if checker <> lowering then
      record rpath node
        (Kernel_disagreement
           {
             checker = Option.map Physical.kernel_name checker;
             lowering = Option.map Physical.kernel_name lowering;
           })
  in
  let col_ty schema pos =
    match schema with
    | Some s when pos >= 0 && pos < Schema.arity s -> Some (Schema.column s pos).Schema.ty
    | _ -> None
  in
  (* Bottom-up walk; returns the node's output schema (None when it cannot
     be derived) and its property-lattice value. *)
  let rec go rpath plan : Schema.t option * props =
    let node = node_name plan in
    let sub label child = go (label :: rpath) child in
    match plan with
    | Physical.Scan { table; alias; pred } -> (
        match find_table rpath node table with
        | None -> (None, bottom)
        | Some t ->
            Option.iter (check_expr rpath node ~what:"scan predicate" (Table.schema t)) pred;
            (Some (scan_schema t alias), bottom))
    | Physical.OrderedScan { table; alias; order_cols; desc; pred; grouped } -> (
        match find_table rpath node table with
        | None -> (None, bottom)
        | Some t ->
            Option.iter (check_expr rpath node ~what:"scan predicate" (Table.schema t)) pred;
            let ordering =
              match index_positions rpath node t order_cols with
              | Some ps -> List.map (fun p -> (p, desc)) ps
              | None -> []
            in
            (Some (scan_schema t alias), { ordering; grouped }))
    | Physical.IndexProbe { table; alias; cols; key; pred } -> (
        match find_table rpath node table with
        | None -> (None, bottom)
        | Some t ->
            Option.iter (check_expr rpath node ~what:"probe predicate" (Table.schema t)) pred;
            (match index_positions rpath node t cols with
            | None -> ()
            | Some ps ->
                if List.length ps <> Array.length key then
                  record rpath node
                    (Probe_key_arity_mismatch { cols = List.length ps; key = Array.length key })
                else
                  List.iteri
                    (fun i p ->
                      let col = Schema.column (Table.schema t) p in
                      let key_ty =
                        match key.(i) with
                        | Value.Null -> None
                        | Value.Int _ -> Some Schema.TInt
                        | Value.Float _ -> Some Schema.TFloat
                        | Value.Str _ -> Some Schema.TStr
                      in
                      match key_ty with
                      | Some kt when not (compatible kt col.Schema.ty) ->
                          record rpath node
                            (Type_mismatch
                               {
                                 context = Printf.sprintf "probe key for %s.%s" table col.Schema.name;
                                 detail =
                                   Printf.sprintf "%s key against %s column" (Schema.ty_to_string kt)
                                     (Schema.ty_to_string col.Schema.ty);
                               })
                      | _ -> ())
                    ps);
            (Some (scan_schema t alias), bottom))
    | Physical.Filter { input; pred } ->
        let schema, props = sub "input" input in
        Option.iter (fun s -> check_expr rpath node ~what:"filter predicate" s pred) schema;
        (schema, props)
    | Physical.Project { input; cols } -> (
        let schema, props = sub "input" input in
        match schema with
        | None -> (None, bottom)
        | Some s ->
            let arity = Schema.arity s in
            let ok = ref true in
            List.iter
              (fun pos ->
                if pos < 0 || pos >= arity then begin
                  ok := false;
                  record rpath node (Column_out_of_bounds { what = "Project column"; pos; arity })
                end)
              cols;
            if not !ok then (None, bottom)
            else
              let subst c =
                let rec find i = function
                  | [] -> None
                  | x :: rest -> if x = c then Some i else find (i + 1) rest
                in
                find 0 cols
              in
              ( guarded_schema (fun () -> Schema.project s cols),
                { ordering = remap_ordering props.ordering subst; grouped = props.grouped } ))
    | Physical.HashJoin { left; right; left_cols; right_cols; residual } ->
        let lschema, lprops = sub "left" left in
        let rschema, _ = sub "right" right in
        check_key_pair rpath node ~lschema ~rschema ~left_cols ~right_cols;
        let checker =
          match (left_cols, right_cols) with
          | [| lc |], [| rc |] -> (
              match (col_ty lschema lc, col_ty rschema rc) with
              | Some Schema.TInt, Some Schema.TInt ->
                  Some
                    (match left with
                    | Physical.Scan { pred = None; _ } -> Physical.Kernel_scan_hash_join
                    | _ -> Physical.Kernel_hash_join)
              | _ -> None)
          | _ -> None
        in
        check_kernel rpath node checker plan;
        let schema =
          match (lschema, rschema) with
          | Some a, Some b -> guarded_schema (fun () -> Schema.concat a b)
          | _ -> None
        in
        check_opt_expr rpath node ~what:"join residual" schema residual;
        (* Streaming probe: the outer (left) order survives. *)
        (schema, { ordering = lprops.ordering; grouped = false })
    | Physical.MergeJoin { left; right; left_cols; right_cols; residual } ->
        let lschema, lprops = sub "left" left in
        let rschema, rprops = sub "right" right in
        check_key_pair rpath node ~lschema ~rschema ~left_cols ~right_cols;
        if not (sorted_on lprops.ordering left_cols) then
          record rpath node (Not_sorted { side = Left; cols = left_cols });
        if not (sorted_on rprops.ordering right_cols) then
          record rpath node (Not_sorted { side = Right; cols = right_cols });
        let schema =
          match (lschema, rschema) with
          | Some a, Some b -> guarded_schema (fun () -> Schema.concat a b)
          | _ -> None
        in
        check_opt_expr rpath node ~what:"join residual" schema residual;
        (schema, { ordering = lprops.ordering; grouped = false })
    | Physical.NLJoin { left; right; residual } ->
        let lschema, lprops = sub "left" left in
        let rschema, _ = sub "right" right in
        let schema =
          match (lschema, rschema) with
          | Some a, Some b -> guarded_schema (fun () -> Schema.concat a b)
          | _ -> None
        in
        check_opt_expr rpath node ~what:"join residual" schema residual;
        (schema, { ordering = lprops.ordering; grouped = false })
    | Physical.IndexNL { left; table; alias; table_cols; left_cols; pred; residual }
    | Physical.Idgj { left; table; alias; table_cols; left_cols; pred; residual }
    | Physical.Hdgj { left; table; alias; table_cols; left_cols; pred; residual } ->
        let is_dgj = match plan with Physical.IndexNL _ -> false | _ -> true in
        let lschema, lprops = sub "left" left in
        let schema, inner_types =
          match find_table rpath node table with
          | None -> (None, None)
          | Some t ->
              Option.iter (check_expr rpath node ~what:"inner predicate" (Table.schema t)) pred;
              let types =
                match index_positions rpath node t table_cols with
                | None -> None
                | Some ps ->
                    Some
                      (List.map (fun p -> (Schema.column (Table.schema t) p).Schema.ty) ps)
              in
              let schema =
                match lschema with
                | Some l -> guarded_schema (fun () -> Schema.concat l (scan_schema t alias))
                | None -> None
              in
              (schema, types)
        in
        (match inner_types with
        | Some tys when List.length tys <> Array.length left_cols ->
            record rpath node
              (Key_arity_mismatch { left = Array.length left_cols; right = List.length tys })
        | _ -> ());
        let lt = key_types rpath node ~what:"outer join key" lschema left_cols in
        (match inner_types with
        | Some tys when List.length tys = Array.length left_cols ->
            List.iteri
              (fun i ty ->
                match lt.(i) with
                | Some a when not (compatible a ty) ->
                    record rpath node
                      (Type_mismatch
                         {
                           context =
                             Printf.sprintf "join key #%d = %s.%s" left_cols.(i) table
                               (List.nth table_cols i);
                           detail =
                             Printf.sprintf "%s column joined with %s column" (Schema.ty_to_string a)
                               (Schema.ty_to_string ty);
                         })
                | _ -> ())
              tys
        | _ -> ());
        check_opt_expr rpath node ~what:"join residual" schema residual;
        let checker =
          match plan with
          | Physical.Hdgj _ -> None
          | _ -> (
              match (table_cols, inner_types) with
              | [ _ ], Some [ Schema.TInt ]
                when Array.length left_cols = 1 && lt.(0) = Some Schema.TInt ->
                  Some
                    (match plan with
                    | Physical.IndexNL _ -> Physical.Kernel_index_nl
                    | _ -> Physical.Kernel_idgj)
              | _ -> None)
        in
        check_kernel rpath node checker plan;
        if is_dgj && not lprops.grouped then record rpath node Not_grouped;
        (* Nested loops preserve the outer order; DGJ operators additionally
           preserve groups (Section 5.3 property (a)). *)
        (schema, { ordering = lprops.ordering; grouped = is_dgj })
    | Physical.Sort { input; by } -> (
        let schema, _ = sub "input" input in
        match schema with
        | None -> (None, bottom)
        | Some s ->
            let arity = Schema.arity s in
            List.iter
              (fun (pos, _) ->
                if pos < 0 || pos >= arity then
                  record rpath node (Column_out_of_bounds { what = "Sort key"; pos; arity }))
              by;
            (Some s, { ordering = by; grouped = false }))
    | Physical.Distinct input ->
        (* Hash distinct passes tuples through in arrival order. *)
        let schema, props = sub "input" input in
        (schema, { ordering = props.ordering; grouped = false })
    | Physical.Union (a, b) ->
        let aschema, _ = sub "left" a in
        let bschema, _ = sub "right" b in
        (match (aschema, bschema) with
        | Some sa, Some sb ->
            if Schema.arity sa <> Schema.arity sb then
              record rpath node
                (Union_arity_mismatch { left = Schema.arity sa; right = Schema.arity sb })
            else
              Array.iteri
                (fun i (ca : Schema.column) ->
                  let cb = Schema.column sb i in
                  if not (compatible ca.Schema.ty cb.Schema.ty) then
                    record rpath node
                      (Type_mismatch
                         {
                           context = Printf.sprintf "UNION column %d" i;
                           detail =
                             Printf.sprintf "%s with %s" (Schema.ty_to_string ca.Schema.ty)
                               (Schema.ty_to_string cb.Schema.ty);
                         }))
                (Schema.columns sa)
        | _ -> ());
        ((match aschema with Some _ -> aschema | None -> bschema), bottom)
    | Physical.AntiJoin { left; right; left_cols; right_cols }
    | Physical.SemiJoin { left; right; left_cols; right_cols } ->
        let lschema, lprops = sub "left" left in
        let rschema, _ = sub "right" right in
        check_key_pair rpath node ~lschema ~rschema ~left_cols ~right_cols;
        (* Membership pass: left tuples stream through in order. *)
        (lschema, { ordering = lprops.ordering; grouped = false })
    | Physical.Limit (n, input) ->
        if n < 0 then record rpath node (Negative_limit n);
        sub "input" input
    | Physical.Compute { input; items } ->
        let schema, props = sub "input" input in
        List.iter
          (fun (e, name, declared) ->
            match schema with
            | None -> ()
            | Some s -> (
                match
                  expr_type (record rpath node) s
                    ~what:(Printf.sprintf "Compute item %s" name)
                    e
                with
                | Some inferred when not (compatible inferred declared) ->
                    record rpath node
                      (Type_mismatch
                         {
                           context = Printf.sprintf "Compute item %s" name;
                           detail =
                             Printf.sprintf "declared %s but the expression is %s"
                               (Schema.ty_to_string declared) (Schema.ty_to_string inferred);
                         })
                | _ -> ()))
          items;
        let out_schema =
          guarded_schema (fun () ->
              Schema.make (List.map (fun (_, name, ty) -> { Schema.name; ty }) items))
        in
        (match out_schema with
        | None ->
            record rpath node
              (Duplicate_columns
                 (String.concat ", " (List.map (fun (_, name, _) -> name) items)))
        | Some _ -> ());
        (* Items that are plain column references keep their order. *)
        let subst c =
          let rec find i = function
            | [] -> None
            | (Expr.Col c', _, _) :: rest -> if c' = c then Some i else find (i + 1) rest
            | _ :: rest -> find (i + 1) rest
          in
          find 0 items
        in
        (out_schema, { ordering = remap_ordering props.ordering subst; grouped = props.grouped })
    | Physical.Aggregate { input; keys; aggs } ->
        let schema, _ = sub "input" input in
        (match schema with
        | None -> ()
        | Some s ->
            List.iter
              (fun (e, name, _) ->
                ignore
                  (expr_type (record rpath node) s ~what:(Printf.sprintf "group key %s" name) e))
              keys;
            List.iter
              (fun (kind, arg, name, _) ->
                match arg with
                | None -> ()
                | Some e -> (
                    let t =
                      expr_type (record rpath node) s ~what:(Printf.sprintf "aggregate %s" name) e
                    in
                    match (kind, t) with
                    | (Physical.Sum | Physical.Avg), Some Schema.TStr ->
                        record rpath node
                          (Type_mismatch
                             {
                               context = Printf.sprintf "aggregate %s" name;
                               detail = "SUM/AVG over a string expression";
                             })
                    | _ -> ()))
              aggs);
        let out_schema =
          guarded_schema (fun () ->
              Schema.make
                (List.map (fun (_, name, ty) -> { Schema.name; ty }) keys
                @ List.map (fun (_, _, name, ty) -> { Schema.name; ty }) aggs))
        in
        (match out_schema with
        | None ->
            record rpath node
              (Duplicate_columns
                 (String.concat ", "
                    (List.map (fun (_, name, _) -> name) keys
                    @ List.map (fun (_, _, name, _) -> name) aggs)))
        | Some _ -> ());
        (out_schema, bottom)
  in
  ignore (go [] plan);
  List.rev !out

let check catalog plan =
  match verify catalog plan with [] -> () | vs -> raise (Plan_error vs)

let kernel_sites catalog plan =
  let out = ref [] in
  let rec go rpath node =
    (match Physical.kernel_site catalog node with
    | Some k -> out := (List.rev rpath, Physical.kernel_name k) :: !out
    | None -> ());
    match Physical.children node with
    | [] -> ()
    | [ input ] -> go ("input" :: rpath) input
    | [ left; right ] ->
        go ("left" :: rpath) left;
        go ("right" :: rpath) right
    | many -> List.iteri (fun i c -> go (string_of_int i :: rpath) c) many
  in
  go [] plan;
  List.rev !out

let properties catalog plan =
  (* Re-run the walk and keep only the root's lattice value; violations are
     discarded. *)
  let rec props plan =
    match plan with
    | Physical.Scan _ | Physical.IndexProbe _ -> bottom
    | Physical.OrderedScan { table; order_cols; desc; grouped; _ } -> (
        match Catalog.find_opt catalog table with
        | None -> bottom
        | Some t ->
            let schema = Table.schema t in
            let ordering =
              List.filter_map
                (fun c -> Option.map (fun p -> (p, desc)) (Schema.index_opt schema c))
                order_cols
            in
            let ordering = if List.length ordering = List.length order_cols then ordering else [] in
            { ordering; grouped })
    | Physical.Filter { input; _ } | Physical.Limit (_, input) -> props input
    | Physical.Project { input; cols } ->
        let p = props input in
        let subst c =
          let rec find i = function
            | [] -> None
            | x :: rest -> if x = c then Some i else find (i + 1) rest
          in
          find 0 cols
        in
        { ordering = remap_ordering p.ordering subst; grouped = p.grouped }
    | Physical.HashJoin { left; _ }
    | Physical.MergeJoin { left; _ }
    | Physical.NLJoin { left; _ }
    | Physical.IndexNL { left; _ } ->
        { ordering = (props left).ordering; grouped = false }
    | Physical.Idgj { left; _ } | Physical.Hdgj { left; _ } ->
        { ordering = (props left).ordering; grouped = true }
    | Physical.Sort { by; _ } -> { ordering = by; grouped = false }
    | Physical.Distinct input -> { ordering = (props input).ordering; grouped = false }
    | Physical.AntiJoin { left; _ } | Physical.SemiJoin { left; _ } ->
        { ordering = (props left).ordering; grouped = false }
    | Physical.Union _ | Physical.Aggregate _ -> bottom
    | Physical.Compute { input; items } ->
        let p = props input in
        let subst c =
          let rec find i = function
            | [] -> None
            | (Expr.Col c', _, _) :: rest -> if c' = c then Some i else find (i + 1) rest
            | _ :: rest -> find (i + 1) rest
          in
          find 0 items
        in
        { ordering = remap_ordering p.ordering subst; grouped = p.grouped }
  in
  props plan
