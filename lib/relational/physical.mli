(** Physical query plans.

    A plan is a tree of physical operators that {!lower} turns into a
    Volcano iterator against a catalog.  Column references inside plans are
    positional against the node's input schema(s); {!schema} computes output
    schemas bottom-up (scans with an alias expose qualified column names
    like ["P.ID"]). *)

type t =
  | Scan of { table : string; alias : string option; pred : Expr.t option }
  | OrderedScan of {
      table : string;
      alias : string option;
      order_cols : string list;
      desc : bool;
      pred : Expr.t option;
      grouped : bool;  (** each tuple forms a group (DGJ group source) *)
    }
  | IndexProbe of { table : string; alias : string option; cols : string list; key : Value.t array; pred : Expr.t option }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; cols : int list }
  | HashJoin of { left : t; right : t; left_cols : int array; right_cols : int array; residual : Expr.t option }
  | MergeJoin of { left : t; right : t; left_cols : int array; right_cols : int array; residual : Expr.t option }
      (** both inputs must be sorted ascending on their key columns *)
  | NLJoin of { left : t; right : t; residual : Expr.t option }
  | IndexNL of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Idgj of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Hdgj of {
      left : t;
      table : string;
      alias : string option;
      table_cols : string list;
      left_cols : int array;
      pred : Expr.t option;
      residual : Expr.t option;
    }
  | Sort of { input : t; by : (int * bool) list }
  | Distinct of t
  | Union of t * t
  | AntiJoin of { left : t; right : t; left_cols : int array; right_cols : int array }
  | SemiJoin of { left : t; right : t; left_cols : int array; right_cols : int array }
  | Limit of int * t
  | Compute of { input : t; items : (Expr.t * string * Schema.ty) list }
      (** generalized projection: each output column is an expression over
          the input tuple, with a name and a declared type *)
  | Aggregate of {
      input : t;
      keys : (Expr.t * string * Schema.ty) list;  (** group-by keys *)
      aggs : (agg_kind * Expr.t option * string * Schema.ty) list;
          (** aggregate functions; output columns are keys then aggs *)
    }

and agg_kind = Count_star | Count | Sum | Min | Max | Avg

(** [schema catalog plan] is the output schema. @raise Not_found for unknown
    tables. *)
val schema : Catalog.t -> t -> Schema.t

(** [node_label plan] is the root operator's display label, e.g.
    ["HashJoin"] or ["SeqScan Protein"]. *)
val node_label : t -> string

(** [children plan] is the root's direct inputs, left before right; leaves
    (scans and probes) have none. *)
val children : t -> t list

(** Which int-specialized kernel ({!Op_kernel}) a node is eligible for:
    [Kernel_scan_hash_join] fuses a predicate-free scan probe into the
    join. *)
type kernel = Kernel_scan_hash_join | Kernel_hash_join | Kernel_index_nl | Kernel_idgj

val kernel_name : kernel -> string

(** [kernel_site catalog plan] is the root node's static kernel
    eligibility: single-column equi-join keys, declared int on both sides.
    The lowering re-checks the actual lanes at runtime and falls back to
    the generic operator when the declared type was a lie, so a [Some]
    here promises identical results either way, not that the kernel runs.
    {!Plan_check.verify} cross-checks its own inference against this. *)
val kernel_site : Catalog.t -> t -> kernel option

(** [estimate_rows catalog plan] is a structural output-cardinality bound
    (scan row counts through order/limit-preserving shapes), used to
    pre-size join hash tables.  [None] when the shape admits no cheap
    bound. *)
val estimate_rows : Catalog.t -> t -> int option

(** [lower catalog plan] builds the iterator tree. *)
val lower : Catalog.t -> t -> Iterator.t

(** [lower_checked catalog plan] is {!lower} with every operator wrapped in
    {!Iterator_check.wrap}, so protocol misuse raises
    {!Iterator_check.Protocol_error} at the offending node.  Debug/test
    use. *)
val lower_checked : Catalog.t -> t -> Iterator.t

(** [lower_instrumented catalog plan] is {!lower} with every operator
    wrapped in {!Op_stats.wrap}; the returned tree mirrors the plan
    ({!children} order) and fills in as the iterator is driven.  Powers
    EXPLAIN ANALYZE ([Topo_obs.Explain_analyze]). *)
val lower_instrumented : Catalog.t -> t -> Iterator.t * Op_stats.annotated

(** [run catalog plan] lowers and drains to a tuple list. *)
val run : Catalog.t -> t -> Tuple.t list

(** [explain plan] is an indented operator-tree rendering, one operator per
    line, like the plans of Figure 14/15. *)
val explain : t -> string
