(** Distinct Group Join operators (Section 5.3).

    A DGJ operator joins a {e grouped} outer stream with an inner relation
    while (a) preserving the order of groups from input to output and
    (b) supporting [advance_group] so a consumer can abandon the rest of a
    group the moment one witness tuple has been produced — the mechanism
    behind the Fast-Top-k-ET early-termination plans of Figure 15.

    Two implementations, as in the paper:

    - {b IDGJ} — index nested-loops: group order is preserved because any
      nested-loops join preserves the outer order; [advance_group] simply
      discards the current probe state and propagates to the outer.
    - {b HDGJ} — hash-based: the join is performed one group at a time (the
      group's outer tuples are hashed, then the inner relation is
      re-scanned for each group), which preserves group order at the price
      of repeated inner scans.

    Both output [outer ++ inner] tuples tagged with the outer group id. *)

(** [idgj ~outer ~table ~table_cols ~outer_cols ?pred ?residual ?int_probe ()]
    index nested-loop DGJ against a base table: for each outer tuple, probe
    the hash index on [table_cols] with the outer tuple's [outer_cols]
    values; [pred] filters inner rows, [residual] the joined tuple.
    [int_probe] (the table's {!Table.int_index} on the single join column,
    supplied by the lowering when the kernels apply) replaces the generic
    index probe with an allocation-free {!Int_table} chain walk — same
    buckets, same order, same counters. *)
val idgj :
  outer:Iterator.t ->
  table:Table.t ->
  table_cols:string list ->
  outer_cols:int array ->
  ?pred:Expr.t ->
  ?residual:Expr.t ->
  ?int_probe:Int_table.t ->
  unit ->
  Iterator.t

(** [hdgj ~outer ~table ~table_cols ~outer_cols ?pred ?residual ()]
    hash-based DGJ: collects one whole group of outer tuples, builds a hash
    table on their [outer_cols], then scans [table] (filtered by [pred])
    probing it, emitting matches in inner-scan order.  The inner relation is
    re-scanned once per group. *)
val hdgj :
  outer:Iterator.t ->
  table:Table.t ->
  table_cols:string list ->
  outer_cols:int array ->
  ?pred:Expr.t ->
  ?residual:Expr.t ->
  unit ->
  Iterator.t

(** [first_match_per_group it ~k] drives a DGJ stack the way the
    Fast-Top-k-ET evaluator does: reads tuples, and on the first tuple of
    each group records it, immediately calls [advance_group], and stops
    after [k] groups have produced a witness.  Returns the witnesses with
    their group ids, in group order. *)
val first_match_per_group : Iterator.t -> k:int -> (int * Tuple.t) list
