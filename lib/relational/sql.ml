let to_plan ?(check = true) catalog text =
  let plan = Sql_binder.plan catalog (Sql_parser.parse text) in
  if check then Plan_check.check catalog plan;
  plan

let query ?check catalog text =
  let plan = to_plan ?check catalog text in
  (Physical.schema catalog plan, Physical.run catalog plan)

let explain ?check catalog text = Physical.explain (to_plan ?check catalog text)

let query_instrumented ?check catalog text =
  let plan = to_plan ?check catalog text in
  let it, stats = Physical.lower_instrumented catalog plan in
  (Physical.schema catalog plan, Iterator.to_list it, stats)

let render ?check catalog text =
  let schema, rows = query ?check catalog text in
  let header = Array.to_list (Array.map (fun (c : Schema.column) -> c.Schema.name) (Schema.columns schema)) in
  let body =
    List.map (fun tuple -> Array.to_list (Array.map Value.to_string tuple)) rows
  in
  Topo_util.Pretty.render ~header body

let lint catalog text = Plan_check.verify catalog (to_plan ~check:false catalog text)
