(* toposearch — command-line interface to the topology search engine.

   Subcommands:
     demo        the paper's Figure 3 example end to end
     query       run a 2-query over a synthetic Biozon instance
     topologies  list a pair's topologies ranked by a scheme
     schema      show the Biozon schema and schema paths between two types
     enumerate   count all possible topologies between two types (Sec 3.1)
     sql         evaluate a SQL query over the generated instance
     check       lint SQL queries with the physical-plan verifier
     explain     show a query's plan with estimates; --analyze executes it
                 instrumented and prints estimate-vs-actual per operator
     profile     run a query method under a trace and print the span tree
     serve       evaluate a batch of queries concurrently across domains
                 (the online serving tier) *)

open Cmdliner
module Engine = Topo_core.Engine
module Query = Topo_core.Query
module Ranking = Topo_core.Ranking
module Nquery = Topo_core.Nquery
module Snapshot = Topo_core.Snapshot
module Obs = Topo_obs

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let scale_arg =
  Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"F" ~doc:"Scale of the synthetic Biozon instance.")

let seed_arg = Arg.(value & opt int 20070415 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let l_arg = Arg.(value & opt int 3 & info [ "l"; "max-len" ] ~docv:"N" ~doc:"Maximum path length (the paper's l).")

let threshold_arg =
  Arg.(value & opt int 25 & info [ "pruning-threshold" ] ~docv:"N" ~doc:"Fast-Top pruning threshold.")

let t1_arg = Arg.(value & opt string "Protein" & info [ "t1" ] ~docv:"ENTITY" ~doc:"First entity set.")

let t2_arg = Arg.(value & opt string "DNA" & info [ "t2" ] ~docv:"ENTITY" ~doc:"Second entity set.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for the offline build (default: the machine's recommended domain count, capped \
           at 8).  Results are bit-identical for every value.")

let make_instance scale seed =
  Biozon.Generator.generate
    (Biozon.Generator.scale scale { Biozon.Generator.default with Biozon.Generator.seed = seed })

let build_engine catalog ~t1 ~t2 ~l ~threshold =
  Engine.build catalog ~pairs:[ (t1, t2) ] ~l ~pruning_threshold:threshold ()

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Boot from a snapshot written by $(b,build -o) instead of generating the instance and \
           re-running the offline sweep.  $(b,--scale)/$(b,--seed)/$(b,--l)/$(b,--pruning-threshold) \
           are ignored; the snapshot carries its build configuration.")

let load_snapshot path =
  match Snapshot.load path with
  | engine -> engine
  | exception Snapshot.Error msg ->
      prerr_endline msg;
      exit 2

(* Either rebuild from scratch or boot from a snapshot; every online
   subcommand goes through here. *)
let engine_of ~snapshot ~scale ~seed ~l ~threshold ~t1 ~t2 =
  match snapshot with
  | Some path -> load_snapshot path
  | None ->
      let catalog = make_instance scale seed in
      build_engine catalog ~t1 ~t2 ~l ~threshold

(* ------------------------------------------------------------------ *)
(* demo                                                                 *)

let demo () =
  let catalog = Biozon.Paper_db.catalog () in
  let engine = Engine.build catalog ~pairs:[ ("Protein", "DNA") ] ~pruning_threshold:50 () in
  let q = Query.q1 catalog in
  Printf.printf "database: Figure 3 of the paper (4 proteins, 3 DNAs, 4 Unigene clusters)\n";
  Printf.printf "query: %s\n\n" (Query.to_string q);
  let r = Engine.run engine q ~method_:Engine.Full_top () in
  List.iter
    (fun (tid, _) -> Printf.printf "TID %d: %s\n" tid (Engine.describe engine tid))
    r.Engine.ranked;
  Printf.printf "\n(these are the paper's four results T1-T4: the encodes path, the P-U-D path,\n";
  Printf.printf "and the two complex topologies of the pair (78, 215))\n";
  0

let demo_cmd = Cmd.v (Cmd.info "demo" ~doc:"Run the paper's worked example.") Term.(const demo $ const ())

(* ------------------------------------------------------------------ *)
(* build                                                                *)

let pair_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] when a <> "" && b <> "" -> Ok (a, b)
    | _ -> Error (`Msg (Printf.sprintf "bad pair %S (expected T1:T2, e.g. Protein:DNA)" s))
  in
  let print fmt (a, b) = Format.fprintf fmt "%s:%s" a b in
  Arg.conv (parse, print)

let build_run scale seed l threshold jobs pairs output shards =
  let pairs = if pairs = [] then [ ("Protein", "DNA"); ("Protein", "Interaction") ] else pairs in
  let catalog = make_instance scale seed in
  let t0 = Unix.gettimeofday () in
  let engine = Engine.build catalog ~pairs ~l ~pruning_threshold:threshold ?jobs () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "offline build: %d pair(s), l=%d, jobs=%d (recommended domains: %d)\n\n"
    (List.length pairs) l engine.Engine.jobs
    (Domain.recommended_domain_count ());
  List.iter
    (fun (t1, t2, (s : Topo_core.Compute.stats)) ->
      Printf.printf "%s-%s:\n" t1 t2;
      Printf.printf "  schema paths   %d\n" s.Topo_core.Compute.schema_paths;
      Printf.printf "  instance paths %d\n" s.Topo_core.Compute.instance_paths;
      Printf.printf "  connected pairs %d\n" s.Topo_core.Compute.pairs;
      Printf.printf "  unions         %d\n" s.Topo_core.Compute.unions;
      if s.Topo_core.Compute.capped_pairs > 0 then
        Printf.printf "  capped pairs   %d\n" s.Topo_core.Compute.capped_pairs)
    engine.Engine.build_stats;
  Printf.printf "\n%d distinct topologies registered\n"
    (Topo_core.Topology.count engine.Engine.ctx.Topo_core.Context.registry);
  Printf.printf "built in %.3fs\n" elapsed;
  match (output, shards) with
  | None, 1 -> 0
  | None, _ ->
      prerr_endline "--shards needs -o DIR: sliced snapshots must be written somewhere";
      2
  | Some _, n when n < 1 ->
      Printf.eprintf "--shards must be >= 1, got %d\n" n;
      2
  | Some path, 1 -> (
      match Snapshot.save engine ~path with
      | bytes ->
          Printf.printf "snapshot: %s (%d bytes, format v%d, fingerprint %s)\n" path bytes
            Snapshot.version (Engine.fingerprint engine);
          0
      | exception Snapshot.Error msg ->
          prerr_endline msg;
          2)
  | Some dir, shards -> (
      match Snapshot.save_sharded engine ~dir ~shards with
      | manifest, bytes ->
          Printf.printf "sharded snapshot: %s (%d shard(s), %d bytes total, format v%d)\n" dir
            shards bytes Snapshot.version;
          List.iter
            (fun (t1, t2, k) -> Printf.printf "  %s-%s -> shard %d\n" t1 t2 k)
            manifest.Snapshot.pairs;
          0
      | exception Snapshot.Error msg ->
          prerr_endline msg;
          2)

let build_cmd =
  let pairs =
    Arg.(
      value & opt_all pair_conv []
      & info [ "pair" ] ~docv:"T1:T2"
          ~doc:"Entity-set pair to precompute (repeatable; default Protein:DNA and Protein:Interaction).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Persist the build as a versioned binary snapshot that $(b,serve --snapshot), \
             $(b,check --snapshot) and $(b,explain --snapshot) can boot from without re-running \
             the generator or the sweep.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "With $(b,-o DIR): slice the snapshot into $(docv) pair-partitioned shards \
             ($(b,shard-K.snap) plus a $(b,manifest)), each loadable by $(b,toposearch shard) and \
             routed over by $(b,toposearch route).")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Run the offline phase only: topology computation for each requested pair, in parallel \
          across $(b,--jobs) domains, printing per-pair sweep statistics.  With $(b,-o FILE), \
          persist the result as a snapshot for instant cold starts; add $(b,--shards N) to write \
          pair-partitioned slices for the distributed serving tier.")
    Term.(
      const build_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ jobs_arg $ pairs $ output
      $ shards)

(* ------------------------------------------------------------------ *)
(* query                                                                *)

let method_conv =
  let parse s =
    match
      List.find_opt (fun m -> String.lowercase_ascii (Engine.method_name m) = String.lowercase_ascii s) Engine.all_methods
    with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown method %s (try %s)" s
                       (String.concat ", " (List.map Engine.method_name Engine.all_methods))))
  in
  let print fmt m = Format.pp_print_string fmt (Engine.method_name m) in
  Arg.conv (parse, print)

let scheme_conv =
  let parse s = match Ranking.of_name s with r -> Ok r | exception Invalid_argument _ -> Error (`Msg ("unknown scheme " ^ s)) in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Ranking.name s))

let query_run scale seed l threshold t1 t2 kw1 kw2 dna_type method_ scheme k instances =
  let catalog = make_instance scale seed in
  let engine = build_engine catalog ~t1 ~t2 ~l ~threshold in
  let endpoint entity kw extra_type =
    let base =
      match kw with
      | Some kw -> Query.keyword catalog entity ~col:"desc" ~kw
      | None -> Query.endpoint catalog entity
    in
    match extra_type with
    | Some ty when entity = "DNA" ->
        Query.conj base (Query.equals catalog entity ~col:"type" ~value:(Topo_sql.Value.Str ty))
    | _ -> base
  in
  let q = Query.make (endpoint t1 kw1 None) (endpoint t2 kw2 dna_type) in
  Printf.printf "query: %s\nmethod: %s, scheme: %s, k: %d\n\n" (Query.to_string q)
    (Engine.method_name method_) (Ranking.name scheme) k;
  (* The canonical request/outcome path: same machinery the serving tier
     uses, one request at a time. *)
  let outcome = Engine.run_request engine (Topo_core.Request.make ~scheme ~k method_ q) in
  let r =
    match outcome.Topo_core.Request.result with
    | Topo_core.Request.Done r | Topo_core.Request.Partial r -> r
    | Topo_core.Request.Failed e -> raise e
    | Topo_core.Request.Rejected rj ->
        failwith ("request rejected: " ^ Topo_core.Request.rejection_name rj)
  in
  if instances then Topo_core.Report.print engine q r ()
  else
    List.iteri
      (fun i (tid, score) ->
        let score_str = match score with Some s -> Printf.sprintf " [score %.3g]" s | None -> "" in
        Printf.printf "%2d. TID %d%s\n    %s\n" (i + 1) tid score_str (Engine.describe engine tid))
      r.Engine.ranked;
  Printf.printf "\n%d result(s) in %.1fms\n" (List.length r.Engine.ranked) (r.Engine.elapsed_s *. 1000.0);
  (match r.Engine.strategy with
  | Some Topo_sql.Optimizer.Regular -> print_endline "optimizer chose: regular plan"
  | Some Topo_sql.Optimizer.Early_termination -> print_endline "optimizer chose: DGJ early-termination plan"
  | None -> ());
  0

let query_cmd =
  let kw1 = Arg.(value & opt (some string) None & info [ "kw1" ] ~docv:"WORD" ~doc:"Keyword constraint on $(b,t1)'s description.") in
  let kw2 = Arg.(value & opt (some string) None & info [ "kw2" ] ~docv:"WORD" ~doc:"Keyword constraint on $(b,t2)'s description.") in
  let dna_type = Arg.(value & opt (some string) None & info [ "dna-type" ] ~docv:"TYPE" ~doc:"Equality constraint on DNA.type (mRNA, EST, genomic).") in
  let method_ = Arg.(value & opt method_conv Engine.Fast_top_k_opt & info [ "method" ] ~docv:"M" ~doc:"Evaluation method (paper names, e.g. Fast-Top-k-ET).") in
  let scheme = Arg.(value & opt scheme_conv Ranking.Domain & info [ "scheme" ] ~docv:"S" ~doc:"Ranking scheme: Freq, Rare or Domain.") in
  let k = Arg.(value & opt int 10 & info [ "topk"; "n" ] ~docv:"N" ~doc:"Number of results for top-k methods.") in
  let instances = Arg.(value & flag & info [ "instances" ] ~doc:"Show instance pairs and witnesses per topology (the Figure 5 presentation).") in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a topology query over a synthetic Biozon instance.")
    Term.(
      const query_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg $ kw1 $ kw2
      $ dna_type $ method_ $ scheme $ k $ instances)

(* ------------------------------------------------------------------ *)
(* topologies                                                           *)

let topologies_run scale seed l threshold t1 t2 n =
  let catalog = make_instance scale seed in
  let engine = build_engine catalog ~t1 ~t2 ~l ~threshold in
  let store = Engine.store engine ~t1 ~t2 in
  let top = Topo_core.Analysis.top_frequent store ~n in
  Printf.printf "%s-%s %d-topologies by frequency (showing %d):\n\n" t1 t2 l (List.length top);
  List.iteri
    (fun i (tid, freq) ->
      Printf.printf "%2d. TID %-4d freq %-6d %s\n" (i + 1) tid freq (Engine.describe engine tid))
    top;
  let series = Topo_core.Analysis.frequency_series store in
  let s, r2 = Topo_core.Analysis.zipf_fit series in
  Printf.printf "\n%d topologies total; frequency ~ rank^-%.2f (R^2 %.2f)\n" (Array.length series) s r2;
  0

let topologies_cmd =
  let n = Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"How many to show.") in
  Cmd.v
    (Cmd.info "topologies" ~doc:"List the topologies of an entity-set pair.")
    Term.(const topologies_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg $ n)

(* ------------------------------------------------------------------ *)
(* schema                                                               *)

let schema_run t1 t2 l =
  let schema = Biozon.Bschema.schema_graph () in
  print_endline "entity sets:";
  List.iter (fun e -> Printf.printf "  %s\n" e) (Topo_graph.Schema_graph.entities schema);
  print_endline "relationship sets:";
  List.iter
    (fun (name, from_, to_) -> Printf.printf "  %-16s %s -- %s\n" name from_ to_)
    (Topo_graph.Schema_graph.relationships schema);
  let paths = Topo_graph.Schema_graph.paths schema ~from_:t1 ~to_:t2 ~max_len:l in
  Printf.printf "\nschema paths %s .. %s of length <= %d: %d\n" t1 t2 l (List.length paths);
  List.iter
    (fun p ->
      Printf.printf "  [%s] %s\n"
        (if Topo_core.Weak.is_weak_path p then "weak" else " ok ")
        (Topo_graph.Schema_graph.path_to_string p))
    paths;
  0

let schema_cmd =
  Cmd.v
    (Cmd.info "schema" ~doc:"Show the Biozon schema and the schema paths between two entity sets.")
    Term.(const schema_run $ t1_arg $ t2_arg $ l_arg)

(* ------------------------------------------------------------------ *)
(* enumerate                                                            *)

let enumerate_run t1 t2 l show =
  let schema = Biozon.Bschema.schema_graph () in
  let interner = Topo_util.Interner.create () in
  let r = Topo_graph.Glue.enumerate interner schema ~from_:t1 ~to_:t2 ~max_len:l ~collect:(show > 0) () in
  Printf.printf "possible %d-topologies between %s and %s:\n" l t1 t2;
  Printf.printf "  (subset x gluing) combinations: %d%s\n" r.Topo_graph.Glue.gluings_examined
    (if r.Topo_graph.Glue.truncated then " (truncated)" else "");
  Printf.printf "  distinct topology graphs:       %d\n" r.Topo_graph.Glue.count;
  List.iteri
    (fun i (g, _) ->
      if i < show then
        Printf.printf "  (%d) %s\n" (i + 1)
          (Topo_graph.Lgraph.to_string ~node_name:(Topo_util.Interner.name interner)
             ~edge_name:(Topo_util.Interner.name interner) g))
    r.Topo_graph.Glue.topologies;
  0

let enumerate_cmd =
  let show = Arg.(value & opt int 0 & info [ "show" ] ~docv:"N" ~doc:"Print the first N graphs.") in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Count all possible topologies between two entity sets (Section 3.1).")
    Term.(const enumerate_run $ t1_arg $ t2_arg $ l_arg $ show)

(* ------------------------------------------------------------------ *)
(* sql                                                                  *)

let sql_run scale seed l threshold t1 t2 query_text =
  let catalog = make_instance scale seed in
  let _engine = build_engine catalog ~t1 ~t2 ~l ~threshold in
  (match Topo_sql.Sql.render catalog query_text with
  | rendered -> print_string rendered
  | exception Topo_sql.Sql_parser.Parse_error msg -> Printf.printf "parse error: %s\n" msg
  | exception Topo_sql.Sql_binder.Bind_error msg -> Printf.printf "bind error: %s\n" msg);
  0

let sql_cmd =
  let text = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.") in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Evaluate SQL over a synthetic instance (base tables plus the derived AllTops_*/LeftTops_*/ExcpTops_*/TopInfo_* tables).")
    Term.(const sql_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg $ text)

(* ------------------------------------------------------------------ *)
(* check                                                                *)

(* Split a `;`-separated script into statements, dropping `--` comments
   and blank statements. *)
let strip_comment line =
  let n = String.length line in
  let rec find i =
    if i + 1 >= n then None else if line.[i] = '-' && line.[i + 1] = '-' then Some i else find (i + 1)
  in
  match find 0 with Some i -> String.sub line 0 i | None -> line

let split_statements text =
  String.split_on_char '\n' text
  |> List.map strip_comment
  |> String.concat "\n"
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let gather_queries query_text file =
  match (query_text, file) with
  | Some q, None -> split_statements q
  | None, Some path -> (
      match open_in path with
      | ic ->
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          split_statements text
      | exception Sys_error msg ->
          prerr_endline msg;
          exit 2)
  | Some _, Some _ ->
      prerr_endline "pass either a SQL argument or --file, not both";
      exit 2
  | None, None ->
      prerr_endline "pass a SQL query or --file FILE";
      exit 2

let check_run scale seed l threshold t1 t2 snapshot query_text file =
  let queries = gather_queries query_text file in
  let engine = engine_of ~snapshot ~scale ~seed ~l ~threshold ~t1 ~t2 in
  let catalog = engine.Engine.ctx.Topo_core.Context.catalog in
  let failures = ref 0 in
  List.iter
    (fun q ->
      Printf.printf "-- %s\n" q;
      match Topo_sql.Sql.lint catalog q with
      | [] -> print_endline "ok"
      | violations ->
          incr failures;
          print_endline (Topo_sql.Plan_check.report violations)
      | exception Topo_sql.Sql_parser.Parse_error msg ->
          incr failures;
          Printf.printf "parse error: %s\n" msg
      | exception Topo_sql.Sql_lexer.Lex_error (msg, pos) ->
          incr failures;
          Printf.printf "lex error at %d: %s\n" pos msg
      | exception Topo_sql.Sql_binder.Bind_error msg ->
          incr failures;
          Printf.printf "bind error: %s\n" msg)
    queries;
  Printf.printf "%d quer%s checked, %d with violations\n" (List.length queries)
    (if List.length queries = 1 then "y" else "ies")
    !failures;
  if !failures = 0 then 0 else 1

let check_cmd =
  let text = Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query (or queries, `;`-separated).") in
  let file = Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc:"Read `;`-separated queries from a file instead.") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint SQL queries: bind each one and run the physical-plan verifier (schema/arity typing, \
          ordering and grouping invariants) without executing.  Exits 1 when any query has \
          violations.")
    Term.(
      const check_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg
      $ snapshot_arg $ text $ file)

(* ------------------------------------------------------------------ *)
(* explain                                                              *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let rec est_json (n : Obs.Estimate.node) =
  Obs.Json.Obj
    [
      ("operator", Obs.Json.Str n.Obs.Estimate.label);
      ("est_rows", Obs.Json.Num n.Obs.Estimate.est.Obs.Estimate.rows);
      ("est_cost", Obs.Json.Num n.Obs.Estimate.est.Obs.Estimate.cost);
      ("children", Obs.Json.Arr (List.map est_json n.Obs.Estimate.children));
    ]

let explain_run scale seed l threshold t1 t2 snapshot query_text file analyze json_out =
  let queries = gather_queries query_text file in
  let engine = engine_of ~snapshot ~scale ~seed ~l ~threshold ~t1 ~t2 in
  let catalog = engine.Engine.ctx.Topo_core.Context.catalog in
  let failures = ref 0 in
  let reports = ref [] in
  List.iter
    (fun q ->
      Printf.printf "-- %s\n" q;
      match
        if analyze then begin
          let report, _rows = Obs.Explain_analyze.of_sql catalog q in
          print_string (Obs.Explain_analyze.to_text report);
          Obs.Explain_analyze.to_json report
        end
        else begin
          let plan = Topo_sql.Sql.to_plan catalog q in
          let est = Obs.Estimate.annotate catalog plan in
          let rec render depth (n : Obs.Estimate.node) =
            Printf.printf "%s%s  est_rows=%.0f est_cost=%.1f\n"
              (String.make (2 * depth) ' ')
              n.Obs.Estimate.label n.Obs.Estimate.est.Obs.Estimate.rows
              n.Obs.Estimate.est.Obs.Estimate.cost;
            List.iter (render (depth + 1)) n.Obs.Estimate.children
          in
          render 0 est;
          est_json est
        end
      with
      | json ->
          print_newline ();
          reports := Obs.Json.Obj [ ("query", Obs.Json.Str q); ("report", json) ] :: !reports
      | exception Topo_sql.Sql_parser.Parse_error msg ->
          incr failures;
          Printf.printf "parse error: %s\n\n" msg
      | exception Topo_sql.Sql_lexer.Lex_error (msg, pos) ->
          incr failures;
          Printf.printf "lex error at %d: %s\n\n" pos msg
      | exception Topo_sql.Sql_binder.Bind_error msg ->
          incr failures;
          Printf.printf "bind error: %s\n\n" msg)
    queries;
  (match json_out with
  | Some path ->
      write_file path (Obs.Json.to_string ~pretty:true (Obs.Json.Arr (List.rev !reports)));
      Printf.printf "wrote %s\n" path
  | None -> ());
  if !failures = 0 then 0 else 1

let explain_cmd =
  let text = Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query (or queries, `;`-separated).") in
  let file = Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc:"Read `;`-separated queries from a file instead.") in
  let analyze = Arg.(value & flag & info [ "analyze" ] ~doc:"Execute the plan instrumented and print measured rows, next() calls and wall time next to the estimates, flagging operators off by more than 10x.") in
  let json_out = Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the per-operator report(s) as JSON.") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show a query's physical plan with the optimizer's cardinality and cost estimates.  With \
          $(b,--analyze), execute the plan under per-operator instrumentation (EXPLAIN ANALYZE).")
    Term.(
      const explain_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg
      $ snapshot_arg $ text $ file $ analyze $ json_out)

(* ------------------------------------------------------------------ *)
(* profile                                                              *)

let profile_run scale seed l threshold t1 t2 kw1 kw2 method_ scheme k json_out =
  let catalog = make_instance scale seed in
  let engine = build_engine catalog ~t1 ~t2 ~l ~threshold in
  let endpoint entity kw =
    match kw with
    | Some kw -> Query.keyword catalog entity ~col:"desc" ~kw
    | None -> Query.endpoint catalog entity
  in
  let q = Query.make (endpoint t1 kw1) (endpoint t2 kw2) in
  Printf.printf "query: %s\nmethod: %s, scheme: %s, k: %d\n\n" (Query.to_string q)
    (Engine.method_name method_) (Ranking.name scheme) k;
  let trace = Obs.Trace.create () in
  let r = Engine.run engine q ~method_ ~scheme ~k ~trace () in
  print_string (Obs.Trace.to_text trace);
  Printf.printf "\n%d result(s) in %.1fms\n" (List.length r.Engine.ranked) (r.Engine.elapsed_s *. 1000.0);
  (match json_out with
  | Some path ->
      write_file path (Obs.Json.to_string ~pretty:true (Obs.Trace.to_json trace));
      Printf.printf "wrote %s\n" path
  | None -> ());
  0

let profile_cmd =
  let kw1 = Arg.(value & opt (some string) None & info [ "kw1" ] ~docv:"WORD" ~doc:"Keyword constraint on $(b,t1)'s description.") in
  let kw2 = Arg.(value & opt (some string) None & info [ "kw2" ] ~docv:"WORD" ~doc:"Keyword constraint on $(b,t2)'s description.") in
  let method_ = Arg.(value & opt method_conv Engine.Fast_top_k_opt & info [ "method" ] ~docv:"M" ~doc:"Evaluation method (paper names, e.g. Fast-Top-k-ET).") in
  let scheme = Arg.(value & opt scheme_conv Ranking.Domain & info [ "scheme" ] ~docv:"S" ~doc:"Ranking scheme: Freq, Rare or Domain.") in
  let k = Arg.(value & opt int 10 & info [ "topk"; "n" ] ~docv:"N" ~doc:"Number of results for top-k methods.") in
  let json_out = Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the span tree as JSON.") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a topology query under a trace and print the span tree of the evaluation phases \
          (plan building, optimizer choice, execution, pruned-topology checks).")
    Term.(
      const profile_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg $ kw1
      $ kw2 $ method_ $ scheme $ k $ json_out)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

module Serve = Topo_core.Serve

(* Workload file: one request per line,
     METHOD[; scheme[; k[; kw1[; kw2]]]]
   Empty fields take defaults (Freq, 10, no keyword); `#` starts a
   comment.  Keywords constrain the endpoint's `desc` column.  A
   malformed line is reported with its line number, skipped, and counted
   — one bad line does not abort the batch. *)
let parse_workload_line catalog ~t1 ~t2 lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let fields = String.split_on_char ';' line |> List.map String.trim in
  match fields with
  | [] | [ "" ] -> `Blank
  | m :: rest -> (
      let malformed msg =
        Printf.eprintf "workload line %d: %s (skipped)\n" lineno msg;
        `Malformed
      in
      let get i = Option.value ~default:"" (List.nth_opt rest i) in
      match
        List.find_opt
          (fun mm -> String.lowercase_ascii (Engine.method_name mm) = String.lowercase_ascii m)
          Engine.all_methods
      with
      | None -> malformed (Printf.sprintf "unknown method %S" m)
      | Some method_ -> (
          match
            if get 0 = "" then Some Ranking.Freq
            else try Some (Ranking.of_name (get 0)) with Invalid_argument _ -> None
          with
          | None -> malformed ("unknown scheme " ^ get 0)
          | Some scheme -> (
              match if get 1 = "" then Some 10 else int_of_string_opt (get 1) with
              | None -> malformed ("bad k " ^ get 1)
              | Some k ->
                  let ep entity kw =
                    if kw = "" then Query.endpoint catalog entity
                    else Query.keyword catalog entity ~col:"desc" ~kw
                  in
                  `Request
                    (Serve.request ~scheme ~k method_
                       (Query.make (ep t1 (get 2)) (ep t2 (get 3)))))))

(* Returns the parsed requests plus the count of malformed lines skipped. *)
let read_workload catalog ~t1 ~t2 path =
  match open_in path with
  | ic ->
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let skipped = ref 0 in
      let requests =
        String.split_on_char '\n' text
        |> List.mapi (fun i line -> parse_workload_line catalog ~t1 ~t2 (i + 1) line)
        |> List.filter_map (function
             | `Request r -> Some r
             | `Blank -> None
             | `Malformed ->
                 incr skipped;
                 None)
      in
      (requests, !skipped)
  | exception Sys_error msg ->
      prerr_endline msg;
      exit 2

(* Default mixed workload: all nine methods, three selectivities each. *)
let default_workload catalog ~t1 ~t2 =
  let schemes = [| Ranking.Freq; Ranking.Rare; Ranking.Domain |] in
  List.concat_map
    (fun method_ ->
      List.mapi
        (fun i kw1 ->
          let e1 = if kw1 = "" then Query.endpoint catalog t1 else Query.keyword catalog t1 ~col:"desc" ~kw:kw1 in
          let e2 = Query.endpoint catalog t2 in
          Serve.request ~scheme:schemes.(i mod 3) ~k:10 method_ (Query.make e1 e2))
        [ "kinase"; "enzyme"; "" ])
    Engine.all_methods

(* Open-loop serving behind `serve --rate`: arrivals uniformly spaced at
   the offered rate, bounded admission queue, per-request wall deadlines,
   latency percentiles from the intended-start (coordinated-omission
   corrected) Hdr histogram. *)
let serve_open engine ~jobs ~traces ~cache ~max_queue ~deadline_s ~rate requests =
  let n = List.length requests in
  let r =
    Serve.exec
      (Serve.config ?jobs ~traces ?cache
         ~mode:
           (Serve.Open
              (Serve.open_config ~max_queue ?deadline_s
                 ~schedule:(fun i -> float_of_int i /. rate)
                 ()))
         ())
      engine requests
  in
  let timed = Option.get r.Serve.timed and stats = Option.get r.Serve.open_stats in
  let hdr = Topo_util.Hdr.create () in
  List.iter
    (fun (t : Serve.timed) ->
      match t.Serve.timed_outcome.Serve.result with
      | Topo_core.Request.Done _ | Topo_core.Request.Partial _ ->
          Topo_util.Hdr.record hdr (int_of_float (t.Serve.latency_s *. 1e9))
      | Topo_core.Request.Rejected _ | Topo_core.Request.Failed _ -> ())
    timed;
  Printf.printf "open loop: offered %d request(s) at %.1f/s target, queue bound %d, %d worker(s)\n"
    n rate max_queue stats.Serve.open_jobs;
  Printf.printf
    "  admitted %d + rejected %d = offered %d; done %d, partial %d, expired %d, failed %d\n"
    stats.Serve.admitted stats.Serve.rejected_overload stats.Serve.offered stats.Serve.completed
    stats.Serve.partial stats.Serve.expired stats.Serve.failed;
  let pct q = float_of_int (Topo_util.Hdr.quantile hdr q) /. 1e6 in
  if Topo_util.Hdr.count hdr > 0 then
    Printf.printf "  latency (intended-start): p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n"
      (pct 0.5) (pct 0.95) (pct 0.99)
      (float_of_int (Topo_util.Hdr.max_value hdr) /. 1e6);
  (match stats.Serve.achieved_rate with
  | Some r -> Printf.printf "  achieved %.1f answered/s over %.3fs\n" r stats.Serve.wall_s
  | None -> ());
  if stats.Serve.failed > 0 then 1 else 0

let serve_run scale seed l threshold t1 t2 snapshot jobs file repeat traces check use_cache cache_size deadline_ms max_queue rate =
  let engine = engine_of ~snapshot ~scale ~seed ~l ~threshold ~t1 ~t2 in
  let catalog = engine.Engine.ctx.Topo_core.Context.catalog in
  let base, skipped =
    match file with
    | Some path -> read_workload catalog ~t1 ~t2 path
    | None -> (default_workload catalog ~t1 ~t2, 0)
  in
  if skipped > 0 then
    Printf.printf "skipped %d malformed line%s\n" skipped (if skipped = 1 then "" else "s");
  if base = [] then begin
    prerr_endline "empty workload";
    exit 2
  end;
  let cache = if use_cache then Some (Engine.cache ~results:cache_size engine) else None in
  let requests = List.concat (List.init (max 1 repeat) (fun _ -> base)) in
  let deadline_s = Option.map (fun ms -> ms /. 1000.0) deadline_ms in
  match rate with
  | Some r when r > 0.0 ->
      (* The serve itself still runs; only the verification is skipped.
         Exit 3 (not 0) so CI can tell "verified" from "not verified". *)
      let code = serve_open engine ~jobs ~traces ~cache ~max_queue ~deadline_s ~rate:r requests in
      if check then begin
        prerr_endline
          "serve --check: skipped — --check applies to closed-loop serving only (open-loop \
           outcomes depend on arrival timing)";
        if code = 0 then 3 else code
      end
      else code
  | Some _ | None ->
  (* Closed loop.  --deadline-ms bounds the whole batch: every request is
     stamped with the same absolute wall deadline, measured from batch
     start, so stragglers degrade to Partial/Rejected instead of holding
     the batch open. *)
  let requests =
    match deadline_s with
    | None -> requests
    | Some d ->
        let cutoff = Unix.gettimeofday () +. d in
        List.map
          (fun (rq : Serve.request) -> { rq with Serve.deadline = Some (Topo_core.Budget.Wall cutoff) })
          requests
  in
  let served = Serve.exec (Serve.config ?jobs ~traces ?cache ()) engine requests in
  let outcomes = served.Serve.outcomes and stats = served.Serve.stats in
  List.iteri
    (fun i (o : Serve.outcome) ->
      if i < List.length base then
        match o.Serve.result with
        | Topo_core.Request.Done r | Topo_core.Request.Partial r ->
            Printf.printf "%3d. %-14s %2d result(s)%s  [tuples %d, probes %d, scanned %d]\n" (i + 1)
              (Engine.method_name o.Serve.request.Serve.method_)
              (List.length r.Engine.ranked)
              (match o.Serve.result with Topo_core.Request.Partial _ -> " (partial)" | _ -> "")
              o.Serve.counters.Topo_sql.Iterator.Counters.tuples
              o.Serve.counters.Topo_sql.Iterator.Counters.index_probes
              o.Serve.counters.Topo_sql.Iterator.Counters.rows_scanned
        | Topo_core.Request.Rejected rj ->
            Printf.printf "%3d. %-14s REJECTED (%s)\n" (i + 1)
              (Engine.method_name o.Serve.request.Serve.method_)
              (Topo_core.Request.rejection_name rj)
        | Topo_core.Request.Failed e ->
            Printf.printf "%3d. %-14s ERROR %s\n" (i + 1)
              (Engine.method_name o.Serve.request.Serve.method_)
              (Printexc.to_string e))
    outcomes;
  if traces then begin
    print_newline ();
    List.iteri
      (fun i (o : Serve.outcome) ->
        match o.Serve.trace with
        | Some tr when i < List.length base ->
            Printf.printf "-- query %d (%s), %d span(s)\n%s" (i + 1)
              (Engine.method_name o.Serve.request.Serve.method_)
              (Obs.Trace.span_count tr) (Obs.Trace.to_text tr)
        | Some _ | None -> ())
      outcomes
  end;
  Printf.printf
    "\nserved %d quer%s (%d error%s, %d rejected, %d partial) in %.3fs on %d domain(s), jobs=%d: %s\n"
    stats.Serve.queries
    (if stats.Serve.queries = 1 then "y" else "ies")
    stats.Serve.errors
    (if stats.Serve.errors = 1 then "" else "s")
    stats.Serve.rejected stats.Serve.partials
    stats.Serve.elapsed_s stats.Serve.domains_used stats.Serve.jobs
    (match stats.Serve.throughput_qps with
    | Some qps -> Printf.sprintf "%.1f queries/s" qps
    | None -> "throughput not measurable (batch under clock resolution)");
  (match stats.Serve.cache with
  | Some c ->
      let r = c.Topo_core.Cache.results in
      Printf.printf
        "cache: %d hits, %d misses (%.0f%% hit rate), %d evictions, %d invalidations; %d plan \
         hits, %d plan misses\n"
        r.Topo_core.Cache.hits r.Topo_core.Cache.misses
        (100.0 *. Topo_core.Cache.hit_rate r)
        r.Topo_core.Cache.evictions r.Topo_core.Cache.invalidations
        c.Topo_core.Cache.plans.Topo_core.Cache.hits c.Topo_core.Cache.plans.Topo_core.Cache.misses
  | None -> ());
  if check && deadline_s <> None then begin
    (* Exit 3, reason on stderr: CI must be able to distinguish "verified"
       (0) from "mismatch" (1) from "not verified at all" (3). *)
    prerr_endline
      "serve --check: skipped — --check needs deterministic outcomes and wall deadlines depend \
       on timing";
    3
  end
  else if check then begin
    (* The reference pass is sequential AND uncached, so with --cache this
       also asserts that serving from the cache changed no answer. *)
    let seq_outcomes = (Serve.exec (Serve.config ~jobs:1 ()) engine requests).Serve.outcomes in
    if Serve.fingerprint outcomes = Serve.fingerprint seq_outcomes then begin
      print_endline "determinism check: concurrent results bit-identical to jobs=1";
      0
    end
    else begin
      print_endline "determinism check FAILED: concurrent results differ from jobs=1";
      1
    end
  end
  else 0

let serve_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains for concurrent query evaluation (default: the machine's recommended domain \
             count, capped at 8).  Results are bit-identical for every value.")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Workload file: one request per line, `METHOD[; scheme[; k[; kw1[; kw2]]]]` with `#` \
             comments (see examples/workload.txt).  Default: a mixed batch of all nine methods at \
             three selectivities.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"R" ~doc:"Serve the workload $(docv) times over (stress/throughput runs).")
  in
  let traces = Arg.(value & flag & info [ "traces" ] ~doc:"Attach a private trace to every query and print each span tree.") in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run the batch at jobs=1 (sequential, uncached) and fail unless results are \
             bit-identical.")
  in
  let use_cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Share a result + plan cache across the serving domains: repeated requests are \
             answered from memoized results (generation-stamped against the topology registry, \
             so online re-registration never serves a stale answer).  Results stay bit-identical \
             to an uncached run.")
  in
  let cache_size =
    Arg.(
      value & opt int 1024
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Result-cache capacity in entries (LRU eviction past this).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall deadline.  With --rate, each request's deadline runs from its \
             intended arrival instant; without, the whole batch shares one deadline from batch \
             start.  Expired requests short-circuit to a rejected outcome; top-k \
             early-termination methods caught mid-flight return a partial ranked prefix.")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission-queue depth bound for open-loop serving (--rate): arrivals beyond this \
             are rejected immediately as overloaded instead of queueing without bound.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"QPS"
          ~doc:
            "Serve open-loop: arrivals uniformly spaced at $(docv) requests/s through a bounded \
             admission queue, reporting latency percentiles measured from each request's \
             intended arrival (coordinated-omission corrected).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Evaluate a batch of topology queries concurrently across OCaml domains (the online \
          serving tier): shared read-only stores, per-domain engine handles, per-query counters \
          and traces, optional shared result/plan cache, deterministic input-order results; \
          open-loop mode (--rate) with admission control and deadlines.")
    Term.(
      const serve_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ t1_arg $ t2_arg
      $ snapshot_arg $ jobs $ file $ repeat $ traces $ check $ use_cache $ cache_size
      $ deadline_ms $ max_queue $ rate)

(* ------------------------------------------------------------------ *)
(* shard / route — the distributed serving tier                         *)

module Wire = Topo_core.Wire
module Shard = Topo_core.Shard
module Router = Topo_core.Router

let addr_conv =
  let parse s = Ok (Wire.addr_of_string s) in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Wire.addr_to_string a))

(* `shard --snapshot DIR/shard-2.snap` can usually infer its own index. *)
let shard_index_of_path path =
  let base = Filename.basename path in
  match Scanf.sscanf_opt base "shard-%d.snap%!" (fun k -> k) with
  | Some k when k >= 0 -> Some k
  | _ -> None

let shard_run snapshot socket shard_idx jobs use_cache cache_size max_inflight timeout_ms =
  let shard =
    match shard_idx with
    | Some k -> k
    | None -> (
        match shard_index_of_path snapshot with
        | Some k -> k
        | None ->
            prerr_endline
              "cannot infer the shard index from the snapshot filename; pass --shard K";
            exit 2)
  in
  let engine = load_snapshot snapshot in
  let cache = if use_cache then Some (Engine.cache ~results:cache_size engine) else None in
  let serve = Serve.config ?jobs ?cache () in
  match
    Shard.start ~serve ~max_inflight
      ?write_timeout_s:(Option.map (fun ms -> ms /. 1000.0) timeout_ms)
      ~shard socket engine
  with
  | t ->
      Shard.wait t;
      0
  | exception Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "cannot listen on %s: %s %s\n" (Wire.addr_to_string socket)
        (Unix.error_message e) arg;
      2

let shard_cmd =
  let snapshot =
    Arg.(
      required
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:"The slice to serve: a $(b,shard-K.snap) written by $(b,build -o DIR --shards N).")
  in
  let socket =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "socket" ] ~docv:"ADDR"
          ~doc:"Listen address: a Unix-domain socket path, or $(i,HOST:PORT) for TCP.")
  in
  let shard_idx =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard" ] ~docv:"K"
          ~doc:"Shard index announced in the hello frame (default: parsed from the snapshot \
                filename).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Evaluation domains for this shard's pool.")
  in
  let use_cache =
    Arg.(value & flag & info [ "cache" ] ~doc:"Attach a shared result + plan cache to the shard.")
  in
  let cache_size =
    Arg.(value & opt int 1024 & info [ "cache-size" ] ~docv:"N" ~doc:"Result-cache capacity.")
  in
  let max_inflight =
    Arg.(
      value & opt int 256
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Bound on concurrently evaluating requests across all connections; batches past it \
             are answered $(b,Rejected Overloaded) instead of queueing.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Socket write timeout (default 30000).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Serve one snapshot slice over the binary wire protocol (Unix-domain or TCP socket): \
          the server half of the distributed serving tier.  Runs until killed.")
    Term.(
      const shard_run $ snapshot $ socket $ shard_idx $ jobs $ use_cache $ cache_size
      $ max_inflight $ timeout_ms)

let route_run manifest_dir sockets t1 t2 file repeat check_snapshot timeout_ms retries =
  let manifest =
    match Snapshot.load_manifest manifest_dir with
    | m -> m
    | exception Snapshot.Error msg ->
        prerr_endline msg;
        exit 2
  in
  if List.length sockets <> manifest.Snapshot.shards then begin
    Printf.eprintf "manifest names %d shard(s) but %d --socket address(es) were given\n"
      manifest.Snapshot.shards (List.length sockets);
    exit 2
  end;
  (* The workload needs a catalog for endpoint/keyword binding; the full
     snapshot (when checking) or any slice works — slices keep every base
     table and drop only other shards' derived tables. *)
  let reference = Option.map load_snapshot check_snapshot in
  let catalog_engine =
    match reference with
    | Some e -> e
    | None -> load_snapshot (Snapshot.shard_path ~dir:manifest_dir 0)
  in
  let catalog = catalog_engine.Engine.ctx.Topo_core.Context.catalog in
  let base, skipped =
    match file with
    | Some path -> read_workload catalog ~t1 ~t2 path
    | None -> (default_workload catalog ~t1 ~t2, 0)
  in
  if skipped > 0 then
    Printf.printf "skipped %d malformed line%s\n" skipped (if skipped = 1 then "" else "s");
  if base = [] then begin
    prerr_endline "empty workload";
    exit 2
  end;
  let requests = List.concat (List.init (max 1 repeat) (fun _ -> base)) in
  let router =
    Router.create ~manifest ~addrs:(Array.of_list sockets)
      ?timeout_s:(Option.map (fun ms -> ms /. 1000.0) timeout_ms)
      ?retries ()
  in
  let t0 = Unix.gettimeofday () in
  match Router.exec router requests with
  | exception Wire.Error msg ->
      Router.close router;
      prerr_endline msg;
      2
  | outcomes ->
      let elapsed = Unix.gettimeofday () -. t0 in
      Router.close router;
      let count p = List.length (List.filter p outcomes) in
      let done_ = count (fun o -> match o.Serve.result with Topo_core.Request.Done _ -> true | _ -> false) in
      let partial = count (fun o -> match o.Serve.result with Topo_core.Request.Partial _ -> true | _ -> false) in
      let rejected = count (fun o -> match o.Serve.result with Topo_core.Request.Rejected _ -> true | _ -> false) in
      let failed = count (fun o -> match o.Serve.result with Topo_core.Request.Failed _ -> true | _ -> false) in
      List.iteri
        (fun i (o : Serve.outcome) ->
          match o.Serve.result with
          | Topo_core.Request.Failed e ->
              Printf.printf "%3d. %-14s ERROR %s\n" (i + 1)
                (Engine.method_name o.Serve.request.Serve.method_)
                (Printexc.to_string e)
          | _ -> ())
        outcomes;
      Printf.printf
        "routed %d request(s) over %d shard(s) in %.3fs: %d done, %d partial, %d rejected, %d \
         failed\n"
        (List.length requests) manifest.Snapshot.shards elapsed done_ partial rejected failed;
      let check_code =
        match reference with
        | None -> 0
        | Some engine ->
            (* Sharded ≡ single-process: the distributed tier's answer for
               the whole batch must be bit-identical to one local engine
               at jobs=1. *)
            let local = (Serve.exec (Serve.config ~jobs:1 ()) engine requests).Serve.outcomes in
            if Serve.fingerprint outcomes = Serve.fingerprint local then begin
              print_endline "distribution check: sharded results bit-identical to single-process jobs=1";
              0
            end
            else begin
              print_endline "distribution check FAILED: sharded results differ from single-process";
              1
            end
      in
      if failed > 0 && check_code = 0 then 1 else check_code

let route_cmd =
  let manifest =
    Arg.(
      required
      & opt (some string) None
      & info [ "manifest" ] ~docv:"DIR"
          ~doc:"The sharded snapshot directory written by $(b,build -o DIR --shards N).")
  in
  let sockets =
    Arg.(
      non_empty & opt_all addr_conv []
      & info [ "socket" ] ~docv:"ADDR"
          ~doc:"Shard address, repeated once per shard $(i,in shard order) (Unix path or \
                $(i,HOST:PORT)).")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Workload file (same format as $(b,serve --file)); default: the mixed \
                nine-method batch.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"R" ~doc:"Route the workload $(docv) times over.")
  in
  let check_snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-snapshot" ] ~docv:"FILE"
          ~doc:
            "Also evaluate the batch locally from this $(i,unsliced) snapshot at jobs=1 and fail \
             unless the routed results are bit-identical — the distributed tier's correctness \
             gate.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-shard socket timeout (default 60000); must cover a whole sub-batch's evaluation.")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N" ~doc:"Connect-time retries while a shard is still binding.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Scatter-gather a workload over running $(b,toposearch shard) servers: requests are \
          routed by the manifest's pair partition, evaluated remotely, and merged back in input \
          order.  A dead shard degrades to $(b,Failed) outcomes for its requests only.")
    Term.(
      const route_run $ manifest $ sockets $ t1_arg $ t2_arg $ file $ repeat $ check_snapshot
      $ timeout_ms $ retries)

(* ------------------------------------------------------------------ *)
(* nquery                                                               *)

let nquery_run scale seed l threshold entities kws max_tuples =
  let catalog = make_instance scale seed in
  if List.length entities < 2 then begin
    prerr_endline "need at least two --entity arguments";
    2
  end
  else begin
    let t1 = List.nth entities 0 and t2 = List.nth entities 1 in
    let engine = build_engine catalog ~t1 ~t2 ~l ~threshold in
    let endpoints =
      List.mapi
        (fun i entity ->
          match List.nth_opt kws i with
          | Some (Some kw) -> Query.keyword catalog entity ~col:"desc" ~kw
          | Some None | None -> Query.endpoint catalog entity)
        entities
    in
    let r = Nquery.run engine.Engine.ctx ~endpoints ~max_tuples () in
    Printf.printf "%d qualifying tuples (%d examined%s), %d distinct topologies:\n"
      (List.length r.Topo_core.Nquery.rows)
      r.Topo_core.Nquery.tuples_examined
      (if r.Topo_core.Nquery.truncated then ", truncated" else "")
      (List.length r.Topo_core.Nquery.topologies);
    List.iter
      (fun tid -> Printf.printf "  TID %-4d %s\n" tid (Engine.describe engine tid))
      r.Topo_core.Nquery.topologies;
    print_endline "\nsample tuples:";
    List.iteri
      (fun i (row : Topo_core.Nquery.row) ->
        if i < 10 then
          Printf.printf "  (%s) -> TIDs %s\n"
            (String.concat ", " (Array.to_list (Array.map string_of_int row.Topo_core.Nquery.entities)))
            (String.concat "," (List.map string_of_int row.Topo_core.Nquery.tids)))
      r.Topo_core.Nquery.rows;
    0
  end

let nquery_cmd =
  let entities =
    Arg.(value & opt_all string [ "Protein"; "Unigene"; "DNA" ]
         & info [ "entity" ] ~docv:"ENTITY" ~doc:"Endpoint entity set (repeatable, in order).")
  in
  let kws =
    Arg.(value & opt_all (some string) []
         & info [ "kw" ] ~docv:"WORD" ~doc:"Keyword for the i-th endpoint (repeatable; use --kw= for none).")
  in
  let max_tuples = Arg.(value & opt int 2000 & info [ "max-tuples" ] ~docv:"N" ~doc:"Tuple budget.") in
  Cmd.v
    (Cmd.info "nquery" ~doc:"Run a multi-endpoint topology query (the paper's future-work extension).")
    Term.(const nquery_run $ scale_arg $ seed_arg $ l_arg $ threshold_arg $ entities $ kws $ max_tuples)

(* ------------------------------------------------------------------ *)
(* dump / load                                                          *)

let dump_run scale seed dir =
  let catalog = make_instance scale seed in
  Topo_sql.Dump.save catalog ~dir;
  Printf.printf "saved %d tables to %s\n" (List.length (Topo_sql.Catalog.tables catalog)) dir;
  0

let dump_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.") in
  Cmd.v
    (Cmd.info "dump" ~doc:"Generate a synthetic instance and save it as .tbl files.")
    Term.(const dump_run $ scale_arg $ seed_arg $ dir)

(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "toposearch" ~version:"1.0.0"
       ~doc:"Topology search over biological databases (Guo, Shanmugasundaram, Yona).")
    [
      demo_cmd;
      build_cmd;
      query_cmd;
      topologies_cmd;
      schema_cmd;
      enumerate_cmd;
      sql_cmd;
      check_cmd;
      explain_cmd;
      profile_cmd;
      serve_cmd;
      shard_cmd;
      route_cmd;
      nquery_cmd;
      dump_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
