let () =
  Alcotest.run "toposearch"
    (Suite_util.suites @ Suite_relational.suites @ Suite_graph.suites @ Suite_biozon.suites
   @ Suite_core.suites @ Suite_extensions.suites @ Suite_sql_deep.suites
   @ Suite_cost_optimizer.suites @ Suite_plan_check.suites @ Suite_engine_matrix.suites @ Suite_operators_deep.suites @ Suite_invariants.suites @ Suite_misc.suites @ Suite_obs.suites
   @ Suite_parallel.suites @ Suite_serve.suites @ Suite_cache.suites @ Suite_snapshot.suites
   @ Suite_kernels.suites @ Suite_latency.suites @ Suite_wire.suites @ Suite_lint.suites)
